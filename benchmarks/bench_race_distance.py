"""Race distances (Section 4.3).

The paper measures, for the races only the whole-trace analyses can see,
the separation between the two accesses: eclipse has more than 25 races at
least 4.8 million events apart (max 53 million) on an 87M-event trace --
i.e. distances of several percent up to ~60% of the trace, far beyond any
usable window.  We verify the same *relative* property on the scaled
eclipse/lusearch/moldyn traces: a large share of the WCP races have
distances exceeding any of the windowed predictor's window sizes.
"""

import pytest

from repro.analysis import long_distance_races, max_race_distance
from repro.bench import BENCHMARKS
from repro.core.wcp import WCPDetector

from _bench_utils import record_result, scaled

PROGRAMS = ["eclipse", "lusearch", "moldyn"]


@pytest.mark.parametrize("name", PROGRAMS)
def test_long_distance_races(benchmark, name):
    spec = BENCHMARKS[name]
    trace = spec.generate(scale=scaled(spec.category), seed=0)
    report = benchmark(lambda: WCPDetector().run(trace))

    window = max(50, len(trace) // 10)  # the "10K on 100K+ events" regime
    distant = long_distance_races(report, threshold=window)

    # Most of the seeded races are distant, and the maximum distance spans
    # the bulk of the trace (the paper's 53M-out-of-87M observation).
    assert len(distant) >= report.count() // 2
    assert max_race_distance(report) > len(trace) // 2

    record_result("race_distance", name, {
        "events": len(trace),
        "wcp_races": report.count(),
        "races_beyond_window": len(distant),
        "window": window,
        "max_distance": max_race_distance(report),
        "max_distance_fraction": round(max_race_distance(report) / len(trace), 3),
    })
