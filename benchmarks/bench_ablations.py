"""Remaining ablations from DESIGN.md.

* streaming Algorithm 1 vs. the explicit closure (design choice 1): the
  closure is the correctness oracle but is super-quadratic; the streaming
  detector is linear.  We measure both on growing prefixes of a benchmark
  trace and assert the gap widens.
* FastTrack epochs vs. plain vector clocks for HB (design choice 3).
* windowed CP vs. whole-trace WCP (the practical deployment gap that
  motivates the paper).
"""

import time

import pytest

from repro.bench import BENCHMARKS
from repro.core.closure import WCPClosureDetector
from repro.core.wcp import WCPDetector
from repro.cp import CPDetector
from repro.hb import FastTrackDetector, HBDetector
from repro.trace.trace import Trace

from _bench_utils import record_result, scaled


def _prefix(trace, size):
    return Trace([e for e in list(trace)[:size]], validate=False, name=trace.name)


def _timed(detector, trace):
    started = time.perf_counter()
    report = detector.run(trace)
    return report, time.perf_counter() - started


@pytest.mark.parametrize("size", [100, 200, 400])
def test_streaming_vs_closure(benchmark, size):
    spec = BENCHMARKS["mergesort"]
    trace = _prefix(spec.generate(scale=1.0, seed=0), size)

    streaming_report, streaming_time = _timed(WCPDetector(), trace)
    closure_report, closure_time = benchmark.pedantic(
        lambda: _timed(WCPClosureDetector(), trace), iterations=1, rounds=1,
    )

    # Same races, very different asymptotics.
    assert set(streaming_report.location_pairs()) == set(
        closure_report.location_pairs()
    )
    record_result("ablation_closure", "events_%d" % size, {
        "streaming_time_s": round(streaming_time, 4),
        "closure_time_s": round(closure_time, 4),
        "slowdown": round(closure_time / max(streaming_time, 1e-9), 1),
    })


@pytest.mark.parametrize("name", ["bufwriter", "lusearch"])
def test_fasttrack_epochs_vs_vector_clocks(benchmark, name):
    spec = BENCHMARKS[name]
    trace = spec.generate(scale=scaled(spec.category), seed=0)

    fasttrack_report, fasttrack_time = benchmark.pedantic(
        lambda: _timed(FastTrackDetector(), trace), iterations=1, rounds=3,
    )
    hb_report, hb_time = _timed(HBDetector(), trace)

    # Epochs never invent races and agree on whether the trace is racy.
    assert set(fasttrack_report.variables()) <= set(hb_report.variables())
    assert fasttrack_report.has_race() == hb_report.has_race()
    record_result("ablation_epochs", name, {
        "events": len(trace),
        "fasttrack_time_s": round(fasttrack_time, 4),
        "hb_time_s": round(hb_time, 4),
        "fast_path_ratio": round(
            fasttrack_report.stats.get("fast_path_ratio", 0.0), 3
        ),
    })


@pytest.mark.parametrize("name", ["mergesort", "raytracer"])
def test_windowed_cp_vs_wcp(benchmark, name):
    spec = BENCHMARKS[name]
    trace = spec.generate(scale=scaled(spec.category), seed=0)
    window = max(50, len(trace) // 10)

    cp_report = benchmark.pedantic(
        lambda: CPDetector(window_size=window).run(trace), iterations=1, rounds=1,
    )
    wcp_report = WCPDetector().run(trace)

    # CP (windowed, as deployed in practice) never finds more than WCP on
    # the whole trace for these workloads.
    assert cp_report.count() <= wcp_report.count()
    record_result("ablation_cp", name, {
        "window": window,
        "cp_races": cp_report.count(),
        "wcp_races": wcp_report.count(),
        "cp_time_s": round(cp_report.stats["time_s"], 4),
        "wcp_time_s": round(wcp_report.stats["time_s"], 4),
    })
