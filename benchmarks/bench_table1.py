"""Table 1: race counts, analysis times and queue sizes per benchmark.

Reproduces, for every one of the 18 benchmarks, the paper's main table:

* columns 3-5  -- events / threads / locks of the generated trace;
* columns 6-7  -- distinct WCP and HB race pairs (the boldfaced rows where
  WCP > HB are eclipse, jigsaw and xalan);
* columns 8-10 -- windowed-predictor race counts (see ``bench_figure7`` for
  the full parameter sweep);
* column 11    -- the WCP queue total as a fraction of the trace length;
* columns 12-13 -- WCP and HB analysis times (measured by pytest-benchmark).

Absolute event counts are scaled down (see ``conftest.BENCH_SCALE``); the
*shape* -- WCP >= HB everywhere, strictly greater on the three boldfaced
benchmarks, WCP time within a small factor of HB time, queues a few percent
of the trace -- is asserted.
"""

import pytest

from repro.bench import BENCHMARKS
from repro.core.wcp import WCPDetector
from repro.hb import HBDetector
from repro.mcm import MCMPredictor

from _bench_utils import record_result, scaled

ALL_NAMES = sorted(BENCHMARKS)

#: Benchmarks whose WCP count must strictly exceed HB (boldfaced in Table 1).
WCP_EXTRA = {"eclipse", "jigsaw", "xalan"}

#: Benchmarks small enough to run the windowed MCM predictor on every call.
MCM_NAMES = ["account", "pingpong", "raytracer", "ftpserver", "derby", "eclipse"]


def _trace_for(name):
    spec = BENCHMARKS[name]
    return spec, spec.generate(scale=scaled(spec.category), seed=0)


@pytest.mark.parametrize("name", ALL_NAMES)
def test_wcp_race_detection(benchmark, name):
    """Columns 3-7 and 11-12: WCP races, queue fraction and analysis time."""
    spec, trace = _trace_for(name)
    report = benchmark(lambda: WCPDetector().run(trace))
    assert report.count() == spec.expected_wcp_races
    hb_report = HBDetector().run(trace)
    assert hb_report.count() == spec.expected_hb_races
    assert report.count() >= hb_report.count()
    if name in WCP_EXTRA:
        assert report.count() > hb_report.count()

    record_result("table1", name, {
        "events": len(trace),
        "threads": len(trace.threads),
        "locks": len(trace.locks),
        "wcp_races": report.count(),
        "hb_races": hb_report.count(),
        "queue_fraction": round(report.stats["max_queue_fraction"], 4),
        "wcp_time_s": round(report.stats["time_s"], 4),
        "hb_time_s": round(hb_report.stats["time_s"], 4),
        "paper_wcp": spec.paper.wcp_races,
        "paper_hb": spec.paper.hb_races,
        "paper_queue_pct": spec.paper.queue_pct,
    })


@pytest.mark.parametrize("name", ALL_NAMES)
def test_hb_race_detection(benchmark, name):
    """Column 13: the HB baseline's analysis time on the same traces."""
    spec, trace = _trace_for(name)
    report = benchmark(lambda: HBDetector().run(trace))
    assert report.count() == spec.expected_hb_races


@pytest.mark.parametrize("name", MCM_NAMES)
def test_windowed_predictor(benchmark, name):
    """Columns 8-10: the windowed MCM predictor finds only the local races."""
    spec, trace = _trace_for(name)
    window = max(100, len(trace) // 10)
    predictor = MCMPredictor(
        window_size=window, solver_timeout_s=5.0, max_states_per_query=20_000,
    )
    report = benchmark.pedantic(
        lambda: predictor.run(trace), iterations=1, rounds=1,
    )
    wcp_count = WCPDetector().run(trace).count()
    # The windowed predictor can never beat the whole-trace analysis on
    # these workloads, and on the large ones it must lose races.
    assert report.count() <= wcp_count
    if spec.category == "realworld":
        assert report.count() < wcp_count

    record_result("table1_mcm", name, {
        "window": window,
        "mcm_races": report.count(),
        "wcp_races": wcp_count,
        "paper_rv_max": spec.paper.rv_max,
    })
