#!/usr/bin/env python
"""Hot-path throughput benchmark and perf-regression gate.

Measures detector throughput (events/sec) on three synthetic workloads
that bracket the cost spectrum of Algorithm 1:

* ``high_contention`` -- every thread hammers a handful of shared
  variables inside critical sections of one shared lock: Rule (a) and
  Rule (b) fire constantly, and clock knowledge flows between all
  threads.  This is the workload the hot-path overhaul (interned tids,
  dense clocks, incremental ``C_t``, chain-collapsed Rule (a)/(b) joins)
  targets.
* ``racy_mix`` -- protected sections plus unprotected conflicting
  accesses, so reports are non-empty and the differential check (below)
  covers the racy attribution path too.
* ``thread_local`` -- each thread works on private variables under a
  private lock: the epoch fast path should make race checks O(1) and the
  queue pruning keeps the logs empty.

Both workloads use small, fixed program-location sets (like real logger
traces) so the access history stays bounded.

Detectors measured: the optimised WCP on both clock backends
(``wcp_dense`` / ``wcp_dict``), the frozen pre-overhaul implementation
(``wcp_legacy``, see :mod:`repro.core.wcp_legacy`), plus ``hb_dense`` and
``fasttrack_dense`` for context.  Every WCP variant is also differentially
checked for identical race reports while we're at it.

Usage::

    PYTHONPATH=src python benchmarks/bench_hotpath.py             # full run, write BENCH_hotpath.json
    PYTHONPATH=src python benchmarks/bench_hotpath.py --quick     # fast run, print only
    PYTHONPATH=src python benchmarks/bench_hotpath.py --quick --check
                                                                  # CI gate vs the checked-in baseline

The regression gate compares the *relative* speedup of ``wcp_dense`` over
``wcp_legacy`` against the checked-in baseline's speedup (absolute
events/sec are machine-dependent; the in-run ratio is not): the check
fails when the measured speedup drops below ``1 - TOLERANCE`` (30%) of
the baseline's on any workload.  The floor is the only criterion -- quick
runs on noisy CI runners measure smaller traces than the checked-in
baseline, so absolute thresholds would flake.

A second, stricter **kernel gate** rides along: on ``high_contention``
the dense/legacy ratio must be at least 1.5x the ratio recorded before
the compiled clock kernels existed (``PRE_KERNEL_SPEEDUPS``) -- the
machine-independent statement that ``wcp_dense`` runs >= 1.5x its
pre-kernel events/sec.  The gate only applies while the cffi kernels are
active; a deliberate ``REPRO_CLOCK_KERNEL=python`` fallback skips it
with a notice, and the emitted JSON records ``kernel_backend`` so CI can
fail on an *accidental* fallback.

Sharded mode
------------
``--sharded`` switches to the multi-core benchmark: WCP throughput on the
*partitionable* workload (threads working mostly on disjoint variables
outside critical sections, with occasional shared critical sections) at
1, 2 and 4 shards via the :class:`~repro.engine.ShardedEngine` process
transport, written to ``BENCH_shard.json``.  ``--sharded --check`` gates
on two criteria:

* **work-bound** (deterministic, machine-independent): the partition
  quality ``events / max(shard_events)`` at 4 shards must be >= 1.5x --
  this bounds the achievable parallel speedup and fails if the
  replication taxonomy regresses (e.g. events needlessly replicated);
* **wall-clock**: 4-shard events/sec must be >= 1.5x single-shard,
  enforced only when the machine exposes >= 4 usable cores (on smaller
  runners real parallel speedup is physically impossible and the check
  is skipped with a notice);
* **supervision overhead**: a 4-shard run with failover disabled
  (``retries=0``) may be at most 5% faster than the default supervised
  run -- the health tracking and replay buffering must stay off the hot
  path when no faults fire.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import random
import sys
from pathlib import Path

from repro.core.wcp import WCPDetector
from repro.core.wcp_legacy import LegacyWCPDetector
from repro.engine import EngineConfig, RaceEngine, ShardedEngine
from repro.hb import FastTrackDetector, HBDetector
from repro.trace.event import Event, EventType
from repro.trace.trace import Trace
from repro.vectorclock import kernels

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_BASELINE = REPO_ROOT / "BENCH_hotpath.json"
DEFAULT_SHARD_BASELINE = REPO_ROOT / "BENCH_shard.json"

#: Required 4-shard speedup (work-bound always; wall-clock with >=4 cores).
SHARD_SPEEDUP_FLOOR = 1.5
SHARD_COUNTS = (1, 2, 4)

#: Max allowed fault-free supervision cost: unsupervised throughput may
#: be at most 5% above the supervised run's (both measured best-of-N).
SUPERVISION_OVERHEAD_CEILING = 1.05

#: Allowed relative drop of the dense-vs-legacy speedup before CI fails.
TOLERANCE = 0.30

#: Dense-vs-legacy speedups recorded in ``BENCH_hotpath.json`` *before*
#: the compiled clock kernels / batch decoding landed, frozen here as the
#: kernel gate's denominator.  Absolute events/sec are machine-dependent
#: (the checked-in numbers came from a differently-loaded machine), but
#: the dense/legacy ratio is not: ``wcp_legacy`` runs in the same process
#: on the same trace, so it normalizes machine speed away.  The kernel
#: gate requires the measured ratio to be at least ``KERNEL_GAIN_FLOOR``
#: times these pre-kernel ratios -- the machine-independent form of
#: "wcp_dense is >= 1.5x its pre-kernel events/sec".
PRE_KERNEL_SPEEDUPS = {
    "high_contention": 2.875,
    "racy_mix": 2.121,
    "thread_local": 1.461,
}
KERNEL_GAIN_FLOOR = 1.5
#: The kernel gate is enforced on this workload (the one the kernels
#: target); the others are reported for context.
KERNEL_GATE_WORKLOAD = "high_contention"

FULL_EVENTS = 40000
QUICK_EVENTS = 8000
FULL_REPEATS = 5
QUICK_REPEATS = 3


# --------------------------------------------------------------------- #
# Workloads
# --------------------------------------------------------------------- #

def high_contention_trace(n_events: int, n_threads: int = 12, n_vars: int = 6) -> Trace:
    """All threads read+write shared variables under one shared lock.

    The variable per critical section is drawn from a *seeded* RNG so
    every thread touches every variable (a deterministic cycle would
    correlate with the thread round-robin and halve the contention).
    """
    rng = random.Random(12345)
    events = []
    threads = ["t%d" % i for i in range(n_threads)]
    section = 0
    while len(events) < n_events:
        thread = threads[section % n_threads]
        choice = rng.randrange(n_vars)
        variable = "x%d" % choice
        loc = "hc.py:%d" % choice
        events.append(Event(-1, thread, EventType.ACQUIRE, "l", loc="hc.py:acq"))
        events.append(Event(-1, thread, EventType.READ, variable, loc=loc + ":r"))
        events.append(Event(-1, thread, EventType.WRITE, variable, loc=loc + ":w"))
        events.append(Event(-1, thread, EventType.RELEASE, "l", loc="hc.py:rel"))
        section += 1
    return Trace(events, validate=False, name="high_contention")


def racy_mix_trace(n_events: int, n_threads: int = 8, n_vars: int = 4) -> Trace:
    """Protected sections interleaved with unprotected racy accesses.

    Exists mainly so the differential check (dense / dict / legacy must
    report identical races) exercises non-empty reports and the racy
    attribution path, not just the no-race fast path.
    """
    rng = random.Random(99)
    events = []
    threads = ["t%d" % i for i in range(n_threads)]
    section = 0
    while len(events) < n_events:
        thread = threads[section % n_threads]
        choice = rng.randrange(n_vars)
        variable = "x%d" % choice
        loc = "rm.py:%d" % choice
        events.append(Event(-1, thread, EventType.ACQUIRE, "l", loc="rm.py:acq"))
        events.append(Event(-1, thread, EventType.WRITE, variable, loc=loc + ":w"))
        events.append(Event(-1, thread, EventType.RELEASE, "l", loc="rm.py:rel"))
        # Two racer threads never synchronize at all: their writes to the
        # shared "u" variables are guaranteed WCP races (the lock-using
        # threads above are transitively ordered through l, so their
        # unprotected accesses would not reliably race).
        if section % 4 == 0:
            racer = "racer%d" % (section // 4 % 2)
            slot = section // 4 % 3
            events.append(Event(-1, racer, EventType.WRITE, "u%d" % slot,
                                loc="rm.py:%s:%d" % (racer, slot)))
        section += 1
    return Trace(events, validate=False, name="racy_mix")


def thread_local_trace(n_events: int, n_threads: int = 8) -> Trace:
    """Each thread works on private variables under a private lock."""
    events = []
    section = 0
    while len(events) < n_events:
        thread = "t%d" % (section % n_threads)
        lock = "m_%s" % thread
        variable = "y_%s" % thread
        events.append(Event(-1, thread, EventType.ACQUIRE, lock, loc="tl.py:acq"))
        events.append(Event(-1, thread, EventType.READ, variable, loc="tl.py:r"))
        events.append(Event(-1, thread, EventType.WRITE, variable, loc="tl.py:w"))
        events.append(Event(-1, thread, EventType.RELEASE, lock, loc="tl.py:rel"))
        section += 1
    return Trace(events, validate=False, name="thread_local")


def partitionable_trace(n_events: int, n_threads: int = 8,
                        vars_per_thread: int = 8, run_length: int = 64) -> Trace:
    """The sharded benchmark workload: mostly-disjoint unprotected work.

    Each thread runs bursts of ``run_length`` unprotected accesses over
    its private variable set, punctuated by a short critical section on a
    shared lock updating a shared counter.  The access bursts route to
    their owner shards; only the (rare) synchronization skeleton and
    in-section accesses replicate -- the shape sharding is built for
    (embarrassingly parallel workers with occasional shared state).

    Two racer threads that never synchronize write shared ``u*``
    variables every 16 bursts: guaranteed WCP races, so the differential
    check between shard counts compares *non-empty* reports (a routing
    bug that splits a variable's history across shards would drop them).
    """
    rng = random.Random(4242)
    events = []
    threads = ["t%d" % i for i in range(n_threads)]
    burst = 0
    while len(events) < n_events:
        thread = threads[burst % n_threads]
        for _ in range(run_length):
            variable = "%s_v%d" % (thread, rng.randrange(vars_per_thread))
            loc = "sh.py:%s" % variable
            if rng.random() < 0.5:
                events.append(Event(-1, thread, EventType.READ, variable,
                                    loc=loc + ":r"))
            else:
                events.append(Event(-1, thread, EventType.WRITE, variable,
                                    loc=loc + ":w"))
        events.append(Event(-1, thread, EventType.ACQUIRE, "shared",
                            loc="sh.py:acq"))
        events.append(Event(-1, thread, EventType.WRITE, "counter",
                            loc="sh.py:counter"))
        events.append(Event(-1, thread, EventType.RELEASE, "shared",
                            loc="sh.py:rel"))
        if burst % 16 == 0:
            racer = "racer%d" % (burst // 16 % 2)
            slot = burst // 16 % 3
            events.append(Event(-1, racer, EventType.WRITE, "u%d" % slot,
                                loc="sh.py:%s:%d" % (racer, slot)))
        burst += 1
    return Trace(events, validate=False, name="partitionable")


WORKLOADS = {
    "high_contention": high_contention_trace,
    "racy_mix": racy_mix_trace,
    "thread_local": thread_local_trace,
}

DETECTORS = {
    "wcp_dense": lambda: WCPDetector(clock_backend="dense"),
    "wcp_dict": lambda: WCPDetector(clock_backend="dict"),
    "wcp_legacy": LegacyWCPDetector,
    "hb_dense": lambda: HBDetector(clock_backend="dense"),
    "fasttrack_dense": lambda: FastTrackDetector(clock_backend="dense"),
}


# --------------------------------------------------------------------- #
# Measurement
# --------------------------------------------------------------------- #

def measure(trace: Trace, repeats: int) -> dict:
    """Run every detector over ``trace`` and return per-detector stats.

    Repeats are *interleaved* round-robin across detectors rather than
    run detector-by-detector: the gates below are ratios between
    detectors measured in the same process, and a machine-load swing
    that lands entirely inside one detector's phase would skew the
    ratio.  Interleaving spreads any swing across every detector, and
    best-of-N then discards it symmetrically.
    """
    best = {name: 0.0 for name in DETECTORS}
    races = {}
    for _ in range(repeats):
        for name, factory in DETECTORS.items():
            detector = factory()
            report = detector.run(trace)
            best[name] = max(best[name], report.stats["events_per_s"])
            races[name] = (report.count(), frozenset(report.location_pairs()))
    rates = {name: round(rate, 1) for name, rate in best.items()}
    # Differential smoke: every WCP variant must agree exactly.
    reference = races["wcp_legacy"][1]
    for name in ("wcp_dense", "wcp_dict"):
        if races[name][1] != reference:
            raise SystemExit(
                "DIFFERENTIAL FAILURE: %s reports %r, wcp_legacy reports %r"
                % (name, sorted(map(sorted, races[name][1])),
                   sorted(map(sorted, reference)))
            )
    return {
        "events": len(trace),
        "races": races["wcp_dense"][0],
        "events_per_s": rates,
        "speedup_wcp_dense_vs_legacy": round(
            rates["wcp_dense"] / rates["wcp_legacy"], 3
        ),
    }


def run_benchmark(quick: bool) -> dict:
    n_events = QUICK_EVENTS if quick else FULL_EVENTS
    repeats = QUICK_REPEATS if quick else FULL_REPEATS
    workloads = {}
    for name, build in WORKLOADS.items():
        trace = build(n_events)
        workloads[name] = measure(trace, repeats)
        rates = workloads[name]["events_per_s"]
        print("%-16s %8d events | " % (name, workloads[name]["events"]), end="")
        print("  ".join("%s=%d" % (d, r) for d, r in rates.items()))
        print("%16s wcp_dense vs wcp_legacy: x%.2f"
              % ("", workloads[name]["speedup_wcp_dense_vs_legacy"]))
    return {
        "benchmark": "hotpath",
        "python": platform.python_version(),
        "quick": quick,
        "tolerance": TOLERANCE,
        "kernel_backend": kernels.BACKEND,
        "kernel_fallback_reason": kernels.FALLBACK_REASON,
        "pre_kernel_speedups": PRE_KERNEL_SPEEDUPS,
        "workloads": workloads,
    }


def check_regression(result: dict, baseline_path: Path) -> int:
    """Compare measured speedups against the checked-in baseline."""
    if not baseline_path.exists():
        print("no baseline at %s; nothing to check against" % baseline_path)
        return 1
    baseline = json.loads(baseline_path.read_text())
    failures = []
    for name, measured in result["workloads"].items():
        base = baseline.get("workloads", {}).get(name)
        if base is None:
            continue
        measured_speedup = measured["speedup_wcp_dense_vs_legacy"]
        baseline_speedup = base["speedup_wcp_dense_vs_legacy"]
        floor = baseline_speedup * (1.0 - TOLERANCE)
        print(
            "%-16s speedup %.2f (baseline %.2f, floor %.2f)"
            % (name, measured_speedup, baseline_speedup, floor)
        )
        if measured_speedup < floor:
            failures.append(
                "%s: speedup x%.2f regressed >%.0f%% below baseline x%.2f"
                % (name, measured_speedup, TOLERANCE * 100, baseline_speedup)
            )
    # Kernel gate: wcp_dense must be >= KERNEL_GAIN_FLOOR times its
    # *pre-kernel* throughput on the targeted workload.  Measured via the
    # dense/legacy ratio (machine-independent, see PRE_KERNEL_SPEEDUPS);
    # only meaningful when the compiled kernels are actually active --
    # a deliberate python fallback skips the gate with a notice (CI
    # separately fails when the fallback was *not* deliberate).
    gate_workload = result["workloads"].get(KERNEL_GATE_WORKLOAD)
    if gate_workload is not None:
        measured = gate_workload["speedup_wcp_dense_vs_legacy"]
        pre_kernel = PRE_KERNEL_SPEEDUPS[KERNEL_GATE_WORKLOAD]
        gain = measured / pre_kernel
        if result.get("kernel_backend") == "cffi":
            print(
                "kernel gate [%s]: dense/legacy x%.2f vs pre-kernel x%.2f "
                "-> gain x%.2f (floor x%.1f)"
                % (KERNEL_GATE_WORKLOAD, measured, pre_kernel, gain,
                   KERNEL_GAIN_FLOOR)
            )
            if gain < KERNEL_GAIN_FLOOR:
                failures.append(
                    "kernel gate: wcp_dense gain x%.2f over its pre-kernel "
                    "throughput is below the x%.1f floor on %s"
                    % (gain, KERNEL_GAIN_FLOOR, KERNEL_GATE_WORKLOAD)
                )
        else:
            print(
                "kernel gate skipped: clock kernels inactive (%s); "
                "measured gain x%.2f for reference"
                % (result.get("kernel_fallback_reason") or "unknown reason",
                   gain)
            )
    if failures:
        print("\nPERF REGRESSION:")
        for failure in failures:
            print("  - %s" % failure)
        return 1
    print("\nperf gate OK")
    return 0


# --------------------------------------------------------------------- #
# Sharded benchmark (multi-core gate)
# --------------------------------------------------------------------- #

def usable_cores() -> int:
    """Cores this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def run_shard_benchmark(quick: bool) -> dict:
    """Measure WCP events/sec at 1/2/4 shards on the partitionable workload.

    Quick mode keeps the full trace size (process spawn is a fixed
    ~100ms-per-worker cost; measuring a small trace would benchmark the
    spawn, not the pipeline) and only reduces the repeat count.
    """
    n_events = FULL_EVENTS
    repeats = QUICK_REPEATS if quick else FULL_REPEATS
    trace = partitionable_trace(n_events)
    #: events/sec per transport; "1" (the unsharded engine) is shared.
    rates = {"process": {}, "ring": {}}
    work_bounds = {}
    reference_races = None
    for shards in SHARD_COUNTS:
        for mode in ("process", "ring"):
            if shards == 1 and mode == "ring":
                rates["ring"]["1"] = rates["process"]["1"]
                continue
            best = 0.0
            for _ in range(repeats):
                if shards == 1:
                    result = RaceEngine().run(trace, detectors=[WCPDetector()])
                else:
                    result = ShardedEngine(
                        shards=shards, mode=mode, batch_size=2048
                    ).run(trace, detectors=[WCPDetector()])
                    work_bounds[shards] = round(result.work_speedup_bound(), 3)
                best = max(best, result.events / result.elapsed_s)
                races = frozenset(result["WCP"].location_pairs())
                if reference_races is None:
                    reference_races = races
                elif races != reference_races:
                    raise SystemExit(
                        "DIFFERENTIAL FAILURE: %d-shard %s run reports %r, "
                        "single-shard reports %r"
                        % (shards, mode, sorted(map(sorted, races)),
                           sorted(map(sorted, reference_races)))
                    )
            rates[mode][str(shards)] = round(best, 1)
            print("partitionable    %8d events | shards=%d [%s]  %.0f events/s"
                  % (len(trace), shards,
                     "unsharded" if shards == 1 else mode, best))
    if not reference_races:
        raise SystemExit(
            "sharded differential is vacuous: the partitionable workload "
            "produced no races (it must keep its racer threads)"
        )
    single = rates["process"]["1"]
    best_four = max(rates["process"]["4"], rates["ring"]["4"])
    best_mode = (
        "ring" if rates["ring"]["4"] >= rates["process"]["4"] else "process"
    )
    wall_speedup = round(best_four / single, 3) if single else 0.0
    print("%16s 4-shard vs 1-shard: x%.2f wall (best transport: %s), "
          "x%.2f work-bound"
          % ("", wall_speedup, best_mode, work_bounds.get(4, 0.0)))
    cores = usable_cores()
    if cores >= 4:
        wall_gate = (
            "passed (x%.2f)" % wall_speedup
            if wall_speedup >= SHARD_SPEEDUP_FLOOR
            else "failed (x%.2f < x%.2f)" % (wall_speedup, SHARD_SPEEDUP_FLOOR)
        )
    else:
        # Recorded explicitly so a sub-1x wall number measured on a
        # small CI box is never mistaken for a regression (or a pass).
        wall_gate = "skipped (%d cores)" % cores
    # Supervision overhead: the same 4-shard run with failover disabled
    # (no replay buffering, no liveness bookkeeping payoff).  When no
    # faults fire, the supervised run must stay within 5% of this.
    bare = EngineConfig().with_shards(4, mode="process", batch_size=2048)
    bare.with_shard_supervision(retries=0, snapshot_every=0)
    bare_best = 0.0
    for _ in range(repeats):
        result = ShardedEngine(bare).run(trace, detectors=[WCPDetector()])
        bare_best = max(bare_best, result.events / result.elapsed_s)
    four = rates["process"]["4"]
    overhead = round(bare_best / four, 3) if four else 0.0
    print("%16s supervision overhead at 4 shards: x%.3f "
          "(unsupervised %.0f events/s)" % ("", overhead, bare_best))
    return {
        "benchmark": "sharded",
        "python": platform.python_version(),
        "cores": cores,
        "quick": quick,
        "workload": "partitionable",
        "events": len(trace),
        "races": len(reference_races),
        "events_per_s": rates["process"],
        "events_per_s_ring": rates["ring"],
        "kernel_backend": kernels.BACKEND,
        "wall_speedup_4x": wall_speedup,
        "wall_speedup_transport": best_mode,
        "wall_gate": wall_gate,
        "work_speedup_bound": work_bounds,
        "floor": SHARD_SPEEDUP_FLOOR,
        "supervision_overhead": overhead,
        "supervision_ceiling": SUPERVISION_OVERHEAD_CEILING,
    }


def check_shard_gate(result: dict) -> int:
    """Gate the sharded run: work-bound always, wall-clock with >=4 cores."""
    failures = []
    bound = result["work_speedup_bound"].get(4, 0.0)
    print("work-bound speedup at 4 shards: x%.2f (floor x%.2f)"
          % (bound, SHARD_SPEEDUP_FLOOR))
    if bound < SHARD_SPEEDUP_FLOOR:
        failures.append(
            "partition quality regressed: work-bound speedup x%.2f < x%.2f "
            "(too many events replicated across shards)"
            % (bound, SHARD_SPEEDUP_FLOOR)
        )
    cores = result["cores"]
    wall = result["wall_speedup_4x"]
    wall_gate = result.get("wall_gate")
    if cores >= 4:
        print("wall-clock speedup at 4 shards: x%.2f (floor x%.2f, %d "
              "cores, transport %s) -- recorded wall_gate: %r"
              % (wall, SHARD_SPEEDUP_FLOOR, cores,
                 result.get("wall_speedup_transport", "process"), wall_gate))
        if wall < SHARD_SPEEDUP_FLOOR:
            failures.append(
                "4-shard throughput x%.2f below x%.2f of single-shard"
                % (wall, SHARD_SPEEDUP_FLOOR)
            )
    else:
        print("wall-clock gate skipped: only %d usable core(s), parallel "
              "speedup is physically impossible here (measured x%.2f) -- "
              "recorded wall_gate: %r"
              % (cores, wall, wall_gate))
    overhead = result.get("supervision_overhead", 0.0)
    print("supervision overhead: x%.3f (ceiling x%.2f)"
          % (overhead, SUPERVISION_OVERHEAD_CEILING))
    if overhead > SUPERVISION_OVERHEAD_CEILING:
        failures.append(
            "fault-free supervision overhead x%.3f above the x%.2f "
            "ceiling (health tracking/replay buffering got expensive)"
            % (overhead, SUPERVISION_OVERHEAD_CEILING)
        )
    if failures:
        print("\nSHARD PERF REGRESSION:")
        for failure in failures:
            print("  - %s" % failure)
        return 1
    print("\nshard gate OK")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="smaller traces / fewer repeats (CI smoke)")
    parser.add_argument("--check", action="store_true",
                        help="compare against the checked-in baseline and "
                             "exit non-zero on >%d%% speedup regression"
                             % int(TOLERANCE * 100))
    parser.add_argument("--sharded", action="store_true",
                        help="run the multi-core sharded benchmark instead "
                             "(writes %s; with --check, gates on the x%.1f "
                             "4-shard speedup floor)"
                             % (DEFAULT_SHARD_BASELINE.name, SHARD_SPEEDUP_FLOOR))
    parser.add_argument("--output", type=Path, default=None,
                        help="baseline path (default: %s, or %s with "
                             "--sharded)" % (DEFAULT_BASELINE.name,
                                             DEFAULT_SHARD_BASELINE.name))
    args = parser.parse_args(argv)
    output = args.output or (
        DEFAULT_SHARD_BASELINE if args.sharded else DEFAULT_BASELINE
    )

    if args.sharded:
        result = run_shard_benchmark(quick=args.quick)
        if args.check:
            return check_shard_gate(result)
        if not args.quick:
            output.write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")
            print("wrote %s" % output)
        return 0

    result = run_benchmark(quick=args.quick)

    if args.check:
        return check_regression(result, output)

    if not args.quick:
        output.write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")
        print("wrote %s" % output)
    return 0


if __name__ == "__main__":
    sys.exit(main())
