"""Scalability (Table 1 columns 12-15 and the linear-time claim, Theorem 3).

Two experiments:

* ``test_wcp_time_comparable_to_hb`` -- on each of the larger benchmarks,
  WCP's analysis time stays within a small constant factor of HB's (the
  paper reports factors below ~2 on all benchmarks).
* ``test_linear_scaling_in_trace_length`` -- doubling the trace length
  roughly doubles WCP's analysis time (events/second stays flat), which is
  the observable consequence of the O(N (T^2 + L)) bound.
"""

import time

import pytest

from repro.bench import BENCHMARKS
from repro.core.wcp import WCPDetector
from repro.hb import HBDetector

from _bench_utils import BENCH_SCALE, record_result

LARGE = ["bufwriter", "moldyn", "derby", "eclipse", "lusearch", "xalan"]


def _timed(detector, trace):
    started = time.perf_counter()
    detector.run(trace)
    return time.perf_counter() - started


@pytest.mark.parametrize("name", LARGE)
def test_wcp_time_comparable_to_hb(benchmark, name):
    spec = BENCHMARKS[name]
    scale = 1.0 if spec.category == "contest" else BENCH_SCALE
    trace = spec.generate(scale=scale, seed=0)

    wcp_time = benchmark(lambda: _timed(WCPDetector(), trace))
    hb_time = _timed(HBDetector(), trace)

    # WCP must stay within a small constant factor of HB (paper: < ~2x; we
    # allow generous slack for interpreter noise on small traces).
    assert wcp_time < max(10 * hb_time, 0.5)

    record_result("scalability_wcp_vs_hb", name, {
        "events": len(trace),
        "wcp_time_s": round(wcp_time, 4),
        "hb_time_s": round(hb_time, 4),
        "ratio": round(wcp_time / hb_time, 2) if hb_time else 0.0,
    })


@pytest.mark.parametrize("scale", [0.02, 0.04, 0.08])
def test_linear_scaling_in_trace_length(benchmark, scale):
    spec = BENCHMARKS["lusearch"]
    trace = spec.generate(scale=scale, seed=0)
    elapsed = benchmark.pedantic(
        lambda: _timed(WCPDetector(), trace), iterations=1, rounds=3,
    )
    throughput = len(trace) / max(elapsed, 1e-9)
    record_result("scalability_linear", "scale_%.2f" % scale, {
        "events": len(trace),
        "time_s": round(elapsed, 4),
        "events_per_s": int(throughput),
    })
    # Sanity: the detector processes at least a few thousand events/second
    # even in pure Python.
    assert throughput > 2_000
