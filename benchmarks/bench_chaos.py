#!/usr/bin/env python
"""Chaos benchmark: report parity and recovery cost under injected faults.

Runs the sharded engine over the partitionable hot-path workload while
the deterministic fault harness (:mod:`repro.engine.faults`) kills
workers, severs pipes and corrupts snapshot blobs mid-run, and checks
the tentpole property end to end at benchmark scale:

* **parity** -- every faulted run's merged WCP report must be identical
  (location pairs, raw race count, max distance) to the fault-free
  reference; a single dropped or double-counted event after failover
  shows up here;
* **coverage** -- every planned fault must actually fire (a fault plan
  that never triggers tests nothing);
* **recovery cost** -- wall-clock overhead of each faulted run versus
  the fault-free sharded baseline, reported per scenario (informational:
  restart + replay time is machine-dependent, so only parity and
  coverage gate).

Usage::

    PYTHONPATH=src python benchmarks/bench_chaos.py            # full run, write BENCH_chaos.json
    PYTHONPATH=src python benchmarks/bench_chaos.py --quick    # smaller trace, print only
    PYTHONPATH=src python benchmarks/bench_chaos.py --check    # exit non-zero on parity/coverage failure
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

from repro.core.wcp import WCPDetector
from repro.engine import EngineConfig, RaceEngine, ShardedEngine
from repro.engine.faults import Fault, FaultPlan

from bench_hotpath import partitionable_trace

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_chaos.json"

FULL_EVENTS = 40000
QUICK_EVENTS = 12000
SHARDS = 4


def _scenarios():
    """Name -> fault-plan factory (fresh plan per run: faults are one-shot)."""
    return {
        "fault_free": lambda: None,
        "kill_one_worker": lambda: FaultPlan.kill(1, at_event=500),
        "kill_two_workers": lambda: FaultPlan([
            Fault.kill_worker(0, 400),
            Fault.kill_worker(2, 900),
        ]),
        "pipe_eof": lambda: FaultPlan([Fault.pipe_eof(3, 2)]),
        "corrupt_snapshot_then_kill": lambda: FaultPlan([
            Fault.corrupt_snapshot(1, 0),
            # Past the first snapshot (8 batches x 128 events) but
            # before the second: the corrupted blob is the only
            # snapshot when the worker dies, so failover must fall
            # back past it and replay from the stream start.
            Fault.kill_worker(1, 1400),
        ]),
    }


def _signature(report):
    return (
        frozenset(report.location_pairs()),
        report.raw_race_count,
        report.count(),
        report.max_distance(),
    )


def run_chaos(quick: bool, mode: str) -> dict:
    n_events = QUICK_EVENTS if quick else FULL_EVENTS
    trace = partitionable_trace(n_events)
    reference = _signature(
        RaceEngine().run(trace, detectors=[WCPDetector()])["WCP"]
    )
    scenarios = {}
    failures = []
    baseline_s = None
    for name, make_plan in _scenarios().items():
        plan = make_plan()
        # Small batches so every shard sees enough of them for the
        # snapshot cadence to land well before the injected kills.
        config = EngineConfig().with_shards(SHARDS, mode=mode, batch_size=128)
        config.with_shard_supervision(
            retries=2, snapshot_every=8, backoff_s=0.0
        )
        if plan is not None:
            config.with_fault_plan(plan)
        began = time.perf_counter()
        result = ShardedEngine(config).run(trace, detectors=[WCPDetector()])
        elapsed = time.perf_counter() - began
        if baseline_s is None:
            baseline_s = elapsed
        if _signature(result["WCP"]) != reference:
            failures.append("%s: merged report differs from the "
                            "fault-free run" % name)
        if plan is not None and plan.unfired():
            failures.append("%s: %d planned fault(s) never fired: %r"
                            % (name, len(plan.unfired()), plan.unfired()))
        supervision = result.supervision
        scenarios[name] = {
            "elapsed_s": round(elapsed, 4),
            "overhead_vs_fault_free": round(elapsed / baseline_s, 3),
            "worker_restarts": supervision["worker_restarts"],
            "snapshot_fallbacks": supervision["snapshot_fallbacks"],
        }
        print("%-26s %7.3fs  x%-5.2f  restarts=%d fallbacks=%d"
              % (name, elapsed, elapsed / baseline_s,
                 supervision["worker_restarts"],
                 supervision["snapshot_fallbacks"]))
    return {
        "benchmark": "chaos",
        "python": platform.python_version(),
        "quick": quick,
        "mode": mode,
        "events": len(trace),
        "shards": SHARDS,
        "scenarios": scenarios,
        "failures": failures,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="smaller trace (CI smoke)")
    parser.add_argument("--check", action="store_true",
                        help="exit non-zero on parity or coverage failure")
    parser.add_argument("--mode", default="process",
                        choices=("process", "thread", "serial"),
                        help="transport under chaos (default: process)")
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT,
                        help="result path (default: %s)" % DEFAULT_OUTPUT.name)
    args = parser.parse_args(argv)

    result = run_chaos(quick=args.quick, mode=args.mode)

    if result["failures"]:
        print("\nCHAOS FAILURES:")
        for failure in result["failures"]:
            print("  - %s" % failure)
        if args.check:
            return 1
    elif args.check:
        print("\nchaos gate OK: every fault fired, every report identical")

    if not args.quick and not args.check:
        args.output.write_text(
            json.dumps(result, indent=2, sort_keys=True) + "\n"
        )
        print("wrote %s" % args.output)
    return 1 if (args.check and result["failures"]) else 0


if __name__ == "__main__":
    sys.exit(main())
