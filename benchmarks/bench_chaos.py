#!/usr/bin/env python
"""Chaos benchmark: report parity and recovery cost under injected faults.

Runs the sharded engine over the partitionable hot-path workload while
the deterministic fault harness (:mod:`repro.engine.faults`) kills
workers, severs pipes and corrupts snapshot blobs mid-run -- plus two
whole-process scenarios: ``coordinator_kill`` (SIGKILL the supervised
engine process itself, auto-resume from checkpoints) and
``flaky_network_client`` (RaceClient pushing through refused connects,
mid-line resets and stalled reads) -- and checks the tentpole property
end to end at benchmark scale:

* **parity** -- every faulted run's merged WCP report must be identical
  (location pairs, raw race count, max distance) to the fault-free
  reference; a single dropped or double-counted event after failover
  shows up here;
* **coverage** -- every planned fault must actually fire (a fault plan
  that never triggers tests nothing);
* **recovery cost** -- wall-clock overhead of each faulted run versus
  the fault-free sharded baseline, reported per scenario (informational:
  restart + replay time is machine-dependent, so only parity and
  coverage gate).

Usage::

    PYTHONPATH=src python benchmarks/bench_chaos.py            # full run, write BENCH_chaos.json
    PYTHONPATH=src python benchmarks/bench_chaos.py --quick    # smaller trace, print only
    PYTHONPATH=src python benchmarks/bench_chaos.py --check    # exit non-zero on parity/coverage failure
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

from repro.core.wcp import WCPDetector
from repro.engine import EngineConfig, RaceEngine, RunSupervisor, ShardedEngine
from repro.engine.faults import Fault, FaultPlan

from bench_hotpath import partitionable_trace

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_chaos.json"

FULL_EVENTS = 40000
QUICK_EVENTS = 12000
SHARDS = 4


def _scenarios():
    """Name -> fault-plan factory (fresh plan per run: faults are one-shot)."""
    return {
        "fault_free": lambda: None,
        "kill_one_worker": lambda: FaultPlan.kill(1, at_event=500),
        "kill_two_workers": lambda: FaultPlan([
            Fault.kill_worker(0, 400),
            Fault.kill_worker(2, 900),
        ]),
        "pipe_eof": lambda: FaultPlan([Fault.pipe_eof(3, 2)]),
        "corrupt_snapshot_then_kill": lambda: FaultPlan([
            Fault.corrupt_snapshot(1, 0),
            # Past the first snapshot (8 batches x 128 events) but
            # before the second: the corrupted blob is the only
            # snapshot when the worker dies, so failover must fall
            # back past it and replay from the stream start.
            Fault.kill_worker(1, 1400),
        ]),
    }


def _signature(report):
    return (
        frozenset(report.location_pairs()),
        report.raw_race_count,
        report.count(),
        report.max_distance(),
    )


def run_chaos(quick: bool, mode: str) -> dict:
    n_events = QUICK_EVENTS if quick else FULL_EVENTS
    trace = partitionable_trace(n_events)
    reference = _signature(
        RaceEngine().run(trace, detectors=[WCPDetector()])["WCP"]
    )
    scenarios = {}
    failures = []
    baseline_s = None
    for name, make_plan in _scenarios().items():
        plan = make_plan()
        # Small batches so every shard sees enough of them for the
        # snapshot cadence to land well before the injected kills.
        config = EngineConfig().with_shards(SHARDS, mode=mode, batch_size=128)
        config.with_shard_supervision(
            retries=2, snapshot_every=8, backoff_s=0.0
        )
        if plan is not None:
            config.with_fault_plan(plan)
        began = time.perf_counter()
        result = ShardedEngine(config).run(trace, detectors=[WCPDetector()])
        elapsed = time.perf_counter() - began
        if baseline_s is None:
            baseline_s = elapsed
        if _signature(result["WCP"]) != reference:
            failures.append("%s: merged report differs from the "
                            "fault-free run" % name)
        if plan is not None and plan.unfired():
            failures.append("%s: %d planned fault(s) never fired: %r"
                            % (name, len(plan.unfired()), plan.unfired()))
        supervision = result.supervision
        scenarios[name] = {
            "elapsed_s": round(elapsed, 4),
            "overhead_vs_fault_free": round(elapsed / baseline_s, 3),
            "worker_restarts": supervision["worker_restarts"],
            "snapshot_fallbacks": supervision["snapshot_fallbacks"],
        }
        print("%-26s %7.3fs  x%-5.2f  restarts=%d fallbacks=%d"
              % (name, elapsed, elapsed / baseline_s,
                 supervision["worker_restarts"],
                 supervision["snapshot_fallbacks"]))
    _coordinator_kill_scenario(
        trace, reference, mode, scenarios, failures, baseline_s
    )
    _flaky_client_scenario(trace, scenarios, failures, baseline_s)
    return {
        "benchmark": "chaos",
        "python": platform.python_version(),
        "quick": quick,
        "mode": mode,
        "events": len(trace),
        "shards": SHARDS,
        "scenarios": scenarios,
        "failures": failures,
    }


def _coordinator_kill_scenario(trace, reference, mode, scenarios, failures,
                               baseline_s):
    """SIGKILL the whole sharded coordinator mid-run; auto-resume must
    reproduce the fault-free report from the newest checkpoint."""
    import shutil
    import tempfile

    name = "coordinator_kill"
    plan = FaultPlan([Fault.kill_coordinator(len(trace) // 2)])
    config = EngineConfig().with_shards(SHARDS, mode=mode, batch_size=128)
    config.with_shard_supervision(retries=2, snapshot_every=8, backoff_s=0.0)
    directory = tempfile.mkdtemp(prefix="chaos-coordinator-")
    supervisor = RunSupervisor(
        trace, [WCPDetector()], config=config, checkpoint_dir=directory,
        checkpoint_every=1000, retries=2, backoff_s=0.0, fault_plan=plan,
    )
    began = time.perf_counter()
    try:
        result = supervisor.run()
    finally:
        shutil.rmtree(directory, ignore_errors=True)
    elapsed = time.perf_counter() - began
    if _signature(result["WCP"]) != reference:
        failures.append("%s: resumed report differs from the fault-free run"
                        % name)
    if plan.unfired():
        failures.append("%s: the coordinator kill never fired" % name)
    supervision = result.supervision
    if supervision.get("coordinator_restarts", 0) < 1:
        failures.append("%s: no coordinator restart was recorded" % name)
    scenarios[name] = {
        "elapsed_s": round(elapsed, 4),
        "overhead_vs_fault_free": round(elapsed / baseline_s, 3),
        "worker_restarts": supervision.get("worker_restarts", 0),
        "coordinator_restarts": supervision.get("coordinator_restarts", 0),
    }
    print("%-26s %7.3fs  x%-5.2f  coordinator_restarts=%d"
          % (name, elapsed, elapsed / baseline_s,
             supervision.get("coordinator_restarts", 0)))


def _flaky_client_scenario(trace, scenarios, failures, baseline_s):
    """Push the trace through RaceClient over a flaky network (refused
    connect, mid-line reset, stalled read); the response must be
    byte-identical to an undisturbed push."""
    import asyncio
    import tempfile
    import threading

    from repro.client import RaceClient
    from repro.serve import RaceServer, ServeSettings
    from repro.trace.writers import write_std

    name = "flaky_network_client"
    checkpoint_dir = tempfile.mkdtemp(prefix="chaos-client-")
    config = EngineConfig()
    config.checkpoint_every = 1000
    ready = threading.Event()
    box = {}

    async def serve():
        loop = asyncio.get_event_loop()
        stop = asyncio.Event()
        server = RaceServer(
            ["wcp"], config=config,
            settings=ServeSettings(port=0, checkpoint_dir=checkpoint_dir),
        )
        await server.start()
        box["port"] = server.listener.sockets[0].getsockname()[1]
        box["stop"] = lambda: loop.call_soon_threadsafe(stop.set)
        ready.set()
        await stop.wait()
        await server.close()

    thread = threading.Thread(target=lambda: asyncio.run(serve()), daemon=True)
    thread.start()
    ready.wait(10.0)
    lines = write_std(trace).strip("\n").split("\n")
    try:
        clean = RaceClient(port=box["port"], stream_id="chaos.clean")
        clean_lines = clean.push(lines).lines
        plan = FaultPlan([
            Fault.refuse_connect(0),
            Fault.reset_connection(len(trace) // 3),
            Fault.stall_connection(0),
        ])
        client = RaceClient(
            port=box["port"], stream_id="chaos.flaky", retries=10,
            backoff_s=0.05, jitter_s=0.0, fault_plan=plan,
        )
        began = time.perf_counter()
        outcome = client.push(lines)
        elapsed = time.perf_counter() - began
    finally:
        box["stop"]()
        thread.join(10.0)
        import shutil
        shutil.rmtree(checkpoint_dir, ignore_errors=True)
    if outcome.lines != clean_lines:
        failures.append("%s: flaky push's response differs from the "
                        "undisturbed push" % name)
    if plan.unfired():
        failures.append("%s: %d planned client fault(s) never fired: %r"
                        % (name, len(plan.unfired()), plan.unfired()))
    if client.stats["reconnects"] < 1:
        failures.append("%s: the client never reconnected" % name)
    scenarios[name] = {
        "elapsed_s": round(elapsed, 4),
        "overhead_vs_fault_free": round(elapsed / baseline_s, 3),
        "reconnects": client.stats["reconnects"],
        "events_skipped": client.stats["events_skipped"],
    }
    print("%-26s %7.3fs  x%-5.2f  reconnects=%d skipped=%d"
          % (name, elapsed, elapsed / baseline_s,
             client.stats["reconnects"], client.stats["events_skipped"]))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="smaller trace (CI smoke)")
    parser.add_argument("--check", action="store_true",
                        help="exit non-zero on parity or coverage failure")
    parser.add_argument("--mode", default="process",
                        choices=("process", "thread", "serial"),
                        help="transport under chaos (default: process)")
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT,
                        help="result path (default: %s)" % DEFAULT_OUTPUT.name)
    args = parser.parse_args(argv)

    result = run_chaos(quick=args.quick, mode=args.mode)

    if result["failures"]:
        print("\nCHAOS FAILURES:")
        for failure in result["failures"]:
            print("  - %s" % failure)
        if args.check:
            return 1
    elif args.check:
        print("\nchaos gate OK: every fault fired, every report identical")

    if not args.quick and not args.check:
        args.output.write_text(
            json.dumps(result, indent=2, sort_keys=True) + "\n"
        )
        print("wrote %s" % args.output)
    return 1 if (args.check and result["failures"]) else 0


if __name__ == "__main__":
    sys.exit(main())
