"""The linear-space lower bound (Theorem 4, Figure 8) and Table 1 column 11.

Two sides of the same coin:

* on the adversarial trace family the WCP detector's FIFO queues grow
  linearly with the trace (a constant *fraction* of the events), matching
  the Omega(n) space lower bound;
* on the realistic benchmark traces the same queues stay a small fraction
  of the trace (column 11 of Table 1 reports <= 3% for most benchmarks and
  10% for bufwriter).
"""

import pytest

from repro.bench import BENCHMARKS, lower_bound_trace
from repro.core.wcp import WCPDetector

from _bench_utils import record_result, scaled

SIZES = [50, 100, 200, 400]


@pytest.mark.parametrize("n", SIZES)
def test_adversarial_queue_growth(benchmark, n):
    trace = lower_bound_trace(n)
    report = benchmark(lambda: WCPDetector().run(trace))
    fraction = report.stats["max_queue_fraction"]

    # The queue stays a constant, large fraction of the trace: linear space.
    assert fraction > 0.3
    record_result("lower_bound", "n_%d" % n, {
        "events": len(trace),
        "max_queue_total": int(report.stats["max_queue_total"]),
        "queue_fraction": round(fraction, 3),
    })


@pytest.mark.parametrize("name", ["bufwriter", "mergesort", "derby", "eclipse", "lusearch"])
def test_benchmark_queues_stay_small(benchmark, name):
    spec = BENCHMARKS[name]
    trace = spec.generate(scale=scaled(spec.category), seed=0)
    report = benchmark(lambda: WCPDetector().run(trace))
    fraction = report.stats["max_queue_fraction"]

    # Column 11: realistic workloads keep the queues to a few percent.
    assert fraction < 0.15
    record_result("table1_queue_fraction", name, {
        "events": len(trace),
        "queue_fraction": round(fraction, 4),
        "paper_queue_pct": spec.paper.queue_pct,
    })
