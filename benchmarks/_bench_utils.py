"""Shared helpers for the benchmark harness (see conftest.py)."""

from __future__ import annotations

import os
from collections import defaultdict
from pathlib import Path
from typing import Dict

#: Scale factor applied to grande/realworld benchmark event counts.
BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.05"))

RESULTS_DIR = Path(__file__).parent / "results"

_collected: Dict[str, Dict[str, dict]] = defaultdict(dict)


def record_result(table: str, row: str, values: dict) -> None:
    """Record one row of a reproduced table/figure."""
    _collected[table][row] = values


def write_results() -> None:
    """Write every recorded table to ``benchmarks/results/<table>.tsv``."""
    if not _collected:
        return
    RESULTS_DIR.mkdir(exist_ok=True)
    for table, rows in _collected.items():
        lines = []
        for row, values in rows.items():
            if not lines:
                lines.append("row\t" + "\t".join(values))
            lines.append(row + "\t" + "\t".join(str(v) for v in values.values()))
        (RESULTS_DIR / ("%s.tsv" % table)).write_text("\n".join(lines) + "\n")


def scaled(spec_category: str) -> float:
    """Return the scale to use for a benchmark of the given category."""
    return 1.0 if spec_category == "contest" else BENCH_SCALE
