"""Benchmark-session configuration.

Every benchmark runs on laptop-scale versions of the paper's workloads; the
``REPRO_BENCH_SCALE`` environment variable multiplies the default event
counts of the grande/realworld benchmarks (contest benchmarks always run at
their natural size).  Rows corresponding to paper tables/figures are
accumulated via :func:`_bench_utils.record_result` and written to
``benchmarks/results/*.tsv`` at the end of the session so they can be
compared against EXPERIMENTS.md.
"""

import pytest

from _bench_utils import write_results


@pytest.fixture(scope="session", autouse=True)
def _write_results_at_end():
    yield
    write_results()
