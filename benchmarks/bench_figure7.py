"""Figure 7: windowed-predictor race counts across window sizes and timeouts.

The paper sweeps RVPredict's window size over {1K, 2K, 5K, 10K} and its
solver timeout over {60s, 120s, 240s} on eclipse, ftpserver and derby, and
observes "no clear pattern": small windows cannot contain the races, large
windows blow up the solver.  We reproduce the sweep with the MCM predictor
on the scaled traces, using window sizes that are the same *fractions* of
the trace and proportionally scaled timeouts.

Assertions capture the robust part of the figure: for every configuration
the predictor reports at most as many races as un-windowed WCP, and no
configuration recovers all of them.
"""

import pytest

from repro.bench import BENCHMARKS
from repro.core.wcp import WCPDetector
from repro.mcm import MCMPredictor

from _bench_utils import record_result, scaled

PROGRAMS = ["eclipse", "ftpserver", "derby"]

#: Window sizes as fractions of the trace (the paper's 1K..10K on 49K-87M
#: event traces) and solver timeouts in seconds (scaled from 60-240s).
WINDOW_FRACTIONS = [0.02, 0.05, 0.125]
TIMEOUTS_S = [1.0, 2.0, 4.0]

_wcp_cache = {}
_trace_cache = {}


def _trace(name):
    if name not in _trace_cache:
        spec = BENCHMARKS[name]
        _trace_cache[name] = spec.generate(scale=scaled(spec.category), seed=0)
        _wcp_cache[name] = WCPDetector().run(_trace_cache[name]).count()
    return _trace_cache[name], _wcp_cache[name]


@pytest.mark.parametrize("timeout_s", TIMEOUTS_S)
@pytest.mark.parametrize("fraction", WINDOW_FRACTIONS)
@pytest.mark.parametrize("program", PROGRAMS)
def test_predictor_parameter_sweep(benchmark, program, fraction, timeout_s):
    trace, wcp_races = _trace(program)
    window = max(50, int(len(trace) * fraction))
    predictor = MCMPredictor(
        window_size=window,
        solver_timeout_s=timeout_s,
        max_states_per_query=15_000,
    )
    report = benchmark.pedantic(lambda: predictor.run(trace), iterations=1, rounds=1)

    assert report.count() <= wcp_races
    assert report.count() < wcp_races, (
        "windowing should lose some of the distant races on %s" % program
    )

    record_result("figure7", "%s_w%.3f_t%.0fs" % (program, fraction, timeout_s), {
        "program": program,
        "window_events": window,
        "timeout_s": timeout_s,
        "predictor_races": report.count(),
        "wcp_races": wcp_races,
        "windows_timed_out": int(report.stats["windows_timed_out"]),
    })
