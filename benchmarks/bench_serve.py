#!/usr/bin/env python
"""Serve-tier load benchmark and CI gate.

Drives an in-process :class:`~repro.serve.RaceServer` with real socket
clients and measures what an operator of the multi-tenant tier cares
about:

* ``fanout`` -- N concurrent connections (>= 8), one tenant each,
  pushing STD streams with interleaved writes: aggregate events/sec
  across all connections, p50/p99 per-event (validate + step) latency
  from the server's sampled metrics, and the shed/completed counters.
  Every response is differentially checked against the engine's direct
  report for the same trace -- a throughput number over wrong answers is
  worthless.
* ``single`` -- the same workload over one connection, measured in the
  same process moments later.  The ratio ``fanout aggregate / single``
  (*fanout efficiency*) is machine-independent: both sides share the
  machine, the Python build and the run, so the ratio only moves when
  the serve tier's concurrency bookkeeping (sessions, quotas, metrics,
  queue hops) changes.
* ``governed`` -- the fan-out plus one deliberately over-quota tenant:
  the noisy client must be shed with an explicit ``error Overloaded``
  reply while every in-quota client's report stays byte-exact.

Usage::

    PYTHONPATH=src python benchmarks/bench_serve.py            # full run, write BENCH_serve.json
    PYTHONPATH=src python benchmarks/bench_serve.py --quick    # fast run, print only
    PYTHONPATH=src python benchmarks/bench_serve.py --quick --check
                                                               # CI gate

The ``--check`` gate is shed-free-throughput based and machine
independent: it fails when (a) any in-quota stream was shed, rejected
or answered incorrectly, (b) the governed scenario failed to shed the
over-quota tenant or perturbed an in-quota result, or (c) fan-out
efficiency drops below ``EFFICIENCY_FLOOR`` -- concurrency bookkeeping
eating more than half the single-stream throughput is a regression no
matter how fast the machine is.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import platform
import random
import sys
import time
from pathlib import Path

from repro import (
    IterableSource,
    QuotaManager,
    RaceServer,
    ServeSettings,
    TenantQuota,
    run_engine,
)
from repro.trace.event import Event, EventType
from repro.trace.trace import Trace
from repro.trace.writers import write_std

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_BASELINE = REPO_ROOT / "BENCH_serve.json"

#: Minimum acceptable aggregate-vs-single-connection throughput ratio.
EFFICIENCY_FLOOR = 0.5

DETECTORS = ("wcp", "hb")

FULL_CLIENTS = 12
QUICK_CLIENTS = 8
FULL_EVENTS = 6000
QUICK_EVENTS = 1500
FULL_REPEATS = 3
QUICK_REPEATS = 1


# --------------------------------------------------------------------- #
# Workload
# --------------------------------------------------------------------- #

def serve_trace(seed: int, n_events: int, n_threads: int = 6,
                n_vars: int = 4) -> Trace:
    """A lock-respecting stream with guaranteed races (bounded locations).

    Sections of lock-protected read+write work, punctuated by two racer
    threads that never synchronize -- so reports are non-empty and the
    differential check covers the racy attribution path.
    """
    rng = random.Random(1000 + seed)
    threads = ["t%d" % i for i in range(n_threads)]
    events = []
    section = 0
    while len(events) < n_events:
        thread = threads[section % n_threads]
        variable = "x%d" % rng.randrange(n_vars)
        loc = "sv.py:%s" % variable
        events.append(Event(-1, thread, EventType.ACQUIRE, "l", loc="sv.py:a"))
        events.append(Event(-1, thread, EventType.READ, variable, loc=loc + ":r"))
        events.append(Event(-1, thread, EventType.WRITE, variable, loc=loc + ":w"))
        events.append(Event(-1, thread, EventType.RELEASE, "l", loc="sv.py:r"))
        if section % 8 == 0:
            racer = "racer%d" % (section // 8 % 2)
            slot = section // 8 % 3
            events.append(Event(-1, racer, EventType.WRITE, "u%d" % slot,
                                loc="sv.py:%s:%d" % (racer, slot)))
        section += 1
    return Trace(events, validate=False, name="serve_%d" % seed)


def expected_lines(trace: Trace):
    """The exact wire reply the engine's direct pass dictates."""
    result = run_engine(
        IterableSource(iter(trace), name="x"), detectors=list(DETECTORS)
    )
    lines = [
        "%s %d %d" % (name, report.count(), report.raw_race_count)
        for name, report in result.items()
    ]
    lines.append("done %d" % result.events)
    return lines


# --------------------------------------------------------------------- #
# Client / scenario plumbing
# --------------------------------------------------------------------- #

async def push_stream(port: int, payload: bytes, chunk: int = 16384) -> str:
    """One client: connect, stream ``payload`` in slices, return the reply."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        for start in range(0, len(payload), chunk):
            writer.write(payload[start:start + chunk])
            await writer.drain()  # interleaves the concurrent pushes
        writer.write_eof()
    except (ConnectionResetError, BrokenPipeError):
        pass  # shed mid-push: the reply below says why
    response = (await reader.read()).decode("utf-8")
    writer.close()
    return response


async def run_connections(payloads, quotas=None):
    """Serve ``payloads`` concurrently; return (responses, elapsed, server)."""
    server = RaceServer(
        list(DETECTORS),
        settings=ServeSettings(port=0, quotas=quotas),
    )
    await server.start()
    port = server.listener.sockets[0].getsockname()[1]
    try:
        began = time.perf_counter()
        responses = await asyncio.gather(*[
            push_stream(port, payload) for payload in payloads
        ])
        elapsed = time.perf_counter() - began
    finally:
        await server.close()
    return responses, elapsed, server


def verify_responses(responses, expected, label: str) -> None:
    for index, (response, lines) in enumerate(zip(responses, expected)):
        got = response.strip().splitlines()
        if got != lines:
            raise SystemExit(
                "DIFFERENTIAL FAILURE (%s, connection %d): served %r, "
                "engine says %r" % (label, index, got, lines)
            )


# --------------------------------------------------------------------- #
# Scenarios
# --------------------------------------------------------------------- #

def run_fanout(n_clients: int, n_events: int, repeats: int) -> dict:
    traces = [serve_trace(seed, n_events) for seed in range(n_clients)]
    expected = [expected_lines(trace) for trace in traces]
    payloads = [
        ("# stream-id: tenant%02d.s\n" % index + write_std(trace)).encode()
        for index, trace in enumerate(traces)
    ]
    total_events = sum(len(trace) for trace in traces)

    best = {"aggregate_events_per_s": 0.0}
    for _ in range(repeats):
        responses, elapsed, server = asyncio.run(run_connections(payloads))
        verify_responses(responses, expected, "fanout")
        counters = server.metrics.counters
        if counters["shed"] or counters["rejected"]:
            raise SystemExit(
                "fanout run shed in-quota streams: %r" % (counters,)
            )
        p50 = server.metrics.latency_quantile(0.50)
        p99 = server.metrics.latency_quantile(0.99)
        aggregate = total_events / elapsed
        if aggregate > best["aggregate_events_per_s"]:
            best = {
                "connections": n_clients,
                "total_events": total_events,
                "aggregate_events_per_s": round(aggregate, 1),
                "latency_p50_us": round(p50 * 1e6, 1) if p50 else None,
                "latency_p99_us": round(p99 * 1e6, 1) if p99 else None,
                "completed": counters["completed"],
                "shed": counters["shed"],
            }
    print("fanout     %2d connections  %7d events  %8.0f events/s  "
          "p99 %.0f us"
          % (best["connections"], best["total_events"],
             best["aggregate_events_per_s"], best["latency_p99_us"] or 0.0))
    return best


def run_single(n_events: int, repeats: int) -> dict:
    trace = serve_trace(0, n_events)
    expected = [expected_lines(trace)]
    payload = ("# stream-id: solo.s\n" + write_std(trace)).encode()
    best = 0.0
    for _ in range(repeats):
        responses, elapsed, _ = asyncio.run(run_connections([payload]))
        verify_responses(responses, expected, "single")
        best = max(best, len(trace) / elapsed)
    print("single      1 connection   %7d events  %8.0f events/s"
          % (len(trace), best))
    return {"events": len(trace), "events_per_s": round(best, 1)}


def run_governed(n_clients: int, n_events: int) -> dict:
    """The shed-isolation scenario: one noisy tenant among N in-quota."""
    traces = [serve_trace(seed, n_events) for seed in range(n_clients)]
    expected = [expected_lines(trace) for trace in traces]
    payloads = [
        ("# stream-id: tenant%02d.s\n" % index + write_std(trace)).encode()
        for index, trace in enumerate(traces)
    ]
    noisy_payload = (
        "# stream-id: noisy.s\n" + "t1|w(spam)|noise:1\n" * 500
    ).encode()

    quotas = QuotaManager(throttle_budget_s=0.01)
    quotas.set_quota("noisy", TenantQuota(events_per_sec=20.0, burst_events=4.0))

    responses, _, server = asyncio.run(
        run_connections(payloads + [noisy_payload], quotas=quotas)
    )
    noisy_reply = responses[-1].strip()
    if not noisy_reply.startswith("error Overloaded:"):
        raise SystemExit(
            "over-quota tenant was not shed; reply: %r" % noisy_reply
        )
    verify_responses(responses[:-1], expected, "governed")
    counters = server.metrics.counters
    print("governed   %2d in-quota OK  noisy tenant shed: %r"
          % (n_clients, noisy_reply.split(";")[0]))
    return {
        "in_quota_connections": n_clients,
        "in_quota_completed": counters["completed"],
        "noisy_shed": True,
        "shed_count": counters["shed"],
        "noisy_reply": noisy_reply,
    }


def run_benchmark(quick: bool) -> dict:
    n_clients = QUICK_CLIENTS if quick else FULL_CLIENTS
    n_events = QUICK_EVENTS if quick else FULL_EVENTS
    repeats = QUICK_REPEATS if quick else FULL_REPEATS
    fanout = run_fanout(n_clients, n_events, repeats)
    single = run_single(n_events, repeats)
    efficiency = round(
        fanout["aggregate_events_per_s"] / single["events_per_s"], 3
    ) if single["events_per_s"] else 0.0
    governed = run_governed(n_clients, max(200, n_events // 8))
    print("%10s fanout efficiency (aggregate / single): x%.2f"
          % ("", efficiency))
    return {
        "benchmark": "serve",
        "python": platform.python_version(),
        "quick": quick,
        "detectors": list(DETECTORS),
        "fanout": fanout,
        "single": single,
        "fanout_efficiency": efficiency,
        "efficiency_floor": EFFICIENCY_FLOOR,
        "governed": governed,
    }


def check_gate(result: dict) -> int:
    """Shed-free throughput gate; every criterion is machine-independent."""
    failures = []
    fanout = result["fanout"]
    if fanout["shed"] != 0 or fanout["completed"] != fanout["connections"]:
        failures.append(
            "fan-out was not shed-free: %d/%d completed, %d shed"
            % (fanout["completed"], fanout["connections"], fanout["shed"])
        )
    governed = result["governed"]
    if not governed["noisy_shed"]:
        failures.append("over-quota tenant was not shed")
    if governed["in_quota_completed"] != governed["in_quota_connections"]:
        failures.append(
            "shedding perturbed in-quota clients: %d/%d completed"
            % (governed["in_quota_completed"],
               governed["in_quota_connections"])
        )
    efficiency = result["fanout_efficiency"]
    print("fanout efficiency x%.2f (floor x%.2f)"
          % (efficiency, EFFICIENCY_FLOOR))
    if efficiency < EFFICIENCY_FLOOR:
        failures.append(
            "concurrency bookkeeping overhead: fan-out aggregate is only "
            "x%.2f of single-connection throughput (floor x%.2f)"
            % (efficiency, EFFICIENCY_FLOOR)
        )
    if failures:
        print("\nSERVE PERF REGRESSION:")
        for failure in failures:
            print("  - %s" % failure)
        return 1
    print("\nserve gate OK")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="fewer clients/events/repeats (CI smoke)")
    parser.add_argument("--check", action="store_true",
                        help="gate on shed-free throughput: fail on any "
                             "in-quota shed, a missed over-quota shed, or "
                             "fan-out efficiency below x%.1f"
                             % EFFICIENCY_FLOOR)
    parser.add_argument("--output", type=Path, default=DEFAULT_BASELINE,
                        help="result path (default: %s)"
                             % DEFAULT_BASELINE.name)
    args = parser.parse_args(argv)

    result = run_benchmark(quick=args.quick)
    if args.check:
        return check_gate(result)
    if not args.quick:
        args.output.write_text(
            json.dumps(result, indent=2, sort_keys=True) + "\n"
        )
        print("wrote %s" % args.output)
    return 0


if __name__ == "__main__":
    sys.exit(main())
