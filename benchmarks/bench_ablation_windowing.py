"""Ablation: what windowing costs the *same* detector (DESIGN.md item 2).

The paper's argument against windowed tools is indirect (RVPredict misses
races that WCP finds).  Because our windowing wrapper can window any
detector, we can make the argument direct: take the linear-time WCP
detector itself, deny it the whole trace, and count how many of its own
races disappear as the window shrinks.
"""

import pytest

from repro.analysis import WindowedDetector
from repro.bench import BENCHMARKS
from repro.core.wcp import WCPDetector
from repro.hb import HBDetector

from _bench_utils import record_result, scaled

PROGRAMS = ["moldyn", "eclipse", "lusearch"]
FRACTIONS = [0.02, 0.1, 0.5]


@pytest.mark.parametrize("fraction", FRACTIONS)
@pytest.mark.parametrize("name", PROGRAMS)
def test_windowed_wcp_loses_races(benchmark, name, fraction):
    spec = BENCHMARKS[name]
    trace = spec.generate(scale=scaled(spec.category), seed=0)
    window = max(20, int(len(trace) * fraction))

    full = WCPDetector().run(trace).count()
    windowed_report = benchmark.pedantic(
        lambda: WindowedDetector(WCPDetector(), window).run(trace),
        iterations=1, rounds=1,
    )
    windowed = windowed_report.count()

    # Small windows lose most of the (mostly distant) races.
    assert windowed <= full
    if fraction <= 0.1:
        assert windowed < full

    record_result("ablation_windowing", "%s_f%.2f" % (name, fraction), {
        "window": window,
        "full_wcp_races": full,
        "windowed_wcp_races": windowed,
        "lost": full - windowed,
    })


@pytest.mark.parametrize("name", ["eclipse"])
def test_windowed_hb_loses_races_too(benchmark, name):
    # The same effect on the HB baseline: the paper notes that earlier
    # evaluations compared against *windowed* HB, overstating their gains.
    spec = BENCHMARKS[name]
    trace = spec.generate(scale=scaled(spec.category), seed=0)
    window = max(20, len(trace) // 20)
    full = HBDetector().run(trace).count()
    windowed = benchmark(
        lambda: WindowedDetector(HBDetector(), window).run(trace)
    ).count()
    assert windowed < full
    record_result("ablation_windowing", "%s_hb" % name, {
        "window": window,
        "full_wcp_races": full,
        "windowed_wcp_races": windowed,
        "lost": full - windowed,
    })
