#!/usr/bin/env python
"""Checkpoint/resume: survive a crash without losing the analysis pass.

The paper's central property -- WCP keeps *bounded, incrementally
maintained* state per event -- means a pass can be frozen at any event
boundary into a compact, versioned snapshot.  This walkthrough exercises
the whole subsystem:

1. **Checkpoint a pass** -- run the engine with a checkpoint directory;
   every N events it atomically writes an offset-keyed checkpoint file
   (detector snapshots through the shared codec, never pickle).
2. **"Crash" and resume** -- stop the pass mid-stream, then resume from
   the newest checkpoint in a fresh engine: the source is repositioned,
   the detectors restored, and the final report is *identical* to an
   uninterrupted run -- witnesses and distances included.
3. **Fail-fast mismatches** -- resuming with a different detector
   configuration is refused with an actionable error instead of a
   silently-wrong report.
4. **Sharded resume** -- the multi-core engine checkpoints through the
   same code path: each worker's snapshot plus the partitioner state,
   restorable even on a different transport mode.

Run with::

    python examples/checkpoint_resume.py
"""

import shutil
import tempfile
from pathlib import Path

from repro import (
    Checkpointer,
    CheckpointMismatchError,
    EngineConfig,
    RaceEngine,
    ShardedEngine,
    TraceBuilder,
    WCPDetector,
    resume_engine,
    run_engine,
)


def build_trace(rounds=120):
    """A trace long enough to checkpoint, with one WCP-predictable race.

    Two workers take turns in critical sections of one lock, but each
    touches only its own counter inside -- the sections do not conflict,
    so WCP (unlike HB) does not order them, and the unprotected ``flag``
    write/read pair is a predictable race (the paper's Figure 2b shape,
    stretched long enough to span several checkpoints).
    """
    builder = TraceBuilder()
    builder.write("t1", "flag", loc="init.py:1")
    for round_number in range(rounds):
        for thread in ("t1", "t2"):
            builder.acquire(thread, "l")
            builder.read(thread, "counter_%s" % thread, loc="%s.py:10" % thread)
            builder.write(thread, "counter_%s" % thread, loc="%s.py:11" % thread)
            builder.release(thread, "l")
    builder.read("t2", "flag", loc="worker.py:40")  # races with init.py:1
    return builder.build()


def fingerprint(report):
    return [
        (tuple(sorted(pair.locations)), pair.first_event.index,
         pair.second_event.index)
        for pair in report.pairs()
    ]


def main():
    trace = build_trace()
    workdir = Path(tempfile.mkdtemp(prefix="repro-ckpt-"))
    try:
        # The ground truth: one uninterrupted pass.
        reference = run_engine(trace, detectors=["wcp", "hb"])
        print("uninterrupted run: %d event(s), WCP=%d race(s), HB=%d" % (
            reference.events, reference["WCP"].count(), reference["HB"].count(),
        ))

        # 1. Checkpoint every 100 events; stop "crashed" at the midpoint.
        checkpoint_dir = workdir / "checkpoints"
        config = (
            EngineConfig()
            .with_detectors("wcp", "hb")
            .with_checkpoints(checkpoint_dir, every=100)
            .stop_after_events(len(trace) // 2)
        )
        RaceEngine(config).run(trace)
        offsets = Checkpointer(checkpoint_dir).offsets()
        print("\nafter the 'crash': checkpoints at offsets %s" % offsets)

        # 2. Resume in a fresh engine.  The detectors are rebuilt from the
        # checkpoint's configuration stamps -- no selection needed -- and
        # the trace is replayed from the checkpointed offset only.
        result = resume_engine(trace, checkpoint_dir)
        print("resumed run:       %d event(s), WCP=%d race(s), HB=%d" % (
            result.events, result["WCP"].count(), result["HB"].count(),
        ))
        assert result.events == reference.events
        for key in reference.keys():
            assert fingerprint(result[key]) == fingerprint(reference[key])
        print("report parity: witnesses and distances identical")

        # 3. A mismatched resume fails fast instead of lying.
        try:
            resume_engine(
                trace, checkpoint_dir,
                detectors=[WCPDetector(clock_backend="dict")],
            )
        except CheckpointMismatchError as error:
            print("\nmismatched resume refused:\n  %s" % error)

        # 4. The sharded engine checkpoints through the same code path.
        shard_dir = workdir / "sharded"
        sharded_config = (
            EngineConfig()
            .with_detectors("wcp", "hb")
            .with_shards(3, mode="serial", batch_size=64)
            .with_checkpoints(shard_dir, every=100)
            .stop_after_events(len(trace) // 2)
        )
        ShardedEngine(sharded_config).run(trace)
        sharded = ShardedEngine(
            EngineConfig().with_shards(3, mode="serial", batch_size=64)
        ).resume(trace, shard_dir)
        for key in reference.keys():
            assert fingerprint(sharded[key]) == fingerprint(reference[key])
        print("\nsharded resume: 3 workers restored, merged report identical "
              "to the single engine")
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


if __name__ == "__main__":
    main()
