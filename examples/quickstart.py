#!/usr/bin/env python
"""Quickstart: build a trace, run the WCP detector, inspect the races.

This is the smallest end-to-end use of the library: the trace is the
paper's Figure 2b, whose race on ``y`` is invisible to happens-before but
caught by WCP.

Run with::

    python examples/quickstart.py
"""

from repro import TraceBuilder, compare_detectors, detect_races


def build_trace():
    """Transcribe Figure 2b of the paper with the TraceBuilder DSL."""
    return (
        TraceBuilder("quickstart")
        .write("t1", "y", loc="Worker.java:12")
        .acquire("t1", "lock")
        .write("t1", "x", loc="Worker.java:14")
        .release("t1", "lock")
        .acquire("t2", "lock")
        .read("t2", "y", loc="Monitor.java:40")
        .read("t2", "x", loc="Monitor.java:41")
        .release("t2", "lock")
        .build()
    )


def main():
    trace = build_trace()
    print("Trace: %d events, %d threads, %d locks" % (
        len(trace), len(trace.threads), len(trace.locks)
    ))

    # One detector (WCP is the default).
    report = detect_races(trace)
    print("\nWCP analysis:")
    print(report.summary())

    # Side-by-side comparison: HB misses the race, WCP finds it.
    print("\nDetector comparison:")
    for name, detector_report in compare_detectors(trace, ["hb", "wcp", "eraser"]).items():
        print("  %-8s -> %d race(s)" % (name, detector_report.count()))


if __name__ == "__main__":
    main()
