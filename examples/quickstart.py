#!/usr/bin/env python
"""Quickstart: build a trace, drive the streaming engine, inspect the races.

This is the smallest end-to-end use of the library: the trace is the
paper's Figure 2b, whose race on ``y`` is invisible to happens-before but
caught by WCP.  The analysis runs through the single-pass
:class:`~repro.engine.RaceEngine`: every detector sees each event exactly
once, in one iteration of the event source -- the shape the paper's
linear-time claim is about.

Run with::

    python examples/quickstart.py
"""

from repro import EngineConfig, TraceBuilder, detect_races, run_engine


def build_trace():
    """Transcribe Figure 2b of the paper with the TraceBuilder DSL."""
    return (
        TraceBuilder("quickstart")
        .write("t1", "y", loc="Worker.java:12")
        .acquire("t1", "lock")
        .write("t1", "x", loc="Worker.java:14")
        .release("t1", "lock")
        .acquire("t2", "lock")
        .read("t2", "y", loc="Monitor.java:40")
        .read("t2", "x", loc="Monitor.java:41")
        .release("t2", "lock")
        .build()
    )


def main():
    trace = build_trace()
    print("Trace: %d events, %d threads, %d locks" % (
        len(trace), len(trace.threads), len(trace.locks)
    ))

    # One detector (WCP is the default).  detect_races accepts a trace, a
    # log-file path, or any event source.
    report = detect_races(trace)
    print("\nWCP analysis:")
    print(report.summary())

    # The engine proper: N detectors, ONE pass over the events.  HB misses
    # the race on y; WCP finds it.
    config = EngineConfig().with_detectors("hb", "wcp", "eraser")
    result = run_engine(trace, config=config)
    print("\nSingle-pass detector comparison:")
    print(result.summary())

    # Early-stop policies make the engine usable as a monitor: stop the
    # moment any detector sees a race.
    first = run_engine(
        trace, config=EngineConfig().with_detectors("wcp").stop_on_first_race()
    )
    print("\nFirst-race mode: stopped after %d/%d event(s) (%s)" % (
        first.events, len(trace), first.stop_reason
    ))


if __name__ == "__main__":
    main()
