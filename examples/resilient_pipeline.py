#!/usr/bin/env python
"""End-to-end resilience: crash-surviving runs and a reconnecting client.

Two halves of the same guarantee -- a race-prediction pipeline whose
*whole process tree* can fail mid-run without changing the answer:

1. the **run supervisor** (:class:`~repro.engine.RunSupervisor`, the
   machinery behind ``analyze --auto-resume``) executes the engine in a
   supervised child process; when that child is hard-killed mid-stream
   it forks a fresh one that resumes from the newest intact checkpoint,
   and the final report is **identical** to the uninterrupted run;
2. the **resilient client** (:class:`~repro.RaceClient`, the machinery
   behind ``repro-race push``) streams a trace to a ``repro-race
   serve`` instance through refused connects, a mid-line connection
   reset and a stalled read -- reconnecting with exponential backoff
   and resuming exactly from the server's ``resume <offset>`` reply --
   and the response is **byte-identical** to an undisturbed push;
3. when the network is *actually* down, exhaustion is a typed,
   actionable :class:`~repro.RetriesExhausted`, never a raw socket
   error from deep inside a retry loop.

All faults come from the deterministic harness
(:mod:`repro.engine.faults`), so this demo is reproducible: the same
kill fires at the same event offset every run.

Run with::

    python examples/resilient_pipeline.py
"""

import random
import shutil
import tempfile

from repro import (
    EngineConfig,
    Event,
    EventType,
    RaceClient,
    RetriesExhausted,
    RunSupervisor,
    Trace,
    run_engine,
)
from repro.engine.faults import Fault, FaultPlan
from repro.trace.writers import write_std


def build_workload(n_threads=4, bursts=200, run_length=10, seed=19):
    """Per-thread work plus a lock-protected shared counter, with a few
    deliberately unprotected writes so the detectors have races to find."""
    rng = random.Random(seed)
    events = []
    threads = ["worker%d" % i for i in range(n_threads)]
    for burst in range(bursts):
        thread = threads[burst % n_threads]
        for _ in range(run_length):
            var = "%s_slot%d" % (thread, rng.randrange(3))
            etype = EventType.READ if rng.random() < 0.5 else EventType.WRITE
            events.append(Event(-1, thread, etype, var, loc="app.py:%s" % var))
        events.append(Event(-1, thread, EventType.ACQUIRE, "shared_lock",
                            loc="app.py:acq"))
        events.append(Event(-1, thread, EventType.WRITE, "shared_counter",
                            loc="app.py:counter"))
        events.append(Event(-1, thread, EventType.RELEASE, "shared_lock",
                            loc="app.py:rel"))
        if burst % 60 == 13:
            events.append(Event(-1, thread, EventType.WRITE, "shared_counter",
                                loc="app.py:oops"))
    return Trace(events, validate=False, name="resilient_demo")


def signature(result):
    return {
        name: (sorted(tuple(sorted(k)) for k in report.location_pairs()),
               report.raw_race_count)
        for name, report in result.items()
    }


def demo_supervised_run(trace):
    """1. Kill the coordinator process twice; the report must not change."""
    reference = run_engine(trace, ["wcp", "hb"])
    print("uninterrupted run: %d event(s), %d distinct WCP race(s)"
          % (reference.events, reference["WCP"].count()))

    half, three_quarters = len(trace) // 2, (3 * len(trace)) // 4
    print("\n1. hard-killing the engine process at events %d and %d..."
          % (half, three_quarters))
    plan = FaultPlan([
        Fault.kill_coordinator(half),
        Fault.kill_coordinator(three_quarters),
    ])
    supervisor = RunSupervisor(
        trace, ["wcp", "hb"],
        checkpoint_every=200,   # private temp dir, cleaned up on success
        retries=3, backoff_s=0.0,
        fault_plan=plan,
    )
    survived = supervisor.run()
    print("  coordinator restarts: %d (every kill fired: %s)"
          % (survived.supervision["coordinator_restarts"],
             plan.unfired() == []))
    print("  report identical to uninterrupted run: %s"
          % (signature(survived) == signature(reference)))


def start_server(checkpoint_dir):
    """A real `repro-race serve` instance on a background thread."""
    import asyncio
    import threading

    from repro.serve import RaceServer, ServeSettings

    config = EngineConfig()
    config.checkpoint_every = 100   # frequent per-stream checkpoints
    ready = threading.Event()
    box = {}

    async def serve():
        loop = asyncio.get_event_loop()
        stop = asyncio.Event()
        server = RaceServer(
            ["wcp", "hb"], config=config,
            settings=ServeSettings(port=0, checkpoint_dir=checkpoint_dir),
        )
        await server.start()
        box["port"] = server.listener.sockets[0].getsockname()[1]
        box["stop"] = lambda: loop.call_soon_threadsafe(stop.set)
        ready.set()
        await stop.wait()
        await server.close()

    thread = threading.Thread(target=lambda: asyncio.run(serve()),
                              daemon=True)
    thread.start()
    ready.wait(10.0)
    box["thread"] = thread
    return box


def demo_flaky_client(trace, port):
    """2. Push through a refused connect, a reset and a stall."""
    lines = write_std(trace).strip("\n").split("\n")

    clean = RaceClient(port=port, stream_id="demo.clean").push(lines)
    print("\n2. pushing %d line(s) over a flaky network..." % len(lines))

    plan = FaultPlan([
        Fault.refuse_connect(0),                      # first dial refused
        Fault.reset_connection(len(trace) // 3),      # RST mid-stream
        Fault.stall_connection(0),                    # then a read stalls
    ])
    client = RaceClient(
        port=port, stream_id="demo.flaky",
        retries=10, backoff_s=0.05, jitter_s=0.0,
        read_timeout_s=1.0,    # turn the stall into a quick retry
        fault_plan=plan,
    )
    outcome = client.push(lines)
    stats = client.stats
    print("  reconnects=%d  refused=%d  resets=%d  stalls=%d  skipped=%d"
          % (stats["reconnects"], stats["refused_connects"],
             stats["injected_resets"], stats["stalled_reads"],
             stats["events_skipped"]))
    print("  every planned fault fired: %s" % (plan.unfired() == []))
    print("  response byte-identical to the undisturbed push: %s"
          % (outcome.lines == clean.lines))
    print("  parsed: %r" % outcome)


def demo_exhaustion():
    """3. A dead endpoint fails with one typed, actionable error."""
    print("\n3. pushing to a port nobody is listening on...")
    client = RaceClient(port=1, retries=2, backoff_s=0.01, jitter_s=0.0)
    try:
        client.push(["T1|acq(l)"])
    except RetriesExhausted as exc:
        print("  RetriesExhausted: %s" % exc)
        print("  underlying cause: %r" % exc.last_error)


def main():
    trace = build_workload()
    demo_supervised_run(trace)

    checkpoint_dir = tempfile.mkdtemp(prefix="resilient-demo-")
    server = start_server(checkpoint_dir)
    try:
        demo_flaky_client(trace, server["port"])
    finally:
        server["stop"]()
        server["thread"].join(10.0)
        shutil.rmtree(checkpoint_dir, ignore_errors=True)

    demo_exhaustion()


if __name__ == "__main__":
    main()
