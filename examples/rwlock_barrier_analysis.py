#!/usr/bin/env python
"""The extended event vocabulary: rwlocks, barriers, wait/notify, adapters.

Walks the declarative event-semantics layer end to end:

1. Reader/writer locks -- two read-mode critical sections overlap (their
   conflicting accesses race), while write-mode sections serialize; WCP,
   HB and FastTrack all agree on both verdicts.
2. Barriers -- a two-phase computation where every cross-phase pair is
   ordered by the all-to-all barrier join, including the blocked-arriver
   edge that orders a waiter after arrivals recorded later in the stream.
3. Wait/notify -- a monitor hand-off ordering producer writes before the
   woken consumer's reads.
4. Real-trace adapters -- the same kernel-style mtrace log analysed via
   ``--format mtrace`` semantics, plus the per-kind event census.
5. The sharding contract -- the mixed-vocabulary fuzz generator's traces
   produce identical reports on the single and the sharded engine.

Run with::

    python examples/rwlock_barrier_analysis.py
"""

from repro import EngineConfig, RaceEngine, ShardedEngine, compare_detectors
from repro.analysis import event_census
from repro.bench.generators import mixed_vocabulary_trace
from repro.trace import Trace, TraceBuilder, iter_mtrace_events

DETECTORS = ["wcp", "hb", "fasttrack"]


def banner(title: str) -> None:
    print()
    print("=" * 64)
    print(title)
    print("=" * 64)


def show_counts(trace) -> None:
    for name, report in RaceEngine().run(trace, detectors=DETECTORS).items():
        print("  %-9s %d race(s)" % (name, report.count()))


def rwlock_demo() -> None:
    banner("1. Reader/writer locks")
    read_read = (
        TraceBuilder()
        .read_acquire("t1", "rw").read("t1", "x").rw_release("t1", "rw")
        .read_acquire("t2", "rw").write("t2", "x").rw_release("t2", "rw")
        .build()
    )
    print("overlapping read-mode sections (r(x) vs w(x)) -- a real race:")
    show_counts(read_read)

    write_write = (
        TraceBuilder()
        .write_acquire("t1", "rw").write("t1", "x").rw_release("t1", "rw")
        .write_acquire("t2", "rw").write("t2", "x").rw_release("t2", "rw")
        .build()
    )
    print("the same accesses under write-mode sections -- serialized:")
    show_counts(write_write)


def barrier_demo() -> None:
    banner("2. Barriers")
    trace = (
        TraceBuilder()
        .write("t1", "phase1")
        .barrier("t1", "b").barrier("t2", "b")
        .write("t2", "phase1")          # t2's phase-2 work
        .barrier("t1", "b").barrier("t2", "b")
        .write("t1", "phase1")          # t1's phase-3 work
        .build()
    )
    print("two barrier generations order every cross-phase write pair")
    print("(the final write is ordered after t2's even though t2's second")
    print("arrival appears later in the stream -- the blocked-arriver edge):")
    show_counts(trace)


def wait_notify_demo() -> None:
    banner("3. Wait/notify")
    trace = (
        TraceBuilder()
        # Consumer takes the monitor, then waits (wait-start desugars to a
        # release; the ``wait`` event is the wake-side re-acquire).
        .acquire("consumer", "m").release("consumer", "m")
        # Producer fills the buffer and notifies under the monitor.
        .write("producer", "buffer")
        .acquire("producer", "m").notify("producer", "m").release("producer", "m")
        # Consumer wakes holding the monitor and drains the buffer.
        .wait("consumer", "m")
        .read("consumer", "buffer")
        .release("consumer", "m")
        .build()
    )
    print("producer's write is ordered before the woken consumer's read:")
    show_counts(trace)


MTRACE_LOG = """\
# ftrace-style kernel lock log: one writer, one reader over &sem
writer-11 [000] 100.000100: lock_acquire: write &sem
writer-11 [000] 100.000200: mem_write: counter
writer-11 [001] 100.000300: lock_release: &sem
reader-22 [001] 100.000400: lock_acquire: read &sem
reader-22 [001] 100.000500: mem_read: counter
reader-22 [001] 100.000600: lock_release: &sem
reader-22 [002] 100.000700: mem_read: unshared
"""


def adapter_demo() -> None:
    banner("4. Real-trace adapters (mtrace)")
    trace = Trace(iter_mtrace_events(MTRACE_LOG.splitlines()), name="kernel")
    print("kernel log decoded to: %s" % " ".join(
        event.etype.value for event in trace.events
    ))
    print("event census: %s" % event_census(trace))
    print("w-in-write-section vs r-in-read-section -- ordered, no race:")
    show_counts(trace)


def sharding_demo() -> None:
    banner("5. Sharded parity on the full vocabulary")
    trace = mixed_vocabulary_trace(seed=3, threads=3, steps=150)
    print("fuzzed mixed-vocabulary trace: %d events, census %s" % (
        len(trace), event_census(trace)
    ))
    serial = RaceEngine().run(trace, detectors=DETECTORS)
    config = EngineConfig().with_shards(3, mode="serial", batch_size=16)
    sharded = ShardedEngine(config).run(trace, detectors=DETECTORS)
    def pairs(report):
        return sorted(tuple(sorted(pair)) for pair in report.location_pairs())

    for name, report in serial.items():
        twin = sharded[name]
        status = "OK" if pairs(report) == pairs(twin) else "MISMATCH"
        print("  %-9s serial=%d sharded=%d  %s" % (
            name, report.count(), twin.count(), status
        ))
        assert status == "OK"


def main() -> None:
    rwlock_demo()
    barrier_demo()
    wait_notify_demo()
    adapter_demo()
    sharding_demo()
    print()
    print("All demos agree across detectors and engines.")


if __name__ == "__main__":
    main()
