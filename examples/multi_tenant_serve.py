#!/usr/bin/env python
"""The multi-tenant serve tier: quotas, shedding, eviction, drain, metrics.

``repro-race serve`` is more than one engine pass per connection: it is
a governed service.  This walkthrough drives an in-process
:class:`~repro.RaceServer` through the full lifecycle with real socket
clients, one scenario per feature:

1. **Tenancy and isolation** -- three tenants stream concurrently; each
   gets exactly the report a standalone ``analyze`` would produce, and
   the metrics surface attributes events per tenant.  Tenancy rides on
   the existing crash-recovery handshake: the part of
   ``# stream-id: <tenant>.<stream>`` before the first dot names the
   tenant, no new wire syntax.
2. **Quotas and explicit load-shedding** -- a noisy tenant exceeds its
   events/sec token bucket and is shed with one explicit
   ``error Overloaded: ...; retry after <n>s`` line, while an in-quota
   tenant on the same server is untouched.  Small deficits throttle
   (TCP backpressure); only deficits beyond the throttle budget shed.
3. **Idle-stream eviction** -- a stream goes quiet; the server
   checkpoints its detector state through the snapshot protocol and
   releases the memory.  The tenant's next events restore it
   transparently: the final report is byte-identical to an undisturbed
   run.
4. **Graceful drain** -- SIGTERM semantics: the server stops accepting,
   checkpoints the live session durably and replies
   ``resume <offset>``; the client re-attaches to a *fresh* instance,
   which advertises the same offset, replays from there, and completes
   the exact report.
5. **The metrics surface** -- the in-band ``/stats`` first-line query
   (flat ``key value`` lines) and the same data as JSON, the shape the
   ``--metrics-port`` HTTP endpoint serves.

The CLI equivalent of this server is::

    repro-race serve --port 7777 --detector wcp,hb \
        --max-connections 64 --max-streams-per-tenant 4 \
        --max-events-per-sec 10000 --checkpoint-dir /var/lib/repro \
        --idle-evict-after 300 --metrics-port 7778 --log-level info

Run with::

    python examples/multi_tenant_serve.py
"""

import asyncio
import json
import tempfile

from repro import (
    QuotaManager,
    RaceServer,
    ServeSettings,
    TenantQuota,
)

# One racy stream, shared by every scenario: t2 reads ``counter``
# *before* taking the lock, so nothing orders it against t1's write --
# a race.  The lock-protected ``shared`` accesses are properly ordered.
STREAM = (
    "t1|w(counter)|app.py:10\n"
    "t1|acq(lock)|app.py:11\n"
    "t1|w(shared)|app.py:12\n"
    "t1|rel(lock)|app.py:13\n"
    "t2|r(counter)|app.py:29\n"
    "t2|acq(lock)|app.py:30\n"
    "t2|r(shared)|app.py:31\n"
    "t2|rel(lock)|app.py:32\n"
)


def _port(server):
    return server.listener.sockets[0].getsockname()[1]


async def push(server, payload, label=""):
    """One client: stream ``payload``, return the server's full reply."""
    reader, writer = await asyncio.open_connection("127.0.0.1", _port(server))
    writer.write(payload.encode("utf-8"))
    writer.write_eof()
    await writer.drain()
    reply = (await reader.read()).decode("utf-8")
    writer.close()
    if label:
        for line in reply.strip().splitlines():
            print("  %s<- %s" % (label, line))
    return reply


async def scenario_tenancy():
    print("— tenancy: three tenants, isolated reports, attributed metrics")
    server = await RaceServer(["wcp", "hb"]).start()
    try:
        await asyncio.gather(
            push(server, "# stream-id: acme.orders\n" + STREAM, "acme    "),
            push(server, "# stream-id: globex.jobs\n" + STREAM, "globex  "),
            push(server, "# stream-id: initech.tps\n" + STREAM, "initech "),
        )
        for tenant, stats in server.metrics.to_dict()["tenants"].items():
            print("  tenant %-8s events=%d streams=%d"
                  % (tenant, stats["events"], stats["streams"]))
    finally:
        await server.close()


async def scenario_quotas():
    print("\n— quotas: the noisy tenant is shed, the calm one unaffected")
    quotas = QuotaManager(throttle_budget_s=0.05)
    quotas.set_quota("noisy", TenantQuota(events_per_sec=10, burst_events=2))
    server = await RaceServer(
        ["wcp"], settings=ServeSettings(port=0, quotas=quotas)
    ).start()
    try:
        noisy = "# stream-id: noisy.spam\n" + "t1|w(x)|spam:1\n" * 100
        calm = "# stream-id: calm.work\n" + STREAM
        await asyncio.gather(
            push(server, noisy, "noisy "),
            push(server, calm, "calm  "),
        )
        print("  shed counter: %d" % server.metrics.counters["shed"])
    finally:
        await server.close()


async def scenario_eviction():
    print("\n— eviction: a quiet stream is checkpointed out, then restored")
    with tempfile.TemporaryDirectory() as directory:
        settings = ServeSettings(
            port=0, checkpoint_dir=directory,
            idle_poll_s=0.02, idle_evict_after_s=0.05,
        )
        server = await RaceServer(["wcp", "hb"], settings=settings).start()
        try:
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", _port(server)
            )
            writer.write(b"# stream-id: acme.sleepy\n")
            await writer.drain()
            print("  handshake <- %s"
                  % (await reader.readline()).decode().strip())
            lines = STREAM.splitlines(keepends=True)
            writer.write("".join(lines[:4]).encode())
            await writer.drain()
            while not server.metrics.counters["evicted"]:
                await asyncio.sleep(0.02)  # stream idle: eviction fires
            session = server.manager.live()[0]
            print("  evicted after %d event(s); detector state on disk: "
                  "%d bytes" % (session.events,
                                session.detector_memory_bytes))
            writer.write("".join(lines[4:]).encode())
            writer.write_eof()
            await writer.drain()
            reply = (await reader.read()).decode("utf-8")
            writer.close()
            print("  restored transparently; final report:")
            for line in reply.strip().splitlines():
                print("    <- %s" % line)
        finally:
            await server.close()


async def scenario_drain():
    print("\n— drain: SIGTERM-style handoff to a fresh instance")
    with tempfile.TemporaryDirectory() as directory:
        settings = lambda: ServeSettings(  # noqa: E731 - two instances
            port=0, checkpoint_dir=directory, idle_poll_s=0.02,
        )
        first = await RaceServer(["wcp", "hb"], settings=settings()).start()
        reader, writer = await asyncio.open_connection(
            "127.0.0.1", _port(first)
        )
        writer.write(b"# stream-id: acme.longrun\n")
        await writer.drain()
        await reader.readline()  # resume 0
        lines = STREAM.splitlines(keepends=True)
        writer.write("".join(lines[:4]).encode())
        await writer.drain()
        while not (first.manager.live()
                   and first.manager.live()[0].events == 4):
            await asyncio.sleep(0.02)
        first.request_drain()  # what the SIGTERM handler calls
        offset = int((await reader.readline()).split()[1])
        writer.close()
        await first.close()
        print("  first instance drained; client told: resume %d" % offset)

        second = await RaceServer(["wcp", "hb"], settings=settings()).start()
        try:
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", _port(second)
            )
            writer.write(b"# stream-id: acme.longrun\n")
            await writer.drain()
            advertised = int((await reader.readline()).split()[1])
            print("  fresh instance advertises: resume %d" % advertised)
            writer.write("".join(lines[advertised:]).encode())
            writer.write_eof()
            await writer.drain()
            reply = (await reader.read()).decode("utf-8")
            writer.close()
            print("  replayed the tail; merged report:")
            for line in reply.strip().splitlines():
                print("    <- %s" % line)
        finally:
            await second.close()


async def scenario_metrics():
    print("\n— metrics: the in-band /stats query (and the JSON shape)")
    server = await RaceServer(["wcp"]).start()
    try:
        await push(server, "# stream-id: acme.m\n" + STREAM)
        stats = await push(server, "/stats\n")
        wanted = ("accepted", "completed", "tenant ", "detector ", "done")
        for line in stats.strip().splitlines():
            if line.startswith(wanted):
                print("  <- %s" % line)
        blob = server.metrics.to_dict(server.manager)
        print("  JSON (the --metrics-port body): counters=%s"
              % json.dumps(blob["counters"]))
    finally:
        await server.close()


async def main():
    await scenario_tenancy()
    await scenario_quotas()
    await scenario_eviction()
    await scenario_drain()
    await scenario_metrics()


if __name__ == "__main__":
    asyncio.run(main())
