#!/usr/bin/env python
"""Sharded multi-core race prediction: one stream, N worker engines.

Walks through the :class:`~repro.engine.ShardedEngine`:

1. the **event taxonomy** -- synchronization events are replicated to
   every shard, accesses are routed to the shard owning the variable
   (clock-relevant accesses additionally travel to the other shards as
   clock-only *foreign* events for WCP);
2. **parity** -- the sharded run reports exactly the races of the single
   engine, shard count and transport notwithstanding;
3. the **shard-boundary protocol** -- per-worker registries and clocks
   are merged into one coherent view, and all workers provably agree on
   the synchronization frontier;
4. **scaling accounting** -- the taxonomy census and the work-bound
   speedup (`events / max(shard_events)`), which tells you what a given
   workload can gain from sharding before you burn a single extra core.

Run with::

    python examples/sharded_analysis.py
"""

import random

from repro import Event, EventType, RaceEngine, ShardedEngine, Trace


def build_workload(n_threads=6, bursts=120, run_length=24, seed=7):
    """Mostly-partitionable work: per-thread variables with occasional
    shared, lock-protected state (and two deliberately racy writes)."""
    rng = random.Random(seed)
    events = []
    threads = ["worker%d" % i for i in range(n_threads)]
    for burst in range(bursts):
        thread = threads[burst % n_threads]
        for _ in range(run_length):
            var = "%s_slot%d" % (thread, rng.randrange(4))
            etype = EventType.READ if rng.random() < 0.5 else EventType.WRITE
            events.append(Event(-1, thread, etype, var, loc="app.py:%s" % var))
        events.append(Event(-1, thread, EventType.ACQUIRE, "shared_lock",
                            loc="app.py:acq"))
        events.append(Event(-1, thread, EventType.WRITE, "shared_counter",
                            loc="app.py:counter"))
        events.append(Event(-1, thread, EventType.RELEASE, "shared_lock",
                            loc="app.py:rel"))
        if burst % 40 == 17:
            # An unprotected touch of the shared counter: a real race.
            events.append(Event(-1, thread, EventType.WRITE, "shared_counter",
                                loc="app.py:oops"))
    return Trace(events, validate=False, name="sharded_demo")


def main():
    trace = build_workload()
    detectors = ["wcp", "hb", "fasttrack"]

    # --- 1 + 2: single engine vs sharded engine, identical verdicts. --- #
    single = RaceEngine().run(trace, detectors=detectors)
    sharded = ShardedEngine(shards=4, mode="process").run(
        trace, detectors=detectors
    )
    print(sharded.summary())
    print()
    for name in single.keys():
        left = sorted(tuple(sorted(k)) for k in single[name].location_pairs())
        right = sorted(tuple(sorted(k)) for k in sharded[name].location_pairs())
        status = "identical" if left == right else "MISMATCH!"
        print("%-10s single=%d race(s)  4-shard=%d race(s)  -> %s"
              % (name, single[name].count(), sharded[name].count(), status))

    # --- 3: the shard-boundary protocol's merged view. ----------------- #
    print("\nMerged registry: %d thread(s): %s"
          % (len(sharded.registry), ", ".join(map(str, sharded.registry))))
    wcp_clocks = sharded.clock_state["WCP"]
    some_thread = sorted(wcp_clocks)[0]
    print("Merged WCP frontier of %s: %s" % (some_thread, wcp_clocks[some_thread]))
    views = sharded.shard_clock_views(0)
    common = set.intersection(*(set(view) for view in views))
    agree = all(
        len({str(view[t]) for view in views}) == 1 for t in common
    )
    print("All %d shards agree on %d commonly-known thread clock(s): %s"
          % (len(views), len(common), agree))

    # --- 4: what the taxonomy says about scalability. ------------------ #
    census = sharded.partition_stats
    total = sum(census.values())
    print("\nEvent taxonomy: %d replicated (%.1f%%), %d routed, "
          "%d clock-relevant routed"
          % (census["replicated"], 100.0 * census["replicated"] / total,
             census["routed"], census["routed_clock"]))
    print("Events per shard: %s (of %d source events)"
          % (sharded.shard_events, sharded.events))
    print("Work-bound speedup at 4 shards: x%.2f "
          "(wall-clock approaches this as cores allow)"
          % sharded.work_speedup_bound())


if __name__ == "__main__":
    main()
