#!/usr/bin/env python
"""Domain example: triaging detector warnings against the ground truth.

A worker pool updates a shared task counter; the counter is protected, but
a monitoring thread samples it without holding the lock, and the pool also
updates an unprotected statistics field.  Different detectors disagree
about this program: the lockset detector (Eraser) flags everything touched
without a consistent lock, WCP flags the genuinely racy pairs, and the
report audit classifies each warning as a confirmed race, a deadlock-only
warning, or an unconfirmed report.

Run with::

    python examples/triage_warnings.py
"""

from repro import EraserDetector, WCPDetector
from repro.analysis import Verdict, audit_report, format_table
from repro.simulator import (
    Acquire, Compute, Fork, Join, Program, RandomScheduler, Read, Release,
    Write, run_program,
)


def make_worker_pool(workers: int = 3, tasks: int = 3) -> Program:
    threads = {}
    main = [Fork("w%d" % i) for i in range(workers)]
    main.append(Fork("monitor"))
    main += [Join("w%d" % i) for i in range(workers)]
    main.append(Join("monitor"))
    main.append(Read("task_counter", loc="Pool.shutdownReport"))
    threads["main"] = main

    for index in range(workers):
        body = []
        for task in range(tasks):
            body += [
                Acquire("counter_lock"),
                Read("task_counter", loc="Worker.take:%d" % task),
                Write("task_counter", loc="Worker.done:%d" % task),
                Release("counter_lock"),
                # Unprotected statistics update -- the real bug.
                Read("stats_total", loc="Stats.read"),
                Write("stats_total", loc="Stats.bump"),
                Compute(1),
            ]
        threads["w%d" % index] = body

    threads["monitor"] = [
        Read("task_counter", loc="Monitor.sample"),   # unlocked sampling
        Compute(2),
        Read("task_counter", loc="Monitor.sample2"),
    ]
    return Program(threads, name="worker-pool")


def main():
    trace = run_program(make_worker_pool(), RandomScheduler(seed=11))
    print("worker-pool trace: %d events, %d threads" % (len(trace), len(trace.threads)))

    rows = []
    for detector in (WCPDetector(), EraserDetector()):
        report = detector.run(trace)
        audit = audit_report(trace, report, max_states_per_pair=40_000)
        rows.append([
            detector.name,
            report.count(),
            audit.count(Verdict.CONFIRMED_RACE),
            audit.count(Verdict.DEADLOCK_ONLY),
            audit.count(Verdict.UNCONFIRMED),
        ])
        if detector.name == "WCP":
            print("\nWCP warnings:")
            for pair in report.pairs():
                verdict = audit.verdicts[pair.key()]
                print("  [%s] %s" % (verdict.value, pair))

    print()
    print(format_table(
        ["detector", "reported", "confirmed races", "deadlock-only", "unconfirmed"],
        rows,
    ))


if __name__ == "__main__":
    main()
