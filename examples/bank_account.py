#!/usr/bin/env python
"""Domain example: a racy bank-account service run on the simulator.

Three teller threads concurrently deposit into a shared account.  In the
buggy version the balance update is unprotected; in the fixed version each
update holds the account lock.  The script executes both versions under a
seeded random scheduler, feeds the resulting traces to the detectors, and
finally replays a correct-reordering witness that makes the bug concrete.

Run with::

    python examples/bank_account.py
"""

from repro import compare_detectors
from repro.reordering import find_race_witness
from repro.simulator import (
    Acquire, Compute, Fork, Join, Program, RandomScheduler, Read, Release,
    Write, run_program,
)


def make_bank_program(protected: bool, tellers: int = 3, deposits: int = 4) -> Program:
    """Build the bank-account program with or without locking."""
    threads = {}
    main = [Fork("teller%d" % i) for i in range(tellers)]
    main += [Join("teller%d" % i) for i in range(tellers)]
    main.append(Read("balance", loc="Audit.report"))
    threads["main"] = main

    for index in range(tellers):
        body = []
        for deposit in range(deposits):
            loc = "Teller.deposit#%d" % deposit
            if protected:
                body += [
                    Acquire("account_lock"),
                    Read("balance", loc=loc + ":read"),
                    Compute(2),
                    Write("balance", loc=loc + ":write"),
                    Release("account_lock"),
                ]
            else:
                body += [
                    Read("balance", loc=loc + ":read"),
                    Compute(2),
                    Write("balance", loc=loc + ":write"),
                ]
        threads["teller%d" % index] = body
    return Program(threads, name="bank-%s" % ("locked" if protected else "racy"))


def analyze(program: Program, seed: int = 7):
    trace = run_program(program, RandomScheduler(seed=seed))
    print("\n=== %s: %d events ===" % (program.name, len(trace)))
    reports = compare_detectors(trace, ["hb", "wcp", "eraser"])
    for name, report in reports.items():
        print("  %-8s %d distinct race pair(s)" % (name, report.count()))
    if program.name.endswith("locked") and reports["Eraser"].has_race():
        print(
            "  (Eraser's report on the locked version is a false positive: the\n"
            "   auditor's read is ordered by the joins, not by a lock -- the\n"
            "   classic lockset unsoundness the paper's related work discusses.)"
        )
    return trace, reports["WCP"]


def main():
    racy_trace, racy_report = analyze(make_bank_program(protected=False))
    analyze(make_bank_program(protected=True))

    if racy_report.has_race():
        pair = racy_report.pairs()[0]
        print("\nFirst race: %s" % pair)
        witness = find_race_witness(racy_trace, pair.first_event, pair.second_event)
        if witness.found:
            print("A correct reordering exposing it (last two events are adjacent):")
            for event in witness.schedule[-6:]:
                print("   ", event)


if __name__ == "__main__":
    main()
