#!/usr/bin/env python
"""Domain example: why windowing loses races (Section 4.3 of the paper).

The script generates the synthetic ``eclipse``-style benchmark (whose races
are mostly far apart, like the real trace's 4.8-53 million-event
distances), writes it to disk in the STD format, reloads it as a logged
trace would be, and then compares:

* the un-windowed WCP and HB detectors (they see every seeded race),
* the same WCP detector restricted to bounded windows,
* the RVPredict-like windowed MCM predictor.

Run with::

    python examples/windowing_study.py [scale]
"""

import sys
import tempfile
from pathlib import Path

from repro import HBDetector, MCMPredictor, WCPDetector, dump_trace, load_trace
from repro.analysis import WindowedDetector, format_table, long_distance_races
from repro.bench import get_benchmark


def main():
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.05
    trace = get_benchmark("eclipse", scale=scale)

    # Round-trip through the on-disk format, as a logger would produce it.
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "eclipse.std"
        dump_trace(trace, path)
        trace = load_trace(path)
    print("eclipse-style trace: %d events, %d threads, %d locks" % (
        len(trace), len(trace.threads), len(trace.locks)
    ))

    window = max(50, len(trace) // 20)
    detectors = [
        ("WCP (whole trace)", WCPDetector()),
        ("HB (whole trace)", HBDetector()),
        ("WCP windowed", WindowedDetector(WCPDetector(), window)),
        ("HB windowed", WindowedDetector(HBDetector(), window)),
        ("MCM predictor (windowed)", MCMPredictor(
            window_size=window, solver_timeout_s=10.0, max_states_per_query=20_000,
        )),
    ]

    rows = []
    wcp_report = None
    for label, detector in detectors:
        report = detector.run(trace)
        if label.startswith("WCP (whole"):
            wcp_report = report
        rows.append([label, report.count(), "%.2f" % report.stats["time_s"]])

    print()
    print(format_table(["analysis", "distinct races", "time (s)"], rows))

    distant = long_distance_races(wcp_report, threshold=window)
    print(
        "\n%d of the %d WCP races have witnesses more than one window (%d events) "
        "apart -- no windowed analysis can report them."
        % (len(distant), wcp_report.count(), window)
    )


if __name__ == "__main__":
    main()
