"""The raw-speed layer, end to end: kernels, batch decode, ring transport.

Three independent layers sit between the WCP algorithm and the
hardware, and each one is *governed* — you can see which variant is
live, force either variant, and prove the choice never changes a race
report:

1. **Compiled clock kernels** — ``DenseClock``'s O(width) loops
   (merge, compare, copy) run as cffi-compiled C over the clock's flat
   ``array('q')`` buffer when a compiler is available, and as the
   equivalent pure-Python loop otherwise.  ``REPRO_CLOCK_KERNEL``
   selects ``auto``/``cffi``/``python``; ``kernels.describe()`` reports
   what's live and why.
2. **Batch decoding** — the STD/CSV parsers decode many lines per call
   instead of one, so parse throughput tracks memory bandwidth rather
   than per-line interpreter overhead.
3. **Zero-copy shard transport** — ``ShardedEngine(mode="ring")``
   ships event batches to worker processes as binary-codec blobs
   through a shared-memory ring buffer instead of pickled tuples
   through a pipe.

Run from the repository root:

    PYTHONPATH=src python examples/fast_path_tuning.py
"""

import os
import subprocess
import sys
import tempfile
import time

from repro import EngineConfig, RaceEngine, ShardedEngine
from repro.bench.generators import mixed_vocabulary_trace
from repro.trace.parsers import iter_std_events
from repro.trace.writers import write_std
from repro.vectorclock import kernels

BAR = "=" * 66


# ------------------------------------------------------------------ #
# 1. Which clock-kernel backend is live?
# ------------------------------------------------------------------ #

print(BAR)
print("1. Clock-kernel backend governance")
print(BAR)
print("active backend :", kernels.BACKEND)
print("fallback reason:", kernels.FALLBACK_REASON)
print("describe()     :", kernels.describe())

# Backend choice is a per-process decision made on first import, so
# forcing the *other* backend is demonstrated in a subprocess.  The
# transcript comparison below is the point: same trace, same races,
# whichever backend computes the clocks.
FORCED = r"""
import json, sys
from repro.bench.generators import mixed_vocabulary_trace
from repro.vectorclock import kernels
from repro import RaceEngine

trace = mixed_vocabulary_trace(seed=7, steps=400)
report = RaceEngine().run(trace, detectors=["wcp"])["WCP"]
print(json.dumps({
    "backend": kernels.BACKEND,
    "races": sorted(sorted(pair) for pair in report.location_pairs()),
}))
"""

results = {}
for backend in ("python", "auto"):
    env = dict(os.environ, REPRO_CLOCK_KERNEL=backend,
               PYTHONPATH=os.pathsep.join(sys.path))
    proc = subprocess.run([sys.executable, "-c", FORCED],
                          capture_output=True, text=True, env=env)
    if proc.returncode != 0:
        raise SystemExit(proc.stderr)
    import json
    results[backend] = json.loads(proc.stdout)

print("forced python  :", results["python"]["backend"],
      "| races:", len(results["python"]["races"]))
print("auto           :", results["auto"]["backend"],
      "| races:", len(results["auto"]["races"]))
assert results["python"]["races"] == results["auto"]["races"]
print("-> identical race reports under both backends")

# ------------------------------------------------------------------ #
# 2. Batch decoding: parse throughput without detector work
# ------------------------------------------------------------------ #

print()
print(BAR)
print("2. Batch STD decoding")
print(BAR)

trace = mixed_vocabulary_trace(seed=11, threads=6, steps=6000)
with tempfile.NamedTemporaryFile(
        "w", suffix=".std", delete=False) as handle:
    path = handle.name
    handle.write(write_std(trace))
try:
    started = time.perf_counter()
    with open(path) as lines:
        n = sum(1 for _ in iter_std_events(lines))
    elapsed = time.perf_counter() - started
    print("decoded %d events in %.3fs  (%.0f events/s)"
          % (n, elapsed, n / elapsed))
finally:
    os.unlink(path)

# ------------------------------------------------------------------ #
# 3. The ring transport, and parity across every mode
# ------------------------------------------------------------------ #

print()
print(BAR)
print("3. Shared-memory ring transport")
print(BAR)

trace = mixed_vocabulary_trace(seed=3, threads=4, steps=1200)
reference = RaceEngine().run(trace, detectors=["wcp", "hb"])


def fingerprint(report):
    pairs = sorted(tuple(sorted(pair)) for pair in report.location_pairs())
    return (pairs, report.count())


for mode in ("serial", "process", "ring"):
    config = EngineConfig().with_detectors("wcp", "hb")
    config.with_shards(3, mode=mode, batch_size=256)
    # Ring size is tunable; undersized rings stream batches in
    # CRC-framed segments rather than failing.
    config.shard_ring_bytes = 1 << 16
    result = ShardedEngine(config).run(trace)
    match = all(
        fingerprint(reference[name]) == fingerprint(result[name])
        for name in ("WCP", "HB")
    )
    print("mode=%-8s races: WCP=%d HB=%d  parity=%s"
          % (mode, result["WCP"].count(), result["HB"].count(),
             "OK" if match else "MISMATCH"))
    assert match, mode

print()
print("All three layers active and observably equivalent.")
