#!/usr/bin/env python
"""Fault-tolerant sharded analysis: kill workers mid-run, lose nothing.

Walks through the sharded engine's supervision layer
(:mod:`repro.engine.supervision`) using the deterministic
fault-injection harness (:mod:`repro.engine.faults`):

1. a **worker killed mid-run** (a real ``os._exit`` in process mode --
   the coordinator sees the pipe break, exactly like a SIGKILL) is
   restarted, its state restored, the lost batches replayed from the
   coordinator's replay buffer, and the merged report is **identical**
   to the fault-free run;
2. a **corrupted snapshot** (bit-flipped blob, caught by the CRC frame)
   makes failover fall back to an older snapshot -- or the stream start
   -- and the report is *still* identical;
3. when recovery is impossible (retry budget exhausted, or
   ``fail_fast``), the run fails with one actionable
   :class:`~repro.engine.WorkerFailure`, never a raw ``EOFError``.

Run with::

    python examples/fault_tolerant_sharding.py
"""

import logging
import random

from repro import (
    EngineConfig,
    Event,
    EventType,
    ShardedEngine,
    Trace,
    WorkerFailure,
)
from repro.engine.faults import Fault, FaultPlan

SHARDS = 4


def build_workload(n_threads=6, bursts=400, run_length=24, seed=11):
    """Mostly-partitionable work (per-thread variables, one shared
    lock-protected counter, a couple of deliberate races)."""
    rng = random.Random(seed)
    events = []
    threads = ["worker%d" % i for i in range(n_threads)]
    for burst in range(bursts):
        thread = threads[burst % n_threads]
        for _ in range(run_length):
            var = "%s_slot%d" % (thread, rng.randrange(4))
            etype = EventType.READ if rng.random() < 0.5 else EventType.WRITE
            events.append(Event(-1, thread, etype, var, loc="app.py:%s" % var))
        events.append(Event(-1, thread, EventType.ACQUIRE, "shared_lock",
                            loc="app.py:acq"))
        events.append(Event(-1, thread, EventType.WRITE, "shared_counter",
                            loc="app.py:counter"))
        events.append(Event(-1, thread, EventType.RELEASE, "shared_lock",
                            loc="app.py:rel"))
        if burst % 120 == 17:
            events.append(Event(-1, thread, EventType.WRITE, "shared_counter",
                                loc="app.py:oops"))
    return Trace(events, validate=False, name="fault_demo")


def config(plan=None, retries=2, mode="process"):
    """A supervised sharded configuration; small batches so the
    snapshot cadence lands well before the injected faults."""
    built = EngineConfig().with_shards(SHARDS, mode=mode, batch_size=128)
    built.with_shard_supervision(retries=retries, snapshot_every=8,
                                 backoff_s=0.0)
    if plan is not None:
        built.with_fault_plan(plan)
    return built


def signature(report):
    return (sorted(tuple(sorted(k)) for k in report.location_pairs()),
            report.raw_race_count)


def main():
    # The supervisor narrates restarts at WARNING level.
    logging.basicConfig(format="  [supervisor] %(message)s")
    trace = build_workload()
    reference = ShardedEngine(config()).run(trace, detectors=["wcp"])
    print("fault-free %d-shard run: %d event(s), %d distinct WCP race(s)"
          % (SHARDS, reference.events, reference["WCP"].count()))

    # --- 1: kill a live worker; the report must not change. ------------ #
    print("\n1. killing shard 1's worker after its 1,400th event...")
    killed = ShardedEngine(
        config(FaultPlan.kill(1, at_event=1400))
    ).run(trace, detectors=["wcp"])
    sup = killed.supervision
    print("  restarts=%d (by shard: %r), heartbeat timeouts=%d"
          % (sup["worker_restarts"], sup["restarts_by_shard"],
             sup["heartbeat_timeouts"]))
    print("  report identical to fault-free run: %s"
          % (signature(killed["WCP"]) == signature(reference["WCP"])))

    # --- 2: corrupt the snapshot failover would use. ------------------- #
    print("\n2. bit-flipping shard 1's first snapshot, then killing it...")
    corrupted = ShardedEngine(
        config(FaultPlan([Fault.corrupt_snapshot(1, 0),
                          Fault.kill_worker(1, 1400)]))
    ).run(trace, detectors=["wcp"])
    sup = corrupted.supervision
    print("  restarts=%d, snapshot fallbacks=%d (CRC caught the corrupt "
          "blob)" % (sup["worker_restarts"], sup["snapshot_fallbacks"]))
    print("  report identical to fault-free run: %s"
          % (signature(corrupted["WCP"]) == signature(reference["WCP"])))

    # --- 3: unrecoverable failures are one actionable error. ----------- #
    print("\n3. same kill with failover disabled (retries=0)...")
    try:
        ShardedEngine(
            config(FaultPlan.kill(1, at_event=1400), retries=0)
        ).run(trace, detectors=["wcp"])
    except WorkerFailure as exc:
        print("  WorkerFailure: %s" % exc)

    print("\nsummary of run 2:\n%s" % corrupted.summary())


if __name__ == "__main__":
    main()
