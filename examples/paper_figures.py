#!/usr/bin/env python
"""Walk through the paper's example traces (Figures 1-5).

For each figure the script runs HB, CP and WCP, searches for a
correct-reordering witness of the flagged race, and searches for a
predictable deadlock -- reproducing the classification table from
Sections 1-2.3 of the paper.

Run with::

    python examples/paper_figures.py
"""

from repro import WCPDetector, HBDetector
from repro.analysis import format_table
from repro.bench import paper_figures
from repro.cp import CPClosure
from repro.reordering import find_all_predictable_races, find_deadlock_witness

FIGURES = ["figure_1a", "figure_1b", "figure_2a", "figure_2b",
           "figure_3", "figure_4", "figure_5"]


def classify(name):
    """Return one table row for the named figure."""
    trace = paper_figures.ALL_FIGURES[name]()
    hb = HBDetector().run(trace).count()
    cp = len(CPClosure(trace).races())
    wcp = WCPDetector().run(trace).count()
    witnesses = find_all_predictable_races(trace)
    deadlock = find_deadlock_witness(trace).found
    return [
        name,
        len(trace),
        "yes" if hb else "no",
        "yes" if cp else "no",
        "yes" if wcp else "no",
        "yes" if witnesses else "no",
        "yes" if deadlock else "no",
    ]


def show_witness(name):
    """Print the reordering that exposes the figure's race, if any."""
    trace = paper_figures.ALL_FIGURES[name]()
    witnesses = find_all_predictable_races(trace)
    if not witnesses:
        return
    first, second = witnesses[0]
    print("\n%s: predictable race between %r and %r" % (name, first, second))


def main():
    rows = [classify(name) for name in FIGURES]
    print(format_table(
        ["figure", "events", "HB race", "CP race", "WCP race",
         "predictable race", "predictable deadlock"],
        rows,
    ))

    for name in FIGURES:
        show_witness(name)

    # Figure 5 is the weak-soundness example: a WCP race whose only witness
    # is a deadlock.
    figure_5 = paper_figures.figure_5()
    deadlock = find_deadlock_witness(figure_5)
    print("\nfigure_5 deadlock witness (schedule of %d events):" % (
        len(deadlock.schedule or [])
    ))
    for event in deadlock.schedule or []:
        print("   ", event)


if __name__ == "__main__":
    main()
