#!/usr/bin/env python
"""Streaming analysis of an on-disk trace log in constant memory.

Demonstrates the three pluggable event-source shapes of the engine:

1. a **log file**, parsed lazily line by line (`FileSource`) -- the full
   trace is never materialised, so the memory footprint is independent of
   the log length;
2. a **live simulator run** (`SimulatorSource`) -- events flow from the
   interpreter straight into the detectors;
3. a **counting wrapper** (`CountingSource`) proving the single-pass
   property: four detectors, one iteration.

Also shows incremental monitoring via snapshots.

Run with::

    python examples/streaming_engine.py
"""

import tempfile
from pathlib import Path

from repro import (
    CountingSource,
    EngineConfig,
    FileSource,
    RaceEngine,
    SimulatorSource,
    run_engine,
)
from repro.bench.suite import get_benchmark
from repro.simulator import Program, Write
from repro.trace.writers import dump_trace


def main():
    # --- 1. Stream a log file without materialising a trace. ----------- #
    trace = get_benchmark("pingpong")
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "pingpong.std"
        dump_trace(trace, path)

        seen = []
        config = (
            EngineConfig()
            .with_detectors("wcp", "hb")
            .snapshot_every(50, callback=seen.append)
        )
        result = RaceEngine(config).run(FileSource(path))
        print("Streamed %s: %d event(s), %d snapshot(s)" % (
            path.name, result.events, len(seen)
        ))
        print(result.summary())
        print("\nRace-count trajectory (WCP):")
        for snap in seen:
            if snap.detector_name == "WCP":
                print("  after %4d events: %d race(s)" % (snap.events, snap.races))

    # --- 2. Analyse a live simulator run. ------------------------------ #
    program = Program(
        {"t1": [Write("x", loc="a:1")], "t2": [Write("x", loc="b:1")]},
        name="two-writers",
    )
    live = run_engine(SimulatorSource(program), detectors=["wcp"])
    print("\nLive simulation %r: %d WCP race(s)" % (
        live.source_name, live["WCP"].count()
    ))

    # --- 3. Prove the single-pass property. ---------------------------- #
    counter = CountingSource(trace)
    run_engine(counter, detectors=["wcp", "hb", "fasttrack", "eraser"])
    print("\n4 detectors drove the source with %d iteration(s) "
          "(%d events emitted)" % (counter.passes, counter.events_emitted))


if __name__ == "__main__":
    main()
