#!/usr/bin/env python
"""Live ingestion: push events into the engine instead of pulling them.

Three escalating scenarios:

1. **Callback producers** -- an instrumentation hook on another thread
   ``put``s events into a bounded :class:`~repro.QueueSource` while the
   synchronous engine drains it.  The queue's bound is the backpressure
   contract: a producer outrunning the analysis blocks instead of
   buffering unboundedly.
2. **Socket ingestion** -- a logger streams the STD line protocol
   (``thread|op(arg)[|loc]``, the same bytes it would write to a log
   file) over a socket; the asyncio-native
   :class:`~repro.AsyncRaceEngine` analyses it as it arrives through a
   :class:`~repro.LineProtocolSource`.  This is what ``repro-race serve``
   does per connection.
3. **Online validation** -- the same socket path rejecting a malformed
   stream (two overlapping critical sections over one lock) with the
   exact error a batch ``Trace(validate=True)`` would raise, caught in
   O(1) per event *before* it can corrupt detector state.

Run with::

    python examples/live_ingestion.py
"""

import asyncio
import threading

from repro import (
    AsyncRaceEngine,
    EventType,
    LineProtocolSource,
    QueueSource,
    ValidatingSource,
    detect_races,
)
from repro.trace.trace import TraceError


def scenario_queue():
    """A producer thread pushes events; the engine analyses concurrently."""
    source = QueueSource(name="instrumented-app", maxsize=16)

    def producer():
        # An instrumentation callback would do exactly this, one call
        # per intercepted operation (the shape is the paper's Figure 2b:
        # the race on ``counter`` is invisible to happens-before).
        source.push("t1", EventType.WRITE, "counter", loc="app.py:10")
        source.push("t1", EventType.ACQUIRE, "lock")
        source.push("t1", EventType.WRITE, "shared", loc="app.py:12")
        source.push("t1", EventType.RELEASE, "lock")
        source.push("t2", EventType.ACQUIRE, "lock")
        source.push("t2", EventType.READ, "counter", loc="app.py:30")
        source.push("t2", EventType.READ, "shared", loc="app.py:31")
        source.push("t2", EventType.RELEASE, "lock")
        source.close()

    thread = threading.Thread(target=producer)
    thread.start()
    report = detect_races(source)  # blocks on the queue until close()
    thread.join()
    print("1. queue push: %d WCP race(s) from %r" % (
        report.count(), source.name
    ))
    for pair in report.pairs():
        print("   %s" % (pair,))


async def scenario_socket():
    """A logger pushes STD lines over a socket; the async engine listens."""
    done = asyncio.Event()

    async def handle(reader, writer):
        source = ValidatingSource(LineProtocolSource(reader, name="logger"))
        result = await AsyncRaceEngine().run(source, detectors=["wcp", "hb"])
        print("2. socket push: %d event(s), WCP %d race(s), HB %d race(s)" % (
            result.events, result["WCP"].count(), result["HB"].count()
        ))
        writer.close()
        done.set()

    server = await asyncio.start_server(handle, host="127.0.0.1", port=0)
    port = server.sockets[0].getsockname()[1]

    # The "logger": any process that can open a socket; here a coroutine
    # writing the same bytes it would append to a trace file.
    _, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(
        b"t1|w(y)|Worker.java:12\n"
        b"t1|acq(lock)\n"
        b"t1|w(x)|Worker.java:14\n"
        b"t1|rel(lock)\n"
        b"t2|acq(lock)\n"
        b"t2|r(y)|Monitor.java:40\n"
        b"t2|r(x)|Monitor.java:41\n"
        b"t2|rel(lock)\n"
    )
    writer.write_eof()
    await done.wait()
    writer.close()
    server.close()
    await server.wait_closed()


async def scenario_validation():
    """The online validator rejects a malformed stream at the socket."""
    done = asyncio.Event()

    async def handle(reader, writer):
        source = ValidatingSource(LineProtocolSource(reader, name="broken"))
        try:
            await AsyncRaceEngine().run(source)
        except TraceError as error:
            print("3. malformed stream rejected: %s: %s" % (
                type(error).__name__, error
            ))
        writer.close()
        done.set()

    server = await asyncio.start_server(handle, host="127.0.0.1", port=0)
    port = server.sockets[0].getsockname()[1]
    _, writer = await asyncio.open_connection("127.0.0.1", port)
    # Two threads inside the same critical section: not a trace.
    writer.write(b"t1|acq(lock)\nt2|acq(lock)\n")
    writer.write_eof()
    await done.wait()
    writer.close()
    server.close()
    await server.wait_closed()


def main():
    scenario_queue()
    asyncio.run(scenario_socket())
    asyncio.run(scenario_validation())


if __name__ == "__main__":
    main()
