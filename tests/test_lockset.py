"""Tests for the Eraser lockset detector (the unsound baseline)."""

from repro.hb import HBDetector
from repro.lockset import EraserDetector
from repro.trace.builder import TraceBuilder


class TestEraser:
    def test_unprotected_shared_write_reported(self, simple_race_trace):
        assert EraserDetector().run(simple_race_trace).count() == 1

    def test_consistent_locking_not_reported(self, protected_trace):
        assert EraserDetector().run(protected_trace).count() == 0

    def test_exclusive_phase_not_reported(self):
        # A variable touched by a single thread never leaves exclusive mode.
        trace = (
            TraceBuilder()
            .write("t1", "x").read("t1", "x").write("t1", "x")
            .build()
        )
        assert EraserDetector().run(trace).count() == 0

    def test_read_shared_phase_not_reported(self):
        # Initialisation by one thread then read-only sharing is fine.
        trace = (
            TraceBuilder()
            .write("t1", "x")
            .read("t2", "x").read("t3", "x")
            .build()
        )
        assert EraserDetector().run(trace).count() == 0

    def test_inconsistent_locking_reported(self):
        trace = (
            TraceBuilder()
            .acquire("t1", "a").write("t1", "x").release("t1", "a")
            .acquire("t2", "b").write("t2", "x").release("t2", "b")
            .build()
        )
        assert EraserDetector().run(trace).count() == 1

    def test_false_positive_on_fork_join_ordering(self):
        # The classic Eraser unsoundness: fork/join ordering protects the
        # accesses (no lock needed, HB proves it), but the lockset is empty
        # so Eraser complains anyway.
        trace = (
            TraceBuilder()
            .write("t1", "x")
            .fork("t1", "t2")
            .write("t2", "x")
            .join("t1", "t2")
            .write("t1", "x")
            .build()
        )
        assert HBDetector().run(trace).count() == 0
        assert EraserDetector().run(trace).count() >= 1

    def test_partial_lockset_refinement(self):
        # Accesses share lock "a" consistently even though other locks vary.
        trace = (
            TraceBuilder()
            .acquire("t1", "a").acquire("t1", "b").write("t1", "x")
            .release("t1", "b").release("t1", "a")
            .acquire("t2", "a").acquire("t2", "c").write("t2", "x")
            .release("t2", "c").release("t2", "a")
            .build()
        )
        assert EraserDetector().run(trace).count() == 0
