"""Tests for the benchmark generators, the suite registry and the
lower-bound trace family."""

import pytest

from repro.bench import BENCHMARKS, benchmark_names, get_benchmark, lower_bound_trace
from repro.bench.contest import CONTEST_SPECS, build_contest_program, build_contest_trace
from repro.bench.generators import FillerMill, add_hb_race, add_wcp_only_race
from repro.bench.synthetic import SyntheticSpec, build_synthetic_trace
from repro.core.wcp import WCPDetector
from repro.hb import HBDetector
from repro.trace.trace import Trace


class TestGeneratorBuildingBlocks:
    def test_hb_race_pattern_yields_exactly_one_race(self):
        events = []
        add_hb_race(events, "t1", "t2", "v", "seed0")
        trace = Trace(events)
        assert HBDetector().run(trace).count() == 1
        assert WCPDetector().run(trace).count() == 1

    def test_wcp_only_pattern_yields_exactly_one_wcp_race(self):
        events = []
        add_wcp_only_race(events, "t1", "t2", "l", "p0", "seed0")
        trace = Trace(events)
        assert HBDetector().run(trace).count() == 0
        assert WCPDetector().run(trace).count() == 1

    def test_filler_is_race_free(self):
        events = []
        mill = FillerMill(events, ["t1", "t2", "t3"], ["l1", "l2"])
        mill.emit_events(200)
        trace = Trace(events)
        assert len(trace) >= 180
        assert WCPDetector().run(trace).count() == 0

    def test_filler_assigns_private_lock_when_none_given(self):
        events = []
        FillerMill(events, ["t1"], []).emit(2)
        trace = Trace(events)
        assert trace.locks == ["fill_lock_t1"]


class TestSyntheticGenerator:
    def test_counts_match_spec(self):
        spec = SyntheticSpec(
            "demo", events=2000, threads=4, locks=10,
            hb_races=7, wcp_only_races=2, local_races=3, local_wcp_races=1,
        )
        trace = build_synthetic_trace(spec)
        assert WCPDetector().run(trace).count() == spec.wcp_races == 9
        assert HBDetector().run(trace).count() == spec.hb_races == 7

    def test_scale_controls_size(self):
        spec = SyntheticSpec("demo", events=4000, threads=3, locks=4, hb_races=2)
        small = build_synthetic_trace(spec, scale=0.25)
        large = build_synthetic_trace(spec, scale=1.0)
        assert len(large) > 2 * len(small)

    def test_distant_races_span_most_of_the_trace(self):
        spec = SyntheticSpec(
            "demo", events=3000, threads=3, locks=4,
            hb_races=4, local_races=0,
        )
        trace = build_synthetic_trace(spec)
        report = HBDetector().run(trace)
        assert report.max_distance() > len(trace) // 2

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            SyntheticSpec("demo", events=100, threads=1, locks=0, hb_races=1)
        spec = SyntheticSpec("demo", events=100, threads=2, locks=0, hb_races=1)
        with pytest.raises(ValueError):
            build_synthetic_trace(spec, scale=0)

    def test_lock_free_spec_has_no_locks(self):
        spec = SyntheticSpec("demo", events=500, threads=2, locks=0, hb_races=3)
        trace = build_synthetic_trace(spec)
        assert trace.locks == []
        assert HBDetector().run(trace).count() == 3


class TestContestPrograms:
    def test_program_structure(self):
        program = build_contest_program(CONTEST_SPECS["account"])
        assert "main" in program.threads
        assert len(program.thread_names()) == CONTEST_SPECS["account"].threads

    @pytest.mark.parametrize("name", ["account", "airline", "critical", "pingpong"])
    def test_race_counts_are_scheduler_independent(self, name):
        spec = CONTEST_SPECS[name]
        counts = {
            HBDetector().run(build_contest_trace(spec, seed=seed)).count()
            for seed in range(3)
        }
        assert counts == {spec.races}


class TestSuiteRegistry:
    def test_all_eighteen_benchmarks_present(self):
        assert len(BENCHMARKS) == 18
        assert set(benchmark_names("contest")) == set(CONTEST_SPECS)
        assert len(benchmark_names("grande")) == 3
        assert len(benchmark_names("realworld")) == 6

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(ValueError):
            get_benchmark("no-such-benchmark")

    @pytest.mark.parametrize("name", ["account", "mergesort", "raytracer", "xalan"])
    def test_generated_counts_match_expectations(self, name):
        spec = BENCHMARKS[name]
        scale = 1.0 if spec.category == "contest" else 0.05
        trace = spec.generate(scale=scale)
        assert WCPDetector().run(trace).count() == spec.expected_wcp_races
        assert HBDetector().run(trace).count() == spec.expected_hb_races

    @pytest.mark.parametrize("name", ["eclipse", "jigsaw", "xalan"])
    def test_wcp_only_benchmarks_show_the_gap(self, name):
        # The boldfaced Table 1 rows: WCP finds strictly more than HB.
        trace = get_benchmark(name, scale=0.03)
        wcp = WCPDetector().run(trace).count()
        hb = HBDetector().run(trace).count()
        assert wcp > hb
        assert wcp == BENCHMARKS[name].expected_wcp_races

    def test_paper_numbers_recorded(self):
        paper = BENCHMARKS["eclipse"].paper
        assert paper.wcp_races == 66 and paper.hb_races == 64
        assert BENCHMARKS["derby"].paper.rv_10k is None  # timed out in the paper

    def test_threads_and_locks_shape(self):
        trace = get_benchmark("ftpserver", scale=0.05)
        assert len(trace.threads) == BENCHMARKS["ftpserver"].paper.threads
        assert len(trace.locks) > 0


class TestLowerBoundFamily:
    def test_queue_growth_is_linear(self):
        sizes = {}
        for n in (10, 40, 80):
            report = WCPDetector().run(lower_bound_trace(n))
            sizes[n] = report.stats["max_queue_total"]
        assert sizes[40] > 3 * sizes[10]
        assert sizes[80] > 1.8 * sizes[40]

    def test_queue_fraction_stays_high(self):
        # Unlike the benchmarks, the adversarial family keeps the queues at a
        # constant *fraction* of the trace -- the linear-space lower bound.
        report = WCPDetector().run(lower_bound_trace(100))
        assert report.stats["max_queue_fraction"] > 0.3

    def test_bits_parameterisation(self):
        trace = lower_bound_trace(4, first_bits=[0, 1, 0, 1], second_bits=[1, 1, 0, 0])
        assert "l0" in trace.locks and "l1" in trace.locks

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            lower_bound_trace(0)
        with pytest.raises(ValueError):
            lower_bound_trace(3, first_bits=[0, 1])
        with pytest.raises(ValueError):
            lower_bound_trace(2, first_bits=[0, 7])

    def test_final_conflicting_writes_race(self):
        report = WCPDetector().run(lower_bound_trace(5))
        assert any(pair.variable == "z" for pair in report.pairs())
