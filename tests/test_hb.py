"""Tests for the HB and FastTrack detectors."""

import pytest

from repro.core.closure import HBClosure
from repro.hb import FastTrackDetector, HBDetector
from repro.trace.builder import TraceBuilder

from conftest import random_trace


class TestHBDetectorBasics:
    def test_simple_race(self, simple_race_trace):
        report = HBDetector().run(simple_race_trace)
        assert report.count() == 1
        assert frozenset({"a.py:1", "b.py:2"}) in report.location_pairs()

    def test_lock_protected_accesses_do_not_race(self, protected_trace):
        assert HBDetector().run(protected_trace).count() == 0

    def test_release_acquire_edge_orders_accesses(self):
        trace = (
            TraceBuilder()
            .write("t1", "x")
            .acquire("t1", "l").release("t1", "l")
            .acquire("t2", "l").release("t2", "l")
            .write("t2", "x")
            .build()
        )
        assert HBDetector().run(trace).count() == 0

    def test_unrelated_locks_do_not_order(self):
        trace = (
            TraceBuilder()
            .write("t1", "x")
            .acquire("t1", "l1").release("t1", "l1")
            .acquire("t2", "l2").release("t2", "l2")
            .write("t2", "x")
            .build()
        )
        assert HBDetector().run(trace).count() == 1

    def test_fork_orders_parent_before_child(self):
        trace = (
            TraceBuilder()
            .write("t1", "x")
            .fork("t1", "t2")
            .write("t2", "x")
            .build()
        )
        assert HBDetector().run(trace).count() == 0

    def test_events_after_fork_still_race_with_child(self):
        trace = (
            TraceBuilder()
            .fork("t1", "t2")
            .write("t1", "x")
            .write("t2", "x")
            .build()
        )
        assert HBDetector().run(trace).count() == 1

    def test_join_orders_child_before_parent(self):
        trace = (
            TraceBuilder()
            .fork("t1", "t2")
            .write("t2", "x")
            .join("t1", "t2")
            .write("t1", "x")
            .build()
        )
        assert HBDetector().run(trace).count() == 0

    def test_report_records_time(self, simple_race_trace):
        report = HBDetector().run(simple_race_trace)
        assert report.stats["time_s"] >= 0.0
        assert report.stats["events"] == 2

    def test_figure_1b_is_not_an_hb_race(self):
        from repro.bench.paper_figures import figure_1b
        assert HBDetector().run(figure_1b()).count() == 0


class TestHBMatchesClosure:
    """The vector-clock detector must agree with the explicit Definition 1."""

    @pytest.mark.parametrize("seed", range(12))
    def test_races_match_on_random_traces(self, seed):
        trace = random_trace(seed=seed, n_events=60, n_threads=3, n_locks=2, n_vars=3)
        closure_races = {
            frozenset({a.location(), b.location()})
            for a, b in HBClosure(trace).races()
        }
        detector_races = set(HBDetector().run(trace).location_pairs())
        assert detector_races == closure_races

    @pytest.mark.parametrize("seed", range(8))
    def test_timestamps_characterise_hb_exactly(self, seed):
        trace = random_trace(seed=seed + 100, n_events=40, n_threads=3)
        clocks = HBDetector().timestamps(trace)
        closure = HBClosure(trace)
        for second in range(len(trace)):
            for first in range(second):
                expected = closure.ordered(first, second)
                observed = clocks[first] <= clocks[second]
                assert observed == expected, (
                    "HB mismatch at (%d, %d) for seed %d" % (first, second, seed)
                )


class TestFastTrack:
    def test_simple_race(self, simple_race_trace):
        assert FastTrackDetector().run(simple_race_trace).count() == 1

    def test_no_race_when_protected(self, protected_trace):
        assert FastTrackDetector().run(protected_trace).count() == 0

    def test_read_shared_write_race(self):
        # Two concurrent readers then an unsynchronised writer: FastTrack
        # must enter read-shared mode and still catch both read-write races.
        trace = (
            TraceBuilder()
            .write("t1", "x")
            .fork("t1", "t2").fork("t1", "t3")
            .read("t2", "x").read("t3", "x")
            .write("t1", "x")
            .build()
        )
        report = FastTrackDetector().run(trace)
        assert report.count() == 2

    @pytest.mark.parametrize("seed", range(12))
    def test_agrees_with_plain_hb_on_race_presence(self, seed):
        # FastTrack keeps only the last access per kind, so it may report
        # fewer pairs than the exhaustive HB history -- but it never reports
        # a spurious variable, and it must agree on whether the trace is
        # racy at all (the first race check in a trace is always exact).
        trace = random_trace(seed=seed, n_events=80, n_threads=3, n_vars=4)
        hb_report = HBDetector().run(trace)
        ft_report = FastTrackDetector().run(trace)
        assert set(ft_report.variables()) <= set(hb_report.variables())
        assert ft_report.has_race() == hb_report.has_race()

    def test_fast_path_statistics_populated(self):
        trace = random_trace(seed=5, n_events=100)
        report = FastTrackDetector().run(trace)
        assert report.stats["fast_path_hits"] > 0
        assert 0.0 <= report.stats.get("fast_path_ratio", 0.0) <= 1.0
