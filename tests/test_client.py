"""Tests for the resilient streaming client (``repro.client``).

The acceptance property mirrors the serve tier's: a client that suffers
connection refusals, mid-line resets, read stalls, admission pushback or
a full server drain/restart still completes its push with a response
byte-identical to an undisturbed one.  Every injected client fault is
checked with ``FaultPlan.unfired()``; retry semantics (Overloaded's
``retry after <n>s`` hint, Draining-as-retryable, hard errors as
immediate failures, budget exhaustion as a typed exception) are pinned
against scripted plain-socket servers so no timing games are involved.
"""

import asyncio
import os
import socket
import threading
import time

import pytest

from repro import (
    EngineConfig,
    RaceClient,
    RaceServer,
    ServeSettings,
    run_engine,
    push_trace,
)
from repro.client import PushError, PushOutcome, RetriesExhausted, _line_provider
from repro.engine import Fault, FaultPlan
from repro.trace.writers import dump_trace, write_std

from conftest import random_trace


def _trace(seed=5, n_events=300):
    return random_trace(seed, n_events=n_events, n_threads=4, n_locks=2,
                        n_vars=6)


def _trace_lines(trace):
    return write_std(trace).strip("\n").split("\n")


def _expected_reply(trace, detectors=("wcp", "hb")):
    """The exact wire lines a clean push of ``trace`` must produce."""
    result = run_engine(trace, list(detectors))
    lines = [
        "%s %d %d" % (key, report.count(), report.raw_race_count)
        for key, report in result.items()
    ]
    lines.append("done %d" % result.events)
    return lines


# --------------------------------------------------------------------- #
# Server harnesses
# --------------------------------------------------------------------- #


class _ServerThread:
    """A real RaceServer on a daemon thread with its own event loop."""

    def __init__(self, detectors=("wcp", "hb"), settings=None, config=None):
        self._detectors = list(detectors)
        self._settings = settings if settings is not None else ServeSettings(port=0)
        self._config = config
        self._ready = threading.Event()
        self._stop = None
        self.server = None
        self.loop = None
        self.error = None
        self.thread = threading.Thread(target=self._main, daemon=True)
        self.thread.start()
        assert self._ready.wait(5.0), "server thread did not start"
        if self.error is not None:
            raise self.error

    def _main(self):
        try:
            asyncio.run(self._serve())
        except BaseException as error:  # surfaced to the test thread
            self.error = error
            self._ready.set()

    async def _serve(self):
        self.loop = asyncio.get_event_loop()
        self._stop = asyncio.Event()
        self.server = RaceServer(
            self._detectors, config=self._config, settings=self._settings
        )
        await self.server.start()
        self._ready.set()
        await self._stop.wait()
        await self.server.close()

    @property
    def port(self):
        return self.server.listener.sockets[0].getsockname()[1]

    def drain(self):
        self.loop.call_soon_threadsafe(self.server.request_drain)

    def stop(self):
        if self.loop is not None and self.loop.is_running():
            self.loop.call_soon_threadsafe(self._stop.set)
        self.thread.join(10.0)


class _ScriptedServer:
    """A plain-socket server that runs one script per accepted connection.

    Each script is a callable receiving the connected socket; scripted
    replies make the retry-dispatch tests exact (no server-side timing).
    """

    def __init__(self, scripts):
        self.sock = socket.socket()
        self.sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self.sock.bind(("127.0.0.1", 0))
        self.sock.listen(8)
        self.port = self.sock.getsockname()[1]
        self.connections = 0
        self.thread = threading.Thread(
            target=self._main, args=(list(scripts),), daemon=True
        )
        self.thread.start()

    def _main(self, scripts):
        for script in scripts:
            try:
                conn, _ = self.sock.accept()
            except OSError:
                break
            self.connections += 1
            try:
                script(conn)
            except OSError:
                pass
            finally:
                try:
                    conn.close()
                except OSError:
                    pass
        self.sock.close()


def _consume(conn):
    conn.settimeout(5.0)
    received = b""
    while True:
        chunk = conn.recv(65536)
        if not chunk:
            return received
        received += chunk


def _consume_then_reply(reply, received_into=None):
    def script(conn):
        data = _consume(conn)
        if received_into is not None:
            received_into.append(data)
        conn.sendall(reply.encode("utf-8"))

    return script


# --------------------------------------------------------------------- #
# Unit layer
# --------------------------------------------------------------------- #


class TestPushOutcome:
    def test_parses_race_and_done_lines(self):
        outcome = PushOutcome(["wcp 3 17", "hb 0 0", "done 450"])
        assert outcome.races == {"wcp": (3, 17), "hb": (0, 0)}
        assert outcome.events == 450
        assert outcome.has_race()

    def test_no_race(self):
        outcome = PushOutcome(["wcp 0 0", "done 9"])
        assert not outcome.has_race()


class TestLineProvider:
    def test_iterable_is_replayable_across_attempts(self):
        provider = _line_provider(iter(["a", "b"]))
        assert list(provider()) == ["a", "b"]
        assert list(provider()) == ["a", "b"]

    def test_path_is_reopened_per_attempt(self, tmp_path):
        path = tmp_path / "t.std"
        path.write_text("x\ny\n")
        provider = _line_provider(str(path))
        assert [line.strip() for line in provider()] == ["x", "y"]
        assert [line.strip() for line in provider()] == ["x", "y"]


# --------------------------------------------------------------------- #
# Retry semantics against scripted servers
# --------------------------------------------------------------------- #


class TestRetrySemantics:
    def test_overloaded_retry_after_hint_is_honored(self):
        server = _ScriptedServer([
            _consume_then_reply(
                "error Overloaded: too many streams; retry after 3s\n"
            ),
            _consume_then_reply("wcp 1 2\ndone 4\n"),
        ])
        delays = []
        client = RaceClient(
            port=server.port, retries=3, backoff_s=0.01, jitter_s=0.0,
            sleep=delays.append,
        )
        outcome = client.push(["t1 w(x)", "t2 w(x)"])
        assert outcome.lines == ["wcp 1 2", "done 4"]
        assert delays == [3.0]  # the server's hint, not the backoff
        assert client.stats["overloaded_retries"] == 1
        assert client.stats["connects"] == 2

    def test_overloaded_without_hint_falls_back_to_backoff(self):
        server = _ScriptedServer([
            _consume_then_reply("error Overloaded: busy\n"),
            _consume_then_reply("wcp 0 0\ndone 1\n"),
        ])
        delays = []
        client = RaceClient(
            port=server.port, retries=3, backoff_s=0.25, jitter_s=0.0,
            sleep=delays.append,
        )
        client.push(["t1 w(x)"])
        assert delays == [0.25]

    def test_draining_reply_is_retried_against_fresh_instance(self):
        server = _ScriptedServer([
            _consume_then_reply(
                "error Draining: server is shutting down; retry against "
                "a fresh instance\n"
            ),
            _consume_then_reply("hb 0 0\ndone 1\n"),
        ])
        delays = []
        client = RaceClient(
            port=server.port, retries=3, backoff_s=0.02, jitter_s=0.0,
            sleep=delays.append,
        )
        outcome = client.push(["t1 w(x)"])
        assert outcome.lines == ["hb 0 0", "done 1"]
        assert client.stats["drain_retries"] == 1
        assert delays == [0.02]

    def test_hard_error_is_immediate_and_not_retried(self):
        server = _ScriptedServer([
            _consume_then_reply("error TraceError: unbalanced release\n"),
        ])
        delays = []
        client = RaceClient(
            port=server.port, retries=5, sleep=delays.append,
        )
        with pytest.raises(PushError, match="unbalanced release"):
            client.push(["t1 rel(l)"])
        assert delays == []  # deterministic rejection: no retry, no sleep
        assert client.stats["connects"] == 1

    def test_retry_budget_exhaustion_is_typed_and_actionable(self):
        # A port nothing listens on: every connect is refused.
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        dead_port = probe.getsockname()[1]
        probe.close()
        client = RaceClient(
            port=dead_port, retries=2, backoff_s=0.001, jitter_s=0.0,
            connect_timeout_s=0.5, sleep=lambda _: None,
        )
        with pytest.raises(RetriesExhausted) as excinfo:
            client.push(["t1 w(x)"])
        assert "3 attempt(s)" in str(excinfo.value)
        assert ("127.0.0.1:%d" % dead_port) in str(excinfo.value)
        assert isinstance(excinfo.value.last_error, OSError)
        assert client.stats["connects"] == 3

    def test_resume_offset_skips_exactly_that_many_events(self):
        received = []
        server = _ScriptedServer([_handshake_then_record(2, received)])
        client = RaceClient(
            port=server.port, stream_id="acme.run1", retries=0,
        )
        lines = ["# comment", "t1 w(x0)", "t1 w(x1)", "t1 w(x2)", "t1 w(x3)"]
        outcome = client.push(lines)
        assert outcome.events == 4
        # Events 0 and 1 (and the leading comment) were skipped; the
        # replay starts exactly at event offset 2.
        body = received[0].decode("utf-8").strip("\n").split("\n")
        assert body == ["t1 w(x2)", "t1 w(x3)"]
        assert client.stats["events_skipped"] == 2
        assert client.stats["events_sent"] == 2


def _handshake_then_record(offset, received_into):
    """Scripted recovery handshake: reply ``resume <offset>``, record."""

    def script(conn):
        conn.settimeout(5.0)
        buffered = b""
        while b"\n" not in buffered:
            buffered += conn.recv(65536)
        first, rest = buffered.split(b"\n", 1)
        assert first.startswith(b"# stream-id:")
        conn.sendall(("resume %d\n" % offset).encode("utf-8"))
        received_into.append(rest + _consume(conn))
        events = sum(
            1 for line in received_into[-1].decode("utf-8").splitlines()
            if line.strip() and not line.strip().startswith("#")
        )
        conn.sendall(("done %d\n" % (offset + events)).encode("utf-8"))

    return script


# --------------------------------------------------------------------- #
# Injected faults against a real server
# --------------------------------------------------------------------- #


class TestInjectedFaults:
    def test_push_trace_happy_path_matches_run_engine(self):
        trace = _trace(3, n_events=120)
        harness = _ServerThread()
        try:
            outcome = push_trace(trace, port=harness.port)
        finally:
            harness.stop()
        assert outcome.lines == _expected_reply(trace)
        assert outcome.events == len(trace)

    def test_push_from_std_file(self, tmp_path):
        trace = _trace(9, n_events=80)
        path = tmp_path / "trace.std"
        dump_trace(trace, path)
        harness = _ServerThread()
        try:
            client = RaceClient(port=harness.port)
            outcome = client.push(str(path))
        finally:
            harness.stop()
        assert outcome.lines == _expected_reply(trace)

    def test_refused_connect_is_retried_to_parity(self):
        trace = _trace(13, n_events=100)
        plan = FaultPlan([Fault.refuse_connect(0)])
        harness = _ServerThread()
        try:
            client = RaceClient(
                port=harness.port, retries=4, backoff_s=0.01, jitter_s=0.0,
                fault_plan=plan,
            )
            outcome = client.push(_trace_lines(trace))
        finally:
            harness.stop()
        assert outcome.lines == _expected_reply(trace)
        assert plan.unfired() == []
        assert client.stats["refused_connects"] == 1
        assert client.stats["reconnects"] == 1

    def test_read_stall_is_retried_to_parity(self):
        trace = _trace(17, n_events=100)
        plan = FaultPlan([Fault.stall_connection(0)])
        harness = _ServerThread()
        try:
            client = RaceClient(
                port=harness.port, retries=4, backoff_s=0.01, jitter_s=0.0,
                fault_plan=plan,
            )
            outcome = client.push(_trace_lines(trace))
        finally:
            harness.stop()
        assert outcome.lines == _expected_reply(trace)
        assert plan.unfired() == []
        assert client.stats["stalled_reads"] == 1

    def test_midstream_reset_resumes_from_server_offset(self, tmp_path):
        """The flagship recovery path: a hard RST mid-line, a reconnect,
        a ``resume <offset>`` handshake, and a byte-identical reply."""
        trace = _trace(21, n_events=300)
        config = EngineConfig()
        config.checkpoint_every = 10
        plan = FaultPlan([Fault.reset_connection(150)])
        harness = _ServerThread(
            settings=ServeSettings(port=0, checkpoint_dir=str(tmp_path)),
            config=config,
        )
        try:
            client = RaceClient(
                port=harness.port, stream_id="acme.reset-run",
                retries=8, backoff_s=0.05, jitter_s=0.0, fault_plan=plan,
            )
            outcome = client.push(_trace_lines(trace))
        finally:
            harness.stop()
        assert outcome.lines == _expected_reply(trace)
        assert plan.unfired() == []
        assert client.stats["injected_resets"] == 1
        assert client.stats["reconnects"] >= 1

    def test_all_client_fault_kinds_in_one_push(self, tmp_path):
        trace = _trace(23, n_events=300)
        config = EngineConfig()
        config.checkpoint_every = 10
        plan = FaultPlan([
            Fault.refuse_connect(0),
            Fault.reset_connection(120),
            Fault.stall_connection(0),
        ])
        harness = _ServerThread(
            settings=ServeSettings(port=0, checkpoint_dir=str(tmp_path)),
            config=config,
        )
        try:
            client = RaceClient(
                port=harness.port, stream_id="acme.chaos-run",
                retries=10, backoff_s=0.05, jitter_s=0.0, fault_plan=plan,
            )
            outcome = client.push(_trace_lines(trace))
        finally:
            harness.stop()
        assert outcome.lines == _expected_reply(trace)
        assert plan.unfired() == []


# --------------------------------------------------------------------- #
# Handshake semantics
# --------------------------------------------------------------------- #


class TestRecoveryHandshake:
    def test_stream_id_without_checkpoint_dir_fails_fast(self):
        harness = _ServerThread()  # no checkpoint_dir: no resume reply
        try:
            client = RaceClient(
                port=harness.port, stream_id="acme.run",
                handshake_timeout_s=0.3, retries=5, sleep=lambda _: None,
            )
            with pytest.raises(PushError, match="--checkpoint-dir"):
                client.push(["t1 w(x)"])
        finally:
            harness.stop()
        assert client.stats["connects"] == 1  # hard error: no retries

    def test_fresh_stream_resumes_from_zero(self, tmp_path):
        trace = _trace(27, n_events=80)
        harness = _ServerThread(
            settings=ServeSettings(port=0, checkpoint_dir=str(tmp_path)),
        )
        try:
            client = RaceClient(port=harness.port, stream_id="acme.fresh")
            outcome = client.push(_trace_lines(trace))
        finally:
            harness.stop()
        assert outcome.lines == _expected_reply(trace)
        assert client.stats["events_skipped"] == 0


# --------------------------------------------------------------------- #
# Full drain/restart across two server processes
# --------------------------------------------------------------------- #


class TestDrainRestart:
    def test_push_survives_server_drain_and_restart(self, tmp_path):
        """Server A drains mid-push; server B starts on the same unix
        socket and checkpoint directory; the client's final response is
        byte-identical to an undisturbed push."""
        trace = _trace(31, n_events=300)
        lines = _trace_lines(trace)
        sock_path = str(tmp_path / "serve.sock")
        checkpoint_dir = str(tmp_path / "ckpts")
        config = EngineConfig()
        config.checkpoint_every = 5

        server_a = _ServerThread(settings=ServeSettings(
            socket_path=sock_path, checkpoint_dir=checkpoint_dir,
        ), config=config)
        state = {"fired": False, "replacement": None}

        def provider():
            def generate():
                for index, line in enumerate(lines):
                    if index == 60 and not state["fired"]:
                        state["fired"] = True
                        server_a.drain()
                        time.sleep(0.5)  # let the drain checkpoint land
                        try:
                            os.unlink(sock_path)
                        except OSError:
                            pass
                        state["replacement"] = _ServerThread(
                            settings=ServeSettings(
                                socket_path=sock_path,
                                checkpoint_dir=checkpoint_dir,
                            ),
                            config=config,
                        )
                    yield line
            return generate()

        client = RaceClient(
            socket_path=sock_path, stream_id="acme.drained-run",
            retries=10, backoff_s=0.05, jitter_s=0.0,
        )
        try:
            outcome = client.push(provider)
        finally:
            if state["replacement"] is not None:
                state["replacement"].stop()
            server_a.stop()
        assert state["fired"]
        assert outcome.lines == _expected_reply(trace)
        assert client.stats["reconnects"] >= 1
        assert (
            client.stats["drain_retries"] + client.stats["reconnects"] >= 1
        )
