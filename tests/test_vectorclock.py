"""Unit and property tests for vector clocks and epochs."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.vectorclock import Epoch, VectorClock


# --------------------------------------------------------------------------- #
# VectorClock basics
# --------------------------------------------------------------------------- #

class TestVectorClockBasics:
    def test_bottom_is_empty(self):
        assert VectorClock.bottom().is_bottom()
        assert VectorClock.bottom().width() == 0

    def test_single_component(self):
        clock = VectorClock.single("t1", 5)
        assert clock["t1"] == 5
        assert clock["t2"] == 0
        assert clock.width() == 1

    def test_zero_components_are_dropped(self):
        clock = VectorClock({"t1": 0, "t2": 3})
        assert clock.width() == 1
        assert clock.as_dict() == {"t2": 3}

    def test_negative_component_rejected(self):
        with pytest.raises(ValueError):
            VectorClock({"t1": -1})
        with pytest.raises(ValueError):
            VectorClock().assign("t1", -2)

    def test_get_and_getitem_agree(self):
        clock = VectorClock({"t1": 7})
        assert clock.get("t1") == clock["t1"] == 7
        assert clock.get("missing") == clock["missing"] == 0

    def test_assign_and_increment(self):
        clock = VectorClock()
        clock.assign("t1", 2).increment("t1").increment("t2", 5)
        assert clock.as_dict() == {"t1": 3, "t2": 5}

    def test_assign_zero_removes_component(self):
        clock = VectorClock({"t1": 4})
        clock.assign("t1", 0)
        assert clock.is_bottom()

    def test_copy_is_independent(self):
        original = VectorClock({"t1": 1})
        clone = original.copy()
        clone.increment("t1")
        assert original["t1"] == 1
        assert clone["t1"] == 2

    def test_update_from_overwrites(self):
        clock = VectorClock({"t1": 9})
        clock.update_from(VectorClock({"t2": 2}))
        assert clock.as_dict() == {"t2": 2}

    def test_clear(self):
        clock = VectorClock({"t1": 9})
        assert clock.clear().is_bottom()

    def test_repr_is_stable(self):
        assert repr(VectorClock({"t1": 1})) == "VectorClock({'t1': 1})"

    def test_equality_and_hash(self):
        a = VectorClock({"t1": 1, "t2": 2})
        b = VectorClock({"t2": 2, "t1": 1})
        assert a == b
        assert hash(a) == hash(b)
        assert a != VectorClock({"t1": 1})
        assert a != "not a clock"


class TestVectorClockOrdering:
    def test_join_is_pointwise_max(self):
        a = VectorClock({"t1": 3, "t2": 1})
        b = VectorClock({"t1": 2, "t3": 4})
        joined = a | b
        assert joined.as_dict() == {"t1": 3, "t2": 1, "t3": 4}

    def test_join_in_place_returns_self(self):
        a = VectorClock({"t1": 1})
        assert a.join(VectorClock({"t2": 2})) is a
        assert a.as_dict() == {"t1": 1, "t2": 2}

    def test_leq_reflexive_and_bottom(self):
        a = VectorClock({"t1": 3})
        assert a <= a
        assert VectorClock.bottom() <= a
        assert not (a <= VectorClock.bottom())

    def test_incomparable_clocks(self):
        a = VectorClock({"t1": 1})
        b = VectorClock({"t2": 1})
        assert a.concurrent_with(b)
        assert not (a <= b) and not (b <= a)

    def test_strict_comparison(self):
        a = VectorClock({"t1": 1})
        b = VectorClock({"t1": 2})
        assert a < b
        assert b > a
        assert not (a < a)
        assert b >= a


# --------------------------------------------------------------------------- #
# Property-based tests
# --------------------------------------------------------------------------- #

clock_strategy = st.dictionaries(
    st.sampled_from(["t1", "t2", "t3", "t4"]),
    st.integers(min_value=0, max_value=50),
    max_size=4,
).map(VectorClock)


class TestVectorClockProperties:
    @given(clock_strategy, clock_strategy)
    @settings(max_examples=100)
    def test_join_commutative(self, a, b):
        assert (a | b) == (b | a)

    @given(clock_strategy, clock_strategy, clock_strategy)
    @settings(max_examples=100)
    def test_join_associative(self, a, b, c):
        assert ((a | b) | c) == (a | (b | c))

    @given(clock_strategy)
    @settings(max_examples=100)
    def test_join_idempotent(self, a):
        assert (a | a) == a

    @given(clock_strategy, clock_strategy)
    @settings(max_examples=100)
    def test_join_is_upper_bound(self, a, b):
        joined = a | b
        assert a <= joined
        assert b <= joined

    @given(clock_strategy, clock_strategy)
    @settings(max_examples=100)
    def test_leq_antisymmetric(self, a, b):
        if a <= b and b <= a:
            assert a == b

    @given(clock_strategy, clock_strategy, clock_strategy)
    @settings(max_examples=100)
    def test_leq_transitive(self, a, b, c):
        if a <= b and b <= c:
            assert a <= c

    @given(clock_strategy, clock_strategy)
    @settings(max_examples=100)
    def test_join_least_upper_bound(self, a, b):
        # Any clock above both a and b is above their join.
        joined = a | b
        upper = joined | VectorClock({"t1": 100})
        assert joined <= upper


# --------------------------------------------------------------------------- #
# Epochs
# --------------------------------------------------------------------------- #

class TestEpoch:
    def test_bottom_epoch(self):
        epoch = Epoch.bottom()
        assert epoch.is_bottom()
        assert epoch.happens_before(VectorClock.bottom())
        assert epoch.to_clock().is_bottom()

    def test_happens_before_clock(self):
        epoch = Epoch("t1", 3)
        assert epoch.happens_before(VectorClock({"t1": 3}))
        assert epoch.happens_before(VectorClock({"t1": 5}))
        assert not epoch.happens_before(VectorClock({"t1": 2}))
        assert not epoch.happens_before(VectorClock({"t2": 10}))

    def test_same_thread(self):
        assert Epoch("t1", 3).same_thread("t1")
        assert not Epoch("t1", 3).same_thread("t2")

    def test_to_clock(self):
        assert Epoch("t1", 3).to_clock() == VectorClock({"t1": 3})

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            Epoch("t1", -1)

    def test_equality_and_repr(self):
        assert Epoch("t1", 3) == Epoch("t1", 3)
        assert Epoch("t1", 3) != Epoch("t2", 3)
        assert hash(Epoch("t1", 3)) == hash(Epoch("t1", 3))
        assert "3" in repr(Epoch("t1", 3))
        assert "bottom" in repr(Epoch.bottom())
