"""Tests for worker supervision, shard failover and fault injection.

The acceptance criterion from the fault-tolerance work: for every
deterministic :class:`FaultPlan` in {worker kill at an arbitrary event,
dropped ack, corrupted snapshot blob, severed pipe}, on every transport,
the sharded run's merged report is byte-identical -- witnesses and
distances included -- to the fault-free run; and when recovery is
disabled (``fail_fast``, retries exhausted, retries=0) the run dies with
one actionable :class:`WorkerFailure`, never a raw ``EOFError``.
"""

import asyncio
import threading
import time

import pytest

from repro import (
    EngineConfig,
    Fault,
    FaultPlan,
    QueueSource,
    RaceEngine,
    ShardedEngine,
    SupervisionSettings,
    WorkerFailure,
)
from repro.cli import main
from repro.engine.faults import corrupt_blob
from repro.engine.faults import WorkerDied
from repro.engine.sharding import _ProcessTransport, _ShardWorker, _ThreadTransport
from repro.engine.supervision import SupervisedTransport, new_supervision_stats
from repro.trace.event import EventType
from repro.trace.writers import dump_trace

from conftest import random_trace
from test_sharding import _fingerprint, fork_join_trace

DETECTORS = ["wcp", "hb", "fasttrack"]
MODES = ["serial", "thread", "process"]


def _sharded(trace, plan=None, mode="serial", shards=3, batch_size=16,
             detectors=DETECTORS, **supervision):
    config = EngineConfig().with_shards(shards, mode=mode,
                                        batch_size=batch_size)
    supervision.setdefault("backoff_s", 0.0)
    supervision.setdefault("snapshot_every", 4)
    config.with_shard_supervision(**supervision)
    if plan is not None:
        config.with_fault_plan(plan)
    return ShardedEngine(config).run(trace, detectors=detectors)


def _assert_parity(trace, result, detectors=DETECTORS):
    single = RaceEngine().run(trace, detectors=detectors)
    for name in single.keys():
        assert _fingerprint(single[name]) == _fingerprint(result[name])


# --------------------------------------------------------------------- #
# The fault plan itself
# --------------------------------------------------------------------- #


class TestFaultPlan:
    def test_faults_fire_exactly_once(self):
        plan = FaultPlan([Fault.drop_ack(0, 3)])
        assert not plan.drop_ack(0, 2)
        assert plan.drop_ack(0, 3)
        assert not plan.drop_ack(0, 3)
        assert plan.fired() and not plan.unfired()

    def test_shard_and_position_must_match(self):
        plan = FaultPlan([Fault.duplicate_ack(1, 5)])
        assert not plan.duplicate_ack(0, 5)
        assert not plan.duplicate_ack(1, 4)
        assert plan.duplicate_ack(1, 5)

    def test_take_kill_event_consumes(self):
        plan = FaultPlan([Fault.kill_worker(2, 40)])
        assert plan.take_kill_event(0) is None
        assert plan.take_kill_event(2) == 40
        # One-shot: a restarted worker does not re-inherit the fault.
        assert plan.take_kill_event(2) is None

    def test_validation(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            Fault("meteor-strike", 0, 1)
        with pytest.raises(ValueError, match=">= 0"):
            Fault.kill_worker(0, -1)

    def test_repr_tracks_firing(self):
        plan = FaultPlan.kill(1, at_event=10)
        assert "0 fired" in repr(plan)
        plan.take_kill_event(1)
        assert "1 fired" in repr(plan)
        assert "fired" in repr(plan.faults[0])

    def test_corrupt_blob_flips_one_byte(self):
        blob = bytes(range(32))
        mutated = corrupt_blob(blob)
        assert len(mutated) == len(blob)
        assert sum(a != b for a, b in zip(blob, mutated)) == 1
        assert corrupt_blob(b"") == b""


# --------------------------------------------------------------------- #
# Parity through injected failures (the tentpole acceptance suite)
# --------------------------------------------------------------------- #


class TestFaultParity:
    """Killed, throttled or corrupted -- the merged report must equal the
    uninterrupted run exactly, on every transport."""

    @pytest.mark.parametrize("mode", MODES)
    @pytest.mark.parametrize("kind", ["random", "forkjoin"])
    def test_worker_kill_parity(self, mode, kind):
        trace = (
            random_trace(17, n_events=240, n_threads=4, n_locks=2, n_vars=6)
            if kind == "random" else fork_join_trace(2)
        )
        plan = FaultPlan.kill(1, at_event=30)
        result = _sharded(trace, plan, mode=mode)
        _assert_parity(trace, result)
        assert plan.unfired() == []
        assert result.supervision["worker_restarts"] == 1
        assert result.supervision["restarts_by_shard"] == {1: 1}

    @pytest.mark.parametrize("mode", MODES)
    def test_dropped_ack_parity(self, mode):
        trace = random_trace(23, n_events=200, n_threads=4, n_vars=6)
        plan = FaultPlan([Fault.drop_ack(0, 1)])
        result = _sharded(trace, plan, mode=mode)
        _assert_parity(trace, result)
        assert plan.unfired() == []
        # A swallowed ack alone is benign: later acks keep flowing, so
        # the worker is never declared dead.
        assert result.supervision["worker_restarts"] == 0

    @pytest.mark.parametrize("mode", ["serial", "thread"])
    def test_duplicate_ack_parity(self, mode):
        trace = random_trace(23, n_events=200, n_threads=4, n_vars=6)
        plan = FaultPlan([Fault.duplicate_ack(1, 0)])
        result = _sharded(trace, plan, mode=mode)
        _assert_parity(trace, result)
        assert plan.unfired() == []
        assert result.supervision["worker_restarts"] == 0

    @pytest.mark.parametrize("mode", MODES)
    def test_corrupt_snapshot_falls_back_parity(self, mode):
        """The newest retained snapshot is bit-flipped; failover must
        fall back (counted) and still reproduce the exact report."""
        trace = random_trace(29, n_events=240, n_threads=4, n_locks=2,
                             n_vars=6)
        plan = FaultPlan([
            Fault.corrupt_snapshot(1, 0),
            Fault.kill_worker(1, 80),
        ])
        result = _sharded(trace, plan, mode=mode)
        _assert_parity(trace, result)
        assert plan.unfired() == []
        assert result.supervision["worker_restarts"] == 1
        assert result.supervision["snapshot_fallbacks"] >= 1

    @pytest.mark.parametrize("mode", MODES)
    def test_pipe_eof_parity(self, mode):
        trace = random_trace(31, n_events=200, n_threads=4, n_vars=6)
        plan = FaultPlan([Fault.pipe_eof(2, 3)])
        result = _sharded(trace, plan, mode=mode)
        _assert_parity(trace, result)
        assert plan.unfired() == []
        assert result.supervision["worker_restarts"] == 1
        assert result.supervision["restarts_by_shard"] == {2: 1}

    def test_two_shards_lost_in_one_run(self):
        trace = random_trace(37, n_events=240, n_threads=4, n_vars=6)
        plan = FaultPlan([
            Fault.kill_worker(0, 20),
            Fault.kill_worker(2, 35),
        ])
        result = _sharded(trace, plan, mode="thread")
        _assert_parity(trace, result)
        assert plan.unfired() == []
        assert result.supervision["worker_restarts"] == 2
        assert result.supervision["restarts_by_shard"] == {0: 1, 2: 1}

    def test_kill_after_snapshot_restores_from_snapshot(self):
        """A late kill restores from a periodic snapshot (not the stream
        start): the replay buffer no longer reaches batch 1."""
        trace = random_trace(41, n_events=240, n_threads=4, n_vars=6)
        plan = FaultPlan.kill(1, at_event=80)
        config = EngineConfig().with_shards(3, mode="serial", batch_size=16)
        config.with_shard_supervision(snapshot_every=4, backoff_s=0.0)
        config.with_fault_plan(plan)
        engine = ShardedEngine(config)
        result = engine.run(trace, detectors=DETECTORS)
        _assert_parity(trace, result)
        assert result.supervision["worker_restarts"] == 1
        assert result.supervision["snapshot_fallbacks"] == 0

    def test_recovery_is_visible_in_summary(self):
        trace = random_trace(43, n_events=200, n_threads=4, n_vars=6)
        result = _sharded(trace, FaultPlan.kill(0, 25), mode="serial")
        assert "restart" in result.summary()
        clean = _sharded(trace, None, mode="serial")
        assert "restart" not in clean.summary()


# --------------------------------------------------------------------- #
# Non-recovery paths: one actionable error, never a raw EOFError
# --------------------------------------------------------------------- #


class TestFailureModes:
    @pytest.mark.parametrize("mode", MODES)
    def test_fail_fast_single_actionable_error(self, mode):
        trace = random_trace(47, n_events=200, n_threads=4, n_vars=6)
        plan = FaultPlan.kill(1, at_event=20)
        with pytest.raises(WorkerFailure) as exc:
            _sharded(trace, plan, mode=mode, fail_fast=True)
        message = str(exc.value)
        assert "shard 1" in message
        assert "failing fast" in message
        assert "--fail-fast" in message
        assert not isinstance(exc.value, EOFError)

    def test_retries_zero_disables_failover(self):
        trace = random_trace(47, n_events=200, n_threads=4, n_vars=6)
        with pytest.raises(WorkerFailure, match="failover is disabled"):
            _sharded(trace, FaultPlan.kill(1, at_event=20), retries=0)

    def test_retry_budget_exhausted_is_actionable(self):
        trace = random_trace(53, n_events=240, n_threads=4, n_vars=6)
        # Two kills for the same shard: the restarted worker dies too.
        plan = FaultPlan([
            Fault.kill_worker(1, 20),
            Fault.kill_worker(1, 10),
        ])
        with pytest.raises(WorkerFailure, match="retry budget exhausted"):
            _sharded(trace, plan, retries=1)

    def test_process_cause_names_the_exit_code(self):
        trace = random_trace(59, n_events=200, n_threads=4, n_vars=6)
        plan = FaultPlan.kill(0, at_event=20)
        with pytest.raises(WorkerFailure) as exc:
            _sharded(trace, plan, mode="process", fail_fast=True)
        assert "worker exit code 17" in str(exc.value)


# --------------------------------------------------------------------- #
# SupervisedTransport unit layer (stub transports, no engine)
# --------------------------------------------------------------------- #


class _StubTransport:
    """Scriptable transport: acks on demand, dies on demand."""

    def __init__(self, restore=None, auto_ack=True):
        self.restore = restore
        self.auto_ack = auto_ack
        self.sent = []
        self.fail_next = False
        self._alive = True
        self._acked = 0
        self._state = {"stub": 1}

    def send(self, batch):
        if self.fail_next:
            from repro.engine.faults import WorkerDied
            raise WorkerDied(0, "stub death")
        self.sent.append(list(batch))
        if self.auto_ack:
            self._acked += 1

    def poll_progress(self):
        return None

    def poll_delta(self):
        return None

    def snapshot_begin(self):
        return None

    def snapshot_end(self, token):
        return self._state

    def snapshot(self):
        return self._state

    def finish(self):
        return {"finished": True}

    def abort(self):
        self._alive = False

    def acked(self):
        return self._acked

    def alive(self):
        return self._alive

    def break_pipe(self):
        pass

    def take_escalations(self):
        return 0


def _supervised(plan=None, **settings_kwargs):
    settings_kwargs.setdefault("retries", 2)
    settings_kwargs.setdefault("backoff_s", 0.0)
    settings = SupervisionSettings(**settings_kwargs)
    stats = new_supervision_stats()
    incarnations = []

    def factory(restore):
        stub = _StubTransport(restore=restore)
        incarnations.append(stub)
        return stub

    transport = SupervisedTransport(0, factory, settings, stats, plan=plan)
    return transport, incarnations, stats


class TestSupervisedTransportUnit:
    def test_heartbeat_timeout_restarts_and_replays(self):
        transport, incarnations, stats = _supervised(
            heartbeat_s=0.05, snapshot_every=0
        )
        incarnations[0].auto_ack = False  # the worker goes silent
        transport.send([("a",)])
        time.sleep(0.08)
        transport.send([("b",)])
        assert stats["heartbeat_timeouts"] == 1
        assert stats["worker_restarts"] == 1
        assert len(incarnations) == 2
        # The replacement saw the buffered batch, then the current one.
        assert incarnations[1].sent == [[("a",)], [("b",)]]
        assert incarnations[1].restore is None  # no snapshot existed yet

    def test_flowing_acks_never_time_out(self):
        transport, incarnations, stats = _supervised(
            heartbeat_s=0.05, snapshot_every=0
        )
        for index in range(3):
            transport.send([(index,)])
            time.sleep(0.06)  # silence, but nothing outstanding
        assert stats["worker_restarts"] == 0
        assert len(incarnations) == 1

    def test_dead_worker_detected_before_timeout(self):
        transport, incarnations, stats = _supervised(
            heartbeat_s=60.0, snapshot_every=0
        )
        incarnations[0].auto_ack = False
        transport.send([("a",)])
        incarnations[0]._alive = False
        transport.send([("b",)])
        assert stats["worker_restarts"] == 1
        assert stats["heartbeat_timeouts"] == 0
        assert incarnations[1].sent == [[("a",)], [("b",)]]

    def test_snapshot_retention_and_buffer_trim(self):
        transport, incarnations, _ = _supervised(snapshot_every=2)
        for index in range(8):
            transport.send([(index,)])
        # Snapshots at sent 2/4/6/8; only the two newest are retained,
        # and the buffer reaches back to the *older* one.
        assert [covered for covered, _ in transport._snapshots] == [6, 8]
        assert [seq for seq, _ in transport._buffer] == [7, 8]

    def test_failover_restores_newest_snapshot(self):
        transport, incarnations, stats = _supervised(snapshot_every=2)
        for index in range(8):
            transport.send([(index,)])
        incarnations[0].fail_next = True
        transport.send([("tail",)])
        assert stats["worker_restarts"] == 1
        assert incarnations[1].restore == {"stub": 1}
        assert incarnations[1].sent == [[("tail",)]]

    def test_corrupt_newest_snapshot_falls_back(self):
        plan = FaultPlan([Fault.corrupt_snapshot(0, 1)])
        transport, incarnations, stats = _supervised(
            plan=plan, snapshot_every=2
        )
        for index in range(4):
            transport.send([(index,)])
        incarnations[0].fail_next = True
        transport.send([("tail",)])
        assert stats["snapshot_fallbacks"] == 1
        assert stats["worker_restarts"] == 1
        # Restored from the older snapshot (covering sent=2): batches
        # 3, 4 and the current one replayed.
        assert incarnations[1].sent == [[(2,)], [(3,)], [("tail",)]]

    def test_every_snapshot_corrupt_is_actionable(self):
        plan = FaultPlan([
            Fault.corrupt_snapshot(0, index) for index in range(4)
        ])
        transport, incarnations, stats = _supervised(
            plan=plan, snapshot_every=2
        )
        for index in range(6):
            transport.send([(index,)])
        incarnations[0].fail_next = True
        with pytest.raises(WorkerFailure, match="no intact snapshot"):
            transport.send([("tail",)])
        assert stats["snapshot_fallbacks"] == 2

    def test_finish_clears_the_replay_buffer(self):
        transport, _, _ = _supervised(snapshot_every=0)
        transport.send([("a",)])
        assert transport._buffer
        assert transport.finish() == {"finished": True}
        assert transport._buffer == []


class TestSupervisionSettings:
    def test_validation(self):
        with pytest.raises(ValueError):
            SupervisionSettings(retries=-1)
        with pytest.raises(ValueError):
            SupervisionSettings(heartbeat_s=0)
        with pytest.raises(ValueError):
            SupervisionSettings(snapshot_every=-1)

    def test_from_config_roundtrip(self):
        config = EngineConfig().with_shard_supervision(
            retries=5, heartbeat_s=7.0, snapshot_every=9, backoff_s=0.01,
            shutdown_timeout_s=3.0, fail_fast=True,
        )
        settings = SupervisionSettings.from_config(config)
        assert settings.retries == 5
        assert settings.heartbeat_s == 7.0
        assert settings.snapshot_every == 9
        assert settings.backoff_s == 0.01
        assert settings.shutdown_timeout_s == 3.0
        assert settings.fail_fast
        assert "fail_fast" in repr(settings)

    def test_config_builder_validation(self):
        with pytest.raises(ValueError):
            EngineConfig().with_shard_supervision(retries=-1)
        with pytest.raises(ValueError):
            EngineConfig().with_shard_supervision(heartbeat_s=0)
        with pytest.raises(ValueError):
            EngineConfig().with_shard_supervision(backoff_s=-0.1)
        with pytest.raises(ValueError):
            EngineConfig().with_shard_supervision(shutdown_timeout_s=0)

    def test_config_repr_mentions_fault_state(self):
        config = EngineConfig().with_fault_plan(FaultPlan.kill(0, 1))
        config.with_shards(2, mode="serial")
        config.with_shard_supervision(retries=5, fail_fast=True)
        text = repr(config)
        assert "shard_retries=5" in text
        assert "fail_fast" in text
        assert "FaultPlan" in text


# --------------------------------------------------------------------- #
# Shutdown escalation ladder (satellite: terminate -> kill)
# --------------------------------------------------------------------- #


class _StubProcess:
    def __init__(self, survive_join=True, survive_terminate=False):
        self.calls = []
        self.exitcode = None
        self._alive = True
        self._survive_join = survive_join
        self._survive_terminate = survive_terminate

    def join(self, timeout=None):
        self.calls.append("join")
        if not self._survive_join:
            self._alive = False

    def is_alive(self):
        return self._alive

    def terminate(self):
        self.calls.append("terminate")
        if not self._survive_terminate:
            self._alive = False

    def kill(self):
        self.calls.append("kill")
        self._alive = False


class _StubConn:
    def close(self):
        pass


def _shutdown_transport(process):
    transport = object.__new__(_ProcessTransport)
    transport.shard_id = 0
    transport.shutdown_timeout_s = 0.01
    transport.escalations = 0
    transport.process = process
    transport.conn = _StubConn()
    return transport


class TestShutdownEscalation:
    def test_graceful_exit_never_escalates(self):
        process = _StubProcess(survive_join=False)
        transport = _shutdown_transport(process)
        transport._shutdown()
        assert transport.escalations == 0
        assert "terminate" not in process.calls
        assert "kill" not in process.calls

    def test_stuck_worker_is_terminated(self):
        process = _StubProcess(survive_join=True, survive_terminate=False)
        transport = _shutdown_transport(process)
        transport._shutdown()
        assert transport.escalations == 1
        assert "terminate" in process.calls
        assert "kill" not in process.calls

    def test_sigterm_immune_worker_is_killed(self):
        process = _StubProcess(survive_join=True, survive_terminate=True)
        transport = _shutdown_transport(process)
        transport._shutdown()
        assert transport.escalations == 2
        assert "kill" in process.calls
        assert not process.is_alive()
        assert transport.take_escalations() == 2
        assert transport.take_escalations() == 0

    def test_abort_escalates_only_past_sigterm(self):
        process = _StubProcess(survive_join=True, survive_terminate=True)
        transport = _shutdown_transport(process)
        transport.abort()
        assert "kill" in process.calls
        assert transport.escalations == 1


# --------------------------------------------------------------------- #
# CLI surface
# --------------------------------------------------------------------- #


class TestSupervisionCli:
    def _trace_path(self, tmp_path):
        trace = random_trace(61, n_events=80, n_threads=3)
        return str(dump_trace(trace, tmp_path / "t.std"))

    def test_supervision_flags_accepted(self, tmp_path, capsys):
        path = self._trace_path(tmp_path)
        code = main([
            "analyze", path, "--detector", "wcp", "--shards", "2",
            "--shard-mode", "serial", "--shard-retries", "3",
            "--shard-heartbeat", "5", "--fail-fast",
        ])
        assert code in (0, 1)
        assert "WCP" in capsys.readouterr().out

    def test_negative_retries_rejected(self, tmp_path, capsys):
        path = self._trace_path(tmp_path)
        with pytest.raises(SystemExit):
            main(["analyze", path, "--shards", "2",
                  "--shard-retries", "-1"])
        assert "shard-retries" in capsys.readouterr().err


# --------------------------------------------------------------------- #
# QueueSource governance (satellite: abrupt producer death)
# --------------------------------------------------------------------- #


class TestQueueSourceGovernance:
    def _push_one(self, source):
        source.push("t1", EventType.WRITE, "x", loc="a:1")

    def test_dead_producer_surfaces_not_hangs(self):
        source = QueueSource(name="dead")
        producer = threading.Thread(target=self._push_one, args=(source,))
        source.attach_producer(producer)
        producer.start()
        producer.join()
        with pytest.raises(RuntimeError, match="died without closing"):
            list(source)

    def test_abort_is_governed_and_sticky(self):
        source = QueueSource(name="gone")
        self._push_one(source)
        source.abort("client went away")
        with pytest.raises(RuntimeError, match="client went away"):
            list(source)
        # The sentinel is re-armed: a second drain errors too.
        with pytest.raises(RuntimeError, match="client went away"):
            list(source)
        assert source.closed
        with pytest.raises(RuntimeError):
            self._push_one(source)

    def test_async_drain_sees_abort(self):
        async def run():
            source = QueueSource(name="agone")
            self._push_one(source)
            source.abort()
            with pytest.raises(RuntimeError, match="aborted"):
                async for _ in source:
                    pass

        asyncio.run(run())

    def test_async_drain_sees_dead_producer(self):
        async def run():
            source = QueueSource(name="adead")
            producer = threading.Thread(target=lambda: None)
            source.attach_producer(producer)
            producer.start()
            producer.join()
            with pytest.raises(RuntimeError, match="died without closing"):
                async for _ in source:
                    pass

        asyncio.run(run())

    def test_healthy_producer_unaffected(self):
        source = QueueSource(name="fine")

        def produce():
            self._push_one(source)
            source.close()

        producer = threading.Thread(target=produce)
        source.attach_producer(producer)
        producer.start()
        assert len(list(source)) == 1
        producer.join()


# --------------------------------------------------------------------- #
# Hung-but-alive thread workers (heartbeat-expiry stall detection)
# --------------------------------------------------------------------- #


class _HungThreadWorker:
    """A worker whose thread stays alive but never makes progress."""

    def __init__(self, shard_id=0, hang_on_batch=0):
        self.shard_id = shard_id
        self.hang_on_batch = hang_on_batch
        self.batches = 0
        self.block = threading.Event()  # never set: alive but stalled

    def start(self):
        pass

    def process_batch(self, batch):
        if self.batches == self.hang_on_batch:
            self.block.wait()
        self.batches += 1

    def progress(self):
        return self.batches

    def snapshot_state(self):
        return {"events": 0, "blobs": []}

    def finish(self):
        return {"events": 0, "busy_s": 0.0, "blobs": []}


class TestThreadStallDetection:
    """Python cannot kill a thread, so a hung-but-alive thread worker
    must be *declared* dead once the heartbeat expires -- tagged as a
    stall so supervision counts it as a heartbeat timeout, not a crash."""

    def test_full_queue_stall_is_declared_dead(self):
        worker = _HungThreadWorker()
        transport = _ThreadTransport(worker, stall_timeout_s=0.2)
        try:
            with pytest.raises(WorkerDied) as excinfo:
                for _ in range(32):  # 1 consumed + 8 queued, then blocked
                    transport.send([("event",)])
            assert getattr(excinfo.value, "stalled", False)
            assert "alive but stalled" in str(excinfo.value)
            assert not transport.alive()
        finally:
            worker.block.set()

    def test_unanswered_snapshot_is_declared_dead(self):
        worker = _HungThreadWorker()
        transport = _ThreadTransport(worker, stall_timeout_s=0.2)
        try:
            transport.send([("event",)])
            token = transport.snapshot_begin()
            with pytest.raises(WorkerDied) as excinfo:
                transport.snapshot_end(token)
            assert getattr(excinfo.value, "stalled", False)
        finally:
            worker.block.set()

    def test_hung_finish_is_declared_dead(self):
        worker = _HungThreadWorker()
        transport = _ThreadTransport(worker, stall_timeout_s=0.2)
        try:
            transport.send([("event",)])
            with pytest.raises(WorkerDied) as excinfo:
                transport.finish()
            assert getattr(excinfo.value, "stalled", False)
        finally:
            worker.block.set()

    def test_no_timeout_preserves_direct_construction(self):
        # Serial paths and direct construction keep the pre-supervision
        # behaviour: no deadline, a healthy worker finishes normally.
        worker = _HungThreadWorker(hang_on_batch=10 ** 9)
        transport = _ThreadTransport(worker)
        assert transport.stall_timeout_s is None
        transport.send([("event",)])
        assert transport.finish()["events"] == 0

    def test_hung_thread_worker_is_proactively_restarted(self, monkeypatch):
        """End to end: one shard's worker thread hangs mid-run; the
        heartbeat declares it dead, the supervisor restarts the shard
        from snapshot+replay, and the merged report keeps parity."""
        block = threading.Event()
        state = {"hung": False}
        original = _ShardWorker.process_batch

        def hang_once(self, batch):
            if not state["hung"]:
                state["hung"] = True
                block.wait()  # this thread never progresses again
            return original(self, batch)

        monkeypatch.setattr(_ShardWorker, "process_batch", hang_once)
        trace = fork_join_trace(5, workers=3, steps=120)
        try:
            result = _sharded(trace, None, "thread", heartbeat_s=0.3)
        finally:
            block.set()  # release the zombie daemon thread
        assert state["hung"]
        _assert_parity(trace, result)
        assert result.supervision["heartbeat_timeouts"] >= 1
        assert result.supervision["worker_restarts"] >= 1


class TestMixedVocabularyFaults:
    """Fault-injection parity when the trace uses the full vocabulary.

    Replicated rwlock/barrier/wait/notify events land in every worker's
    snapshot, so a worker killed mid-read-section or mid-barrier
    generation must restore and replay to a byte-identical report.
    """

    @pytest.mark.parametrize("mode", ["serial", "thread"])
    def test_worker_kill_parity(self, mode):
        from repro.bench.generators import mixed_vocabulary_trace

        trace = mixed_vocabulary_trace(1, steps=160)
        result = _sharded(trace, FaultPlan.kill(0, at_event=40), mode=mode)
        _assert_parity(trace, result)

    def test_kill_at_late_offset_parity(self):
        from repro.bench.generators import mixed_vocabulary_trace

        trace = mixed_vocabulary_trace(4, steps=160)
        result = _sharded(
            trace, FaultPlan.kill(1, at_event=len(trace) - 30), mode="serial"
        )
        _assert_parity(trace, result)
