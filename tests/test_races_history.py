"""Tests for race pairs, race reports and the per-variable access history."""

from repro.core.history import AccessHistory
from repro.core.races import RacePair, RaceReport
from repro.trace.event import Event, EventType
from repro.vectorclock import VectorClock


def _write(index, thread, var="x", loc=None):
    return Event(index, thread, EventType.WRITE, var, loc)


def _read(index, thread, var="x", loc=None):
    return Event(index, thread, EventType.READ, var, loc)


class TestRacePair:
    def test_orders_events_by_index(self):
        pair = RacePair(_write(5, "t2", loc="b"), _write(1, "t1", loc="a"))
        assert pair.first_event.index == 1
        assert pair.second_event.index == 5
        assert pair.distance == 4

    def test_location_pair_is_unordered(self):
        a = RacePair(_write(0, "t1", loc="p"), _write(1, "t2", loc="q"))
        b = RacePair(_write(3, "t2", loc="q"), _write(9, "t1", loc="p"))
        assert a == b
        assert hash(a) == hash(b)

    def test_same_location_collapses(self):
        pair = RacePair(_write(0, "t1", loc="p"), _write(1, "t2", loc="p"))
        assert pair.locations == frozenset({"p"})

    def test_variable_and_repr(self):
        pair = RacePair(_write(0, "t1", "v", "p"), _write(1, "t2", "v", "q"))
        assert pair.variable == "v"
        assert "v" in repr(pair)


class TestRaceReport:
    def test_deduplication_by_location(self):
        report = RaceReport("demo")
        report.add(_write(0, "t1", loc="p"), _write(1, "t2", loc="q"))
        report.add(_write(10, "t1", loc="p"), _write(30, "t2", loc="q"))
        assert report.count() == 1
        assert report.raw_race_count == 2
        # Maximum distance over all witnesses of the pair is retained.
        assert report.max_distance() == 20

    def test_distinct_pairs_sorted_by_first_witness(self):
        report = RaceReport("demo")
        report.add(_write(5, "t1", loc="c"), _write(6, "t2", loc="d"))
        report.add(_write(0, "t1", loc="a"), _write(1, "t2", loc="b"))
        pairs = report.pairs()
        assert pairs[0].locations == frozenset({"a", "b"})

    def test_contains_and_iteration(self):
        report = RaceReport("demo")
        report.add(_write(0, "t1", loc="p"), _write(1, "t2", loc="q"))
        assert ["p", "q"] in report
        assert ["p", "zzz"] not in report
        assert len(list(report)) == len(report) == 1
        assert report.has_race()

    def test_merge(self):
        first = RaceReport("a")
        first.add(_write(0, "t1", loc="p"), _write(1, "t2", loc="q"))
        second = RaceReport("b")
        second.add(_write(2, "t1", loc="p"), _write(9, "t2", loc="q"))
        second.add(_write(3, "t1", loc="r"), _write(4, "t2", loc="s"))
        first.merge(second)
        assert first.count() == 2
        assert first.max_distance() == 7

    def test_variables_and_summary(self):
        report = RaceReport("demo", "trace-name")
        report.add(_write(0, "t1", "v1", "p"), _write(1, "t2", "v1", "q"))
        report.stats["time_s"] = 0.5
        assert report.variables() == ["v1"]
        summary = report.summary()
        assert "demo" in summary and "trace-name" in summary and "time_s" in summary

    def test_empty_report(self):
        report = RaceReport("demo")
        assert not report.has_race()
        assert report.max_distance() == 0
        assert report.count() == 0


class TestAccessHistory:
    def test_ordered_accesses_do_not_race(self):
        history = AccessHistory()
        report = RaceReport("demo")
        history.observe(_write(0, "t1"), VectorClock({"t1": 1}), report)
        # The reader's clock dominates the writer's: no race.
        history.observe(_read(1, "t2"), VectorClock({"t1": 1, "t2": 1}), report)
        assert report.count() == 0

    def test_unordered_write_write_races(self):
        history = AccessHistory()
        report = RaceReport("demo")
        history.observe(_write(0, "t1"), VectorClock({"t1": 1}), report)
        racy = history.observe(_write(1, "t2"), VectorClock({"t2": 1}), report)
        assert racy == 1
        assert report.count() == 1

    def test_unordered_read_then_write_races(self):
        history = AccessHistory()
        report = RaceReport("demo")
        history.observe(_read(0, "t1"), VectorClock({"t1": 1}), report)
        history.observe(_write(1, "t2"), VectorClock({"t2": 1}), report)
        assert report.count() == 1

    def test_read_read_never_races(self):
        history = AccessHistory()
        report = RaceReport("demo")
        history.observe(_read(0, "t1"), VectorClock({"t1": 1}), report)
        history.observe(_read(1, "t2"), VectorClock({"t2": 1}), report)
        assert report.count() == 0

    def test_same_thread_never_races(self):
        history = AccessHistory()
        report = RaceReport("demo")
        history.observe(_write(0, "t1"), VectorClock({"t1": 1}), report)
        history.observe(_write(1, "t1"), VectorClock({"t1": 2}), report)
        assert report.count() == 0

    def test_different_variables_do_not_interact(self):
        history = AccessHistory()
        report = RaceReport("demo")
        history.observe(_write(0, "t1", "x"), VectorClock({"t1": 1}), report)
        history.observe(_write(1, "t2", "y"), VectorClock({"t2": 1}), report)
        assert report.count() == 0

    def test_on_race_callback(self):
        seen = []
        history = AccessHistory()
        report = RaceReport("demo")
        history.observe(_write(0, "t1"), VectorClock({"t1": 1}), report)
        history.observe(
            _write(1, "t2"), VectorClock({"t2": 1}), report,
            on_race=lambda earlier, later: seen.append((earlier.index, later.index)),
        )
        assert seen == [(0, 1)]

    def test_clear(self):
        history = AccessHistory()
        report = RaceReport("demo")
        history.observe(_write(0, "t1"), VectorClock({"t1": 1}), report)
        history.clear()
        history.observe(_write(1, "t2"), VectorClock({"t2": 1}), report)
        assert report.count() == 0
