"""Hypothesis property tests over randomly generated well-formed traces.

A custom strategy builds arbitrary valid traces (lock semantics and well
nestedness by construction) and checks the cross-cutting invariants that
tie the whole library together:

* monotonicity of the partial orders (HB ⊆ CP ⊆ WCP as relations, hence the
  reverse inclusion of their race sets);
* serialisation round-trips;
* report invariants (counts, distances, dedup);
* agreement between the streaming detectors and their closure oracles.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.closure import HBClosure, WCPClosure
from repro.core.wcp import WCPDetector
from repro.cp import CPClosure
from repro.hb import FastTrackDetector, HBDetector
from repro.trace.event import Event, EventType
from repro.trace.parsers import parse_csv, parse_std
from repro.trace.trace import Trace
from repro.trace.writers import write_csv, write_std


@st.composite
def traces(draw, max_events=35, max_threads=3, max_locks=2, max_vars=3):
    """Generate a random well-formed trace."""
    n_threads = draw(st.integers(min_value=2, max_value=max_threads))
    n_locks = draw(st.integers(min_value=0, max_value=max_locks))
    n_vars = draw(st.integers(min_value=1, max_value=max_vars))
    n_events = draw(st.integers(min_value=2, max_value=max_events))

    threads = ["t%d" % i for i in range(n_threads)]
    locks = ["l%d" % i for i in range(n_locks)]
    variables = ["x%d" % i for i in range(n_vars)]

    held = {thread: [] for thread in threads}
    holder = {}
    events = []
    for _ in range(n_events):
        thread = draw(st.sampled_from(threads))
        actions = ["read", "write"]
        free_locks = [
            lock for lock in locks
            if lock not in holder and lock not in held[thread]
        ]
        if free_locks:
            actions.append("acquire")
        if held[thread]:
            actions.append("release")
        action = draw(st.sampled_from(actions))
        index = len(events)
        if action == "acquire":
            lock = draw(st.sampled_from(free_locks))
            held[thread].append(lock)
            holder[lock] = thread
            events.append(Event(index, thread, EventType.ACQUIRE, lock))
        elif action == "release":
            lock = held[thread].pop()
            del holder[lock]
            events.append(Event(index, thread, EventType.RELEASE, lock))
        else:
            variable = draw(st.sampled_from(variables))
            etype = EventType.READ if action == "read" else EventType.WRITE
            events.append(Event(index, thread, etype, variable))
    for thread in threads:
        while held[thread]:
            events.append(Event(len(events), thread, EventType.RELEASE, held[thread].pop()))
    return Trace(events, name="hypothesis")


COMMON_SETTINGS = dict(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


class TestPartialOrderHierarchy:
    @given(traces())
    @settings(**COMMON_SETTINGS)
    def test_race_sets_are_nested(self, trace):
        hb = {frozenset((a.index, b.index)) for a, b in HBClosure(trace).races()}
        cp = {frozenset((a.index, b.index)) for a, b in CPClosure(trace).races()}
        wcp = {frozenset((a.index, b.index)) for a, b in WCPClosure(trace).races()}
        assert hb <= cp <= wcp

    @given(traces())
    @settings(**COMMON_SETTINGS)
    def test_wcp_prec_is_subset_of_hb(self, trace):
        # Definition: every WCP-ordered pair is HB-ordered (WCP ⊆ HB).
        hb = HBClosure(trace)
        wcp = WCPClosure(trace)
        for second in range(len(trace)):
            for first in range(second):
                if wcp.prec(first, second):
                    assert hb.ordered(first, second)

    @given(traces())
    @settings(**COMMON_SETTINGS)
    def test_streaming_wcp_agrees_with_closure(self, trace):
        detector_races = set(WCPDetector().run(trace).location_pairs())
        closure_races = {
            frozenset({a.location(), b.location()})
            for a, b in WCPClosure(trace).races()
        }
        assert detector_races == closure_races


class TestSerializationProperties:
    @given(traces())
    @settings(**COMMON_SETTINGS)
    def test_std_round_trip_preserves_events(self, trace):
        parsed = parse_std(write_std(trace))
        assert len(parsed) == len(trace)
        assert [
            (e.thread, e.etype, e.target) for e in parsed
        ] == [
            (e.thread, e.etype, e.target) for e in trace
        ]

    @given(traces())
    @settings(**COMMON_SETTINGS)
    def test_csv_round_trip_preserves_race_counts(self, trace):
        parsed = parse_csv(write_csv(trace))
        original = HBDetector().run(trace).count()
        reparsed = HBDetector().run(parsed).count()
        assert original == reparsed


class TestReportProperties:
    @given(traces())
    @settings(**COMMON_SETTINGS)
    def test_distinct_count_never_exceeds_raw_count(self, trace):
        report = WCPDetector().run(trace)
        assert report.count() <= max(report.raw_race_count, 0) or report.count() == 0

    @given(traces())
    @settings(**COMMON_SETTINGS)
    def test_fasttrack_never_reports_more_variables_than_hb(self, trace):
        hb_vars = set(HBDetector().run(trace).variables())
        ft_vars = set(FastTrackDetector().run(trace).variables())
        assert ft_vars <= hb_vars

    @given(traces())
    @settings(**COMMON_SETTINGS)
    def test_max_distance_bounded_by_trace_length(self, trace):
        report = WCPDetector().run(trace)
        assert 0 <= report.max_distance() < max(len(trace), 1)
