"""Tests for the online stream validator (repro.engine.validate).

The contract under test: :class:`ValidatingSource` rejects exactly the
streams ``Trace(validate=True)`` rejects -- same exception class, same
message -- while holding O(1) state per event (no growth with trace
length on lock-free suffixes).
"""

import random

import pytest

from repro import (
    IterableSource,
    OnlineValidator,
    RaceEngine,
    TraceSource,
    ValidatingSource,
    detect_races,
)
from repro.cli import main
from repro.trace.event import Event, EventType
from repro.trace.trace import (
    LockSemanticsError,
    Trace,
    TraceError,
    WellNestednessError,
)
from repro.trace.writers import dump_trace

from conftest import random_trace


def _events(*specs):
    """Build unindexed events from (thread, etype, target) tuples."""
    return [
        Event(i, thread, etype, target)
        for i, (thread, etype, target) in enumerate(specs)
    ]


def _batch_error(events):
    """The (type, message) Trace(validate=True) raises, or None."""
    try:
        Trace([Event(-1, e.thread, e.etype, e.target, e.loc) for e in events])
    except TraceError as error:
        return type(error), str(error)
    return None


def _stream_error(events):
    """The (type, message) ValidatingSource raises mid-stream, or None."""
    source = ValidatingSource(IterableSource(iter(events), name="mal"))
    try:
        for _ in source:
            pass
    except TraceError as error:
        return type(error), str(error)
    return None


MALFORMED = {
    "overlap_acquire": _events(
        ("t1", EventType.ACQUIRE, "l"),
        ("t2", EventType.ACQUIRE, "l"),
    ),
    "reentrant_acquire": _events(
        ("t1", EventType.ACQUIRE, "l"),
        ("t1", EventType.ACQUIRE, "l"),
    ),
    "foreign_thread_release": _events(
        ("t1", EventType.ACQUIRE, "l"),
        ("t2", EventType.RELEASE, "l"),
    ),
    "release_without_acquire": _events(
        ("t1", EventType.WRITE, "x"),
        ("t1", EventType.RELEASE, "l"),
    ),
    "unnested_sections": _events(
        ("t1", EventType.ACQUIRE, "l1"),
        ("t1", EventType.ACQUIRE, "l2"),
        ("t1", EventType.RELEASE, "l1"),
    ),
    "release_wrong_lock": _events(
        ("t1", EventType.ACQUIRE, "l1"),
        ("t1", EventType.RELEASE, "l2"),
    ),
}


class TestBatchStreamParity:
    @pytest.mark.parametrize("kind", sorted(MALFORMED))
    def test_malformed_stream_matches_batch_exactly(self, kind):
        """Identical exception class AND message as Trace(validate=True)."""
        events = MALFORMED[kind]
        batch = _batch_error(events)
        stream = _stream_error(events)
        assert batch is not None, "fixture %s should be malformed" % kind
        assert stream == batch

    @pytest.mark.parametrize("kind", ["overlap_acquire", "unnested_sections"])
    def test_violation_buried_in_prefix_keeps_indices(self, kind):
        """Leading well-formed events shift the reported indices in both
        paths the same way (the validator numbers by stream position)."""
        prefix = _events(
            ("t0", EventType.WRITE, "y"),
            ("t0", EventType.ACQUIRE, "m"),
            ("t0", EventType.READ, "y"),
            ("t0", EventType.RELEASE, "m"),
        )
        events = prefix + [
            Event(-1, e.thread, e.etype, e.target) for e in MALFORMED[kind]
        ]
        assert _stream_error(events) == _batch_error(events)

    @pytest.mark.parametrize("seed", range(10))
    def test_random_mutation_parity(self, seed):
        """Property: corrupt one event of a valid trace at random; stream
        and batch validation agree on acceptance and on the error."""
        rng = random.Random(seed)
        trace = random_trace(seed=seed, n_events=40, n_threads=3, n_locks=2)
        events = [Event(-1, e.thread, e.etype, e.target, e.loc) for e in trace]
        victim = rng.randrange(len(events))
        mutation = rng.choice(["acquire", "release", "swap_thread"])
        old = events[victim]
        if mutation == "acquire":
            events[victim] = Event(-1, old.thread, EventType.ACQUIRE, "l0")
        elif mutation == "release":
            events[victim] = Event(-1, old.thread, EventType.RELEASE, "l0")
        else:
            events[victim] = Event(-1, "t_foreign", old.etype, old.target)
        assert _stream_error(events) == _batch_error(events)

    @pytest.mark.parametrize("seed", range(5))
    def test_valid_traces_pass_through_unchanged(self, seed):
        trace = random_trace(seed=seed, n_events=50)
        source = ValidatingSource(IterableSource(iter(trace), name=trace.name))
        passed = list(source)
        assert [
            (e.thread, e.etype, e.target) for e in passed
        ] == [(e.thread, e.etype, e.target) for e in trace]

    @pytest.mark.parametrize("seed", [0, 4])
    def test_reports_identical_with_and_without_validator(self, seed):
        trace = random_trace(seed=seed, n_events=60)
        plain = detect_races(IterableSource(iter(trace), name=trace.name))
        checked = detect_races(
            ValidatingSource(IterableSource(iter(trace), name=trace.name))
        )
        assert sorted(checked.location_pairs()) == sorted(plain.location_pairs())
        assert checked.raw_race_count == plain.raw_race_count


class TestConstantState:
    def test_state_empty_after_sections_close(self):
        validator = OnlineValidator()
        for event in _events(
            ("t1", EventType.ACQUIRE, "l1"),
            ("t1", EventType.ACQUIRE, "l2"),
            ("t1", EventType.RELEASE, "l2"),
            ("t1", EventType.RELEASE, "l1"),
        ):
            validator.check(event)
        assert validator.state_size() == 0

    def test_no_growth_on_lock_free_suffix(self):
        """O(1) state: a long lock-free suffix adds nothing, regardless of
        how many threads/variables it touches."""
        validator = OnlineValidator()
        validator.check(Event(-1, "t0", EventType.ACQUIRE, "l"))
        validator.check(Event(-1, "t0", EventType.RELEASE, "l"))
        sizes = set()
        for i in range(5000):
            thread = "t%d" % (i % 7)
            etype = EventType.WRITE if i % 2 else EventType.READ
            validator.check(Event(-1, thread, etype, "x%d" % (i % 11)))
            sizes.add(validator.state_size())
        assert sizes == {0}
        assert validator.events_checked == 5002

    def test_state_bounded_by_open_sections(self):
        validator = OnlineValidator()
        for i in range(8):
            validator.check(Event(-1, "t%d" % i, EventType.ACQUIRE, "l%d" % i))
        # One holder entry + one stack entry per open section.
        assert validator.state_size() == 16
        for i in range(8):
            validator.check(Event(-1, "t%d" % i, EventType.RELEASE, "l%d" % i))
        assert validator.state_size() == 0


class TestTransparency:
    def test_forwards_completeness_and_trace(self, protected_trace):
        source = ValidatingSource(TraceSource(protected_trace))
        assert source.is_complete
        assert source.trace is protected_trace
        assert source.length_hint() == len(protected_trace)
        assert source.registry is protected_trace.registry

    def test_stream_inner_stays_stream(self, protected_trace):
        source = ValidatingSource(
            IterableSource(iter(protected_trace), name="s")
        )
        assert not source.is_complete
        assert source.trace is None

    def test_replayable_source_restarts_validation(self, tmp_path):
        from repro.engine import FileSource

        trace = random_trace(seed=2, n_events=30)
        path = dump_trace(trace, tmp_path / "t.std")
        source = ValidatingSource(FileSource(path))
        assert len(list(source)) == len(trace)
        # A second pass starts a fresh validator (no stale holder state).
        assert len(list(source)) == len(trace)
        assert source.validator.events_checked == len(trace)

    def test_engine_pass_over_validating_source(self, simple_race_trace):
        result = RaceEngine().run(
            ValidatingSource(TraceSource(simple_race_trace))
        )
        assert result["WCP"].count() == 1
        assert result.events == len(simple_race_trace)


class TestCliValidation:
    def _write_malformed(self, tmp_path):
        path = tmp_path / "bad.std"
        path.write_text("t1|acq(l)|a:1\nt1|w(x)|a:2\nt2|rel(l)|b:1\n")
        return path

    def test_analyze_stream_validates_by_default(self, tmp_path, capsys):
        path = self._write_malformed(tmp_path)
        assert main(["analyze", "--stream", str(path)]) == 2
        err = capsys.readouterr().err
        assert "with no lock held" in err

    def test_analyze_stream_no_validate_opts_out(self, tmp_path):
        path = self._write_malformed(tmp_path)
        assert main(
            ["analyze", "--stream", "--no-validate", str(path)]
        ) in (0, 1)

    def test_stream_and_batch_reject_with_same_message(self, tmp_path, capsys):
        path = self._write_malformed(tmp_path)
        main(["analyze", "--stream", str(path)])
        streamed = capsys.readouterr().err
        main(["analyze", str(path)])
        batch = capsys.readouterr().err
        assert streamed == batch

    def test_stats_validates_by_default(self, tmp_path, capsys):
        path = self._write_malformed(tmp_path)
        assert main(["stats", str(path)]) == 2
        assert "with no lock held" in capsys.readouterr().err

    def test_stats_no_validate(self, tmp_path, capsys):
        path = self._write_malformed(tmp_path)
        assert main(["stats", "--no-validate", str(path)]) == 0
        assert "events" in capsys.readouterr().out

    def test_stats_well_formed_unchanged(self, tmp_path, capsys):
        trace = random_trace(seed=1, n_events=20)
        path = dump_trace(trace, tmp_path / "ok.std")
        assert main(["stats", str(path)]) == 0
        assert "events" in capsys.readouterr().out

    def test_analyze_stream_valid_trace_still_never_materialises(
        self, tmp_path, monkeypatch
    ):
        """Validation must stay online: no Trace construction under
        --stream even with validation enabled."""
        import repro.trace.trace as trace_module

        trace = random_trace(seed=3, n_events=30)
        path = dump_trace(trace, tmp_path / "t.std")

        real_init = trace_module.Trace.__init__

        def _forbidden(self, *args, **kwargs):
            raise AssertionError("--stream must not materialise a Trace")

        monkeypatch.setattr(trace_module.Trace, "__init__", _forbidden)
        try:
            assert main(["analyze", str(path), "--stream"]) in (0, 1)
        finally:
            monkeypatch.setattr(trace_module.Trace, "__init__", real_init)


class TestValidatorEdgeCases:
    def test_checks_are_incremental_not_deferred(self):
        """The violation is raised on the offending event, not at EOF."""
        validator = OnlineValidator()
        validator.check(Event(-1, "t1", EventType.ACQUIRE, "l"))
        with pytest.raises(LockSemanticsError):
            validator.check(Event(-1, "t2", EventType.ACQUIRE, "l"))

    def test_fork_join_and_accesses_are_ignored(self):
        validator = OnlineValidator()
        for event in [
            Event(-1, "t1", EventType.FORK, "t2"),
            Event(-1, "t2", EventType.WRITE, "x"),
            Event(-1, "t1", EventType.JOIN, "t2"),
        ]:
            validator.check(event)
        assert validator.state_size() == 0
        assert validator.events_checked == 3

    def test_interleaved_threads_distinct_locks_ok(self):
        validator = OnlineValidator()
        for event in _events(
            ("t1", EventType.ACQUIRE, "l1"),
            ("t2", EventType.ACQUIRE, "l2"),
            ("t1", EventType.RELEASE, "l1"),
            ("t2", EventType.RELEASE, "l2"),
        ):
            validator.check(event)
        assert validator.state_size() == 0

    def test_wellnestedness_is_a_trace_error(self):
        validator = OnlineValidator()
        validator.check(Event(-1, "t1", EventType.ACQUIRE, "l1"))
        validator.check(Event(-1, "t1", EventType.ACQUIRE, "l2"))
        with pytest.raises(WellNestednessError):
            validator.check(Event(-1, "t1", EventType.RELEASE, "l1"))
