"""Tests for the declarative event-semantics registry.

Covers the tentpole contract of the registry layer:

* every event kind is declared exactly once, with consistent tokens,
  operand arity, validator role, clock action and sharding class;
* the derived membership sets (LOCK/ACCESS/THREAD/BARRIER events) are
  computed from the declarations, not hand-maintained;
* batch (:class:`Trace`) and streaming (:class:`OnlineValidator`)
  validation raise the *identical* exception class and message for every
  discipline violation, including the rwlock-specific ones;
* the detectors implement the agreed ordering semantics for rwlocks,
  barriers and wait/notify -- identically across WCP, HB and FastTrack
  where the models coincide;
* the partitioner classifies the new kinds off the registry.
"""

import pytest

from repro.core.wcp import WCPDetector
from repro.engine.partition import (
    HashPartition,
    REPLICATE,
    ROUTE,
    ROUTE_CLOCK,
    StreamPartitioner,
)
from repro.engine.validate import OnlineValidator
from repro.hb.fasttrack import FastTrackDetector
from repro.hb.hb import HBDetector
from repro.trace.builder import TraceBuilder
from repro.trace.event import (
    ACCESS_EVENTS,
    Event,
    EventType,
    LOCK_EVENTS,
    THREAD_EVENTS,
)
from repro.trace.semantics import (
    BARRIER_EVENTS,
    REGISTRY,
    TOKEN_TO_ETYPE,
    TraceError,
)
from repro.trace.trace import Trace

DETECTORS = [WCPDetector, HBDetector, FastTrackDetector]


def ev(index, thread, token, target):
    return Event(index, thread, EventType(token), target, "L%d" % index)


def build(rows):
    return [ev(i, t, k, tgt) for i, (t, k, tgt) in enumerate(rows)]


class TestRegistry:
    def test_every_event_type_is_declared(self):
        assert set(REGISTRY) == set(EventType)

    def test_primary_token_is_the_wire_value(self):
        for etype, semantics in REGISTRY.items():
            assert semantics.token == etype.value
            assert semantics.tokens[0] == etype.value

    def test_tokens_are_globally_unique(self):
        seen = {}
        for etype, semantics in REGISTRY.items():
            for token in semantics.tokens:
                assert token not in seen, (token, etype, seen[token])
                seen[token] = etype
        assert TOKEN_TO_ETYPE == seen

    def test_derived_sets(self):
        assert ACCESS_EVENTS == frozenset({EventType.READ, EventType.WRITE})
        assert THREAD_EVENTS == frozenset({EventType.FORK, EventType.JOIN})
        assert BARRIER_EVENTS == frozenset({EventType.BARRIER})
        assert LOCK_EVENTS == frozenset({
            EventType.ACQUIRE, EventType.RELEASE,
            EventType.RACQ_R, EventType.RACQ_W, EventType.RREL,
            EventType.WAIT, EventType.NOTIFY,
        })

    def test_new_kinds_replicate(self):
        for etype in (EventType.RACQ_R, EventType.RACQ_W, EventType.RREL,
                      EventType.BARRIER, EventType.WAIT, EventType.NOTIFY):
            assert REGISTRY[etype].shard_class == "replicate"
        for etype in ACCESS_EVENTS:
            assert REGISTRY[etype].shard_class.startswith("route")

    def test_operand_is_required(self):
        with pytest.raises(ValueError, match="lock"):
            Event(0, "t", EventType.RACQ_R, None)
        with pytest.raises(ValueError, match="barrier"):
            Event(0, "t", EventType.BARRIER, None)
        # Markers take no operand.
        Event(0, "t", EventType.BEGIN, None)

    def test_event_helpers(self):
        event = ev(0, "t", "barrier", "b")
        assert event.is_barrier()
        assert event.barrier == "b"
        assert ev(0, "t", "rrel", "m").lock == "m"


def _trace_error(events):
    try:
        Trace(list(events), validate=True)
    except TraceError as error:
        return type(error), str(error)
    return None


def _stream_error(events):
    validator = OnlineValidator()
    try:
        for event in events:
            validator.check(event)
    except TraceError as error:
        return type(error), str(error)
    return None


MALFORMED = {
    "acquire_while_read_held": [
        ("t1", "racq_r", "m"), ("t2", "acq", "m"),
    ],
    "read_acquire_while_held": [
        ("t1", "acq", "m"), ("t2", "racq_r", "m"),
    ],
    "write_acquire_while_read_held": [
        ("t1", "racq_r", "m"), ("t2", "racq_w", "m"),
    ],
    "reentrant_read_acquire": [
        ("t1", "racq_r", "m"), ("t1", "racq_r", "m"),
    ],
    "unmatched_rw_release": [
        ("t1", "rrel", "m"),
    ],
    "mutex_release_closes_read_section": [
        ("t1", "racq_r", "m"), ("t1", "rel", "m"),
    ],
    "rw_release_closes_mutex_section": [
        ("t1", "acq", "m"), ("t1", "rrel", "m"),
    ],
    "overlapping_write_acquires": [
        ("t1", "racq_w", "m"), ("t2", "racq_w", "m"),
    ],
    "badly_nested_mixed_sections": [
        ("t1", "acq", "a"), ("t1", "racq_r", "b"), ("t1", "rel", "a"),
    ],
    "wait_on_held_monitor": [
        ("t1", "acq", "m"), ("t2", "wait", "m"),
    ],
}


class TestValidationParity:
    @pytest.mark.parametrize("name", sorted(MALFORMED))
    def test_batch_and_stream_raise_identically(self, name):
        events = build(MALFORMED[name])
        batch = _trace_error(events)
        stream = _stream_error(events)
        assert batch is not None, name
        assert batch == stream

    @pytest.mark.parametrize("name", sorted(MALFORMED))
    def test_errors_are_actionable(self, name):
        # One line, names the lock and an event index.
        error = _trace_error(build(MALFORMED[name]))
        assert error is not None
        message = error[1]
        assert "\n" not in message
        assert "'m'" in message or "'a'" in message or "'b'" in message
        assert "event" in message

    def test_well_formed_vocabulary_passes_both(self):
        rows = [
            ("t1", "racq_w", "rw"), ("t1", "w", "x"), ("t1", "rrel", "rw"),
            ("t1", "racq_r", "rw"), ("t2", "racq_r", "rw"),
            ("t1", "r", "x"), ("t2", "r", "x"),
            ("t1", "rrel", "rw"), ("t2", "rrel", "rw"),
            ("t1", "barrier", "b"), ("t2", "barrier", "b"),
            ("t1", "acq", "mon"), ("t1", "notify", "mon"),
            ("t1", "rel", "mon"),
            ("t2", "wait", "mon"), ("t2", "rel", "mon"),
        ]
        events = build(rows)
        assert _trace_error(events) is None
        assert _stream_error(events) is None

    def test_validator_state_shrinks_back(self):
        validator = OnlineValidator()
        for event in build([
            ("t1", "racq_r", "m"), ("t2", "racq_r", "m"),
            ("t1", "rrel", "m"), ("t2", "rrel", "m"),
        ]):
            validator.check(event)
        assert validator.state_size() == 0


class TestTraceIndexing:
    def test_census(self):
        trace = Trace(build([
            ("t1", "racq_r", "m"), ("t1", "w", "x"), ("t1", "rrel", "m"),
            ("t1", "barrier", "b"),
        ]))
        assert trace.census() == {"racq_r": 1, "w": 1, "rrel": 1,
                                  "barrier": 1}

    def test_barriers_property(self):
        trace = Trace(build([
            ("t1", "barrier", "b1"), ("t1", "barrier", "b2"),
            ("t1", "barrier", "b1"),
        ]))
        assert trace.barriers == ["b1", "b2"]

    def test_rw_critical_section(self):
        trace = Trace(build([
            ("t1", "racq_w", "m"), ("t1", "w", "x"), ("t1", "rrel", "m"),
        ]))
        section = trace.critical_section(trace.events[0])
        assert [event.index for event in section] == [0, 1, 2]
        assert trace.match(trace.events[0]).index == 2
        assert trace.match(trace.events[2]).index == 0

    def test_read_section_does_not_count_as_held(self):
        trace = Trace(build([
            ("t1", "racq_r", "m"), ("t1", "w", "x"), ("t1", "rrel", "m"),
        ]))
        # Read sections give no exclusion, so the access is not "guarded".
        assert trace.held_locks(trace.events[1]) == ()


class TestOrderingSemantics:
    """The agreed partial-order rules of the extended vocabulary."""

    @pytest.mark.parametrize("detector_cls", DETECTORS)
    def test_read_sections_race(self, detector_cls):
        trace = (
            TraceBuilder()
            .read_acquire("t1", "m").write("t1", "x").rw_release("t1", "m")
            .read_acquire("t2", "m").write("t2", "x").rw_release("t2", "m")
            .build()
        )
        assert detector_cls().run(trace).count() == 1

    @pytest.mark.parametrize("detector_cls", DETECTORS)
    def test_write_sections_exclude(self, detector_cls):
        trace = (
            TraceBuilder()
            .write_acquire("t1", "m").write("t1", "x").rw_release("t1", "m")
            .write_acquire("t2", "m").write("t2", "x").rw_release("t2", "m")
            .build()
        )
        assert detector_cls().run(trace).count() == 0

    @pytest.mark.parametrize("detector_cls", DETECTORS)
    @pytest.mark.parametrize("order", ["write_first", "read_first"])
    def test_write_and_read_sections_exclude(self, detector_cls, order):
        builder = TraceBuilder()
        if order == "write_first":
            builder.write_acquire("t1", "m").write("t1", "x")
            builder.rw_release("t1", "m")
            builder.read_acquire("t2", "m").read("t2", "x")
            builder.rw_release("t2", "m")
        else:
            builder.read_acquire("t1", "m").write("t1", "x")
            builder.rw_release("t1", "m")
            builder.write_acquire("t2", "m").write("t2", "x")
            builder.rw_release("t2", "m")
        assert detector_cls().run(builder.build()).count() == 0

    @pytest.mark.parametrize(
        "detector_cls,expected",
        [(WCPDetector, 1), (HBDetector, 0), (FastTrackDetector, 0)],
    )
    def test_figure_2b_shape_on_write_sections(self, detector_cls, expected):
        # The paper's Figure 2b with the mutex replaced by write-mode
        # rwlock sections: the race on ``y`` is invisible to HB (the
        # release/write-acquire edge orders the sections) but WCP's
        # Rule (a) only orders the release before the *conflicting*
        # ``r(x)``, which comes after ``r(y)`` -- write sections behave
        # exactly like mutexes, fine-grained rules included.
        trace = (
            TraceBuilder()
            .write("t1", "y")
            .write_acquire("t1", "m").write("t1", "x").rw_release("t1", "m")
            .write_acquire("t2", "m").read("t2", "y").read("t2", "x")
            .rw_release("t2", "m")
            .build()
        )
        assert detector_cls().run(trace).count() == expected

    @pytest.mark.parametrize("detector_cls", DETECTORS)
    def test_barrier_orders_across_generation(self, detector_cls):
        trace = (
            TraceBuilder()
            .write("t1", "x")
            .barrier("t1", "b").barrier("t2", "b")
            .write("t2", "x")
            .build()
        )
        assert detector_cls().run(trace).count() == 0

    @pytest.mark.parametrize("detector_cls", DETECTORS)
    def test_barrier_generations_are_separate(self, detector_cls):
        # A write after generation 1 races with a write before
        # generation 2 by a thread that only joined generation 2... but
        # every pre-generation-1 write is ordered before every
        # post-generation-1 write of the participants.
        trace = (
            TraceBuilder()
            .write("t1", "x")
            .barrier("t1", "b").barrier("t2", "b")
            .write("t2", "x")
            .barrier("t1", "b").barrier("t2", "b")
            .write("t1", "x")
            .build()
        )
        assert detector_cls().run(trace).count() == 0

    @pytest.mark.parametrize("detector_cls", DETECTORS)
    def test_unsynchronised_threads_race_around_barrier(self, detector_cls):
        # t3 never arrives at the barrier: its write is unordered.
        trace = (
            TraceBuilder()
            .write("t1", "x")
            .barrier("t1", "b").barrier("t2", "b")
            .write("t3", "x")
            .build()
        )
        assert detector_cls().run(trace).count() >= 1

    @pytest.mark.parametrize("detector_cls", DETECTORS)
    def test_notify_orders_wait(self, detector_cls):
        trace = (
            TraceBuilder()
            .acquire("t1", "mon").write("t1", "x").notify("t1", "mon")
            .release("t1", "mon")
            .wait("t2", "mon").write("t2", "x").release("t2", "mon")
            .build()
        )
        assert detector_cls().run(trace).count() == 0

    @pytest.mark.parametrize("detector_cls", DETECTORS)
    def test_wait_without_notify_still_locks(self, detector_cls):
        # Without a notify, wait still behaves as a monitor reacquire:
        # the monitor's release/acquire chain orders the accesses for HB
        # but the sections conflict, so WCP Rule (a) orders them too.
        trace = (
            TraceBuilder()
            .acquire("t1", "mon").write("t1", "x").release("t1", "mon")
            .wait("t2", "mon").write("t2", "x").release("t2", "mon")
            .build()
        )
        assert detector_cls().run(trace).count() == 0

    @pytest.mark.parametrize("detector_cls", DETECTORS)
    def test_notify_reaches_later_waiters(self, detector_cls):
        # notifyAll semantics: the notify accumulator is never cleared,
        # so a second waiter is ordered after the notifier too.
        trace = (
            TraceBuilder()
            .acquire("t1", "mon").write("t1", "x").notify("t1", "mon")
            .release("t1", "mon")
            .wait("t2", "mon").release("t2", "mon")
            .wait("t3", "mon").write("t3", "x").release("t3", "mon")
            .build()
        )
        assert detector_cls().run(trace).count() == 0


class TestPartitionerTaxonomy:
    def _classify_all(self, rows, shards=3):
        partitioner = StreamPartitioner(HashPartition(shards))
        return [partitioner.classify(event) for event in build(rows)], \
            partitioner

    def test_new_sync_kinds_replicate(self):
        kinds, _ = self._classify_all([
            ("t1", "racq_w", "m"), ("t1", "rrel", "m"),
            ("t1", "barrier", "b"), ("t1", "notify", "mon"),
            ("t1", "wait", "mon"), ("t1", "rel", "mon"),
        ])
        assert all(kind == REPLICATE for kind, _ in kinds)

    def test_access_in_read_section_is_clock_relevant(self):
        kinds, _ = self._classify_all([
            ("t1", "racq_r", "m"),
            ("t1", "r", "x"),       # consumes Rule (a) cells -> ROUTE_CLOCK
            ("t1", "rrel", "m"),
            ("t1", "w", "x"),       # deferred bump carrier -> ROUTE_CLOCK
            ("t1", "w", "x"),       # plain again -> ROUTE
        ])
        assert [kind for kind, _ in kinds] == [
            REPLICATE, ROUTE_CLOCK, REPLICATE, ROUTE_CLOCK, ROUTE,
        ]

    def test_read_mode_release_keeps_exclusive_depth(self):
        kinds, _ = self._classify_all([
            ("t1", "acq", "a"),
            ("t1", "racq_r", "m"),
            ("t1", "rrel", "m"),    # closes the read section...
            ("t1", "w", "x"),       # ...but lock "a" is still held
        ])
        assert kinds[-1][0] == ROUTE_CLOCK

    def test_state_round_trip_covers_read_held(self):
        _, partitioner = self._classify_all([
            ("t1", "racq_r", "m"),
        ])
        state = partitioner.state_dict()
        assert state["read_held"] == {"t1": {"m"}}
        fresh = StreamPartitioner(HashPartition(3))
        fresh.load_state(state)
        kind, _ = fresh.classify(ev(1, "t1", "r", "x"))
        assert kind == ROUTE_CLOCK

    def test_legacy_state_without_read_held_loads(self):
        partitioner = StreamPartitioner(HashPartition(3))
        partitioner.load_state({
            "depth": {}, "pending": set(), "census": (0, 0, 0),
            "policy": {},
        })
        kind, _ = partitioner.classify(ev(0, "t1", "w", "x"))
        assert kind == ROUTE
