"""The paper's example traces, classified exactly as the paper claims.

This is the most direct check that the reproduction implements the same
relations as the paper: Figures 1-5 each come with an explicit statement of
which of HB / CP / WCP detects a race and what the ground truth is
(predictable race, predictable deadlock, or neither).
"""

import pytest

from repro.bench import paper_figures
from repro.core.closure import HBClosure, WCPClosure
from repro.core.wcp import WCPDetector
from repro.cp import CPClosure
from repro.hb import HBDetector
from repro.reordering import (
    find_deadlock_witness,
    find_race_witness,
    find_all_predictable_races,
)

# figure -> (hb_race, cp_race, wcp_race, predictable_race, predictable_deadlock)
# Note: Figure 4 has a predictable race (the paper's point); its three-lock
# cyclic acquisition pattern also admits a predictable deadlock, which the
# paper does not discuss but the witness search correctly finds.
EXPECTED = {
    "figure_1a": (False, False, False, False, False),
    "figure_1b": (False, True, True, True, False),
    "figure_2a": (False, False, False, False, False),
    "figure_2b": (False, False, True, True, False),
    "figure_3": (False, False, True, True, False),
    "figure_4": (False, False, True, True, True),
    "figure_5": (False, False, True, False, True),
}


@pytest.mark.parametrize("figure", sorted(EXPECTED))
class TestPaperFigureClassification:
    def _trace(self, figure):
        return paper_figures.ALL_FIGURES[figure]()

    def test_hb_classification(self, figure):
        expected_hb = EXPECTED[figure][0]
        trace = self._trace(figure)
        assert bool(HBClosure(trace).races()) == expected_hb
        assert HBDetector().run(trace).has_race() == expected_hb

    def test_cp_classification(self, figure):
        expected_cp = EXPECTED[figure][1]
        assert bool(CPClosure(self._trace(figure)).races()) == expected_cp

    def test_wcp_classification(self, figure):
        expected_wcp = EXPECTED[figure][2]
        trace = self._trace(figure)
        assert bool(WCPClosure(trace).races()) == expected_wcp
        assert WCPDetector().run(trace).has_race() == expected_wcp

    def test_ground_truth_race(self, figure):
        expected_race = EXPECTED[figure][3]
        trace = self._trace(figure)
        witnesses = find_all_predictable_races(trace, max_states_per_pair=200_000)
        assert bool(witnesses) == expected_race

    def test_ground_truth_deadlock(self, figure):
        expected_deadlock = EXPECTED[figure][4]
        trace = self._trace(figure)
        result = find_deadlock_witness(trace, max_states=200_000)
        assert result.found == expected_deadlock


class TestFigureDetails:
    def test_figure_1b_race_is_on_y(self):
        trace = paper_figures.figure_1b()
        racy_variables = {
            second.variable for _, second in WCPClosure(trace).races()
        }
        assert racy_variables == {"y"}

    def test_figure_2b_witness_matches_paper(self):
        # The paper reveals the race with the reordering e5, e1, e6.
        trace = paper_figures.figure_2b()
        write_y = trace[0]
        read_y = trace[5]
        result = find_race_witness(trace, write_y, read_y)
        assert result.found
        schedule = result.schedule
        assert schedule[-2:] in (
            [write_y, read_y], [read_y, write_y],
        ) or {schedule[-1], schedule[-2]} == {write_y, read_y}

    def test_figure_3_race_is_on_z_only(self):
        trace = paper_figures.figure_3()
        racy_variables = {
            second.variable for _, second in WCPClosure(trace).races()
        }
        assert racy_variables == {"z"}

    def test_figure_4_cp_orders_but_wcp_does_not(self):
        trace = paper_figures.figure_4()
        read_z = next(e for e in trace if e.is_read() and e.variable == "z")
        write_z = next(e for e in trace if e.is_write() and e.variable == "z")
        assert CPClosure(trace).ordered(read_z.index, write_z.index)
        assert not WCPClosure(trace).ordered(read_z.index, write_z.index)

    def test_figure_5_weak_soundness_case(self):
        # WCP flags the z pair, there is no predictable race, but there is a
        # predictable deadlock -- exactly the weak-soundness guarantee.
        trace = paper_figures.figure_5()
        assert WCPDetector().run(trace).has_race()
        read_z = next(e for e in trace if e.is_read() and e.variable == "z")
        write_z = next(e for e in trace if e.is_write() and e.variable == "z")
        assert not find_race_witness(trace, read_z, write_z, max_states=300_000).found
        assert find_deadlock_witness(trace).found

    def test_figure_6_is_race_free_and_uses_queues(self):
        trace = paper_figures.figure_6()
        report = WCPDetector().run(trace)
        assert not report.has_race()
        assert report.stats["max_queue_total"] > 0

    def test_all_figures_are_valid_traces(self):
        for name, build in paper_figures.ALL_FIGURES.items():
            trace = build()
            assert len(trace) > 0, name
