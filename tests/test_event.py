"""Unit tests for :mod:`repro.trace.event`."""

import pytest

from repro.trace.event import Event, EventType


class TestEventConstruction:
    def test_lock_event_requires_target(self):
        with pytest.raises(ValueError):
            Event(0, "t1", EventType.ACQUIRE)

    def test_access_event_requires_target(self):
        with pytest.raises(ValueError):
            Event(0, "t1", EventType.READ)

    def test_fork_requires_target(self):
        with pytest.raises(ValueError):
            Event(0, "t1", EventType.FORK)

    def test_begin_end_need_no_target(self):
        Event(0, "t1", EventType.BEGIN)
        Event(1, "t1", EventType.END)


class TestEventClassification:
    def test_acquire_release(self):
        acquire = Event(0, "t1", EventType.ACQUIRE, "l")
        release = Event(1, "t1", EventType.RELEASE, "l")
        assert acquire.is_acquire() and not acquire.is_release()
        assert release.is_release() and not release.is_acquire()
        assert acquire.is_lock_event() and release.is_lock_event()
        assert acquire.lock == release.lock == "l"

    def test_read_write(self):
        read = Event(0, "t1", EventType.READ, "x")
        write = Event(1, "t1", EventType.WRITE, "x")
        assert read.is_read() and read.is_access() and not read.is_write()
        assert write.is_write() and write.is_access()
        assert read.variable == write.variable == "x"

    def test_fork_join(self):
        fork = Event(0, "t1", EventType.FORK, "t2")
        join = Event(1, "t1", EventType.JOIN, "t2")
        assert fork.is_fork() and join.is_join()
        assert fork.other_thread == join.other_thread == "t2"

    def test_property_errors_on_wrong_kind(self):
        read = Event(0, "t1", EventType.READ, "x")
        with pytest.raises(AttributeError):
            read.lock
        acquire = Event(0, "t1", EventType.ACQUIRE, "l")
        with pytest.raises(AttributeError):
            acquire.variable
        with pytest.raises(AttributeError):
            acquire.other_thread


class TestConflicts:
    def test_write_write_conflict(self):
        a = Event(0, "t1", EventType.WRITE, "x")
        b = Event(1, "t2", EventType.WRITE, "x")
        assert a.conflicts_with(b) and b.conflicts_with(a)

    def test_read_write_conflict(self):
        a = Event(0, "t1", EventType.READ, "x")
        b = Event(1, "t2", EventType.WRITE, "x")
        assert a.conflicts_with(b)

    def test_read_read_no_conflict(self):
        a = Event(0, "t1", EventType.READ, "x")
        b = Event(1, "t2", EventType.READ, "x")
        assert not a.conflicts_with(b)

    def test_same_thread_no_conflict(self):
        a = Event(0, "t1", EventType.WRITE, "x")
        b = Event(1, "t1", EventType.WRITE, "x")
        assert not a.conflicts_with(b)

    def test_different_variable_no_conflict(self):
        a = Event(0, "t1", EventType.WRITE, "x")
        b = Event(1, "t2", EventType.WRITE, "y")
        assert not a.conflicts_with(b)

    def test_non_access_no_conflict(self):
        a = Event(0, "t1", EventType.ACQUIRE, "l")
        b = Event(1, "t2", EventType.WRITE, "x")
        assert not a.conflicts_with(b)


class TestLocation:
    def test_explicit_location(self):
        event = Event(0, "t1", EventType.WRITE, "x", loc="Foo.java:42")
        assert event.location() == "Foo.java:42"

    def test_synthesised_location_is_unique_per_event(self):
        a = Event(0, "t1", EventType.WRITE, "x")
        b = Event(1, "t1", EventType.WRITE, "x")
        assert a.location() != b.location()


class TestDunder:
    def test_equality_and_hash(self):
        a = Event(0, "t1", EventType.WRITE, "x")
        b = Event(0, "t1", EventType.WRITE, "x")
        assert a == b and hash(a) == hash(b)
        assert a != Event(1, "t1", EventType.WRITE, "x")
        assert a != "nope"

    def test_repr(self):
        assert "w(x)" in repr(Event(0, "t1", EventType.WRITE, "x"))
