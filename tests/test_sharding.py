"""Tests for the sharded engine: partitioning, parity, protocol, pickling."""

import pickle
import random

import pytest

from repro import (
    EngineConfig,
    EraserDetector,
    FastTrackDetector,
    HBDetector,
    RaceEngine,
    ShardedEngine,
    ShardedResult,
    WCPDetector,
    compare_detectors,
    detect_races,
    run_engine,
)
from repro.cli import main
from repro.engine import FileSource, STOP_EVENT_BUDGET, STOP_RACE_BUDGET
from repro.engine.partition import (
    REPLICATE,
    ROUTE,
    ROUTE_CLOCK,
    ExplicitPartition,
    HashPartition,
    RoundRobinPartition,
    StreamPartitioner,
    make_policy,
)
from repro.trace.event import Event, EventType
from repro.trace.trace import Trace
from repro.trace.writers import dump_trace

from conftest import random_trace


def _fingerprint(report):
    """Everything that identifies a report's findings (not its timings)."""
    return (
        sorted(tuple(sorted(key)) for key in report.location_pairs()),
        report.raw_race_count,
        report.count(),
        report.max_distance(),
    )


def fork_join_trace(seed, workers=3, steps=90):
    """A fork/join-connected workload: main forks workers, all mix
    lock-protected and unprotected accesses, main joins everyone."""
    rng = random.Random(seed)
    events = []

    def add(thread, etype, target):
        events.append(Event(len(events), thread, etype, target))

    threads = ["w%d" % i for i in range(workers)]
    add("main", EventType.WRITE, "x0")
    for worker in threads:
        add("main", EventType.FORK, worker)
    pool = ["main"] + threads
    for _ in range(steps):
        thread = rng.choice(pool)
        variable = "x%d" % rng.randrange(6)
        if rng.random() < 0.35:
            lock = "l%d" % rng.randrange(2)
            add(thread, EventType.ACQUIRE, lock)
            add(thread, EventType.WRITE, variable)
            add(thread, EventType.RELEASE, lock)
        else:
            etype = EventType.READ if rng.random() < 0.5 else EventType.WRITE
            add(thread, etype, variable)
    for worker in threads:
        add("main", EventType.JOIN, worker)
    add("main", EventType.READ, "x1")
    return Trace(events, validate=False, name="forkjoin_%d" % seed)


class TestPartitionPolicies:
    def test_hash_partition_is_stable_and_in_range(self):
        policy = HashPartition(4)
        owners = {policy.owner_of("x%d" % i) for i in range(50)}
        assert owners <= set(range(4))
        assert policy.owner_of("x7") == HashPartition(4).owner_of("x7")

    def test_round_robin_balances_variable_count(self):
        policy = RoundRobinPartition(3)
        owners = [policy.owner_of("v%d" % i) for i in range(9)]
        assert owners == [0, 1, 2, 0, 1, 2, 0, 1, 2]
        # Repeat lookups are sticky.
        assert policy.owner_of("v4") == 1

    def test_explicit_partition_pins_and_falls_back(self):
        policy = ExplicitPartition(4, {"hot": 3})
        assert policy.owner_of("hot") == 3
        assert 0 <= policy.owner_of("other") < 4
        with pytest.raises(ValueError):
            ExplicitPartition(2, {"hot": 5})

    def test_make_policy(self):
        assert isinstance(make_policy("hash", 2), HashPartition)
        assert isinstance(make_policy("rr", 2), RoundRobinPartition)
        assert isinstance(make_policy(None, 2), HashPartition)
        existing = HashPartition(3)
        assert make_policy(existing, 3) is existing
        with pytest.raises(ValueError):
            make_policy("nope", 2)
        with pytest.raises(ValueError):
            make_policy(existing, 4)  # shard-count mismatch


class TestEventTaxonomy:
    def test_sync_events_replicate(self):
        partitioner = StreamPartitioner(HashPartition(2))
        for etype, target in [
            (EventType.ACQUIRE, "l"), (EventType.RELEASE, "l"),
            (EventType.FORK, "t2"), (EventType.JOIN, "t2"),
        ]:
            kind, owner = partitioner.classify(Event(-1, "t1", etype, target))
            assert kind is REPLICATE and owner == -1

    def test_accesses_route_outside_critical_sections(self):
        partitioner = StreamPartitioner(HashPartition(2))
        kind, owner = partitioner.classify(Event(-1, "t1", EventType.READ, "x"))
        assert kind is ROUTE and owner in (0, 1)

    def test_in_cs_accesses_are_clock_relevant(self):
        partitioner = StreamPartitioner(HashPartition(2))
        partitioner.classify(Event(-1, "t1", EventType.ACQUIRE, "l"))
        kind, _ = partitioner.classify(Event(-1, "t1", EventType.WRITE, "x"))
        assert kind is ROUTE_CLOCK
        partitioner.classify(Event(-1, "t1", EventType.RELEASE, "l"))
        # First access after the release carries the deferred bump.
        kind, _ = partitioner.classify(Event(-1, "t1", EventType.WRITE, "x"))
        assert kind is ROUTE_CLOCK
        # ... but only the first one.
        kind, _ = partitioner.classify(Event(-1, "t1", EventType.WRITE, "x"))
        assert kind is ROUTE
        # Other threads are unaffected.
        kind, _ = partitioner.classify(Event(-1, "t2", EventType.WRITE, "x"))
        assert kind is ROUTE

    @pytest.mark.parametrize("policy_name", ["hash", "rr"])
    def test_routing_memo_matches_policy(self, policy_name):
        """The coordinator's int-valued routing memo never diverges from
        asking the policy directly (same stream, fresh policy)."""
        trace = random_trace(31, n_events=200, n_threads=4, n_vars=9)
        partitioner = StreamPartitioner(make_policy(policy_name, 3))
        reference = make_policy(policy_name, 3)
        for event in trace:
            kind, owner = partitioner.classify(event)
            if kind is not REPLICATE:
                assert owner == reference.owner_of(event.target)
        # Every access was memoized exactly once per variable.
        assert set(partitioner._owner_memo) == {
            event.target for event in trace
            if event.etype in (EventType.READ, EventType.WRITE)
        }

    def test_routing_memo_dropped_on_restore(self):
        """load_state must re-consult the (restored) policy, not replay
        pre-restore memo entries."""
        partitioner = StreamPartitioner(RoundRobinPartition(2))
        partitioner.classify(Event(-1, "t1", EventType.WRITE, "a"))
        partitioner.classify(Event(-1, "t1", EventType.WRITE, "b"))
        state = partitioner.state_dict()
        assert partitioner._owner_memo == {"a": 0, "b": 1}
        restored = StreamPartitioner(RoundRobinPartition(2))
        restored.load_state(state)
        assert restored._owner_memo == {}
        # Restored round-robin still owes "a" and "b" their original
        # shards, and new variables continue the rotation.
        _, owner_a = restored.classify(Event(-1, "t1", EventType.WRITE, "a"))
        _, owner_c = restored.classify(Event(-1, "t1", EventType.WRITE, "c"))
        assert owner_a == 0 and owner_c == 0  # c is the third variable

    def test_census(self):
        partitioner = StreamPartitioner(HashPartition(2))
        partitioner.classify(Event(-1, "t1", EventType.ACQUIRE, "l"))
        partitioner.classify(Event(-1, "t1", EventType.WRITE, "x"))
        partitioner.classify(Event(-1, "t1", EventType.RELEASE, "l"))
        partitioner.classify(Event(-1, "t2", EventType.READ, "x"))
        assert partitioner.stats() == {
            "replicated": 2, "routed": 1, "routed_clock": 1,
        }


DETECTOR_SETS = [["wcp"], ["hb"], ["fasttrack"], ["wcp", "hb", "fasttrack"]]


class TestShardParity:
    """ShardedEngine(shards=k) must report exactly the single engine's races."""

    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("shards", [2, 3, 4])
    def test_random_trace_parity_serial(self, seed, shards):
        trace = random_trace(
            seed, n_events=120, n_threads=4, n_locks=3, n_vars=6
        )
        single = RaceEngine().run(trace, detectors=["wcp", "hb", "fasttrack"])
        sharded = ShardedEngine(shards=shards, mode="serial", batch_size=17).run(
            trace, detectors=["wcp", "hb", "fasttrack"]
        )
        for name in single.keys():
            assert _fingerprint(single[name]) == _fingerprint(sharded[name])

    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("detectors", DETECTOR_SETS)
    def test_fork_join_parity(self, seed, detectors):
        trace = fork_join_trace(seed)
        single = RaceEngine().run(trace, detectors=detectors)
        sharded = ShardedEngine(shards=4, mode="serial", batch_size=13).run(
            trace, detectors=detectors
        )
        for name in single.keys():
            assert _fingerprint(single[name]) == _fingerprint(sharded[name])

    @pytest.mark.parametrize("policy", ["hash", "rr"])
    def test_policy_independence(self, policy):
        trace = random_trace(11, n_events=150, n_threads=4, n_vars=8)
        single = RaceEngine().run(trace, detectors=["wcp"])
        sharded = ShardedEngine(shards=3, mode="serial", policy=policy).run(
            trace, detectors=["wcp"]
        )
        assert _fingerprint(single["WCP"]) == _fingerprint(sharded["WCP"])

    def test_thread_mode_parity(self):
        trace = random_trace(5, n_events=200, n_threads=5, n_vars=8)
        single = RaceEngine().run(trace, detectors=["wcp", "hb"])
        sharded = ShardedEngine(shards=3, mode="thread", batch_size=32).run(
            trace, detectors=["wcp", "hb"]
        )
        for name in single.keys():
            assert _fingerprint(single[name]) == _fingerprint(sharded[name])

    def test_process_mode_parity(self):
        trace = random_trace(9, n_events=250, n_threads=4, n_vars=8)
        single = RaceEngine().run(trace, detectors=["wcp", "hb"])
        sharded = ShardedEngine(shards=2, mode="process", batch_size=64).run(
            trace, detectors=["wcp", "hb"]
        )
        for name in single.keys():
            assert _fingerprint(single[name]) == _fingerprint(sharded[name])

    def test_stream_source_parity(self, tmp_path):
        trace = random_trace(21, n_events=160, n_threads=4, n_vars=6)
        path = dump_trace(trace, tmp_path / "t.std")
        single = RaceEngine().run(FileSource(path), detectors=["wcp"])
        sharded = ShardedEngine(shards=3, mode="serial").run(
            FileSource(path), detectors=["wcp"]
        )
        assert _fingerprint(single["WCP"]) == _fingerprint(sharded["WCP"])

    def test_single_shard_is_byte_identical(self, simple_race_trace):
        """shards=1 takes the exact unsharded code path."""
        single = RaceEngine().run(simple_race_trace, detectors=["wcp", "hb"])
        one = ShardedEngine(shards=1).run(simple_race_trace, detectors=["wcp", "hb"])
        assert not isinstance(one, ShardedResult)
        assert set(one.keys()) == set(single.keys())
        for name in single.keys():
            assert _fingerprint(single[name]) == _fingerprint(one[name])
            # Full stats-key identity: nothing shard-related leaks in.
            assert set(one[name].stats) == set(single[name].stats)

    def test_cross_variable_location_pair_keeps_single_engine_witness(self):
        """One location pair witnessed by two different variables living
        on two different shards: the merge must keep the first-*detected*
        witness (the single engine's), regardless of shard merge order."""
        events = [
            Event(0, "t1", EventType.WRITE, "x", "a.py:1"),
            Event(1, "t2", EventType.WRITE, "x", "b.py:2"),  # detected here
            Event(2, "t1", EventType.WRITE, "y", "a.py:1"),
            Event(3, "t2", EventType.WRITE, "y", "b.py:2"),  # same pair, later
        ]
        trace = Trace(events, validate=False, name="xvar")
        single = RaceEngine().run(trace, detectors=["hb"])
        # Pin y to shard 0 and x to shard 1, so shard 0 (merged first)
        # holds the *later* witness and the merge must prefer shard 1's.
        policy = ExplicitPartition(2, {"y": 0, "x": 1})
        sharded = ShardedEngine(shards=2, mode="serial", policy=policy).run(
            trace, detectors=["hb"]
        )
        (single_pair,) = single["HB"].pairs()
        (sharded_pair,) = sharded["HB"].pairs()
        assert single_pair.first_event.index == 0
        assert sharded_pair.first_event == single_pair.first_event
        assert sharded_pair.second_event == single_pair.second_event
        assert single["HB"].max_distance() == sharded["HB"].max_distance()

    def test_merged_distances_and_witnesses(self):
        trace = random_trace(31, n_events=140, n_threads=4, n_vars=5)
        single = RaceEngine().run(trace, detectors=["wcp"])
        sharded = ShardedEngine(shards=4, mode="serial").run(
            trace, detectors=["wcp"]
        )
        single_pairs = {p.key(): p for p in single["WCP"].pairs()}
        sharded_pairs = {p.key(): p for p in sharded["WCP"].pairs()}
        assert set(single_pairs) == set(sharded_pairs)
        for key, pair in single_pairs.items():
            other = sharded_pairs[key]
            # Every raw racy pair is found exactly once (on the variable's
            # owner shard), so witnesses and distances match exactly.
            assert pair.first_event == other.first_event
            assert pair.second_event == other.second_event
            assert single["WCP"].distance_of(pair) == sharded["WCP"].distance_of(other)


class TestShardBoundaryProtocol:
    def test_cross_shard_clock_agreement(self):
        """All shards agree on the sync clocks of commonly-known threads."""
        for seed in range(4):
            trace = fork_join_trace(seed)
            result = ShardedEngine(shards=4, mode="serial", batch_size=16).run(
                trace, detectors=["wcp", "hb", "fasttrack"]
            )
            for position in range(3):
                views = result.shard_clock_views(position)
                assert views, "no clock views returned"
                common = set.intersection(*(set(view) for view in views))
                assert common, "no commonly-known threads"
                for thread in common:
                    reference = views[0][thread]
                    for view in views[1:]:
                        assert view[thread] == reference

    def test_merged_clock_state_covers_all_threads(self):
        trace = fork_join_trace(1)
        result = ShardedEngine(shards=3, mode="serial").run(
            trace, detectors=["wcp"]
        )
        assert set(result.clock_state["WCP"]) == set(trace.threads)
        # The merged registry interns every thread any worker saw.
        assert set(result.registry.names()) == set(trace.threads)

    def test_process_mode_exchanges_midrun_deltas(self):
        trace = random_trace(2, n_events=300, n_threads=4, n_vars=6)
        config = EngineConfig().with_shards(
            2, mode="process", batch_size=32, clock_sync_every=1
        )
        result = ShardedEngine(config).run(trace, detectors=["wcp"])
        assert _fingerprint(result["WCP"]) == _fingerprint(
            RaceEngine().run(trace, detectors=["wcp"])["WCP"]
        )
        # The opted-in exchange actually delivered deltas to the
        # coordinator: worker registries plus serialized clock states.
        delivered = [delta for delta in result.clock_deltas if delta]
        assert delivered, "no mid-run clock deltas were collected"
        for delta in delivered:
            assert delta["names"] and delta["clocks"][0]

    def test_delta_exchange_disabled_by_default(self):
        trace = random_trace(2, n_events=150, n_threads=3)
        result = ShardedEngine(shards=2, mode="serial", batch_size=16).run(
            trace, detectors=["wcp"]
        )
        assert not [delta for delta in result.clock_deltas if delta]

    def test_shard_metadata(self):
        trace = random_trace(3, n_events=100, n_threads=3, n_vars=6)
        result = ShardedEngine(shards=3, mode="serial").run(trace, detectors=["hb"])
        assert isinstance(result, ShardedResult)
        assert result.shards == 3 and result.mode == "serial"
        assert sum(result.shard_events) >= result.events
        assert result.replication_factor() >= 1.0
        assert result.work_speedup_bound() >= 1.0
        census = result.partition_stats
        assert census["replicated"] + census["routed"] + census["routed_clock"] == len(trace)
        assert "shard(s)" in result.summary()


class TestShardedEngineBehavior:
    def test_unshardable_detector_is_rejected(self, simple_race_trace):
        with pytest.raises(ValueError, match="cannot run sharded"):
            ShardedEngine(shards=2, mode="serial").run(
                simple_race_trace, detectors=[EraserDetector()]
            )

    def test_duplicate_instance_is_rejected(self, simple_race_trace):
        detector = HBDetector()
        with pytest.raises(ValueError):
            ShardedEngine(shards=2, mode="serial").run(
                simple_race_trace, detectors=[detector, detector]
            )

    def test_event_budget(self):
        trace = random_trace(4, n_events=200, n_threads=3)
        config = EngineConfig().with_shards(2, mode="serial").stop_after_events(50)
        result = ShardedEngine(config).run(trace, detectors=["hb"])
        assert result.events == 50
        assert result.stop_reason == STOP_EVENT_BUDGET

    def test_race_budget_stops_at_batch_granularity(self, tmp_path):
        events = []
        for i in range(400):
            events.append(Event(i, "t%d" % (i % 2), EventType.WRITE, "x",
                                "f.py:%d" % (i % 7)))
        trace = Trace(events, validate=False, name="racy")
        config = EngineConfig().with_shards(2, mode="serial", batch_size=20)
        config.stop_after_races(1)
        result = ShardedEngine(config).run(trace, detectors=["hb"])
        assert result.stop_reason == STOP_RACE_BUDGET
        assert result.events < 400

    def test_snapshots_are_merged(self):
        trace = random_trace(6, n_events=120, n_threads=3)
        seen = []
        config = EngineConfig().with_shards(2, mode="serial", batch_size=16)
        config.snapshot_every(40, seen.append)
        result = ShardedEngine(config).run(trace, detectors=["wcp", "hb"])
        assert result.snapshots and seen == result.snapshots
        names = {snap.detector_name for snap in result.snapshots}
        assert names == {"WCP", "HB"}
        final = [s for s in result.snapshots if s.events == result.events]
        assert final, "no final snapshot emitted"

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ShardedEngine(shards=0)
        with pytest.raises(ValueError):
            ShardedEngine(shards=2, mode="carrier-pigeon")
        with pytest.raises(ValueError):
            ShardedEngine(shards=2, batch_size=0)
        with pytest.raises(ValueError):
            EngineConfig().with_shards(0)
        config = EngineConfig().with_shards(4, mode="serial", batch_size=7)
        assert config.shards == 4 and "shards=4" in repr(config)

    def test_api_shards_parameter(self):
        trace = random_trace(7, n_events=100, n_threads=3)
        config = EngineConfig().with_shards(2, mode="serial")
        reference = detect_races(trace, "wcp")
        report = detect_races(trace, "wcp", shards=2)
        assert _fingerprint(report) == _fingerprint(reference)
        reports = compare_detectors(trace, ["wcp", "hb"], config=config)
        assert set(reports) == {"WCP", "HB"}
        result = run_engine(trace, detectors=["hb"], config=config)
        assert isinstance(result, ShardedResult)
        # Explicit shards= overrides the config.
        result = run_engine(trace, detectors=["hb"], config=config, shards=1)
        assert not isinstance(result, ShardedResult)

    def test_cli_analyze_sharded(self, tmp_path, capsys):
        trace = random_trace(8, n_events=80, n_threads=3)
        path = str(dump_trace(trace, tmp_path / "t.std"))
        code = main(["analyze", path, "--detector", "wcp,hb",
                     "--shards", "2", "--shard-mode", "serial"])
        out = capsys.readouterr().out
        assert code in (0, 1)
        assert "WCP" in out

    def test_cli_compare_sharded(self, tmp_path, capsys):
        trace = random_trace(8, n_events=80, n_threads=3)
        path = str(dump_trace(trace, tmp_path / "t.std"))
        code = main(["compare", path, "--detectors", "wcp,hb",
                     "--shards", "2", "--shard-mode", "serial"])
        out = capsys.readouterr().out
        assert code in (0, 1)
        assert "2 shard(s)" in out

    def test_cli_window_plus_shards_is_rejected(self, tmp_path, capsys):
        trace = random_trace(8, n_events=40, n_threads=3)
        path = str(dump_trace(trace, tmp_path / "t.std"))
        code = main(["analyze", path, "--window", "10", "--shards", "2"])
        assert code == 2
        assert "window" in capsys.readouterr().err

    def test_cli_unshardable_detector_errors_cleanly(self, tmp_path, capsys):
        trace = random_trace(8, n_events=40, n_threads=3)
        path = str(dump_trace(trace, tmp_path / "t.std"))
        code = main(["analyze", path, "--detector", "eraser", "--shards", "2",
                     "--shard-mode", "serial"])
        assert code == 2
        assert "cannot run sharded" in capsys.readouterr().err


class TestDetectorPickleSafety:
    """Shard workers receive detectors by pickling; mid-run state must
    survive a round-trip with verdicts intact (the transport relies on it
    for fresh instances, and resumable workers will rely on it later)."""

    FACTORIES = [
        WCPDetector,
        lambda: WCPDetector(clock_backend="dict"),
        HBDetector,
        FastTrackDetector,
    ]

    @pytest.mark.parametrize("factory", FACTORIES)
    @pytest.mark.parametrize("seed", [0, 13])
    def test_midrun_pickle_roundtrip(self, factory, seed):
        trace = random_trace(seed, n_events=120, n_threads=4, n_vars=5)
        reference = factory().run(trace)

        detector = factory()
        detector.reset(trace)
        split = len(trace) // 2
        for event in trace.events[:split]:
            detector.process(event)
        resumed = pickle.loads(pickle.dumps(detector))
        for event in trace.events[split:]:
            resumed.process(event)
        resumed.finish()
        assert _fingerprint(resumed.report) == _fingerprint(reference)

    def test_fresh_instances_pickle(self):
        for factory in self.FACTORIES:
            blob = pickle.dumps(factory())
            assert pickle.loads(blob).name
