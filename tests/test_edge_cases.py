"""Edge cases across the whole stack: degenerate traces, unusual event mixes,
and defensive behaviour of the detectors."""

import pytest

from repro.analysis import WindowedDetector
from repro.core.closure import WCPClosure
from repro.core.wcp import WCPDetector
from repro.cp import CPDetector
from repro.hb import FastTrackDetector, HBDetector
from repro.lockset import EraserDetector
from repro.mcm import MCMPredictor
from repro.trace.builder import TraceBuilder
from repro.trace.event import Event, EventType
from repro.trace.trace import Trace

ALL_DETECTORS = [
    WCPDetector, HBDetector, FastTrackDetector, EraserDetector,
    lambda: CPDetector(window_size=50), lambda: MCMPredictor(window_size=50),
]


def _run_all(trace):
    return [factory().run(trace) for factory in ALL_DETECTORS]


class TestDegenerateTraces:
    def test_empty_trace(self):
        trace = Trace([], name="empty")
        for report in _run_all(trace):
            assert report.count() == 0

    def test_single_event_trace(self):
        trace = Trace([Event(0, "t1", EventType.WRITE, "x")])
        for report in _run_all(trace):
            assert report.count() == 0

    def test_single_thread_never_races(self):
        builder = TraceBuilder()
        for index in range(30):
            builder.write("t1", "x%d" % (index % 3))
            builder.read("t1", "x%d" % (index % 3))
        trace = builder.build()
        for report in _run_all(trace):
            assert report.count() == 0

    def test_lock_only_trace(self):
        builder = TraceBuilder()
        for thread in ("t1", "t2", "t3"):
            builder.acquire(thread, "l").release(thread, "l")
        trace = builder.build()
        for report in _run_all(trace):
            assert report.count() == 0

    def test_begin_end_events_are_ignored(self):
        trace = (
            TraceBuilder()
            .begin("t1").write("t1", "x").end("t1")
            .begin("t2").write("t2", "x").end("t2")
            .build()
        )
        assert WCPDetector().run(trace).count() == 1
        assert HBDetector().run(trace).count() == 1

    def test_read_only_sharing_never_races(self):
        builder = TraceBuilder()
        for thread in ("t1", "t2", "t3"):
            for _ in range(5):
                builder.read(thread, "shared")
        trace = builder.build()
        for report in _run_all(trace):
            assert report.count() == 0


class TestUnusualIdentifiers:
    def test_unicode_and_spacey_names(self):
        trace = (
            TraceBuilder()
            .acquire("poêle", "verrou principal")
            .write("poêle", "donnée partagée")
            .release("poêle", "verrou principal")
            .write("λ-thread", "donnée partagée")
            .build()
        )
        assert WCPDetector().run(trace).count() == 1

    def test_numeric_looking_thread_names(self):
        trace = (
            TraceBuilder().write("1", "x").write("2", "x").build()
        )
        assert HBDetector().run(trace).count() == 1


class TestNestedLocking:
    def test_deeply_nested_critical_sections(self):
        builder = TraceBuilder()
        depth = 8
        for thread in ("t1", "t2"):
            for level in range(depth):
                builder.acquire(thread, "l%d" % level)
            builder.write(thread, "shared")
            for level in reversed(range(depth)):
                builder.release(thread, "l%d" % level)
        trace = builder.build()
        # Protected by all eight locks: no race under any sound analysis.
        assert WCPDetector().run(trace).count() == 0
        assert HBDetector().run(trace).count() == 0
        assert len(WCPClosure(trace).races()) == 0

    def test_nested_distinct_variables_still_race(self):
        # The outer lock differs between the threads; the variable accessed
        # under the non-shared lock is racy.
        trace = (
            TraceBuilder()
            .acquire("t1", "a").acquire("t1", "shared")
            .write("t1", "v")
            .release("t1", "shared").release("t1", "a")
            .acquire("t2", "b").acquire("t2", "shared")
            .write("t2", "v")
            .release("t2", "shared").release("t2", "b")
            .build()
        )
        # v is consistently protected by "shared": ordered, no race.
        assert WCPDetector().run(trace).count() == 0

    def test_critical_section_without_release_still_protects(self):
        # The second thread never releases; the conflicting accesses inside
        # the two critical sections of the same lock are still ordered.
        trace = (
            TraceBuilder()
            .acquire("t1", "l").write("t1", "x").release("t1", "l")
            .acquire("t2", "l").write("t2", "x")
            .build()
        )
        assert WCPDetector().run(trace).count() == 0
        assert HBDetector().run(trace).count() == 0


class TestWindowedEdges:
    def test_window_larger_than_trace(self, simple_race_trace):
        report = WindowedDetector(WCPDetector(), 1000).run(simple_race_trace)
        assert report.count() == 1
        assert report.stats["windows"] == 1.0

    def test_window_of_one_event(self):
        trace = TraceBuilder().write("t1", "x").write("t2", "x").build()
        report = WindowedDetector(WCPDetector(), 1).run(trace)
        assert report.count() == 0
        assert report.stats["windows"] == 2.0

    def test_mcm_window_larger_than_trace(self, simple_race_trace):
        report = MCMPredictor(window_size=10_000).run(simple_race_trace)
        assert report.count() == 1

    def test_cut_critical_section_is_not_reported_as_race(self):
        # The window boundary splits both critical sections; the carried
        # lock context must keep the accesses protected.
        builder = TraceBuilder()
        builder.acquire("t1", "l")
        for index in range(6):
            builder.write("t1", "pad%d" % index)
        builder.write("t1", "shared")
        builder.release("t1", "l")
        builder.acquire("t2", "l")
        for index in range(6):
            builder.write("t2", "qad%d" % index)
        builder.write("t2", "shared")
        builder.release("t2", "l")
        trace = builder.build()
        report = CPDetector(window_size=5).run(trace)
        assert frozenset({"line8", "line17"}) not in report.location_pairs() or (
            not report.has_race()
        )


class TestDetectorReuse:
    def test_detector_instances_are_reusable(self, simple_race_trace, protected_trace):
        detector = WCPDetector()
        first = detector.run(simple_race_trace)
        second = detector.run(protected_trace)
        third = detector.run(simple_race_trace)
        assert first.count() == third.count() == 1
        assert second.count() == 0

    def test_report_property_requires_reset(self):
        detector = HBDetector()
        with pytest.raises(RuntimeError):
            detector.report
