"""Unit tests for the :class:`~repro.trace.trace.Trace` container."""

import pytest

from repro.trace.builder import TraceBuilder
from repro.trace.event import Event, EventType
from repro.trace.trace import LockSemanticsError, Trace, WellNestednessError

from conftest import random_trace


def _events(*specs):
    events = []
    for thread, etype, target in specs:
        events.append(Event(len(events), thread, etype, target))
    return events


class TestValidation:
    def test_valid_trace_accepted(self, protected_trace):
        assert len(protected_trace) == 8

    def test_overlapping_critical_sections_rejected(self):
        events = _events(
            ("t1", EventType.ACQUIRE, "l"),
            ("t2", EventType.ACQUIRE, "l"),
        )
        with pytest.raises(LockSemanticsError):
            Trace(events)

    def test_reentrant_acquire_rejected(self):
        events = _events(
            ("t1", EventType.ACQUIRE, "l"),
            ("t1", EventType.ACQUIRE, "l"),
        )
        with pytest.raises(LockSemanticsError):
            Trace(events)

    def test_release_without_acquire_rejected(self):
        events = _events(("t1", EventType.RELEASE, "l"))
        with pytest.raises(LockSemanticsError):
            Trace(events)

    def test_non_nested_release_rejected(self):
        events = _events(
            ("t1", EventType.ACQUIRE, "a"),
            ("t1", EventType.ACQUIRE, "b"),
            ("t1", EventType.RELEASE, "a"),
        )
        with pytest.raises(WellNestednessError):
            Trace(events)

    def test_validation_can_be_disabled(self):
        events = _events(
            ("t1", EventType.ACQUIRE, "l"),
            ("t2", EventType.ACQUIRE, "l"),
        )
        trace = Trace(events, validate=False)
        assert len(trace) == 2

    def test_events_are_reindexed(self):
        events = [Event(99, "t1", EventType.WRITE, "x")]
        trace = Trace(events)
        assert trace[0].index == 0


class TestAccessors:
    def test_threads_locks_variables(self):
        trace = (
            TraceBuilder()
            .acquire("t1", "l").write("t1", "x").release("t1", "l")
            .read("t2", "y")
            .build()
        )
        assert trace.threads == ["t1", "t2"]
        assert trace.locks == ["l"]
        assert set(trace.variables) == {"x", "y"}

    def test_thread_events_projection(self):
        trace = (
            TraceBuilder()
            .write("t1", "x").write("t2", "y").write("t1", "z")
            .build()
        )
        projection = trace.thread_events("t1")
        assert [event.variable for event in projection] == ["x", "z"]
        assert trace.thread_indices("t2") == [1]

    def test_iteration_and_indexing(self):
        trace = TraceBuilder().write("t1", "x").build()
        assert list(trace)[0] is trace[0]
        assert trace.events[0] is trace[0]

    def test_stats(self):
        trace = (
            TraceBuilder()
            .acquire("t1", "l").write("t1", "x").release("t1", "l")
            .build()
        )
        stats = trace.stats()
        assert stats == {
            "events": 3, "threads": 1, "locks": 1, "variables": 1, "accesses": 1,
        }

    def test_repr(self):
        trace = TraceBuilder().write("t1", "x").build(name="demo")
        assert "demo" in repr(trace)


class TestLockStructure:
    def test_match_acquire_release(self, protected_trace):
        acquire = protected_trace[0]
        release = protected_trace[3]
        assert protected_trace.match(acquire) is release
        assert protected_trace.match(release) is acquire

    def test_match_missing_release(self):
        trace = TraceBuilder().acquire("t1", "l").write("t1", "x").build()
        assert trace.match(trace[0]) is None

    def test_held_locks_includes_boundaries(self, protected_trace):
        # acquire, read, write, release of the first critical section.
        for index in range(4):
            assert protected_trace.held_locks(protected_trace[index]) == ("l",)

    def test_held_locks_nested(self):
        trace = (
            TraceBuilder()
            .acquire("t1", "a").acquire("t1", "b").write("t1", "x")
            .release("t1", "b").release("t1", "a")
            .build()
        )
        assert trace.held_locks(trace[2]) == ("a", "b")
        assert trace.enclosing_acquire(trace[2], "a") is trace[0]
        assert trace.enclosing_acquire(trace[2], "b") is trace[1]
        assert trace.enclosing_acquire(trace[2], "zzz") is None

    def test_critical_section_contents(self, protected_trace):
        section = protected_trace.critical_section(protected_trace[0])
        assert [event.index for event in section] == [0, 1, 2, 3]
        # Same section from the release side.
        section = protected_trace.critical_section(protected_trace[3])
        assert [event.index for event in section] == [0, 1, 2, 3]

    def test_critical_section_without_release_extends_to_thread_end(self):
        trace = TraceBuilder().acquire("t1", "l").write("t1", "x").build()
        section = trace.critical_section(trace[0])
        assert [event.index for event in section] == [0, 1]

    def test_critical_section_requires_lock_event(self, protected_trace):
        with pytest.raises(ValueError):
            protected_trace.critical_section(protected_trace[1])

    def test_section_accesses(self):
        trace = (
            TraceBuilder()
            .acquire("t1", "l").read("t1", "a").write("t1", "b").release("t1", "l")
            .build()
        )
        reads, writes = trace.section_accesses(trace[3])
        assert reads == {"a"}
        assert writes == {"b"}


class TestAccessStructure:
    def test_accesses(self):
        trace = (
            TraceBuilder()
            .write("t1", "x").read("t2", "x").write("t1", "y")
            .build()
        )
        assert [event.index for event in trace.accesses("x")] == [0, 1]

    def test_last_write_before(self):
        trace = (
            TraceBuilder()
            .write("t1", "x").write("t2", "x").read("t1", "x")
            .build()
        )
        assert trace.last_write_before(trace[2]) is trace[1]
        assert trace.last_write_before(trace[0]) is None
        with pytest.raises(ValueError):
            trace.last_write_before(
                Trace([Event(0, "t1", EventType.ACQUIRE, "l")])[0]
            )

    def test_conflicting_pairs(self):
        trace = (
            TraceBuilder()
            .write("t1", "x").read("t2", "x").read("t2", "x")
            .write("t1", "y")
            .build()
        )
        pairs = list(trace.conflicting_pairs())
        assert len(pairs) == 2
        assert all(first.index < second.index for first, second in pairs)


class TestWindows:
    def test_window_slicing(self):
        trace = random_trace(seed=1, n_events=20)
        window = trace.window(5, 10)
        assert len(window) == 10
        assert window[0].thread == trace[5].thread

    def test_windows_cover_trace(self):
        trace = random_trace(seed=2, n_events=25)
        windows = list(trace.windows(10))
        assert sum(len(window) for window in windows) == len(trace)

    def test_window_events_reindexed(self):
        trace = random_trace(seed=3, n_events=20)
        window = trace.window(10, 5)
        assert [event.index for event in window] == list(range(5))


class TestRandomTraceHelper:
    def test_random_traces_are_valid(self):
        for seed in range(10):
            trace = random_trace(seed=seed, n_events=60)
            # Re-validating must not raise.
            Trace(list(trace), validate=True)
