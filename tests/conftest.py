"""Shared test fixtures and random-trace generation helpers."""

from __future__ import annotations

import random
from typing import List, Optional

import pytest

from repro.trace.event import Event, EventType
from repro.trace.trace import Trace


def random_trace(
    seed: int,
    n_events: int = 40,
    n_threads: int = 3,
    n_locks: int = 2,
    n_vars: int = 3,
    name: Optional[str] = None,
) -> Trace:
    """Generate a random, well-formed trace.

    The generator respects lock semantics and well nestedness by
    construction: a thread only acquires locks it does not hold and that no
    other thread holds, and only releases its innermost held lock.
    """
    rng = random.Random(seed)
    threads = ["t%d" % i for i in range(n_threads)]
    locks = ["l%d" % i for i in range(n_locks)]
    variables = ["x%d" % i for i in range(n_vars)]

    held = {thread: [] for thread in threads}
    holder = {}
    events: List[Event] = []

    while len(events) < n_events:
        thread = rng.choice(threads)
        choices = ["read", "write"]
        free_locks = [
            lock for lock in locks
            if lock not in holder and lock not in held[thread]
        ]
        if free_locks:
            choices.append("acquire")
        if held[thread]:
            choices.append("release")
        action = rng.choice(choices)
        index = len(events)
        if action == "acquire":
            lock = rng.choice(free_locks)
            held[thread].append(lock)
            holder[lock] = thread
            events.append(Event(index, thread, EventType.ACQUIRE, lock))
        elif action == "release":
            lock = held[thread].pop()
            del holder[lock]
            events.append(Event(index, thread, EventType.RELEASE, lock))
        elif action == "read":
            events.append(Event(index, thread, EventType.READ, rng.choice(variables)))
        else:
            events.append(Event(index, thread, EventType.WRITE, rng.choice(variables)))

    # Close every open critical section so the trace is tidy (not required
    # for validity, but keeps the examples realistic).
    for thread in threads:
        while held[thread]:
            lock = held[thread].pop()
            events.append(Event(len(events), thread, EventType.RELEASE, lock))

    return Trace(events, name=name or "random_%d" % seed)


@pytest.fixture
def simple_race_trace() -> Trace:
    """Two unsynchronised writes: the simplest possible racy trace."""
    return Trace([
        Event(0, "t1", EventType.WRITE, "x", "a.py:1"),
        Event(1, "t2", EventType.WRITE, "x", "b.py:2"),
    ], name="simple_race")


@pytest.fixture
def protected_trace() -> Trace:
    """Two lock-protected updates: race-free."""
    events = []
    for thread in ("t1", "t2"):
        events.append(Event(len(events), thread, EventType.ACQUIRE, "l"))
        events.append(Event(len(events), thread, EventType.READ, "x"))
        events.append(Event(len(events), thread, EventType.WRITE, "x"))
        events.append(Event(len(events), thread, EventType.RELEASE, "l"))
    return Trace(events, name="protected")
