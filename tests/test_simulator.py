"""Tests for the concurrent-program simulator substrate."""

import pytest

from repro.hb import HBDetector
from repro.simulator import (
    Acquire, Compute, DeadlockDetected, Fork, Interpreter, Join, Program,
    RandomScheduler, Read, Release, RoundRobinScheduler, ScriptedScheduler,
    Write, enumerate_schedules, run_program,
)
from repro.trace.event import EventType


def _counter_program(protected: bool) -> Program:
    def body():
        if protected:
            return [Acquire("l"), Read("c"), Write("c"), Release("l")]
        return [Read("c"), Write("c")]
    return Program({"t1": body(), "t2": body()}, name="counter")


class TestProgramConstruction:
    def test_unknown_fork_target_rejected(self):
        with pytest.raises(ValueError):
            Program({"main": [Fork("ghost")]})

    def test_initial_threads_default_excludes_forked(self):
        program = Program({"main": [Fork("child")], "child": [Write("x")]})
        assert program.initial_threads == ["main"]

    def test_statement_locations_autofilled(self):
        program = Program({"t1": [Write("x")]})
        assert program.threads["t1"].statements[0].loc is not None

    def test_compute_requires_positive_steps(self):
        with pytest.raises(ValueError):
            Compute(0)

    def test_reprs(self):
        program = _counter_program(protected=True)
        assert "counter" in repr(program)
        assert "acq(l)" in repr(program.threads["t1"].statements[0])


class TestInterpreter:
    def test_round_robin_trace_is_valid_and_complete(self):
        trace = run_program(_counter_program(protected=True), RoundRobinScheduler())
        assert len(trace) == 8
        assert trace.stats()["locks"] == 1

    def test_unprotected_counter_races(self):
        trace = run_program(_counter_program(protected=False))
        assert HBDetector().run(trace).has_race()

    def test_protected_counter_does_not_race(self):
        trace = run_program(_counter_program(protected=True))
        assert not HBDetector().run(trace).has_race()

    def test_blocking_acquire_respected(self):
        # Force t2 to try acquiring while t1 holds the lock: the interpreter
        # must not emit an overlapping critical section.
        program = Program({
            "t1": [Acquire("l"), Compute(3), Release("l")],
            "t2": [Acquire("l"), Release("l")],
        })
        trace = Interpreter(program, ScriptedScheduler(
            ["t1", "t2", "t2", "t1", "t1", "t1", "t2", "t2"]
        )).run()
        # Trace construction validates lock semantics; reaching here means
        # the interpreter blocked t2 correctly.
        assert [e.thread for e in trace if e.is_acquire()] == ["t1", "t2"]

    def test_fork_join_events_emitted(self):
        program = Program({
            "main": [Fork("child"), Join("child"), Read("x")],
            "child": [Write("x")],
        })
        trace = run_program(program)
        kinds = [event.etype for event in trace]
        assert EventType.FORK in kinds and EventType.JOIN in kinds
        assert not HBDetector().run(trace).has_race()

    def test_fork_join_events_can_be_suppressed(self):
        program = Program({
            "main": [Fork("child"), Join("child")],
            "child": [Write("x")],
        })
        trace = Interpreter(program).run(emit_fork_join=False)
        assert all(not event.is_fork() and not event.is_join() for event in trace)

    def test_forked_thread_not_runnable_before_fork(self):
        program = Program({
            "main": [Write("a"), Fork("child")],
            "child": [Write("b")],
        })
        trace = run_program(program, ScriptedScheduler(["child", "main", "main", "child"]))
        order = [event.target for event in trace if event.is_write()]
        assert order.index("a") < order.index("b")

    def test_deadlock_detected(self):
        program = Program({
            "t1": [Acquire("a"), Acquire("b"), Release("b"), Release("a")],
            "t2": [Acquire("b"), Acquire("a"), Release("a"), Release("b")],
        })
        # Schedule both first acquires, then neither can proceed.
        scheduler = ScriptedScheduler(["t1", "t2"])
        with pytest.raises(DeadlockDetected) as info:
            Interpreter(program, scheduler).run()
        assert len(info.value.waiting) == 2
        assert len(info.value.partial_events) == 2

    def test_deadlock_can_be_tolerated(self):
        program = Program({
            "t1": [Acquire("a"), Acquire("b"), Release("b"), Release("a")],
            "t2": [Acquire("b"), Acquire("a"), Release("a"), Release("b")],
        })
        trace = Interpreter(program, ScriptedScheduler(["t1", "t2"])).run(
            allow_deadlock=True
        )
        assert len(trace) == 2

    def test_release_of_unheld_lock_is_an_error(self):
        program = Program({"t1": [Release("l")]})
        with pytest.raises(RuntimeError):
            run_program(program)

    def test_max_steps_truncates(self):
        program = _counter_program(protected=True)
        trace = Interpreter(program).run(max_steps=3, validate=False)
        assert len(trace) <= 3

    def test_compute_emits_no_events_but_consumes_steps(self):
        program = Program({"t1": [Compute(5), Write("x")]})
        trace = run_program(program)
        assert len(trace) == 1


class TestSchedulers:
    def test_round_robin_alternates(self):
        program = Program({
            "a": [Write("x1"), Write("x2")],
            "b": [Write("y1"), Write("y2")],
        })
        trace = run_program(program, RoundRobinScheduler(quantum=1))
        threads = [event.thread for event in trace]
        assert threads == ["a", "b", "a", "b"]

    def test_round_robin_quantum(self):
        program = Program({
            "a": [Write("x1"), Write("x2")],
            "b": [Write("y1"), Write("y2")],
        })
        trace = run_program(program, RoundRobinScheduler(quantum=2))
        threads = [event.thread for event in trace]
        assert threads == ["a", "a", "b", "b"]

    def test_round_robin_invalid_quantum(self):
        with pytest.raises(ValueError):
            RoundRobinScheduler(quantum=0)

    def test_random_scheduler_is_deterministic_per_seed(self):
        program = _counter_program(protected=True)
        first = run_program(program, RandomScheduler(seed=42))
        second = run_program(program, RandomScheduler(seed=42))
        assert [e.thread for e in first] == [e.thread for e in second]

    def test_random_scheduler_seeds_differ(self):
        program = Program({
            "a": [Write("x%d" % i) for i in range(10)],
            "b": [Write("y%d" % i) for i in range(10)],
        })
        runs = {
            tuple(e.thread for e in run_program(program, RandomScheduler(seed=s)))
            for s in range(5)
        }
        assert len(runs) > 1

    def test_scripted_scheduler_falls_back(self):
        program = Program({"a": [Write("x")], "b": [Write("y")]})
        trace = run_program(program, ScriptedScheduler(["zzz", "b"]))
        assert len(trace) == 2

    def test_enumerate_schedules(self):
        scripts = list(enumerate_schedules(["a", "b"], 3))
        assert len(scripts) == 8
        assert ["a", "a", "a"] in scripts


class TestIncrementalInterpreter:
    """Interpreter.iter_events streams the execution with constant memory."""

    def test_generator_matches_batch_run(self):
        program = Program({
            "main": [Write("a"), Fork("child"), Acquire("l"), Write("x"),
                     Release("l"), Join("child"), Read("x")],
            "child": [Acquire("l"), Read("x"), Write("x"), Release("l")],
        })
        batch = run_program(program)
        streamed = list(Interpreter(program).iter_events())
        assert [(e.index, e.thread, e.etype, e.target) for e in streamed] == \
            [(e.index, e.thread, e.etype, e.target) for e in batch]

    def test_generator_is_lazy(self):
        program = Program({"t1": [Write("x")] * 100})
        iterator = Interpreter(program).iter_events()
        first = next(iterator)
        assert first.index == 0 and first.is_write()
        # Nothing else has been produced yet; the rest still streams.
        assert sum(1 for _ in iterator) == 99

    def test_generator_deadlock_contract(self):
        program = Program({
            "t1": [Acquire("l1"), Acquire("l2")],
            "t2": [Acquire("l2"), Acquire("l1")],
        })
        events = []
        with pytest.raises(DeadlockDetected) as info:
            for event in Interpreter(program).iter_events():
                events.append(event)
        # The generator yields everything executable before raising; the
        # partial events travel with the batch run() wrapper instead.
        assert len(events) == 2
        assert info.value.partial_events == []
        with pytest.raises(DeadlockDetected) as info:
            Interpreter(program).run()
        assert len(info.value.partial_events) == 2

    def test_simulator_source_streams_without_trace(self):
        from repro.engine import RaceEngine, SimulatorSource

        program = Program({
            "t1": [Read("c"), Write("c")],
            "t2": [Read("c"), Write("c")],
        }, name="counter")
        result = RaceEngine().run(SimulatorSource(program), detectors=["hb"])
        assert result.events == 4
        assert result["HB"].has_race()
