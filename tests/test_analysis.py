"""Tests for windowing, metrics, the comparison harness and table rendering."""

import pytest

from repro.analysis import (
    BenchmarkRow,
    HeldLockTracker,
    WindowedDetector,
    compare_on_trace,
    format_table,
    make_window_trace,
    max_race_distance,
    queue_statistics,
    race_distances,
    run_table,
    trace_summary,
)
from repro.analysis.metrics import long_distance_races, min_race_distance
from repro.core.wcp import WCPDetector
from repro.hb import HBDetector
from repro.trace.builder import TraceBuilder
from repro.trace.event import Event, EventType

from conftest import random_trace


class TestHeldLockTracker:
    def test_tracks_nested_locks(self):
        tracker = HeldLockTracker()
        tracker.observe(Event(0, "t1", EventType.ACQUIRE, "a"))
        tracker.observe(Event(1, "t1", EventType.ACQUIRE, "b"))
        prefix = tracker.carried_prefix()
        assert [(e.thread, e.lock) for e in prefix] == [("t1", "a"), ("t1", "b")]

    def test_releases_remove_locks(self):
        tracker = HeldLockTracker()
        tracker.observe(Event(0, "t1", EventType.ACQUIRE, "a"))
        tracker.observe(Event(1, "t1", EventType.RELEASE, "a"))
        assert tracker.carried_prefix() == []

    def test_accesses_are_ignored(self):
        tracker = HeldLockTracker()
        tracker.observe(Event(0, "t1", EventType.WRITE, "x"))
        assert tracker.carried_prefix() == []

    def test_make_window_trace_prepends_prefix(self):
        prefix = [Event(0, "t1", EventType.ACQUIRE, "a", "carried")]
        window = make_window_trace(
            [Event(0, "t1", EventType.WRITE, "x")], prefix, "w0"
        )
        assert len(window) == 2
        assert window[0].is_acquire()


class TestWindowedDetector:
    def test_window_size_validation(self):
        with pytest.raises(ValueError):
            WindowedDetector(HBDetector(), 0)

    def test_windowing_loses_distant_races(self):
        builder = TraceBuilder().write("t1", "z", loc="first")
        for index in range(60):
            builder.write("t2", "pad%d" % index)
        builder.write("t3", "z", loc="second")
        trace = builder.build()
        full = HBDetector().run(trace)
        windowed = WindowedDetector(HBDetector(), 20).run(trace)
        assert full.count() == 1
        assert windowed.count() == 0

    def test_windowing_keeps_local_races(self, simple_race_trace):
        report = WindowedDetector(WCPDetector(), 10).run(simple_race_trace)
        assert report.count() == 1

    @pytest.mark.parametrize("seed", range(5))
    def test_windowed_cp_subset_of_windowed_wcp(self, seed):
        # With identical windows, CP races are always a subset of WCP races
        # (CP has strictly more orderings); the windowed wrappers must
        # preserve that relationship.
        from repro.cp import CPDetector

        trace = random_trace(seed=seed, n_events=80, n_threads=3)
        windowed_wcp = set(
            WindowedDetector(WCPDetector(), 20).run(trace).location_pairs()
        )
        windowed_cp = set(CPDetector(window_size=20).run(trace).location_pairs())
        assert windowed_cp <= windowed_wcp

    def test_window_statistics(self):
        trace = random_trace(seed=9, n_events=50)
        report = WindowedDetector(HBDetector(), 10).run(trace)
        expected_windows = -(-len(trace) // 10)  # ceiling division
        assert report.stats["windows"] == float(expected_windows)
        assert "[w=10]" in report.detector_name


class TestMetrics:
    def _racy_report(self):
        trace = (
            TraceBuilder()
            .write("t1", "a", loc="p1")
            .write("t2", "a", loc="p2")
            .write("t1", "b", loc="q1")
            .write("t1", "pad").write("t1", "pad").write("t1", "pad")
            .write("t2", "b", loc="q2")
            .build()
        )
        return HBDetector().run(trace)

    def test_race_distances(self):
        report = self._racy_report()
        distances = race_distances(report)
        assert distances[frozenset({"p1", "p2"})] == 1
        assert distances[frozenset({"q1", "q2"})] == 4
        assert max_race_distance(report) == 4
        assert min_race_distance(report) == 1

    def test_long_distance_races(self):
        report = self._racy_report()
        assert long_distance_races(report, threshold=3) == [frozenset({"q1", "q2"})]

    def test_min_distance_empty_report(self, protected_trace):
        report = HBDetector().run(protected_trace)
        assert min_race_distance(report) is None

    def test_queue_statistics_extraction(self, protected_trace):
        wcp_report = WCPDetector().run(protected_trace)
        stats = queue_statistics(wcp_report)
        assert set(stats) == {"max_queue_total", "max_queue_fraction"}
        hb_report = HBDetector().run(protected_trace)
        assert queue_statistics(hb_report)["max_queue_total"] == 0.0

    def test_trace_summary(self, protected_trace):
        summary = trace_summary(protected_trace)
        assert summary == {"events": 8, "threads": 2, "locks": 1, "variables": 1}


class TestCompareHarness:
    def test_compare_on_trace(self, simple_race_trace):
        row = compare_on_trace(simple_race_trace, [WCPDetector(), HBDetector()])
        assert row.races("WCP") == row.races("HB") == 1
        assert row.time_s("WCP") >= 0.0
        assert row.races("missing") == 0
        assert row.time_s("missing") == 0.0
        assert row.as_dict()["benchmark"] == "simple_race"
        assert "BenchmarkRow" in repr(row)

    def test_queue_fraction_picked_from_wcp(self, protected_trace):
        row = compare_on_trace(protected_trace, [WCPDetector()])
        assert row.queue_fraction() >= 0.0
        hb_only = compare_on_trace(protected_trace, [HBDetector()])
        assert hb_only.queue_fraction() == 0.0

    def test_run_table(self):
        traces = {
            "a": random_trace(seed=1, n_events=30),
            "b": random_trace(seed=2, n_events=30),
        }
        rows, table = run_table(traces, lambda: [WCPDetector(), HBDetector()])
        assert len(rows) == 2
        assert "WCP races" in table and "benchmark" in table
        assert "a" in table and "b" in table

    def test_run_table_empty(self):
        rows, table = run_table({}, lambda: [HBDetector()])
        assert rows == [] and "no benchmarks" in table


class TestFormatTable:
    def test_alignment_and_content(self):
        table = format_table(["name", "value"], [["x", 1], ["longer-name", 22]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")
        assert "longer-name" in lines[3]

    def test_short_rows_padded(self):
        table = format_table(["a", "b", "c"], [["only"]])
        assert "only" in table
