"""Tests for the race-report audit (triage against the ground truth)."""

import pytest

from repro.analysis import Verdict, audit_report
from repro.core.wcp import WCPDetector
from repro.hb import HBDetector
from repro.lockset import EraserDetector
from repro.bench.paper_figures import figure_2b, figure_5
from repro.trace.builder import TraceBuilder


class TestAuditReport:
    def test_confirmed_race(self):
        trace = figure_2b()
        report = WCPDetector().run(trace)
        result = audit_report(trace, report)
        assert result.count(Verdict.CONFIRMED_RACE) == 1
        assert result.count(Verdict.DEADLOCK_ONLY) == 0
        assert result.confirmed() == report.location_pairs()
        assert "1 confirmed race" in result.summary()

    def test_deadlock_only_classification(self):
        # Figure 5: the WCP warning is real but only as a deadlock.
        trace = figure_5()
        report = WCPDetector().run(trace)
        result = audit_report(trace, report)
        assert result.count(Verdict.CONFIRMED_RACE) == 0
        assert result.count(Verdict.DEADLOCK_ONLY) == 1

    def test_unconfirmed_lockset_false_positive(self):
        # Eraser flags the fork/join-protected accesses; the audit shows the
        # warning has neither a race nor a deadlock witness.
        trace = (
            TraceBuilder()
            .write("t1", "x")
            .fork("t1", "t2")
            .write("t2", "x")
            .join("t1", "t2")
            .write("t1", "x")
            .build()
        )
        report = EraserDetector().run(trace)
        assert report.has_race()
        result = audit_report(trace, report)
        assert result.count(Verdict.CONFIRMED_RACE) == 0
        assert result.count(Verdict.UNCONFIRMED) == len(report.pairs())

    def test_empty_report(self, protected_trace):
        report = HBDetector().run(protected_trace)
        result = audit_report(protected_trace, report)
        assert result.verdicts == {}
        assert "0 reported pair(s)" in result.summary()
        assert "AuditResult" in repr(result)

    def test_budget_exhaustion_marks_pairs(self, simple_race_trace):
        report = WCPDetector().run(simple_race_trace)
        # A one-state budget cannot even reach the goal check for some pairs,
        # but must never crash; verdicts are still produced for every pair.
        result = audit_report(simple_race_trace, report, max_states_per_pair=1)
        assert len(result.verdicts) == len(report.pairs())
