"""End-to-end integration tests across subsystems.

Each test exercises a realistic pipeline rather than a single module:
simulator -> trace -> detectors -> witness/audit -> export, or
benchmark generator -> disk format -> reload -> windowed comparison.
"""

import json

import pytest

from repro import (
    HBDetector,
    MCMPredictor,
    WCPDetector,
    compare_detectors,
    detect_races,
    dump_trace,
    load_trace,
)
from repro.analysis import (
    Verdict,
    WindowedDetector,
    audit_report,
    compare_on_trace,
    report_to_json,
    rows_to_csv,
)
from repro.bench import get_benchmark
from repro.reordering import find_race_witness, is_correct_reordering
from repro.simulator import (
    Acquire, Fork, Join, Program, RandomScheduler, Read, Release, Write,
    run_program,
)
from repro.trace.trace import Trace
from repro.trace.event import Event


class TestSimulatorToDetectorsPipeline:
    def _producer_consumer(self, protected: bool) -> Program:
        queue_ops = (
            [Acquire("q"), Read("queue"), Write("queue"), Release("q")]
            if protected else [Read("queue"), Write("queue")]
        )
        return Program({
            "main": [Fork("producer"), Fork("consumer"),
                     Join("producer"), Join("consumer"), Read("queue")],
            "producer": queue_ops * 3,
            "consumer": queue_ops * 3,
        }, name="producer-consumer")

    def test_racy_program_flagged_and_witnessed(self):
        trace = run_program(self._producer_consumer(False), RandomScheduler(3))
        report = detect_races(trace)
        assert report.has_race()
        pair = report.pairs()[0]
        witness = find_race_witness(trace, pair.first_event, pair.second_event)
        assert witness.found
        candidate = Trace(
            [Event(-1, e.thread, e.etype, e.target, e.loc) for e in witness.schedule],
            validate=False,
        )
        assert is_correct_reordering(trace, candidate)

    def test_protected_program_clean_for_every_sound_detector(self):
        trace = run_program(self._producer_consumer(True), RandomScheduler(3))
        reports = compare_detectors(trace, ["wcp", "hb", "fasttrack", "cp"])
        assert all(report.count() == 0 for report in reports.values())

    def test_audit_agrees_with_detectors(self):
        trace = run_program(self._producer_consumer(False), RandomScheduler(5))
        report = detect_races(trace, "wcp")
        audit = audit_report(trace, report, max_states_per_pair=50_000)
        assert audit.count(Verdict.CONFIRMED_RACE) >= 1


class TestBenchmarkRoundTripPipeline:
    def test_generate_dump_reload_analyze(self, tmp_path):
        original = get_benchmark("jigsaw", scale=0.02)
        path = dump_trace(original, tmp_path / "jigsaw.std")
        reloaded = load_trace(path)
        assert len(reloaded) == len(original)

        wcp = WCPDetector().run(reloaded)
        hb = HBDetector().run(reloaded)
        assert wcp.count() == 14 and hb.count() == 11

        windowed = WindowedDetector(WCPDetector(), max(20, len(reloaded) // 20))
        assert windowed.run(reloaded).count() < wcp.count()

    def test_comparison_rows_export(self, tmp_path):
        traces = {name: get_benchmark(name, scale=0.03) for name in ("raytracer", "xalan")}
        rows = [
            compare_on_trace(trace, [WCPDetector(), HBDetector()], name=name)
            for name, trace in traces.items()
        ]
        csv_text = rows_to_csv(rows)
        assert "raytracer" in csv_text and "xalan" in csv_text

    def test_report_json_includes_distances(self):
        trace = get_benchmark("moldyn", scale=0.02)
        payload = json.loads(report_to_json(WCPDetector().run(trace)))
        assert payload["distinct_races"] == 44
        assert payload["max_distance"] > len(trace) // 2


class TestPredictorAgainstLinearDetectors:
    def test_predictor_and_wcp_agree_on_small_whole_trace_windows(self):
        trace = get_benchmark("account", scale=1.0)
        predictor = MCMPredictor(window_size=len(trace) + 1)
        wcp = WCPDetector().run(trace)
        predicted = predictor.run(trace)
        # On this small fork/join program every WCP race is a real race and
        # the maximal predictor confirms each of them.
        assert set(predicted.location_pairs()) >= set(wcp.location_pairs())
