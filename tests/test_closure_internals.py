"""Tests for the closure helpers (HB predecessors, must-happen-before,
critical-section indexing) used by the CP/WCP oracles."""

from repro.core.closure import (
    HBClosure,
    compute_hb_predecessors,
    compute_must_happen_before,
    _critical_section_indices,
)
from repro.trace.builder import TraceBuilder


class TestHBPredecessors:
    def test_thread_order_edges(self):
        trace = TraceBuilder().write("t1", "a").write("t1", "b").write("t1", "c").build()
        predecessors = compute_hb_predecessors(trace)
        assert predecessors[2] == {0, 1}
        assert predecessors[0] == set()

    def test_release_acquire_edges_are_transitive(self):
        trace = (
            TraceBuilder()
            .write("t1", "x")
            .acquire("t1", "l").release("t1", "l")
            .acquire("t2", "l").release("t2", "l")
            .acquire("t3", "l").write("t3", "y").release("t3", "l")
            .build()
        )
        predecessors = compute_hb_predecessors(trace)
        write_y = next(e.index for e in trace if e.is_write() and e.variable == "y")
        assert 0 in predecessors[write_y]

    def test_no_edge_from_later_release(self):
        trace = (
            TraceBuilder()
            .acquire("t1", "l").release("t1", "l")
            .acquire("t2", "l").release("t2", "l")
            .build()
        )
        predecessors = compute_hb_predecessors(trace)
        # The first acquire has no cross-thread predecessors.
        assert predecessors[0] == set()
        # The second acquire is preceded by the first release.
        assert 1 in predecessors[2]

    def test_fork_and_join_edges(self):
        trace = (
            TraceBuilder()
            .write("t1", "before")
            .fork("t1", "t2")
            .write("t2", "child")
            .join("t1", "t2")
            .write("t1", "after")
            .build()
        )
        predecessors = compute_hb_predecessors(trace)
        assert {0, 1} <= predecessors[2]      # child after fork (and before it)
        assert 2 in predecessors[4]           # parent's post-join event after child


class TestMustHappenBefore:
    def test_excludes_lock_edges(self):
        trace = (
            TraceBuilder()
            .acquire("t1", "l").write("t1", "x").release("t1", "l")
            .acquire("t2", "l").write("t2", "x").release("t2", "l")
            .build()
        )
        mhb = compute_must_happen_before(trace)
        hb = compute_hb_predecessors(trace)
        second_write = 4
        # HB orders the writes via the lock; must-happen-before does not.
        assert 1 in hb[second_write]
        assert 1 not in mhb[second_write]

    def test_includes_fork_join_and_thread_order(self):
        trace = (
            TraceBuilder()
            .write("t1", "a")
            .fork("t1", "t2")
            .write("t2", "b")
            .join("t1", "t2")
            .write("t1", "c")
            .build()
        )
        mhb = compute_must_happen_before(trace)
        assert {0, 1} <= mhb[2]
        assert 2 in mhb[4]
        assert 0 in mhb[4]


class TestCriticalSectionIndexing:
    def test_sections_cover_their_events(self):
        trace = (
            TraceBuilder()
            .acquire("t1", "l").read("t1", "x").write("t1", "y").release("t1", "l")
            .build()
        )
        sections = _critical_section_indices(trace)
        assert sections[0] == [0, 1, 2, 3]
        assert sections[3] == [0, 1, 2, 3]

    def test_unmatched_release_skipped(self):
        trace = (
            TraceBuilder()
            .release("t1", "l")
            .write("t1", "x")
            .build(validate=False)
        )
        sections = _critical_section_indices(trace)
        assert 0 not in sections

    def test_unmatched_acquire_extends_to_thread_end(self):
        trace = (
            TraceBuilder()
            .acquire("t1", "l").write("t1", "x").write("t1", "y")
            .build()
        )
        sections = _critical_section_indices(trace)
        assert sections[0] == [0, 1, 2]


class TestHBClosureQueries:
    def test_ordered_is_reflexive_and_directional(self):
        trace = TraceBuilder().write("t1", "a").write("t2", "b").build()
        closure = HBClosure(trace)
        assert closure.ordered(0, 0)
        assert not closure.ordered(1, 0)
        assert not closure.ordered(0, 1)

    def test_races_lists_unordered_conflicts_only(self):
        trace = (
            TraceBuilder()
            .write("t1", "x")
            .acquire("t1", "l").release("t1", "l")
            .acquire("t2", "l").release("t2", "l")
            .write("t2", "x")
            .write("t2", "z")
            .write("t1", "z")
            .build()
        )
        racy_variables = {b.variable for _, b in HBClosure(trace).races()}
        assert racy_variables == {"z"}
