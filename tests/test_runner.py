"""Tests for the run supervisor: coordinator crashes become bounded resumes.

The contract under test is the strongest one the checkpoint subsystem can
offer: a run whose *coordinator process* is hard-killed mid-stream and
auto-resumed from the newest checkpoint produces a report identical --
pairs, witnesses, distances -- to the uninterrupted run, for WCP, HB and
FastTrack, sharded and unsharded, sync and async.  Every injected
``kill_coordinator`` fault is checked with ``FaultPlan.unfired()`` so a
kill that silently stopped firing fails the suite rather than passing it.
"""

import json
import os

import pytest

from repro import (
    EngineConfig,
    run_engine,
)
from repro.cli import main
from repro.engine import CoordinatorFailure, Fault, FaultPlan, RunSupervisor
from repro.engine.runner import _KILL_EXIT, _KillAt
from repro.engine.sources import IterableSource
from repro.trace.writers import dump_trace

from conftest import random_trace
from test_sharding import _fingerprint, fork_join_trace

DETECTORS = ["wcp", "hb", "fasttrack"]


def _trace(seed=7):
    return random_trace(seed, n_events=300, n_threads=4, n_locks=2, n_vars=6)


def _pairs(report):
    return sorted(repr(pair) for pair in report.pairs())


def _assert_parity(result, reference):
    assert set(result.keys()) == set(reference.keys())
    for name in reference.keys():
        assert _fingerprint(result[name]) == _fingerprint(reference[name])
        assert _pairs(result[name]) == _pairs(reference[name])
    assert result.events == reference.events


class TestKillAndResumeParity:
    """SIGKILL mid-run, auto-resume, byte-identical reports."""

    @pytest.mark.parametrize("detector", DETECTORS)
    def test_unsharded_parity_through_kill(self, detector, tmp_path):
        trace = _trace(11)
        reference = run_engine(trace, [detector])
        plan = FaultPlan([Fault.kill_coordinator(160)])
        supervisor = RunSupervisor(
            trace, [detector],
            checkpoint_dir=str(tmp_path / "ckpts"),
            checkpoint_every=50, retries=2, backoff_s=0.0,
            fault_plan=plan,
        )
        result = supervisor.run()
        _assert_parity(result, reference)
        assert plan.unfired() == []
        assert supervisor.restarts == 1
        assert result.supervision["coordinator_restarts"] == 1

    def test_multi_detector_parity_through_kill(self, tmp_path):
        trace = _trace(13)
        reference = run_engine(trace, DETECTORS)
        plan = FaultPlan([Fault.kill_coordinator(200)])
        result = RunSupervisor(
            trace, DETECTORS,
            checkpoint_dir=str(tmp_path / "ckpts"),
            checkpoint_every=40, retries=2, backoff_s=0.0,
            fault_plan=plan,
        ).run()
        _assert_parity(result, reference)
        assert plan.unfired() == []

    def test_sharded_thread_mode_parity_through_kill(self, tmp_path):
        trace = fork_join_trace(23, workers=3, steps=120)
        config = (
            EngineConfig()
            .with_shards(2, mode="thread", batch_size=16)
            .with_shard_supervision(backoff_s=0.0, snapshot_every=4)
        )
        reference = run_engine(trace, ["wcp", "hb"], config=config)
        plan = FaultPlan([Fault.kill_coordinator(150)])
        supervisor = RunSupervisor(
            trace, ["wcp", "hb"], config=config,
            checkpoint_dir=str(tmp_path / "ckpts"),
            checkpoint_every=50, retries=2, backoff_s=0.0,
            fault_plan=plan,
        )
        result = supervisor.run()
        _assert_parity(result, reference)
        assert plan.unfired() == []
        assert result.supervision["coordinator_restarts"] == 1

    def test_async_mode_parity_through_kill(self, tmp_path):
        trace = _trace(31)
        reference = run_engine(trace, ["wcp"])
        plan = FaultPlan([Fault.kill_coordinator(170)])
        result = RunSupervisor(
            trace, ["wcp"],
            config=EngineConfig().with_detectors("wcp"),
            checkpoint_dir=str(tmp_path / "ckpts"),
            checkpoint_every=50, retries=2, backoff_s=0.0,
            fault_plan=plan, use_async=True,
        ).run()
        _assert_parity(result, reference)
        assert plan.unfired() == []

    def test_kill_before_first_checkpoint_reruns_fresh(self, tmp_path):
        trace = _trace(37)
        reference = run_engine(trace, ["wcp"])
        plan = FaultPlan([Fault.kill_coordinator(30)])
        supervisor = RunSupervisor(
            trace, ["wcp"],
            checkpoint_dir=str(tmp_path / "ckpts"),
            checkpoint_every=1000,  # no checkpoint before the kill
            retries=1, backoff_s=0.0, fault_plan=plan,
        )
        result = supervisor.run()
        _assert_parity(result, reference)
        assert plan.unfired() == []
        assert supervisor.restarts == 1

    def test_two_kills_need_two_retries(self, tmp_path):
        trace = _trace(41)
        reference = run_engine(trace, ["wcp"])
        plan = FaultPlan([
            Fault.kill_coordinator(80),
            Fault.kill_coordinator(190),
        ])
        supervisor = RunSupervisor(
            trace, ["wcp"],
            checkpoint_dir=str(tmp_path / "ckpts"),
            checkpoint_every=30, retries=3, backoff_s=0.0,
            fault_plan=plan,
        )
        result = supervisor.run()
        _assert_parity(result, reference)
        assert plan.unfired() == []
        assert supervisor.restarts == 2
        assert result.supervision["coordinator_restarts"] == 2

    def test_temp_checkpoint_dir_is_cleaned_up(self):
        trace = _trace(43)
        plan = FaultPlan([Fault.kill_coordinator(160)])
        supervisor = RunSupervisor(
            trace, ["wcp"], checkpoint_every=50,
            retries=2, backoff_s=0.0, fault_plan=plan,
        )
        private_dir = supervisor.checkpoint_dir
        result = supervisor.run()
        assert result.supervision["coordinator_restarts"] == 1
        assert not os.path.exists(private_dir)


class TestFailureModes:
    """Budget exhaustion and deterministic errors stay deterministic."""

    def test_retry_budget_exhausted_is_actionable(self, tmp_path):
        trace = _trace(47)
        directory = tmp_path / "ckpts"
        plan = FaultPlan([Fault.kill_coordinator(160)])
        supervisor = RunSupervisor(
            trace, ["wcp"], checkpoint_dir=str(directory),
            checkpoint_every=50, retries=0, backoff_s=0.0, fault_plan=plan,
        )
        with pytest.raises(CoordinatorFailure) as excinfo:
            supervisor.run()
        message = str(excinfo.value)
        assert "died 1 time(s)" in message
        assert str(directory) in message
        assert "--auto-resume" in message or "resume" in message
        # The checkpoints written before the crash survive for a manual
        # resume (the supervisor only removes directories it owns, and
        # only after success).
        assert list(directory.glob("ckpt-*.rckp"))

    def test_deterministic_child_error_is_not_retried(self, tmp_path):
        def bad_source():
            def events():
                raise ValueError("synthetic deterministic failure")
                yield  # pragma: no cover

            return IterableSource(events())

        supervisor = RunSupervisor(
            bad_source, ["wcp"], checkpoint_dir=str(tmp_path / "ckpts"),
            retries=3, backoff_s=0.0,
        )
        with pytest.raises(ValueError, match="synthetic deterministic"):
            supervisor.run()
        assert supervisor.restarts == 0

    def test_negative_retries_rejected(self):
        with pytest.raises(ValueError):
            RunSupervisor(_trace(), ["wcp"], retries=-1)

    def test_success_without_faults_reports_zero_restarts(self, tmp_path):
        trace = _trace(53)
        reference = run_engine(trace, ["wcp"])
        supervisor = RunSupervisor(
            trace, ["wcp"], checkpoint_dir=str(tmp_path / "ckpts"),
            checkpoint_every=100,
        )
        result = supervisor.run()
        _assert_parity(result, reference)
        assert supervisor.restarts == 0
        assert result.supervision["coordinator_restarts"] == 0


class TestCoordinatorKillPlan:
    """FaultPlan plumbing for the new coordinator-kill kind."""

    def test_take_coordinator_kill_consumes_once(self):
        plan = FaultPlan([Fault.kill_coordinator(42)])
        assert plan.take_coordinator_kill() == 42
        assert plan.take_coordinator_kill() is None
        assert plan.unfired() == []

    def test_take_coordinator_kill_ignores_other_kinds(self):
        plan = FaultPlan([Fault.kill_worker(0, 10)])
        assert plan.take_coordinator_kill() is None
        assert len(plan.unfired()) == 1

    def test_kill_at_wrapper_is_transparent_below_threshold(self):
        trace = _trace(59)
        wrapped = _KillAt(trace, 10 ** 9)
        events = list(wrapped)
        assert len(events) == len(trace)
        assert wrapped.length_hint() == len(trace)
        assert wrapped.is_complete
        assert _KILL_EXIT == 137


class TestAutoResumeCLI:
    """analyze --auto-resume end to end through the real CLI."""

    def test_auto_resume_json_matches_unsupervised(self, tmp_path, capsys):
        trace = _trace(61)
        trace_path = tmp_path / "trace.std"
        dump_trace(trace, trace_path)

        plain_json = tmp_path / "plain.json"
        code = main([
            "analyze", str(trace_path), "--detector", "wcp",
            "--json", str(plain_json),
        ])
        plain_output = capsys.readouterr()

        supervised_json = tmp_path / "supervised.json"
        supervised_code = main([
            "analyze", str(trace_path), "--detector", "wcp",
            "--checkpoint", str(tmp_path / "ckpts"),
            "--checkpoint-every", "50",
            "--auto-resume", "2",
            "--json", str(supervised_json),
        ])
        supervised_output = capsys.readouterr()

        assert supervised_code == code

        def normalized(text, json_path):
            # Timing statistics legitimately differ between runs; every
            # finding line must not.
            return [
                line.replace(str(json_path), "OUT")
                for line in text.splitlines()
                if not line.lstrip().startswith(
                    ("stat time_s", "stat events_per_s")
                )
            ]

        assert normalized(supervised_output.out, supervised_json) == (
            normalized(plain_output.out, plain_json)
        )
        plain = json.loads(plain_json.read_text())
        supervised = json.loads(supervised_json.read_text())
        plain.pop("stats", None)
        supervised.pop("stats", None)
        assert supervised == plain

    def test_auto_resume_rejects_window(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.std"
        dump_trace(_trace(67), trace_path)
        code = main([
            "analyze", str(trace_path), "--window", "10",
            "--auto-resume", "1",
        ])
        assert code == 2
        assert "--auto-resume" in capsys.readouterr().err
