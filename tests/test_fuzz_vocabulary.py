"""Coverage-driven trace-fuzzer smoke: differential parity on the full vocabulary.

Random mixed-vocabulary traces (mutexes, rwlocks, barriers, wait/notify,
fork/join) are run through every execution mode -- single engine, sharded
engine, async engine -- and through an STD round trip, asserting that WCP,
HB and FastTrack produce identical reports everywhere.  This is the
differential harness CI runs as its fuzzer smoke: the generator only emits
discipline-legal traces (it validates its own output), so any divergence
is a detector or engine bug, not a bad input.
"""

import asyncio

import pytest

from repro import (
    AsyncRaceEngine,
    EngineConfig,
    RaceEngine,
    ShardedEngine,
)
from repro.bench.generators import mixed_vocabulary_trace
from repro.trace import EventType, load_trace
from repro.trace.writers import dump_trace

from test_sharding import _fingerprint

DETECTORS = ["wcp", "hb", "fasttrack"]
SEEDS = range(6)


def _report_fingerprints(result):
    fingerprints = {
        name: _fingerprint(report) for name, report in result.reports.items()
    }
    assert len(fingerprints) == len(DETECTORS)
    return fingerprints


class TestMixedVocabularyDifferential:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_serial_sharded_async_parity(self, seed):
        trace = mixed_vocabulary_trace(seed=seed, threads=3, steps=150)
        serial = RaceEngine().run(trace, detectors=DETECTORS)
        config = EngineConfig().with_shards(3, mode="serial", batch_size=16)
        sharded = ShardedEngine(config).run(trace, detectors=DETECTORS)
        async_result = asyncio.run(
            AsyncRaceEngine().run(trace, detectors=DETECTORS)
        )
        expected = _report_fingerprints(serial)
        assert _report_fingerprints(sharded) == expected
        assert _report_fingerprints(async_result) == expected

    @pytest.mark.parametrize("seed", [1, 4])
    def test_shard_count_does_not_change_reports(self, seed):
        trace = mixed_vocabulary_trace(seed=seed, threads=4, steps=150)
        expected = _report_fingerprints(RaceEngine().run(trace, detectors=DETECTORS))
        for shards in (2, 5):
            config = EngineConfig().with_shards(shards, mode="serial", batch_size=16)
            result = ShardedEngine(config).run(trace, detectors=DETECTORS)
            assert _report_fingerprints(result) == expected, (
                "shards=%d diverged on seed %d" % (shards, seed)
            )

    @pytest.mark.parametrize("seed", SEEDS)
    def test_std_round_trip_preserves_reports(self, tmp_path, seed):
        trace = mixed_vocabulary_trace(seed=seed, threads=3, steps=120)
        path = dump_trace(trace, tmp_path / "mixed.std")
        reloaded = load_trace(path)
        assert reloaded.census() == trace.census()
        expected = _report_fingerprints(RaceEngine().run(trace, detectors=DETECTORS))
        assert _report_fingerprints(
            RaceEngine().run(reloaded, detectors=DETECTORS)
        ) == expected


class TestGeneratorCoverage:
    def test_every_event_kind_appears(self):
        # The deterministic preamble guarantees full-vocabulary coverage
        # regardless of the random tail -- the property that makes a small
        # CI seed range meaningful.
        for seed in SEEDS:
            trace = mixed_vocabulary_trace(seed=seed, threads=3, steps=120)
            kinds = {event.etype for event in trace.events}
            assert kinds == set(EventType), (
                "seed %d missing kinds: %s"
                % (seed, sorted(e.value for e in set(EventType) - kinds))
            )

    def test_generator_output_is_discipline_legal(self):
        # Construction already validates (validate=True); this documents it.
        trace = mixed_vocabulary_trace(seed=9, threads=4, steps=200)
        assert len(trace) > 0
