"""Tests for the shared-memory ring and the zero-copy shard transport.

Unit level: the SPSC ring's wraparound, backpressure, CRC framing and
peer-death behaviour.  Integration level: ``mode="ring"`` sharded runs
must be fingerprint-identical to the unsharded engine across batch
sizes, ring sizes (including rings smaller than one batch, which forces
segment streaming), supervised worker death, and checkpoint/resume.
"""

import threading
import time

import pytest

from repro import EngineConfig, RaceEngine, ShardedEngine
from repro.engine.faults import Fault, FaultPlan
from repro.engine.ringbuffer import (
    DEFAULT_RING_BYTES,
    RingCorruption,
    RingTimeout,
    ShmRing,
)
from repro.engine.sharding import _TRANSPORT_MODES

from conftest import random_trace
from test_sharding import _fingerprint


@pytest.fixture
def ring():
    ring = ShmRing.create(256)
    yield ring
    ring.unlink()


class TestShmRing:
    def test_round_trip(self, ring):
        ring.push(b"hello")
        ring.push(b"")
        ring.push(b"world")
        assert ring.pop() == b"hello"
        assert ring.pop() == b""
        assert ring.pop() == b"world"
        assert ring.pending_bytes() == 0

    def test_wraparound(self, ring):
        # Cycle far more bytes than the capacity through the ring so
        # every record boundary position (including frames straddling
        # the wrap point) is exercised.
        for i in range(300):
            payload = bytes([i % 251]) * (i % 97 + 1)
            ring.push(payload)
            assert ring.pop() == payload

    def test_attach_by_name(self, ring):
        peer = ShmRing.attach(ring.name, ring.capacity)
        try:
            ring.push(b"cross-mapping")
            assert peer.pop() == b"cross-mapping"
        finally:
            peer.close()

    def test_backpressure_blocks_until_drained(self, ring):
        # Fill the ring, then show the next push completes only after a
        # consumer makes room.
        filler = b"x" * 100
        ring.push(filler)
        ring.push(filler)  # 216 of 256 bytes used; a third cannot fit
        released = threading.Event()

        def producer():
            ring.push(filler)
            released.set()

        thread = threading.Thread(target=producer)
        thread.start()
        try:
            assert not released.wait(0.05), "push must block on a full ring"
            assert ring.pop() == filler
            assert released.wait(2.0), "push must resume once space frees"
        finally:
            thread.join()
        assert ring.pop() == filler
        assert ring.pop() == filler

    def test_push_timeout(self, ring):
        ring.push(b"y" * 120)
        ring.push(b"y" * 100)
        with pytest.raises(RingTimeout):
            ring.push(b"y" * 120, timeout=0.05)

    def test_pop_timeout(self, ring):
        with pytest.raises(RingTimeout):
            ring.pop(timeout=0.05)

    def test_dead_peer_breaks_the_wait(self, ring):
        ring.push(b"z" * 120)
        ring.push(b"z" * 100)
        # Producer waiting for space notices the dead consumer...
        with pytest.raises(BrokenPipeError):
            ring.push(b"z" * 120, liveness=lambda: False)
        ring.pop()
        ring.pop()
        # ... and a consumer waiting on an empty ring notices the dead
        # producer.
        with pytest.raises(BrokenPipeError):
            ring.pop(liveness=lambda: False)

    def test_torn_write_rejected_by_crc(self, ring):
        ring.push(b"abcdef")
        # Corrupt one payload byte in place -- the shape of a torn write
        # from a producer that died mid-copy.
        offset = (ring._read_pos + 8) % ring.capacity
        ring._shm.buf[16 + offset] ^= 0xFF
        with pytest.raises(RingCorruption):
            ring.pop()

    def test_corrupt_frame_length_rejected(self, ring):
        ring.push(b"abcdef")
        # Stamp an absurd length into the frame header.
        import struct

        offset = ring._read_pos % ring.capacity
        struct.pack_into("<I", ring._shm.buf, 16 + offset, 0x7FFFFFF0)
        with pytest.raises(RingCorruption):
            ring.pop()

    def test_oversize_payload_streams_in_segments(self, ring):
        # 5000 bytes through a 256-byte ring: producer and consumer must
        # advance in lockstep, segment by segment.
        import os as os_module

        payload = os_module.urandom(5000)
        out = []
        consumer = threading.Thread(target=lambda: out.append(ring.pop()))
        consumer.start()
        ring.push(payload)
        consumer.join(5.0)
        assert out and out[0] == payload

    def test_capacity_floor(self):
        with pytest.raises(ValueError):
            ShmRing.create(16)

    def test_unlink_is_idempotent(self):
        ring = ShmRing.create(256)
        ring.unlink()
        ring.unlink()
        ring.close()


class TestRingTransportParity:
    def test_ring_mode_registered(self):
        assert "ring" in _TRANSPORT_MODES

    def test_parity_with_unsharded_engine(self):
        trace = random_trace(13, n_events=300, n_threads=4, n_locks=3, n_vars=8)
        single = RaceEngine().run(trace, detectors=["wcp", "hb", "fasttrack"])
        sharded = ShardedEngine(shards=3, mode="ring", batch_size=32).run(
            trace, detectors=["wcp", "hb", "fasttrack"]
        )
        assert sharded.mode == "ring"
        for name in single.keys():
            assert _fingerprint(single[name]) == _fingerprint(sharded[name])

    def test_parity_with_process_mode(self):
        trace = random_trace(29, n_events=260, n_threads=5, n_vars=6)
        process = ShardedEngine(shards=2, mode="process", batch_size=64).run(
            trace, detectors=["wcp"]
        )
        ring = ShardedEngine(shards=2, mode="ring", batch_size=64).run(
            trace, detectors=["wcp"]
        )
        assert _fingerprint(process["WCP"]) == _fingerprint(ring["WCP"])

    def test_tiny_ring_forces_segment_streaming(self):
        # A ring far smaller than one encoded batch: every batch streams
        # through as multiple segments and parity must still hold.
        trace = random_trace(7, n_events=400, n_threads=4, n_vars=6)
        single = RaceEngine().run(trace, detectors=["wcp"])
        config = EngineConfig().with_detectors("wcp")
        config.with_shards(2, mode="ring", batch_size=256)
        config.shard_ring_bytes = 1024
        sharded = ShardedEngine(config).run(trace)
        assert _fingerprint(single["WCP"]) == _fingerprint(sharded["WCP"])

    def test_default_ring_size_from_config(self):
        assert EngineConfig().shard_ring_bytes == DEFAULT_RING_BYTES


class TestRingTransportFaults:
    def test_worker_death_mid_ring_recovers(self):
        # Hard worker exit mid-run: the supervisor restores the shard
        # from its newest snapshot, replays, and the merged report is
        # identical to the uninterrupted run.
        trace = random_trace(3, n_events=400, n_threads=4, n_vars=8)
        single = RaceEngine().run(trace, detectors=["wcp", "hb"])
        config = EngineConfig().with_detectors("wcp", "hb")
        config.with_shards(2, mode="ring", batch_size=32)
        config.with_shard_supervision(
            retries=2, snapshot_every=4, backoff_s=0.01
        )
        config.fault_plan = FaultPlan([Fault.kill_worker(1, 150)])
        result = ShardedEngine(config).run(trace)
        assert result.supervision["worker_restarts"] >= 1
        for name in single.keys():
            assert _fingerprint(single[name]) == _fingerprint(result[name])

    def test_worker_death_with_tiny_ring_recovers(self):
        # The coordinator may be blocked in a ring push when the worker
        # dies; the liveness probe must turn the hang into failover.
        trace = random_trace(17, n_events=400, n_threads=4, n_vars=6)
        single = RaceEngine().run(trace, detectors=["wcp"])
        config = EngineConfig().with_detectors("wcp")
        config.with_shards(2, mode="ring", batch_size=128)
        config.shard_ring_bytes = 1024
        config.with_shard_supervision(
            retries=2, snapshot_every=2, backoff_s=0.01
        )
        config.fault_plan = FaultPlan([Fault.kill_worker(0, 100)])
        result = ShardedEngine(config).run(trace)
        assert result.supervision["worker_restarts"] >= 1
        assert _fingerprint(single["WCP"]) == _fingerprint(result["WCP"])

    def test_checkpoint_resume_round_trip(self, tmp_path):
        trace = random_trace(23, n_events=500, n_threads=4, n_vars=8)
        single = RaceEngine().run(trace, detectors=["wcp"])
        config = EngineConfig().with_detectors("wcp")
        config.with_shards(2, mode="ring", batch_size=32)
        config.with_checkpoints(str(tmp_path), every=128)
        full = ShardedEngine(config).run(trace)
        resume_config = EngineConfig().with_detectors("wcp")
        resume_config.with_shards(2, mode="ring", batch_size=32)
        resumed = ShardedEngine(resume_config).resume(trace, str(tmp_path))
        assert (_fingerprint(single["WCP"]) == _fingerprint(full["WCP"])
                == _fingerprint(resumed["WCP"]))
