"""Tests for the single-pass streaming engine (repro.engine)."""

import pytest

from repro import (
    CountingSource,
    EngineConfig,
    EraserDetector,
    FastTrackDetector,
    FileSource,
    HBDetector,
    IterableSource,
    RaceEngine,
    SimulatorSource,
    TraceSource,
    WCPDetector,
    as_source,
    compare_detectors,
    detect_races,
    run_engine,
)
from repro.cli import main
from repro.core.races import ReportSnapshot
from repro.cp.detector import CPDetector
from repro.engine import STOP_EVENT_BUDGET, STOP_EXHAUSTED, STOP_RACE_BUDGET
from repro.engine.engine import StreamContext
from repro.simulator import Program, Write
from repro.trace.writers import dump_trace

from conftest import random_trace


def _report_fingerprint(report):
    """Everything that identifies a report's findings (not its timings)."""
    return (
        sorted(tuple(sorted(key)) for key in report.location_pairs()),
        report.raw_race_count,
        report.count(),
        report.max_distance(),
    )


class TestSources:
    def test_as_source_coercions(self, simple_race_trace, tmp_path):
        assert isinstance(as_source(simple_race_trace), TraceSource)
        path = dump_trace(simple_race_trace, tmp_path / "t.std")
        assert isinstance(as_source(str(path)), FileSource)
        assert isinstance(as_source(iter(simple_race_trace)), IterableSource)
        existing = TraceSource(simple_race_trace)
        assert as_source(existing) is existing
        with pytest.raises(TypeError):
            as_source(42)

    def test_trace_source_is_complete(self, simple_race_trace):
        source = TraceSource(simple_race_trace)
        assert source.is_complete
        assert source.trace is simple_race_trace
        assert source.length_hint() == len(simple_race_trace)

    def test_file_source_replayable_but_lazy(self, tmp_path):
        trace = random_trace(seed=1, n_events=30)
        path = dump_trace(trace, tmp_path / "t.std")
        source = FileSource(path)
        assert not source.is_complete
        assert source.trace is None
        first = [event.target for event in source]
        second = [event.target for event in source]
        assert first == second and len(first) == len(trace)

    def test_counting_source_counts(self, simple_race_trace):
        source = CountingSource(simple_race_trace)
        assert source.passes == 0
        list(source)
        list(source)
        assert source.passes == 2
        assert source.events_emitted == 2 * len(simple_race_trace)

    def test_counting_source_is_transparent(self, simple_race_trace):
        """Regression: the wrapper forwards is_complete/trace, so wrapping
        a complete trace source must not downgrade detectors to stream
        mode (WCP would lose its queue-pruning prescan)."""
        wrapped = CountingSource(simple_race_trace)
        assert wrapped.is_complete
        assert wrapped.trace is simple_race_trace
        streaming = CountingSource(IterableSource(iter(simple_race_trace)))
        assert not streaming.is_complete
        assert streaming.trace is None

    @pytest.mark.parametrize("seed", [0, 5])
    def test_counting_source_reports_and_stats_identical(self, seed):
        """The wrapped run is indistinguishable from the unwrapped one:
        same races AND same stats (the stream-mode downgrade used to
        change WCP's queue statistics), and the prescan stays enabled."""
        trace = random_trace(seed=seed, n_events=60, n_locks=2)

        plain_detector = WCPDetector()
        plain = RaceEngine().run(trace, detectors=[plain_detector])

        wrapped_detector = WCPDetector()
        counter = CountingSource(trace)
        wrapped = RaceEngine().run(counter, detectors=[wrapped_detector])

        assert counter.passes == 1
        assert counter.events_emitted == len(trace)
        # The wrapped detector saw a complete trace: prescan pruning on.
        assert wrapped_detector._effective_prune
        assert plain_detector._effective_prune

        assert _report_fingerprint(wrapped["WCP"]) == _report_fingerprint(
            plain["WCP"]
        )
        timing_keys = {"time_s", "events_per_s"}
        assert {
            key: value for key, value in wrapped["WCP"].stats.items()
            if key not in timing_keys
        } == {
            key: value for key, value in plain["WCP"].stats.items()
            if key not in timing_keys
        }


class TestSinglePass:
    def test_compare_detectors_iterates_source_exactly_once(self):
        """The acceptance property: k detectors, ONE iteration of the source."""
        trace = random_trace(seed=7, n_events=60)
        source = CountingSource(IterableSource(iter(trace), name=trace.name))
        reports = compare_detectors(
            source, [WCPDetector(), HBDetector(), FastTrackDetector(), EraserDetector()]
        )
        assert source.passes == 1
        assert source.events_emitted == len(trace)
        assert set(reports) == {"WCP", "HB", "FastTrack", "Eraser"}

    def test_engine_run_over_trace(self, simple_race_trace):
        result = RaceEngine().run(simple_race_trace)
        assert set(result.keys()) == {"WCP", "HB"}
        assert result.events == len(simple_race_trace)
        assert result.stop_reason == STOP_EXHAUSTED
        assert result.has_race()
        assert result["WCP"].count() == 1

    def test_duplicate_detector_names_are_disambiguated(self, simple_race_trace):
        result = RaceEngine().run(
            simple_race_trace, detectors=[HBDetector(), HBDetector()]
        )
        assert set(result.keys()) == {"HB", "HB#2"}

    def test_same_detector_instance_twice_is_rejected(self, simple_race_trace):
        detector = HBDetector()
        with pytest.raises(ValueError):
            RaceEngine().run(simple_race_trace, detectors=[detector, detector])

    def test_result_mapping_protocol(self, simple_race_trace):
        result = run_engine(simple_race_trace, detectors=["hb"])
        assert "HB" in result and len(result) == 1
        assert list(result) == ["HB"]
        assert result.get("nope") is None
        assert "HB" in result.summary()


class TestStreamingBatchParity:
    DETECTOR_FACTORIES = [
        lambda: WCPDetector(),
        lambda: HBDetector(),
        lambda: FastTrackDetector(),
        lambda: EraserDetector(),
    ]

    @pytest.mark.parametrize("seed", range(8))
    def test_engine_multi_detector_matches_per_detector_run(self, seed):
        """Property: one engine pass == k independent Detector.run calls."""
        trace = random_trace(seed=seed, n_events=60, n_threads=4, n_vars=3)

        expected = {}
        for factory in self.DETECTOR_FACTORIES:
            detector = factory()
            expected[detector.name] = _report_fingerprint(detector.run(trace))

        result = RaceEngine().run(
            trace, detectors=[factory() for factory in self.DETECTOR_FACTORIES]
        )
        for name, report in result.items():
            assert _report_fingerprint(report) == expected[name], name
            assert report.stats["events"] == len(trace)
            assert report.stats["time_s"] >= 0.0
            assert "events_per_s" in report.stats

    @pytest.mark.parametrize("seed", [0, 3])
    def test_windowed_cp_parity(self, seed):
        trace = random_trace(seed=seed, n_events=40)
        batch = CPDetector(window_size=20).run(trace)
        streamed = RaceEngine().run(trace, detectors=[CPDetector(window_size=20)])
        assert _report_fingerprint(streamed["CP"]) == _report_fingerprint(batch)

    @pytest.mark.parametrize("seed", range(6))
    def test_stream_source_matches_trace_source(self, seed):
        """Feeding the same events as a non-prescannable stream changes
        nothing: WCP's queue pruning is semantics-preserving."""
        trace = random_trace(seed=seed, n_events=50, n_threads=3)
        batch = {
            name: _report_fingerprint(report)
            for name, report in RaceEngine().run(trace).items()
        }
        stream = RaceEngine().run(IterableSource(iter(trace), name=trace.name))
        assert {
            name: _report_fingerprint(report) for name, report in stream.items()
        } == batch

    def test_file_source_matches_in_memory(self, tmp_path):
        trace = random_trace(seed=11, n_events=50)
        path = dump_trace(trace, tmp_path / "t.std")
        from_file = detect_races(FileSource(path))
        in_memory = detect_races(trace)
        assert _report_fingerprint(from_file) == _report_fingerprint(in_memory)


class TestEarlyStop:
    def test_stop_on_first_race(self):
        trace = random_trace(seed=3, n_events=60)
        baseline = detect_races(trace)
        assert baseline.has_race()
        config = EngineConfig().with_detectors("wcp").stop_on_first_race()
        result = RaceEngine(config).run(trace)
        assert result.stop_reason == STOP_RACE_BUDGET
        assert result.stopped_early()
        assert result.events < len(trace)
        assert result["WCP"].count() >= 1

    def test_event_budget(self, simple_race_trace):
        config = EngineConfig().with_detectors("hb").stop_after_events(1)
        result = RaceEngine(config).run(simple_race_trace)
        assert result.stop_reason == STOP_EVENT_BUDGET
        assert result.events == 1
        assert not result.has_race()

    def test_race_free_trace_runs_to_exhaustion(self, protected_trace):
        config = EngineConfig().with_detectors("wcp").stop_on_first_race()
        result = RaceEngine(config).run(protected_trace)
        assert result.stop_reason == STOP_EXHAUSTED
        assert result.events == len(protected_trace)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            EngineConfig().stop_after_races(0)
        with pytest.raises(ValueError):
            EngineConfig().stop_after_events(-1)
        with pytest.raises(ValueError):
            EngineConfig().snapshot_every(0)
        with pytest.raises(ValueError):
            EngineConfig().with_detectors()


class TestSnapshots:
    def test_snapshot_cadence_and_callback(self):
        trace = random_trace(seed=5, n_events=40)
        seen = []
        config = (
            EngineConfig()
            .with_detectors("wcp", "hb")
            .snapshot_every(10, callback=seen.append)
        )
        result = RaceEngine(config).run(trace)
        assert result.snapshots and result.snapshots == seen
        assert all(isinstance(snap, ReportSnapshot) for snap in result.snapshots)
        # Snapshots come in per-detector groups at each interval, ending at
        # the final event count.
        events_at = [snap.events for snap in result.snapshots]
        assert events_at == sorted(events_at)
        assert events_at[-1] == len(trace)
        final = [s for s in result.snapshots if s.events == len(trace)]
        assert {snap.detector_name for snap in final} == {"WCP", "HB"}
        # The last snapshot of each detector agrees with its report.
        for snap in final:
            assert snap.races == result[snap.detector_name].count()

    def test_detector_snapshot_hook(self, simple_race_trace):
        detector = WCPDetector()
        detector.run(simple_race_trace)
        snap = detector.snapshot()
        assert snap.races == 1
        assert snap.events == len(simple_race_trace)
        assert snap.as_dict()["detector"] == "WCP"


class TestStreamContext:
    def test_stream_context_protocol(self):
        context = StreamContext("live")
        assert not context.is_complete
        assert context.threads == []
        assert len(context) == 0
        assert list(context) == []

    @pytest.mark.parametrize("seed", range(6))
    def test_late_appearing_threads_keep_rule_b(self, seed):
        """Regression: a thread first seen mid-stream must still observe
        every earlier critical section of Rule (b).  With per-thread
        queues materialised at append time this diverged; the shared
        critical-section log makes stream and batch WCP clocks identical."""
        import random

        from repro.trace.event import Event, EventType
        from repro.trace.trace import Trace

        rng = random.Random(seed)
        events = []
        # Threads run strictly one after another: the worst case for a
        # detector discovering threads lazily.
        for thread in ("t1", "t2", "t3"):
            held = []
            for _ in range(rng.randint(4, 10)):
                choices = ["r", "w"]
                free = [lock for lock in ("l0", "l1") if lock not in held]
                if free:
                    choices.append("a")
                if held:
                    choices.append("rel")
                action = rng.choice(choices)
                if action == "a":
                    lock = rng.choice(free)
                    held.append(lock)
                    events.append(Event(len(events), thread, EventType.ACQUIRE, lock))
                elif action == "rel":
                    events.append(Event(len(events), thread, EventType.RELEASE, held.pop()))
                else:
                    etype = EventType.READ if action == "r" else EventType.WRITE
                    events.append(Event(len(events), thread, etype, rng.choice("xyz")))
            while held:
                events.append(Event(len(events), thread, EventType.RELEASE, held.pop()))
        trace = Trace(events, name="late%d" % seed)

        batch = WCPDetector().run(trace)
        streamed = detect_races(IterableSource(iter(trace), name=trace.name))
        assert _report_fingerprint(streamed) == _report_fingerprint(batch)

    def test_wcp_reset_on_stream_context_keeps_all_queues(self):
        """Pruning needs a prescan; a stream context must disable it, not
        silently drop Rule (b) exchanges."""
        trace = random_trace(seed=2, n_events=50, n_locks=2)
        pruned = WCPDetector().run(trace)
        streamed = detect_races(IterableSource(iter(trace), name=trace.name))
        assert _report_fingerprint(streamed) == _report_fingerprint(pruned)


class TestSimulatorSource:
    def test_live_simulation_feeds_engine(self):
        program = Program(
            {"t1": [Write("x", loc="a:1")], "t2": [Write("x", loc="b:1")]},
            name="sim-race",
        )
        result = RaceEngine().run(SimulatorSource(program))
        assert result.source_name == "sim-race"
        assert result["WCP"].count() == 1


class TestTimingNormalization:
    def test_run_sets_normalized_stats(self, simple_race_trace):
        for detector in (WCPDetector(), HBDetector(), CPDetector(window_size=10)):
            report = detector.run(simple_race_trace)
            assert report.stats["time_s"] >= 0.0
            assert report.stats["events"] == len(simple_race_trace)
            assert report.stats["events_per_s"] >= 0.0

    def test_cost_accounting_can_be_disabled(self, simple_race_trace):
        config = EngineConfig().with_detectors("wcp", "hb").with_cost_accounting(False)
        result = RaceEngine(config).run(simple_race_trace)
        # Without per-event attribution every detector reports the shared
        # pass time.
        times = {
            round(report.stats["time_s"], 9) for report in result.values()
        }
        assert len(times) == 1

    def test_no_accounting_path_never_calls_account_cost_per_event(self):
        """Regression: with accounting off the hot loop used to pay a dead
        attribute-lookup+call per event per detector
        (``account_cost(0.0)``); now the whole attribution is one bulk
        call at finish time, and the event census stays correct."""
        trace = random_trace(seed=6, n_events=50)
        calls = []

        detector = HBDetector()
        original = detector.account_cost
        detector.account_cost = lambda *a, **kw: (
            calls.append((a, kw)), original(*a, **kw),
        )
        result = RaceEngine().run(trace, detectors=[detector])
        assert result.events == len(trace)
        # One bulk attribution, not one call per event.
        assert len(calls) == 1
        assert detector.cost_events == len(trace)
        # The snapshot default (cost_events) contract survives.
        assert detector.snapshot().events == len(trace)

    def test_accounted_path_still_attributes_per_event(self):
        trace = random_trace(seed=6, n_events=30)
        detectors = [WCPDetector(), HBDetector()]
        RaceEngine().run(trace, detectors=detectors)
        for detector in detectors:
            assert detector.cost_events == len(trace)
            assert detector.cost_time_s >= 0.0


class TestCliStreaming:
    def test_analyze_stream_never_materialises_a_trace(self, tmp_path, monkeypatch, capsys):
        trace = random_trace(seed=3, n_events=30)
        path = dump_trace(trace, tmp_path / "t.std")

        import repro.trace.trace as trace_module

        def _forbidden(self, *args, **kwargs):
            raise AssertionError("--stream must not materialise a Trace")

        monkeypatch.setattr(trace_module.Trace, "__init__", _forbidden)
        code = main(["analyze", str(path), "--stream", "--detector", "wcp,hb"])
        output = capsys.readouterr().out
        assert "WCP" in output and "HB" in output
        assert code in (0, 1)

    def test_analyze_comma_separated_detectors(self, tmp_path, capsys):
        path = dump_trace(random_trace(seed=3, n_events=30), tmp_path / "t.std")
        code = main(["analyze", str(path), "--detector", "wcp,hb,eraser"])
        output = capsys.readouterr().out
        assert "WCP" in output and "HB" in output and "Eraser" in output
        assert code in (0, 1)

    def test_analyze_unknown_detector(self, tmp_path, capsys):
        path = dump_trace(random_trace(seed=3, n_events=10), tmp_path / "t.std")
        assert main(["analyze", str(path), "--detector", "quantum"]) == 2

    def test_analyze_first_race_stops_early(self, tmp_path, capsys):
        trace = random_trace(seed=3, n_events=60)
        path = dump_trace(trace, tmp_path / "t.std")
        code = main(["analyze", str(path), "--detector", "wcp", "--first-race"])
        output = capsys.readouterr().out
        assert code == 1
        assert "stopped early" in output

    def test_analyze_multi_detector_json_with_dotted_dir(self, tmp_path, capsys):
        # A dot in a directory component must not be mistaken for the
        # file extension when deriving per-detector report paths.
        path = dump_trace(random_trace(seed=3, n_events=20), tmp_path / "t.std")
        out_dir = tmp_path / "runs.v2"
        out_dir.mkdir()
        main([
            "analyze", str(path), "--detector", "wcp,hb",
            "--json", str(out_dir / "out.json"),
        ])
        assert (out_dir / "out.wcp.json").exists()
        assert (out_dir / "out.hb.json").exists()

    def test_compare_subcommand(self, tmp_path, capsys):
        path = dump_trace(random_trace(seed=3, n_events=40), tmp_path / "t.std")
        code = main(["compare", str(path), "--detectors", "wcp,hb"])
        output = capsys.readouterr().out
        assert "one pass" in output
        assert "WCP" in output and "HB" in output
        assert code in (0, 1)

    def test_compare_stream(self, tmp_path, capsys):
        path = dump_trace(random_trace(seed=4, n_events=40), tmp_path / "t.std")
        code = main(["compare", str(path), "--detectors", "wcp,hb", "--stream"])
        assert "one pass" in capsys.readouterr().out
        assert code in (0, 1)
