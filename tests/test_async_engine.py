"""Tests for push ingestion and the asynchronous engine.

The acceptance property: :class:`AsyncRaceEngine` produces reports
identical to :class:`RaceEngine` (races, witnesses, distances, stop
reasons) on the same stream, because both drive the shared
:class:`EnginePass` stepper.
"""

import asyncio
import threading

import pytest

from repro import (
    AsyncRaceEngine,
    EngineConfig,
    IterableSource,
    LineProtocolSource,
    QueueSource,
    RaceEngine,
    ValidatingSource,
    detect_races,
    detect_races_async,
    run_engine_async,
)
from repro.cli import _build_parser, _serve_async
from repro.engine import STOP_EVENT_BUDGET, STOP_RACE_BUDGET, as_async_source
from repro.trace.event import Event
from repro.trace.trace import LockSemanticsError
from repro.trace.writers import write_std

from conftest import random_trace


def _fingerprint(report):
    """Everything that identifies a report's findings (not its timings)."""
    return (
        sorted(tuple(sorted(key)) for key in report.location_pairs()),
        sorted(
            (pair.first_event.index, pair.second_event.index)
            for pair in report.pairs()
        ),
        sorted(pair.distance for pair in report.pairs()),
        report.raw_race_count,
        report.count(),
    )


def _result_fingerprint(result):
    return (
        result.events,
        result.stop_reason,
        {name: _fingerprint(report) for name, report in result.items()},
    )


class TestAsyncSyncParity:
    @pytest.mark.parametrize("seed", range(8))
    def test_reports_identical_on_random_traces(self, seed):
        trace = random_trace(seed=seed, n_events=60, n_threads=4, n_vars=3)
        sync_result = RaceEngine().run(trace)
        async_result = asyncio.run(AsyncRaceEngine().run(trace))
        assert _result_fingerprint(async_result) == _result_fingerprint(
            sync_result
        )

    @pytest.mark.parametrize("seed", [0, 5])
    def test_stream_source_parity(self, seed):
        """Same stream (no prescan) through both engines."""
        trace = random_trace(seed=seed, n_events=50)
        sync_result = RaceEngine().run(
            IterableSource(iter(trace), name=trace.name)
        )
        async_result = asyncio.run(
            AsyncRaceEngine().run(IterableSource(iter(trace), name=trace.name))
        )
        assert _result_fingerprint(async_result) == _result_fingerprint(
            sync_result
        )

    def test_stop_reasons_match(self):
        trace = random_trace(seed=3, n_events=60)
        config = EngineConfig().with_detectors("wcp").stop_on_first_race()
        sync_result = RaceEngine(config).run(trace)
        config2 = EngineConfig().with_detectors("wcp").stop_on_first_race()
        async_result = asyncio.run(AsyncRaceEngine(config2).run(trace))
        assert sync_result.stop_reason == STOP_RACE_BUDGET
        assert async_result.stop_reason == sync_result.stop_reason
        assert async_result.events == sync_result.events

    def test_event_budget(self, simple_race_trace):
        config = EngineConfig().with_detectors("hb").stop_after_events(1)
        result = asyncio.run(AsyncRaceEngine(config).run(simple_race_trace))
        assert result.stop_reason == STOP_EVENT_BUDGET
        assert result.events == 1

    def test_snapshots_match(self):
        trace = random_trace(seed=5, n_events=40)
        def snap_config():
            return EngineConfig().with_detectors("wcp", "hb").snapshot_every(10)
        sync_result = RaceEngine(snap_config()).run(trace)
        async_result = asyncio.run(AsyncRaceEngine(snap_config()).run(trace))
        assert [
            (s.detector_name, s.events, s.races) for s in async_result.snapshots
        ] == [
            (s.detector_name, s.events, s.races) for s in sync_result.snapshots
        ]

    def test_api_helpers(self, simple_race_trace):
        report = asyncio.run(detect_races_async(simple_race_trace))
        assert report.count() == detect_races(simple_race_trace).count()
        result = asyncio.run(
            run_engine_async(simple_race_trace, detectors=["wcp", "hb"])
        )
        assert set(result.keys()) == {"WCP", "HB"}


class TestQueueSource:
    def _producer(self, source, events):
        for event in events:
            source.put(event)
        source.close()

    def test_sync_consumption_with_backpressure(self):
        """A bounded queue (maxsize 4) forces the producer to block while
        the engine drains: the backpressure contract, exercised by
        running producer and engine on different threads."""
        trace = random_trace(seed=7, n_events=60)
        source = QueueSource(name=trace.name, maxsize=4)
        producer = threading.Thread(
            target=self._producer, args=(source, list(trace))
        )
        producer.start()
        report = detect_races(source)
        producer.join()
        assert _fingerprint(report) == _fingerprint(detect_races(
            IterableSource(iter(trace), name=trace.name)
        ))

    def test_async_consumption(self):
        trace = random_trace(seed=9, n_events=50)
        source = QueueSource(name=trace.name, maxsize=8)
        producer = threading.Thread(
            target=self._producer, args=(source, list(trace))
        )
        producer.start()
        report = asyncio.run(detect_races_async(source))
        producer.join()
        assert _fingerprint(report) == _fingerprint(detect_races(
            IterableSource(iter(trace), name=trace.name)
        ))

    def test_push_convenience_and_close(self):
        from repro.trace.event import EventType

        source = QueueSource(maxsize=8)
        source.push("t1", EventType.WRITE, "x", loc="a:1")
        source.push("t2", EventType.WRITE, "x", loc="b:1")
        source.close()
        report = detect_races(source)
        assert report.count() == 1
        assert source.closed
        with pytest.raises(RuntimeError):
            source.put(Event(-1, "t1", EventType.WRITE, "x"))

    def test_exhausted_queue_terminates_again(self):
        source = QueueSource()
        source.close()
        assert list(source) == []
        assert list(source) == []

    def test_cancelled_async_consumer_does_not_wedge_shutdown(self):
        """Regression: the async drain parks queue waits on an executor
        thread in bounded slices, so cancelling a consumer of an empty
        (never-closed) queue leaves nothing blocked and asyncio.run's
        executor shutdown returns promptly."""
        async def run():
            with pytest.raises(asyncio.TimeoutError):
                await asyncio.wait_for(
                    AsyncRaceEngine().run(QueueSource()), timeout=0.2
                )

        # The hang mode was asyncio.run never returning (stuck in
        # loop.shutdown_default_executor); completing at all is the pass.
        asyncio.run(run())


class TestLineProtocolSource:
    def _feed_reader(self, text):
        reader = asyncio.StreamReader()
        reader.feed_data(text.encode("utf-8"))
        reader.feed_eof()
        return reader

    def test_decodes_std_lines(self):
        async def run():
            reader = self._feed_reader(
                "# comment\n"
                "t1|acq(l)|a:1\n"
                "\n"
                "t1|w(x)|a:2\n"
                "t1|rel(l)|a:3\n"
            )
            source = LineProtocolSource(reader, name="wire")
            return [event async for event in source]

        events = asyncio.run(run())
        assert [(e.index, e.thread, str(e.etype), e.target) for e in events] == [
            (0, "t1", "acq", "l"),
            (1, "t1", "w", "x"),
            (2, "t1", "rel", "l"),
        ]
        assert all(e.tid is not None for e in events)

    @pytest.mark.parametrize("seed", [1, 6])
    def test_wire_report_matches_file_report(self, seed, tmp_path):
        trace = random_trace(seed=seed, n_events=50)
        text = write_std(trace)

        async def run():
            source = LineProtocolSource(self._feed_reader(text), name="wire")
            return await detect_races_async(ValidatingSource(source))

        wire = asyncio.run(run())
        direct = detect_races(IterableSource(iter(trace), name="wire"))
        assert _fingerprint(wire) == _fingerprint(direct)

    def test_malformed_wire_stream_raises_validation_error(self):
        async def run():
            reader = self._feed_reader("t1|acq(l)\nt2|acq(l)\n")
            source = ValidatingSource(LineProtocolSource(reader))
            return await detect_races_async(source)

        with pytest.raises(LockSemanticsError):
            asyncio.run(run())


class TestCooperativeAdapter:
    def test_adapter_forwards_protocol(self, protected_trace):
        adapted = as_async_source(protected_trace)
        assert adapted.is_complete
        assert adapted.trace is protected_trace
        assert adapted.length_hint() == len(protected_trace)

    def test_async_source_returned_unchanged(self):
        source = QueueSource()
        assert as_async_source(source) is source


class TestServe:
    def _serve_args(self, *extra):
        return _build_parser().parse_args(["serve", "--once"] + list(extra))

    async def _roundtrip(self, args, payload):
        """Start serve, push ``payload`` over one connection, return
        (response text, exit code)."""
        holder = {}
        task = asyncio.ensure_future(
            _serve_async(args, ready=lambda server: holder.update(s=server))
        )
        while "s" not in holder:
            await asyncio.sleep(0.005)
        port = holder["s"].sockets[0].getsockname()[1]
        reader, writer = await asyncio.open_connection("127.0.0.1", port)
        writer.write(payload.encode("utf-8"))
        writer.write_eof()
        await writer.drain()
        response = (await reader.read()).decode("utf-8")
        writer.close()
        return response, await task

    def test_serve_race_count_matches_analyze(self, tmp_path):
        trace = random_trace(seed=4, n_events=60)
        expected = detect_races(
            IterableSource(iter(trace), name="x"), stream_reclaim=True
        )

        args = self._serve_args("--port", "0", "--detector", "wcp")
        response, code = asyncio.run(
            self._roundtrip(args, write_std(trace))
        )
        lines = response.strip().splitlines()
        assert lines[-1] == "done %d" % len(trace)
        name, distinct, raw = lines[0].split()
        assert name == "WCP"
        assert int(distinct) == expected.count()
        assert int(raw) == expected.raw_race_count
        assert code == (1 if expected.has_race() else 0)

    def test_serve_multi_detector_response(self):
        args = self._serve_args("--port", "0", "--detector", "wcp,hb")
        payload = "t1|w(x)|a:1\nt2|w(x)|b:1\n"
        response, code = asyncio.run(self._roundtrip(args, payload))
        lines = response.strip().splitlines()
        assert lines[0].startswith("WCP 1 ")
        assert lines[1].startswith("HB ")
        assert lines[-1] == "done 2"
        assert code == 1

    def test_serve_rejects_oversized_line_with_error_response(self):
        """Regression: a line over the stream reader's buffer limit used
        to escape serve_connection (no response, --once never exited);
        it must answer an error line and exit like a rejected stream."""
        args = self._serve_args("--port", "0")
        payload = "t1|w(" + "x" * 100_000 + ")\n"
        response, code = asyncio.run(self._roundtrip(args, payload))
        assert response.startswith("error ValueError")
        assert code == 2

    def test_serve_rejects_malformed_stream(self):
        args = self._serve_args("--port", "0")
        response, code = asyncio.run(
            self._roundtrip(args, "t1|acq(l)\nt2|acq(l)\n")
        )
        assert response.startswith("error LockSemanticsError:")
        assert "while held by thread" in response
        assert code == 2

    def test_serve_no_validate_accepts_malformed_stream(self):
        args = self._serve_args("--port", "0", "--no-validate")
        response, code = asyncio.run(
            self._roundtrip(args, "t1|acq(l)\nt2|acq(l)\n")
        )
        assert response.strip().endswith("done 2")
        assert code in (0, 1)

    def test_serve_max_events(self):
        args = self._serve_args("--port", "0", "--max-events", "2")
        payload = "t1|w(x)\nt1|w(x)\nt1|w(x)\nt1|w(x)\n"
        response, _ = asyncio.run(self._roundtrip(args, payload))
        assert response.strip().endswith("done 2")

    def test_serve_unix_socket(self, tmp_path):
        path = str(tmp_path / "serve.sock")
        args = _build_parser().parse_args(
            ["serve", "--once", "--socket", path]
        )

        async def run():
            holder = {}
            task = asyncio.ensure_future(
                _serve_async(args, ready=lambda server: holder.update(s=server))
            )
            while "s" not in holder:
                await asyncio.sleep(0.005)
            reader, writer = await asyncio.open_unix_connection(path)
            writer.write(b"t1|w(x)|a:1\nt2|w(x)|b:1\n")
            writer.write_eof()
            await writer.drain()
            response = (await reader.read()).decode("utf-8")
            writer.close()
            return response, await task

        response, code = asyncio.run(run())
        assert response.strip().splitlines()[0].startswith("WCP 1 ")
        assert code == 1

    def test_serve_requires_listen_argument(self, capsys):
        with pytest.raises(SystemExit):
            _build_parser().parse_args(["serve"])

    def test_serve_unknown_detector(self, capsys):
        from repro.cli import main

        assert main(["serve", "--port", "0", "--detector", "quantum"]) == 2
