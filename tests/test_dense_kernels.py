"""Differential tests for the compiled clock kernels and the binary codec.

The cffi kernels (:mod:`repro.vectorclock.kernels`) must be observably
identical to the pure-Python dense clock, which in turn must agree with
the dict-backed :class:`VectorClock` reference.  The fuzz here drives
random operation sequences through all of them at once and compares
every observable after every step; the subprocess tests additionally run
the same sequence under both ``REPRO_CLOCK_KERNEL`` values and compare
the transcripts -- the strongest statement available that backend choice
never changes results.
"""

import os
import random
import subprocess
import sys

import pytest

from repro.trace.event import Event, EventType
from repro.vectorclock import kernels
from repro.vectorclock.clock import VectorClock
from repro.vectorclock.codec import CodecError, decode, decode_clock, encode
from repro.vectorclock.dense import DenseClock
from repro.vectorclock.epoch import Epoch

SRC = os.path.join(os.path.dirname(__file__), os.pardir, "src")


# --------------------------------------------------------------------- #
# In-process differential fuzz: DenseClock vs the VectorClock reference
# --------------------------------------------------------------------- #

def _random_ops(rng, n_ops, width):
    """A reproducible op tape: (op, args) tuples."""
    ops = []
    for _ in range(n_ops):
        roll = rng.random()
        if roll < 0.35:
            ops.append(("assign", rng.randrange(width), rng.randrange(1, 1 << 40)))
        elif roll < 0.55:
            ops.append(("increment", rng.randrange(width)))
        elif roll < 0.75:
            ops.append(("merge", [rng.randrange(1 << 20) for _ in range(rng.randrange(width + 1))]))
        elif roll < 0.85:
            ops.append(("leq", [rng.randrange(4) for _ in range(rng.randrange(width + 1))]))
        elif roll < 0.95:
            ops.append(("eq", [rng.randrange(4) for _ in range(rng.randrange(width + 1))]))
        else:
            ops.append(("clear",))
    return ops


def _apply(ops, make_clock, make_probe):
    """Run an op tape, returning the transcript of observables."""
    clock = make_clock()
    transcript = []
    for op in ops:
        if op[0] == "assign":
            clock.assign(op[1], op[2])
        elif op[0] == "increment":
            clock.increment(op[1])
        elif op[0] == "merge":
            transcript.append(clock.merge(make_probe(op[1])))
        elif op[0] == "leq":
            probe = make_probe(op[1])
            transcript.append((clock <= probe, probe <= clock))
        elif op[0] == "eq":
            transcript.append(clock == make_probe(op[1]))
        elif op[0] == "clear":
            clock.clear()
        transcript.append(sorted(clock.items()))
    return transcript


def _dense_from(values):
    clock = DenseClock()
    for tid, value in enumerate(values):
        if value:
            clock.assign(tid, value)
    return clock


def _vector_from(values):
    clock = VectorClock()
    for tid, value in enumerate(values):
        if value:
            clock.assign(tid, value)
    return clock


class TestKernelDifferentialFuzz:
    @pytest.mark.parametrize("seed", range(12))
    def test_dense_matches_vector_reference(self, seed):
        rng = random.Random(seed)
        ops = _random_ops(rng, n_ops=120, width=8)
        dense = _apply(ops, DenseClock, _dense_from)
        reference = _apply(ops, VectorClock, _vector_from)
        assert dense == reference

    @pytest.mark.parametrize("seed", range(6))
    def test_copy_is_independent(self, seed):
        rng = random.Random(seed)
        clock = _dense_from([rng.randrange(100) for _ in range(6)])
        snapshot = clock.copy()
        frozen = sorted(snapshot.items())
        clock.increment(2)
        clock.assign(5, 10 ** 9)
        assert sorted(snapshot.items()) == frozen

    def test_trailing_zero_semantics(self):
        # [1, 0] and [1] are the same clock for merge/leq/eq, whichever
        # backend answers.
        wide = _dense_from([1, 0, 0, 0])
        narrow = _dense_from([1])
        assert wide == narrow
        assert wide <= narrow and narrow <= wide
        assert not wide.merge(narrow)
        tall = _dense_from([1, 2])
        assert narrow <= tall and not tall <= narrow

    def test_merge_reports_growth_exactly(self):
        base = _dense_from([5, 5])
        assert not base.merge(_dense_from([5, 4]))
        assert base.merge(_dense_from([0, 6]))
        assert sorted(base.items()) == [(0, 5), (1, 6)]


# --------------------------------------------------------------------- #
# Backend-forcing subprocess runs: python vs cffi transcripts
# --------------------------------------------------------------------- #

_SUBPROCESS_FUZZ = r"""
import json, random, sys
from repro.vectorclock import kernels
from repro.vectorclock.clock import VectorClock
from repro.vectorclock.dense import DenseClock
from repro.vectorclock.codec import decode, encode

sys.path.insert(0, %(tests)r)
from test_dense_kernels import _apply, _dense_from, _random_ops

transcripts = []
for seed in range(8):
    rng = random.Random(seed)
    ops = _random_ops(rng, n_ops=150, width=10)
    transcripts.append(_apply(ops, DenseClock, _dense_from))
    # Codec round-trip under this backend rides along: encoded bytes
    # must be backend-independent.
    clock = _dense_from([rng.randrange(1 << 45) for _ in range(10)])
    transcripts.append(sorted(decode(encode(clock)).items()))
print(json.dumps({"backend": kernels.BACKEND,
                  "fallback": kernels.FALLBACK_REASON,
                  "transcripts": transcripts}))
"""


def _run_forced(backend):
    env = dict(os.environ)
    env["REPRO_CLOCK_KERNEL"] = backend
    env["PYTHONPATH"] = SRC
    tests_dir = os.path.dirname(os.path.abspath(__file__))
    proc = subprocess.run(
        [sys.executable, "-c", _SUBPROCESS_FUZZ % {"tests": tests_dir}],
        capture_output=True, text=True, env=env,
    )
    return proc


class TestBackendForcedParity:
    def test_python_and_cffi_transcripts_identical(self):
        import json

        python_run = _run_forced("python")
        assert python_run.returncode == 0, python_run.stderr
        python_out = json.loads(python_run.stdout)
        assert python_out["backend"] == "python"

        cffi_run = _run_forced("cffi")
        if cffi_run.returncode != 0:
            if "compiled clock kernels are unavailable" in cffi_run.stderr:
                pytest.skip("no compiler/cffi on this machine")
            raise AssertionError(cffi_run.stderr)
        cffi_out = json.loads(cffi_run.stdout)
        assert cffi_out["backend"] == "cffi"
        assert cffi_out["fallback"] is None
        assert cffi_out["transcripts"] == python_out["transcripts"]

    def test_forced_python_records_reason(self):
        import json

        run = _run_forced("python")
        out = json.loads(run.stdout)
        assert out["fallback"] == "REPRO_CLOCK_KERNEL=python"

    def test_describe_names_active_backend(self):
        text = kernels.describe()
        assert kernels.BACKEND in text


# --------------------------------------------------------------------- #
# Codec round-trips: large clocks, varint extremes, event payloads
# --------------------------------------------------------------------- #

class TestCodecRoundTrips:
    def test_large_component_clock(self):
        clock = DenseClock()
        clock.assign(0, 1)
        clock.assign(511, (1 << 62) - 1)
        back = decode(encode(clock))
        assert isinstance(back, DenseClock)
        assert sorted(back.items()) == sorted(clock.items())

    def test_trailing_zeros_canonicalized(self):
        wide = _dense_from([3, 7, 0, 0, 0, 0])
        narrow = _dense_from([3, 7])
        assert encode(wide) == encode(narrow)

    def test_varint_boundaries(self):
        for value in (0, 127, 128, 16383, 16384, (1 << 35) + 1, -1, -128, -(1 << 40)):
            assert decode(encode(value)) == value

    def test_vector_clock_round_trip(self):
        clock = VectorClock({"a": 5, "b": (1 << 50)})
        back = decode(encode(clock))
        assert isinstance(back, VectorClock)
        assert dict(back.items()) == dict(clock.items())

    def test_decode_clock_coerces_to_dense(self):
        dense = decode_clock(encode(VectorClock({0: 4, 3: 9})))
        assert isinstance(dense, DenseClock)
        assert dense.get(3) == 9

    def test_event_and_epoch_round_trip(self):
        event = Event(7, "t1", EventType.WRITE, "x", "file.c:9", tid=2)
        back = decode(encode(event))
        assert (back.index, back.thread, back.etype, back.target,
                back.loc, back.tid) == (7, "t1", EventType.WRITE, "x",
                                        "file.c:9", 2)
        epoch = Epoch("t1", 12)
        back = decode(encode(epoch))
        assert (back.thread, back.time) == ("t1", 12)

    def test_wire_batch_round_trip(self):
        # The exact shape the ring transport ships: a list of 6-tuples.
        batch = [
            (0, "t1", EventType.ACQUIRE.value, "l", None, True),
            (1, "t1", EventType.WRITE.value, "x", "a.c:3", True),
            (2, "t2", EventType.READ.value, "x", "a.c:4", False),
        ]
        assert decode(encode(batch)) == batch

    def test_malformed_blobs_raise(self):
        blob = encode([1, 2, 3])
        with pytest.raises(CodecError):
            decode(blob[:-1])
        with pytest.raises(CodecError):
            decode(blob + b"\x00")
        with pytest.raises(CodecError):
            decode(b"\xff")
