"""Checkpoint/resume subsystem tests.

Covers the three layers of the snapshot protocol:

* the shared binary codec (:mod:`repro.vectorclock.codec`) that
  registries, epochs, clocks and whole detector states serialize through;
* the versioned detector snapshot protocol (round-trip parity for WCP,
  HB and FastTrack at arbitrary event offsets; fail-fast mismatch
  handling);
* the engine-level checkpoint/resume subsystem (sync, async/push, and
  sharded engines; CLI surface; fresh-process resume).

The central property throughout: checkpointing at an arbitrary offset
and resuming must yield reports identical to an uninterrupted run --
witnesses and distances included.
"""

import asyncio
import random
import subprocess
import sys

import pytest

from repro import (
    CPDetector,
    EngineConfig,
    FastTrackDetector,
    HBDetector,
    QueueSource,
    RaceEngine,
    ShardedEngine,
    WCPDetector,
    detect_races,
    resume_engine,
    run_engine,
)
from repro.analysis.windowing import WindowedDetector
from repro.cli import main
from repro.core.snapshot import (
    SnapshotMismatchError,
    SnapshotUnsupportedError,
    pack_state,
    unpack_state,
)
from repro.core.wcp_legacy import LegacyWCPDetector
from repro.engine import (
    AsyncRaceEngine,
    Checkpoint,
    Checkpointer,
    CheckpointError,
    CheckpointMismatchError,
    FileSource,
    IterableSource,
    TraceSource,
    ValidatingSource,
)
from repro.engine.checkpoint import (
    build_detector,
    check_snapshot_support,
    detector_stamp,
    frame_blob,
    seek_source,
    unframe_blob,
)
from repro.trace.event import Event, EventType
from repro.trace.trace import Trace
from repro.trace.writers import dump_trace
from repro.vectorclock import DenseClock, Epoch, ThreadRegistry, VectorClock
from repro.vectorclock.codec import (
    CodecError,
    decode,
    decode_clock,
    encode,
    encode_clock,
)

from conftest import random_trace


def _fingerprint(report):
    """Everything that identifies a report's findings, witnesses included."""
    return (
        sorted(tuple(sorted(key)) for key in report.location_pairs()),
        report.raw_race_count,
        [
            (
                tuple(sorted(pair.locations)),
                pair.first_event.index,
                pair.second_event.index,
                report.distance_of(pair),
            )
            for pair in report.pairs()
        ],
    )


def _deterministic_stats(report):
    return {
        key: value for key, value in report.stats.items()
        if key not in ("time_s", "events_per_s")
    }


def fork_join_trace(seed, workers=3, steps=80):
    """Fork/join workload mixing protected and unprotected accesses."""
    rng = random.Random(seed)
    events = []

    def add(thread, etype, target):
        events.append(Event(len(events), thread, etype, target))

    threads = ["w%d" % i for i in range(workers)]
    add("main", EventType.WRITE, "x0")
    for worker in threads:
        add("main", EventType.FORK, worker)
    pool = ["main"] + threads
    for _ in range(steps):
        thread = rng.choice(pool)
        variable = "x%d" % rng.randrange(6)
        if rng.random() < 0.35:
            lock = "l%d" % rng.randrange(2)
            add(thread, EventType.ACQUIRE, lock)
            add(thread, EventType.WRITE, variable)
            add(thread, EventType.RELEASE, lock)
        else:
            etype = EventType.READ if rng.random() < 0.5 else EventType.WRITE
            add(thread, etype, variable)
    for worker in threads:
        add("main", EventType.JOIN, worker)
    add("main", EventType.READ, "x1")
    return Trace(events, validate=False, name="forkjoin_%d" % seed)


DETECTOR_FACTORIES = [
    WCPDetector,
    lambda: WCPDetector(clock_backend="dict"),
    lambda: WCPDetector(stream_reclaim=True),
    HBDetector,
    lambda: HBDetector(clock_backend="dict"),
    FastTrackDetector,
]


# --------------------------------------------------------------------- #
# The shared codec
# --------------------------------------------------------------------- #

class TestCodec:
    def test_primitive_round_trip(self):
        value = {
            "none": None, "t": True, "f": False,
            "ints": [0, 1, -1, 127, 128, -300, 2**40, -(2**40)],
            "big": 2**77, "float": 2.5, "str": "héllo",
            "bytes": b"\x00\xffraw", ("tuple", 1): (1, "two", None),
        }
        assert decode(encode(value)) == value

    def test_sets_encode_canonically(self):
        a = encode({"s": {"b", "a", "c"}, "i": {3, 1, 2}})
        b = encode({"s": {"c", "b", "a"}, "i": {2, 3, 1}})
        assert a == b
        assert decode(a) == {"s": {"a", "b", "c"}, "i": {1, 2, 3}}

    def test_domain_values_round_trip_to_their_types(self):
        dense = DenseClock([3, 0, 5])
        sparse = VectorClock({0: 2, 4: 9})
        epoch = Epoch(2, 7)
        event = Event(11, "t1", EventType.READ, "x", "a.py:3", tid=0)
        back = decode(encode([dense, sparse, epoch, event, Epoch.bottom()]))
        assert isinstance(back[0], DenseClock) and back[0] == dense
        assert isinstance(back[1], VectorClock) and back[1] == sparse
        assert back[2] == epoch
        assert back[3] == event and back[3].loc == "a.py:3" and back[3].tid == 0
        assert back[4].is_bottom()

    def test_trailing_zero_clocks_encode_identically(self):
        assert encode(DenseClock([1, 0, 0])) == encode(DenseClock([1]))

    def test_errors(self):
        with pytest.raises(CodecError):
            decode(b"\xff")
        with pytest.raises(CodecError):
            decode(encode(1) + b"extra")
        with pytest.raises(CodecError):
            decode(encode("x")[:-1])
        with pytest.raises(CodecError):
            encode(object())

    def test_clock_wire_helpers_coerce_to_dense(self):
        assert decode_clock(encode_clock(VectorClock({1: 4}))) == DenseClock([0, 4])
        assert decode_clock(encode_clock(DenseClock([2]))) == DenseClock([2])

    def test_registry_and_epoch_share_the_codec(self):
        registry = ThreadRegistry(["main", "t1"])
        assert ThreadRegistry.from_bytes(registry.to_bytes()).names() == [
            "main", "t1",
        ]
        assert Epoch.from_bytes(Epoch(0, 3).to_bytes()) == Epoch(0, 3)
        assert DenseClock.from_bytes(DenseClock([7]).to_bytes()) == DenseClock([7])


# --------------------------------------------------------------------- #
# Detector snapshot protocol
# --------------------------------------------------------------------- #

class TestSnapshotEnvelope:
    def test_pack_unpack(self):
        blob = pack_state("X", 3, {"a": 1}, ["state"])
        assert unpack_state(blob) == ("X", 3, {"a": 1}, ["state"])

    def test_rejects_garbage(self):
        with pytest.raises(ValueError):
            unpack_state(b"not a snapshot")


class TestDetectorSnapshots:
    @pytest.mark.parametrize("factory", DETECTOR_FACTORIES)
    @pytest.mark.parametrize("seed", [0, 7])
    @pytest.mark.parametrize("fraction", [0.2, 0.5, 0.85])
    def test_random_trace_round_trip_parity(self, factory, seed, fraction):
        trace = random_trace(seed, n_events=160, n_threads=4, n_vars=4)
        reference = factory().run(trace)
        split = int(len(trace) * fraction)

        original = factory()
        original.reset(trace)
        for event in trace.events[:split]:
            original.process(event)
        blob = original.state_snapshot()

        resumed = factory()
        resumed.reset(trace)
        resumed.restore_state(blob)
        for event in trace.events[split:]:
            resumed.process(event)
        resumed.finish()
        resumed.finalize_stats(len(trace), 0.0)
        assert _fingerprint(resumed.report) == _fingerprint(reference)
        assert _deterministic_stats(resumed.report) == _deterministic_stats(
            reference
        )

    @pytest.mark.parametrize("factory", DETECTOR_FACTORIES)
    @pytest.mark.parametrize("seed", [1, 5])
    def test_fork_join_round_trip_parity(self, factory, seed):
        trace = fork_join_trace(seed)
        reference = factory().run(trace)
        split = len(trace) // 2

        original = factory()
        original.reset(trace)
        for event in trace.events[:split]:
            original.process(event)
        blob = original.state_snapshot()

        resumed = factory()
        resumed.reset(trace)
        resumed.restore_state(blob)
        for event in trace.events[split:]:
            resumed.process(event)
        resumed.finish()
        assert _fingerprint(resumed.report) == _fingerprint(reference)

    def test_snapshot_before_reset_raises(self):
        with pytest.raises(RuntimeError):
            WCPDetector().state_snapshot()
        detector = WCPDetector()
        with pytest.raises(RuntimeError):
            detector.restore_state(b"")

    def test_wrong_class_is_rejected(self, simple_race_trace):
        wcp = WCPDetector()
        wcp.reset(simple_race_trace)
        blob = wcp.state_snapshot()
        hb = HBDetector()
        hb.reset(simple_race_trace)
        with pytest.raises(SnapshotMismatchError, match="WCPDetector"):
            hb.restore_state(blob)

    def test_version_mismatch_is_rejected(self, simple_race_trace):
        detector = WCPDetector()
        detector.reset(simple_race_trace)
        blob = detector.state_snapshot()
        fresh = WCPDetector()
        fresh.reset(simple_race_trace)
        fresh.snapshot_version = 99
        with pytest.raises(SnapshotMismatchError, match="format version"):
            fresh.restore_state(blob)

    def test_config_mismatch_is_rejected(self, simple_race_trace):
        detector = WCPDetector(clock_backend="dense")
        detector.reset(simple_race_trace)
        blob = detector.state_snapshot()
        other = WCPDetector(clock_backend="dict")
        other.reset(simple_race_trace)
        with pytest.raises(SnapshotMismatchError, match="clock_backend"):
            other.restore_state(blob)

    def test_capability_flags(self):
        assert WCPDetector.supports_snapshot
        assert HBDetector.supports_snapshot
        assert FastTrackDetector.supports_snapshot
        assert not LegacyWCPDetector.supports_snapshot
        assert not CPDetector.supports_snapshot
        assert not WindowedDetector.supports_snapshot

    def test_unsupported_detector_raises_capability_error(self, simple_race_trace):
        detector = CPDetector()
        detector.reset(simple_race_trace)
        with pytest.raises(SnapshotUnsupportedError):
            detector.state_snapshot()
        with pytest.raises(SnapshotUnsupportedError):
            detector.restore_state(b"blob")

    def test_stamp_reconstruction(self):
        detector = WCPDetector(clock_backend="dict", stream_reclaim=True)
        clone = build_detector(detector_stamp(detector))
        assert isinstance(clone, WCPDetector)
        assert clone.snapshot_config() == detector.snapshot_config()

    def test_build_detector_refuses_non_detector_classes(self):
        with pytest.raises(CheckpointError, match="not a Detector"):
            build_detector({"class": "os:system", "config": {}})

    def test_check_snapshot_support(self):
        check_snapshot_support([WCPDetector(), HBDetector()])
        with pytest.raises(CheckpointError, match="CP"):
            check_snapshot_support([WCPDetector(), CPDetector()])


# --------------------------------------------------------------------- #
# Checkpoint persistence
# --------------------------------------------------------------------- #

class TestCheckpointer:
    def _checkpoint(self, events):
        return Checkpoint(
            events=events, source_name="s",
            stamps=[detector_stamp(WCPDetector())],
            states=[b"blob-%d" % events], every=10,
        )

    def test_round_trip(self, tmp_path):
        checkpointer = Checkpointer(tmp_path, every=10)
        checkpointer.save(self._checkpoint(10))
        loaded = checkpointer.load()
        assert loaded.events == 10
        assert loaded.states == [b"blob-10"]
        assert loaded.every == 10
        assert loaded.stamps[0]["name"] == "WCP"

    def test_offsets_and_pruning(self, tmp_path):
        checkpointer = Checkpointer(tmp_path, every=10, keep=2)
        for offset in (10, 20, 30, 40):
            checkpointer.save(self._checkpoint(offset))
        assert checkpointer.offsets() == [30, 40]
        assert checkpointer.load().events == 40
        assert not list(tmp_path.glob("*.tmp"))

    def test_load_empty_directory_fails(self, tmp_path):
        with pytest.raises(CheckpointError, match="no checkpoints"):
            Checkpointer(tmp_path).load()
        assert Checkpointer(tmp_path).load_latest() is None

    def test_probing_a_missing_directory_does_not_create_it(self, tmp_path):
        # The serve handshake probes arbitrary client-supplied stream ids;
        # a probe (load_latest) must not litter the checkpoint area.
        target = tmp_path / "never-created"
        assert Checkpointer(target).load_latest() is None
        assert not target.exists()

    def test_corrupt_file_fails_cleanly(self, tmp_path):
        checkpointer = Checkpointer(tmp_path)
        path = checkpointer.save(self._checkpoint(10))
        path.write_bytes(b"RCKPgarbage")
        with pytest.raises(CheckpointError, match="corrupt"):
            checkpointer.load()

    def test_format_version_mismatch_fails_fast(self, tmp_path):
        from repro.vectorclock.codec import encode as _encode

        path = tmp_path / "ckpt-000000000010.rckp"
        path.write_bytes(b"RCKP" + _encode((999, {})))
        with pytest.raises(CheckpointMismatchError, match="version"):
            Checkpointer(tmp_path).load()

    def test_clear(self, tmp_path):
        checkpointer = Checkpointer(tmp_path)
        checkpointer.save(self._checkpoint(10))
        checkpointer.clear()
        assert checkpointer.offsets() == []

    def test_match_detectors_count_mismatch(self):
        checkpoint = self._checkpoint(10)
        with pytest.raises(CheckpointMismatchError, match="2"):
            checkpoint.match_detectors([WCPDetector(), HBDetector()])

    def test_match_detectors_config_mismatch(self):
        checkpoint = self._checkpoint(10)
        with pytest.raises(CheckpointMismatchError, match="configuration"):
            checkpoint.match_detectors([WCPDetector(clock_backend="dict")])


# --------------------------------------------------------------------- #
# Engine-level checkpoint/resume
# --------------------------------------------------------------------- #

def _partial_then_resume(tmp_path, trace_or_path, source_factory, stop_at,
                         every=20, detectors=("wcp", "hb")):
    """Run a checkpointed pass that stops early, then resume it."""
    directory = tmp_path / "ckpts"
    config = (
        EngineConfig()
        .with_detectors(*detectors)
        .with_checkpoints(directory, every=every)
        .stop_after_events(stop_at)
    )
    RaceEngine(config).run(source_factory(trace_or_path))
    assert Checkpointer(directory).offsets()
    return RaceEngine(EngineConfig()).resume(
        source_factory(trace_or_path), directory
    )


class TestEngineResume:
    @pytest.mark.parametrize("seed", [0, 3, 11])
    def test_trace_source_parity(self, tmp_path, seed):
        trace = random_trace(seed, n_events=200, n_threads=4, n_vars=4)
        reference = run_engine(trace, detectors=["wcp", "hb"])
        resumed = _partial_then_resume(
            tmp_path, trace, TraceSource, stop_at=len(trace) // 2
        )
        assert resumed.events == reference.events
        for key in reference.keys():
            assert _fingerprint(resumed[key]) == _fingerprint(reference[key])
            assert _deterministic_stats(resumed[key]) == _deterministic_stats(
                reference[key]
            )

    def test_file_source_parity(self, tmp_path, ):
        trace = random_trace(2, n_events=240, n_threads=4, n_vars=5)
        path = tmp_path / "trace.std"
        dump_trace(trace, path)
        reference = run_engine(str(path), detectors=["wcp", "hb"])
        resumed = _partial_then_resume(
            tmp_path, str(path), FileSource, stop_at=100
        )
        for key in reference.keys():
            assert _fingerprint(resumed[key]) == _fingerprint(reference[key])

    def test_fork_join_parity(self, tmp_path):
        trace = fork_join_trace(4)
        reference = run_engine(trace, detectors=["wcp", "hb", "fasttrack"])
        resumed = _partial_then_resume(
            tmp_path, trace, TraceSource, stop_at=len(trace) // 3,
            detectors=("wcp", "hb", "fasttrack"),
        )
        for key in reference.keys():
            assert _fingerprint(resumed[key]) == _fingerprint(reference[key])

    def test_resume_rebuilds_detectors_from_stamps(self, tmp_path):
        trace = random_trace(1, n_events=120)
        directory = tmp_path / "ckpts"
        config = (
            EngineConfig()
            .with_detectors(WCPDetector(clock_backend="dict"))
            .with_checkpoints(directory, every=20)
            .stop_after_events(60)
        )
        RaceEngine(config).run(TraceSource(trace))
        result = RaceEngine(EngineConfig()).resume(TraceSource(trace), directory)
        assert list(result.keys()) == ["WCP"]
        reference = detect_races(trace, WCPDetector(clock_backend="dict"))
        assert _fingerprint(result["WCP"]) == _fingerprint(reference)

    def test_resume_continues_checkpointing_at_original_cadence(self, tmp_path):
        trace = random_trace(6, n_events=200)
        directory = tmp_path / "ckpts"
        config = (
            EngineConfig().with_detectors("wcp")
            .with_checkpoints(directory, every=30).stop_after_events(70)
        )
        RaceEngine(config).run(TraceSource(trace))
        before = Checkpointer(directory).offsets()
        assert before and all(offset % 30 == 0 for offset in before)
        RaceEngine(EngineConfig()).resume(TraceSource(trace), directory)
        after = Checkpointer(directory).offsets()
        assert max(after) > max(before)
        assert all(offset % 30 == 0 for offset in after)

    def test_resume_with_mismatched_selection_fails_fast(self, tmp_path):
        trace = random_trace(1, n_events=120)
        directory = tmp_path / "ckpts"
        config = (
            EngineConfig().with_detectors("wcp", "hb")
            .with_checkpoints(directory, every=20).stop_after_events(60)
        )
        RaceEngine(config).run(TraceSource(trace))
        with pytest.raises(CheckpointMismatchError, match="detector"):
            RaceEngine(EngineConfig()).resume(
                TraceSource(trace), directory, detectors=["wcp"]
            )
        with pytest.raises(CheckpointMismatchError, match="configuration"):
            RaceEngine(EngineConfig()).resume(
                TraceSource(trace), directory,
                detectors=[WCPDetector(clock_backend="dict"), HBDetector()],
            )

    def test_checkpoint_refused_for_unsupported_detectors(self, tmp_path):
        trace = random_trace(0, n_events=40)
        with pytest.raises(CheckpointError, match="CP"):
            run_engine(
                trace, detectors=["cp"], checkpoint=tmp_path / "ckpts"
            )
        with pytest.raises(CheckpointError, match="WCP-legacy"):
            run_engine(
                trace, detectors=[LegacyWCPDetector()],
                checkpoint=tmp_path / "ckpts",
            )
        with pytest.raises(CheckpointError, match="do not support"):
            run_engine(
                trace, detectors=[WindowedDetector(WCPDetector(), 50)],
                checkpoint=tmp_path / "ckpts",
            )

    def test_validator_state_rides_checkpoints(self, tmp_path):
        # A critical section spans the checkpoint boundary: without the
        # restored validator state, the release in the suffix would be
        # rejected as unmatched.
        events = [Event(0, "t1", EventType.ACQUIRE, "l")]
        for index in range(1, 60):
            events.append(Event(index, "t1", EventType.WRITE, "x"))
        events.append(Event(60, "t1", EventType.RELEASE, "l"))
        events.append(Event(61, "t2", EventType.WRITE, "x"))
        trace = Trace(events, name="spanning")
        path = tmp_path / "span.std"
        dump_trace(trace, path)

        directory = tmp_path / "ckpts"
        config = (
            EngineConfig().with_detectors("wcp")
            .with_checkpoints(directory, every=20).stop_after_events(40)
        )
        RaceEngine(config).run(ValidatingSource(FileSource(path)))
        loaded = Checkpointer(directory).load()
        assert loaded.source_state is not None

        result = RaceEngine(EngineConfig()).resume(
            ValidatingSource(FileSource(path)), directory
        )
        reference = run_engine(trace, detectors=["wcp"])
        assert _fingerprint(result["WCP"]) == _fingerprint(reference["WCP"])

    def test_unseekable_source_is_rejected(self):
        class Opaque:
            pass

        with pytest.raises(CheckpointError, match="seek"):
            seek_source(Opaque(), 10)

    def test_single_engine_refuses_sharded_checkpoint(self, tmp_path):
        trace = random_trace(9, n_events=200)
        directory = tmp_path / "ckpts"
        config = (
            EngineConfig().with_detectors("wcp")
            .with_shards(2, mode="serial")
            .with_checkpoints(directory, every=40).stop_after_events(100)
        )
        ShardedEngine(config).run(TraceSource(trace))
        with pytest.raises(CheckpointMismatchError, match="sharded"):
            RaceEngine(EngineConfig()).resume(TraceSource(trace), directory)


class TestIterableSeek:
    def test_iterable_source_seek(self):
        trace = random_trace(0, n_events=30)
        source = IterableSource(list(trace.events))
        source.seek_events(10)
        assert [event.index for event in source][:3] == [10, 11, 12]


# --------------------------------------------------------------------- #
# Async engine + push-source resume handshake
# --------------------------------------------------------------------- #

class TestAsyncResume:
    def test_queue_source_resume_handshake(self, tmp_path):
        trace = random_trace(8, n_events=160, n_threads=4)
        reference = run_engine(trace, detectors=["wcp"])
        directory = tmp_path / "ckpts"

        async def interrupted():
            source = QueueSource(name="push", maxsize=10_000)
            for event in trace.events:
                source.put(event)
            source.close()
            config = (
                EngineConfig().with_detectors("wcp")
                .with_checkpoints(directory, every=20).stop_after_events(80)
            )
            return await AsyncRaceEngine(config).run(source)

        asyncio.run(interrupted())
        offsets = Checkpointer(directory).offsets()
        assert offsets and max(offsets) <= 80

        async def resumed():
            source = QueueSource(name="push", maxsize=10_000)
            engine = AsyncRaceEngine(EngineConfig())
            task = asyncio.ensure_future(
                engine.resume(source, directory)
            )
            await asyncio.sleep(0)
            # The handshake: the source advertises the last durable
            # offset; the producer replays from exactly there.
            offset = source.resume_offset
            assert offset == max(offsets)
            for event in trace.events[offset:]:
                source.put(event)
            source.close()
            return await task

        result = asyncio.run(resumed())
        assert _fingerprint(result["WCP"]) == _fingerprint(reference["WCP"])
        assert result.events == reference.events


# --------------------------------------------------------------------- #
# Sharded checkpoint/resume
# --------------------------------------------------------------------- #

class TestShardedResume:
    def _checkpointed_sharded_run(self, tmp_path, trace, mode, policy="hash",
                                  shards=3, stop_at=None):
        directory = tmp_path / "ckpts"
        config = (
            EngineConfig().with_detectors("wcp", "hb")
            .with_shards(shards, mode=mode, policy=policy, batch_size=16)
            .with_checkpoints(directory, every=40)
            .stop_after_events(stop_at or len(trace) // 2)
        )
        ShardedEngine(config).run(TraceSource(trace))
        assert Checkpointer(directory).offsets()
        return directory

    @pytest.mark.parametrize("mode", ["serial", "thread"])
    @pytest.mark.parametrize("seed", [0, 5])
    def test_sharded_resume_matches_single_engine(self, tmp_path, mode, seed):
        trace = random_trace(seed, n_events=220, n_threads=4, n_vars=6)
        reference = run_engine(trace, detectors=["wcp", "hb"])
        directory = self._checkpointed_sharded_run(tmp_path, trace, mode)
        resumed = ShardedEngine(
            EngineConfig().with_shards(3, mode=mode, batch_size=16)
        ).resume(TraceSource(trace), directory)
        for key in reference.keys():
            assert _fingerprint(resumed[key]) == _fingerprint(reference[key])

    def test_sharded_resume_across_transports(self, tmp_path):
        # Worker state is transport-agnostic: a serial-mode checkpoint
        # restores into thread-mode workers.
        trace = fork_join_trace(3)
        reference = run_engine(trace, detectors=["wcp", "hb"])
        directory = self._checkpointed_sharded_run(tmp_path, trace, "serial")
        resumed = ShardedEngine(
            EngineConfig().with_shards(3, mode="thread", batch_size=16)
        ).resume(TraceSource(trace), directory)
        for key in reference.keys():
            assert _fingerprint(resumed[key]) == _fingerprint(reference[key])

    def test_round_robin_policy_state_is_restored(self, tmp_path):
        trace = random_trace(7, n_events=220, n_threads=4, n_vars=6)
        reference = run_engine(trace, detectors=["wcp", "hb"])
        directory = self._checkpointed_sharded_run(
            tmp_path, trace, "serial", policy="rr"
        )
        resumed = ShardedEngine(
            EngineConfig().with_shards(3, mode="serial", policy="rr",
                                       batch_size=16)
        ).resume(TraceSource(trace), directory)
        for key in reference.keys():
            assert _fingerprint(resumed[key]) == _fingerprint(reference[key])

    def test_shard_count_mismatch_fails_fast(self, tmp_path):
        trace = random_trace(0, n_events=200)
        directory = self._checkpointed_sharded_run(tmp_path, trace, "serial")
        with pytest.raises(CheckpointMismatchError, match="shard"):
            ShardedEngine(
                EngineConfig().with_shards(2, mode="serial")
            ).resume(TraceSource(trace), directory)

    def test_policy_mismatch_fails_fast(self, tmp_path):
        trace = random_trace(0, n_events=200)
        directory = self._checkpointed_sharded_run(tmp_path, trace, "serial")
        with pytest.raises(CheckpointMismatchError, match="policy"):
            ShardedEngine(
                EngineConfig().with_shards(3, mode="serial", policy="rr")
            ).resume(TraceSource(trace), directory)

    def test_sharded_engine_refuses_unsharded_checkpoint(self, tmp_path):
        trace = random_trace(0, n_events=120)
        directory = tmp_path / "ckpts"
        config = (
            EngineConfig().with_detectors("wcp")
            .with_checkpoints(directory, every=20).stop_after_events(60)
        )
        RaceEngine(config).run(TraceSource(trace))
        with pytest.raises(CheckpointMismatchError, match="unsharded"):
            ShardedEngine(
                EngineConfig().with_shards(3, mode="serial")
            ).resume(TraceSource(trace), directory)

    def test_resume_engine_dispatches_sharded_automatically(self, tmp_path):
        trace = random_trace(5, n_events=220, n_threads=4, n_vars=6)
        reference = run_engine(trace, detectors=["wcp", "hb"])
        directory = self._checkpointed_sharded_run(tmp_path, trace, "serial")
        resumed = resume_engine(
            TraceSource(trace), directory,
            config=EngineConfig().with_shards(3, mode="serial"),
        )
        for key in reference.keys():
            assert _fingerprint(resumed[key]) == _fingerprint(reference[key])


    def test_instance_policy_checkpoint_requires_instance_on_resume(
        self, tmp_path
    ):
        from repro.engine.partition import RoundRobinPartition

        trace = random_trace(3, n_events=220, n_threads=4, n_vars=6)
        directory = tmp_path / "ckpts"
        config = (
            EngineConfig().with_detectors("wcp")
            .with_shards(3, mode="serial", policy=RoundRobinPartition(3),
                         batch_size=16)
            .with_checkpoints(directory, every=40).stop_after_events(100)
        )
        ShardedEngine(config).run(TraceSource(trace))
        # The default (hash) policy must be refused, not silently adopted:
        # routing the suffix differently would split variable histories.
        with pytest.raises(CheckpointMismatchError, match="instance"):
            ShardedEngine(
                EngineConfig().with_shards(3, mode="serial")
            ).resume(TraceSource(trace), directory)
        # An equivalent instance resumes exactly (its state is restored).
        resumed = ShardedEngine(
            EngineConfig().with_shards(3, mode="serial",
                                       policy=RoundRobinPartition(3),
                                       batch_size=16)
        ).resume(TraceSource(trace), directory)
        reference = run_engine(trace, detectors=["wcp"])
        assert _fingerprint(resumed["WCP"]) == _fingerprint(reference["WCP"])

    def test_policy_alias_names_are_equivalent(self, tmp_path):
        trace = random_trace(4, n_events=200, n_threads=4, n_vars=6)
        directory = self._checkpointed_sharded_run(
            tmp_path, trace, "serial", policy="rr"
        )
        resumed = ShardedEngine(
            EngineConfig().with_shards(3, mode="serial",
                                       policy="round-robin", batch_size=16)
        ).resume(TraceSource(trace), directory)
        reference = run_engine(trace, detectors=["wcp", "hb"])
        for key in reference.keys():
            assert _fingerprint(resumed[key]) == _fingerprint(reference[key])


class TestRestorePendingHint:
    def test_restore_pending_skips_wcp_prescan(self):
        trace = random_trace(0, n_events=80)
        normal = WCPDetector()
        normal.reset(trace)
        assert normal._effective_prune is True
        hinted = WCPDetector()
        hinted.restore_pending = True
        hinted.reset(trace)
        # The releaser census is skipped (it would be overwritten by the
        # restore); pruning is conservatively off until the restore
        # re-establishes the snapshot's modes.
        assert hinted._effective_prune is False

    def test_engine_resume_clears_the_hint(self, tmp_path):
        trace = random_trace(1, n_events=120)
        directory = tmp_path / "ckpts"
        config = (
            EngineConfig().with_detectors("wcp")
            .with_checkpoints(directory, every=20).stop_after_events(60)
        )
        RaceEngine(config).run(TraceSource(trace))
        detector = WCPDetector()
        RaceEngine(EngineConfig()).resume(
            TraceSource(trace), directory, detectors=[detector]
        )
        assert detector.restore_pending is False
        # The restored modes come from the snapshot (pruned batch run).
        assert detector._effective_prune is True


class TestStreamResumeValidation:
    def test_batch_checkpoint_refused_by_stream_resume(self, tmp_path):
        # A non-streaming checkpoint carries no validator state; resuming
        # it through a fresh validator would spuriously reject releases of
        # prefix-opened sections -- it must fail with guidance instead.
        events = [Event(0, "t1", EventType.ACQUIRE, "l")]
        for index in range(1, 50):
            events.append(Event(index, "t1", EventType.WRITE, "x"))
        events.append(Event(50, "t1", EventType.RELEASE, "l"))
        trace = Trace(events, name="spanning")
        path = tmp_path / "span.std"
        dump_trace(trace, path)

        directory = tmp_path / "ckpts"
        config = (
            EngineConfig().with_detectors("wcp")
            .with_checkpoints(directory, every=20).stop_after_events(40)
        )
        RaceEngine(config).run(TraceSource(trace))  # batch: no validator
        with pytest.raises(ValueError, match="validator state"):
            RaceEngine(EngineConfig()).resume(
                ValidatingSource(FileSource(path)), directory
            )
        # The same checkpoint resumes fine without stream validation.
        result = RaceEngine(EngineConfig()).resume(FileSource(path), directory)
        reference = run_engine(trace, detectors=["wcp"])
        assert _fingerprint(result["WCP"]) == _fingerprint(reference["WCP"])


class TestCustomDetectorReconstruction:
    def test_parameterized_detector_without_config_stamp_is_refused(self):
        from repro.core.detector import Detector
        from repro.engine.checkpoint import check_reconstructible

        class Custom(Detector):
            # A parameterized shardable detector that does NOT override
            # snapshot_config(): workers would be rebuilt with defaults,
            # silently dropping ``threshold`` -- refuse it loudly.
            name = "custom"
            shardable = True

            def __init__(self, threshold=5):
                super().__init__()
                self.threshold = threshold

            def reset(self, trace):
                self._new_report(trace)

            def process(self, event):
                pass

        with pytest.raises(CheckpointError, match="snapshot_config"):
            check_reconstructible([Custom(threshold=9)])
        # Built-ins (which override snapshot_config) pass.
        check_reconstructible([WCPDetector(), HBDetector()])


class TestBackgroundCheckpointer:
    def test_background_writes_land_after_drain(self, tmp_path):
        checkpointer = Checkpointer(tmp_path, every=10, background=True)
        for offset in (10, 20):
            checkpointer.save(Checkpoint(
                events=offset, source_name="s",
                stamps=[detector_stamp(WCPDetector())],
                states=[b"blob"], every=10,
            ))
        checkpointer.drain()
        assert checkpointer.offsets() == [10, 20]
        assert checkpointer.load().events == 20
        assert not list(tmp_path.glob("*.tmp"))

    def test_async_run_drains_before_returning(self, tmp_path):
        trace = random_trace(2, n_events=120)
        directory = tmp_path / "ckpts"

        async def scenario():
            config = (
                EngineConfig().with_detectors("wcp")
                .with_checkpoints(directory, every=20).stop_after_events(60)
            )
            return await AsyncRaceEngine(config).run(TraceSource(trace))

        asyncio.run(scenario())
        assert Checkpointer(directory).offsets()
        assert not list(directory.glob("*.tmp"))


class TestServeHandshakeErrors:
    def test_over_limit_first_line_is_answered_on_the_wire(self, tmp_path):
        from repro.engine.async_engine import serve_connection

        class FakeWriter:
            def __init__(self):
                self.data = b""

            def write(self, chunk):
                self.data += chunk

            async def drain(self):
                pass

        async def scenario():
            reader = asyncio.StreamReader(limit=16)
            reader.feed_data(b"x" * 100)  # no newline within the limit
            writer = FakeWriter()
            result = await serve_connection(
                reader, writer, ["wcp"], checkpoint_dir=str(tmp_path)
            )
            return result, writer.data

        result, answered = asyncio.run(scenario())
        assert result is None
        assert answered.startswith(b"error ValueError:")


class TestServeStreamIdSafety:
    def test_path_special_ids_are_rejected(self):
        from repro.engine.async_engine import _safe_stream_id

        assert _safe_stream_id(b"# stream-id: job42\n") == "job42"
        assert _safe_stream_id(b"# stream-id= a.b-c_9\n") == "a.b-c_9"
        # "." and ".." would escape (or collide with) --checkpoint-dir.
        assert _safe_stream_id(b"# stream-id: ..\n") is None
        assert _safe_stream_id(b"# stream-id: .\n") is None
        # Separators are outside the character class entirely.
        assert _safe_stream_id(b"# stream-id: ../x\n") is None
        assert _safe_stream_id(b"# stream-id: a/b\n") is None
        assert _safe_stream_id(b"t1|w(x)\n") is None


class TestConfigIsNotMutated:
    def test_run_engine_checkpoint_kwarg_leaves_config_alone(self, tmp_path):
        trace = random_trace(0, n_events=60)
        config = EngineConfig().with_detectors("wcp")
        run_engine(
            trace, config=config,
            checkpoint=tmp_path / "ckpts", checkpoint_every=20,
        )
        assert config.checkpoint_dir is None

    def test_resume_engine_leaves_config_shards_alone(self, tmp_path):
        trace = random_trace(5, n_events=220, n_threads=4, n_vars=6)
        directory = tmp_path / "ckpts"
        sharded_config = (
            EngineConfig().with_detectors("wcp")
            .with_shards(3, mode="serial", batch_size=16)
            .with_checkpoints(directory, every=40).stop_after_events(100)
        )
        ShardedEngine(sharded_config).run(TraceSource(trace))
        config = EngineConfig().with_shards(3, mode="serial")
        resume_engine(TraceSource(trace), directory, config=config)
        assert config.checkpoint_dir is None


# --------------------------------------------------------------------- #
# QueueSource edge semantics exercised by resume (satellite)
# --------------------------------------------------------------------- #

class TestQueueSourceEdges:
    def test_close_twice_is_idempotent(self):
        source = QueueSource()
        source.close()
        source.close()
        assert source.closed
        assert list(source) == []

    def test_push_after_close_raises(self):
        source = QueueSource()
        source.push("t1", EventType.WRITE, "x")
        source.close()
        with pytest.raises(RuntimeError, match="closed"):
            source.push("t1", EventType.WRITE, "y")
        with pytest.raises(RuntimeError, match="closed"):
            source.put(Event(-1, "t1", EventType.WRITE, "y"))

    def test_draining_closed_nonempty_queue_sees_every_event(self):
        source = QueueSource(maxsize=64)
        for position in range(10):
            source.push("t1", EventType.WRITE, "x%d" % position)
        source.close()
        drained = list(source)
        assert [event.target for event in drained] == [
            "x%d" % position for position in range(10)
        ]
        # And a second iteration terminates immediately instead of
        # blocking on the re-armed close marker.
        assert list(source) == []

    def test_async_drain_of_closed_nonempty_queue(self):
        source = QueueSource(maxsize=64)
        for position in range(7):
            source.push("t1", EventType.READ, "v%d" % position)
        source.close()

        async def drain():
            return [event.target async for event in source]

        assert asyncio.run(drain()) == ["v%d" % i for i in range(7)]


# --------------------------------------------------------------------- #
# CLI surface
# --------------------------------------------------------------------- #

class TestCheckpointCLI:
    def _write_trace(self, tmp_path, seed=12, n_events=300):
        trace = random_trace(seed, n_events=n_events, n_threads=4, n_vars=5)
        path = tmp_path / "trace.std"
        dump_trace(trace, path)
        return path

    def test_checkpoint_then_resume_matches_full_run(self, tmp_path, capsys):
        path = self._write_trace(tmp_path)
        directory = str(tmp_path / "ckpts")
        main(["analyze", str(path), "--detector", "wcp,hb"])
        full = capsys.readouterr().out

        main(["analyze", str(path), "--detector", "wcp,hb",
              "--checkpoint", directory, "--checkpoint-every", "50",
              "--max-events", "150"])
        capsys.readouterr()
        code = main(["analyze", str(path), "--resume", directory])
        resumed = capsys.readouterr().out
        assert code in (0, 1)

        def races(text):
            return [
                line for line in text.splitlines()
                if not line.strip().startswith("stat ")
            ]

        assert races(resumed) == races(full)

    def test_checkpoint_with_unsupported_detector_exits_2(self, tmp_path, capsys):
        path = self._write_trace(tmp_path, n_events=60)
        code = main(["analyze", str(path), "--detector", "cp",
                     "--checkpoint", str(tmp_path / "ckpts")])
        assert code == 2
        err = capsys.readouterr().err
        assert "do not support state snapshots" in err
        assert "Traceback" not in err

    def test_window_plus_checkpoint_exits_2(self, tmp_path, capsys):
        path = self._write_trace(tmp_path, n_events=60)
        code = main(["analyze", str(path), "--window", "20",
                     "--checkpoint", str(tmp_path / "ckpts")])
        assert code == 2
        assert "snapshots" in capsys.readouterr().err

    def test_resume_without_checkpoints_exits_2(self, tmp_path, capsys):
        path = self._write_trace(tmp_path, n_events=60)
        code = main(["analyze", str(path), "--resume", str(tmp_path / "none")])
        assert code == 2
        assert "no checkpoints" in capsys.readouterr().err

    def test_fresh_process_resume(self, tmp_path):
        """The acceptance property: resume in a *fresh process*."""
        path = self._write_trace(tmp_path, seed=21, n_events=400)
        directory = str(tmp_path / "ckpts")

        def run_cli(*argv):
            return subprocess.run(
                [sys.executable, "-m", "repro.cli", *argv],
                capture_output=True, text=True,
            )

        full = run_cli("analyze", str(path), "--detector", "wcp,hb")
        partial = run_cli(
            "analyze", str(path), "--detector", "wcp,hb",
            "--checkpoint", directory, "--checkpoint-every", "50",
            "--max-events", "200",
        )
        assert partial.returncode in (0, 1), partial.stderr
        resumed = run_cli("analyze", str(path), "--resume", directory)
        assert resumed.returncode == full.returncode, resumed.stderr

        def races(text):
            return [
                line for line in text.splitlines()
                if not line.strip().startswith("stat ")
            ]

        assert races(resumed.stdout) == races(full.stdout)


# --------------------------------------------------------------------- #
# CRC framing + corrupt-checkpoint resume fallback (satellite)
# --------------------------------------------------------------------- #


class TestCrcFraming:
    def test_frame_round_trip(self):
        payload = b"detector state bytes"
        framed = frame_blob(payload)
        assert unframe_blob(framed) == payload
        assert len(framed) == len(payload) + 8  # length + crc32 header

    def test_truncated_header_is_actionable(self):
        with pytest.raises(CheckpointError, match="truncated frame header"):
            unframe_blob(b"\x00\x01", what="shard 3 snapshot")

    def test_truncated_payload_is_actionable(self):
        framed = frame_blob(b"0123456789")
        with pytest.raises(CheckpointError, match="truncated payload"):
            unframe_blob(framed[:-3])

    def test_bit_flip_is_caught_by_crc(self):
        from repro.engine.faults import corrupt_blob

        framed = frame_blob(b"0123456789abcdef")
        with pytest.raises(CheckpointError, match="CRC mismatch"):
            unframe_blob(corrupt_blob(framed))

    def test_error_names_the_what(self):
        with pytest.raises(CheckpointError, match="shard 7 snapshot"):
            unframe_blob(b"", what="shard 7 snapshot")

    def test_checkpoint_file_magic_is_framed(self):
        checkpoint = Checkpoint(
            events=10, source_name="s",
            stamps=[detector_stamp(WCPDetector())],
            states=[b"state"], every=10,
        )
        blob = checkpoint.to_bytes()
        assert blob[:4] == b"RCK2"
        assert Checkpoint.from_bytes(blob).events == 10

    def test_corrupt_checkpoint_payload_is_caught(self):
        from repro.engine.faults import corrupt_blob

        checkpoint = Checkpoint(
            events=10, source_name="s",
            stamps=[detector_stamp(WCPDetector())],
            states=[b"state"], every=10,
        )
        blob = checkpoint.to_bytes()
        with pytest.raises(CheckpointError, match="CRC mismatch"):
            Checkpoint.from_bytes(blob[:4] + corrupt_blob(blob[4:]))


class TestResumableLoad:
    def _save(self, tmp_path, offsets):
        checkpointer = Checkpointer(tmp_path, every=10, keep=10)
        for events in offsets:
            checkpointer.save(Checkpoint(
                events=events, source_name="s",
                stamps=[detector_stamp(WCPDetector())],
                states=[b"blob-%d" % events], every=10,
            ))
        return checkpointer

    def _corrupt(self, tmp_path, events):
        path = tmp_path / ("ckpt-%012d.rckp" % events)
        blob = bytearray(path.read_bytes())
        blob[len(blob) // 2] ^= 0x55
        path.write_bytes(bytes(blob))

    def test_corrupt_newest_falls_back_with_warning(self, tmp_path, caplog):
        import logging

        checkpointer = self._save(tmp_path, [10, 20, 30])
        self._corrupt(tmp_path, 30)
        with caplog.at_level(logging.WARNING, logger="repro.engine.checkpoint"):
            loaded = checkpointer.load_resumable()
        assert loaded.events == 20
        assert any("skipping corrupt checkpoint" in record.getMessage()
                   for record in caplog.records)

    def test_all_corrupt_names_the_directory(self, tmp_path):
        checkpointer = self._save(tmp_path, [10, 20])
        self._corrupt(tmp_path, 10)
        self._corrupt(tmp_path, 20)
        with pytest.raises(CheckpointError) as exc:
            checkpointer.load_resumable()
        message = str(exc.value)
        assert "every checkpoint in" in message
        assert str(tmp_path) in message
        assert "re-run the analysis" in message

    def test_corrupt_error_names_the_file(self, tmp_path):
        checkpointer = self._save(tmp_path, [10])
        self._corrupt(tmp_path, 10)
        with pytest.raises(CheckpointError, match="ckpt-000000000010"):
            checkpointer.load()

    def test_empty_directory_still_errors(self, tmp_path):
        with pytest.raises(CheckpointError, match="no checkpoints"):
            Checkpointer(tmp_path / "empty").load_resumable()

    def test_cli_resume_survives_corrupt_newest(self, tmp_path, capsys):
        trace = random_trace(67, n_events=300, n_threads=4, n_vars=5)
        path = tmp_path / "trace.std"
        dump_trace(trace, path)
        directory = tmp_path / "ckpts"

        main(["analyze", str(path), "--detector", "wcp"])
        full = capsys.readouterr().out
        main(["analyze", str(path), "--detector", "wcp",
              "--checkpoint", str(directory), "--checkpoint-every", "50",
              "--max-events", "150"])
        capsys.readouterr()
        # Bit-flip the newest retained checkpoint: resume must fall back
        # to the next-newest instead of dying.
        newest = max(
            directory.glob("ckpt-*.rckp"),
            key=lambda p: int(p.stem[len("ckpt-"):]),
        )
        blob = bytearray(newest.read_bytes())
        blob[len(blob) // 2] ^= 0x55
        newest.write_bytes(bytes(blob))

        code = main(["analyze", str(path), "--resume", str(directory)])
        resumed = capsys.readouterr().out
        assert code in (0, 1)

        def races(text):
            return [line for line in text.splitlines()
                    if not line.strip().startswith("stat ")]

        assert races(resumed) == races(full)


# --------------------------------------------------------------------- #
# Extended vocabulary (rwlocks, barriers, wait/notify)
# --------------------------------------------------------------------- #


class TestMixedVocabularyCheckpoints:
    """Checkpoint/resume parity when traces use the full event vocabulary.

    The new kinds carry extra detector state (read accumulators, open
    barrier generations, notify clocks, per-thread read-held sets) that
    must survive a snapshot boundary placed at an *arbitrary* offset --
    including mid-read-section and mid-barrier-generation.
    """

    @pytest.mark.parametrize("factory", DETECTOR_FACTORIES)
    @pytest.mark.parametrize("fraction", [0.15, 0.5, 0.85])
    def test_detector_round_trip_parity(self, factory, fraction):
        from repro.bench.generators import mixed_vocabulary_trace

        trace = mixed_vocabulary_trace(3, steps=180)
        reference = factory().run(trace)
        split = int(len(trace) * fraction)

        original = factory()
        original.reset(trace)
        for event in trace.events[:split]:
            original.process(event)
        blob = original.state_snapshot()

        resumed = factory()
        resumed.reset(trace)
        resumed.restore_state(blob)
        for event in trace.events[split:]:
            resumed.process(event)
        resumed.finish()
        assert _fingerprint(resumed.report) == _fingerprint(reference)

    @pytest.mark.parametrize("seed", [0, 5])
    def test_engine_resume_parity(self, tmp_path, seed):
        from repro.bench.generators import mixed_vocabulary_trace

        trace = mixed_vocabulary_trace(seed, steps=160)
        reference = run_engine(trace, detectors=["wcp", "hb", "fasttrack"])
        resumed = _partial_then_resume(
            tmp_path, trace, TraceSource, stop_at=len(trace) // 3,
            detectors=("wcp", "hb", "fasttrack"),
        )
        for name in reference.keys():
            assert _fingerprint(resumed[name]) == _fingerprint(
                reference[name]
            )

    def test_validated_stream_resume_parity(self, tmp_path):
        # The online validator's rwlock state (read-holder map, section
        # modes) must ride the checkpoint too: the resumed suffix releases
        # read sections the prefix opened.
        from repro.bench.generators import mixed_vocabulary_trace

        trace = mixed_vocabulary_trace(2, steps=140)
        path = tmp_path / "mixed.std"
        dump_trace(trace, path)
        reference = run_engine(trace, detectors=["wcp"])
        resumed = _partial_then_resume(
            tmp_path, path,
            lambda p: ValidatingSource(FileSource(p)),
            stop_at=len(trace) // 2, detectors=("wcp",),
        )
        assert _fingerprint(resumed["WCP"]) == _fingerprint(
            reference["WCP"]
        )
