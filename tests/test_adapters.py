"""Tests for the real-trace ingest adapters and the format dispatch layer.

Covers the mtrace (kernel lock-log) and tsan (sanitizer annotation)
adapters end to end: line grammars, rwlock mode inference, the
line-number-and-token error contract shared by all four formats, the
extension dispatch, and the CLI's ``--format`` override.
"""

import pytest

from repro.cli import main
from repro.trace import (
    EventType,
    TraceParseError,
    detect_format,
    event_iterator,
    iter_mtrace_events,
    iter_tsan_events,
    load_trace,
)
from repro.vectorclock.registry import ThreadRegistry


MTRACE_DEMO = """\
# kernel lock log, two tasks over one rwlock
writer-11 [000] 100.000100: lock_acquire: &sem
writer-11 [000] 100.000200: mem_write: counter
writer-11 [001] 100.000300: lock_release: &sem
reader-22 [001] 100.000400: lock_acquire: read &sem
reader-22 [001] 100.000500: mem_read: counter
reader-22 [001] 100.000600: lock_release: &sem
writer-11 [000] 100.000700: task_fork: child-33
child-33 [002] 100.000800: lock_acquire: write &sem
child-33 [002] 100.000900: mem_write: counter
child-33 [002] 100.001000: lock_release: &sem
writer-11 [000] 100.001100: task_join: child-33
"""

TSAN_DEMO = """\
T0 thread_create T1
T0 mutex_lock m 0x4a2f
T0 write data 0x4a33
T0 mutex_unlock m
T1 rwlock_read_lock rw
T1 read data
T1 rwlock_unlock rw
T1 barrier_wait b0
T0 barrier_wait b0
T1 mutex_lock cv
T1 mutex_unlock cv
T0 mutex_lock cv
T0 cond_signal cv
T0 mutex_unlock cv
T1 cond_wait cv
T1 mutex_unlock cv
T0 thread_join T1
"""


class TestMtraceAdapter:
    def test_happy_path_event_stream(self):
        events = list(iter_mtrace_events(MTRACE_DEMO.splitlines()))
        assert [event.etype for event in events] == [
            EventType.ACQUIRE, EventType.WRITE, EventType.RELEASE,
            EventType.RACQ_R, EventType.READ, EventType.RREL,
            EventType.FORK, EventType.RACQ_W, EventType.WRITE,
            EventType.RREL, EventType.JOIN,
        ]
        assert [event.index for event in events] == list(range(len(events)))
        assert events[0].thread == "writer-11"
        assert events[0].target == "&sem"
        # CPU and timestamp become the program location.
        assert events[0].loc == "000:100.000100"

    def test_release_mode_resolved_per_task(self):
        # The same lock name releases as ``rel`` for the exclusive holder
        # and ``rrel`` for the task that opened it with a reader/writer
        # acquire -- kernel logs do not say which on the release side.
        events = list(iter_mtrace_events(MTRACE_DEMO.splitlines()))
        releases = [e for e in events if e.etype in (EventType.RELEASE, EventType.RREL)]
        assert [(e.thread, e.etype) for e in releases] == [
            ("writer-11", EventType.RELEASE),
            ("reader-22", EventType.RREL),
            ("child-33", EventType.RREL),
        ]

    def test_registry_stamps_tids(self):
        registry = ThreadRegistry()
        events = list(iter_mtrace_events(MTRACE_DEMO.splitlines(), registry=registry))
        assert all(event.tid is not None for event in events)
        assert events[0].tid == registry.intern("writer-11")

    def test_malformed_line_names_line_and_shape(self):
        lines = ["writer-11 [000] 100.1: lock_acquire: &sem", "not a record"]
        with pytest.raises(TraceParseError) as err:
            list(iter_mtrace_events(lines))
        message = str(err.value)
        assert "line 2" in message
        assert "comm-pid [cpu] ts: op: args" in message
        assert "not a record" in message

    def test_unknown_record_names_line_and_token(self):
        lines = ["writer-11 [000] 100.1: lock_steal: &sem"]
        with pytest.raises(TraceParseError, match=r"line 1: unknown mtrace record 'lock_steal'"):
            list(iter_mtrace_events(lines))

    def test_missing_operand_errors(self):
        with pytest.raises(TraceParseError, match=r"line 1: 'lock_acquire' requires a lock name"):
            list(iter_mtrace_events(["w-1 [000] 1.0: lock_acquire: "]))
        with pytest.raises(TraceParseError, match=r"line 1: 'lock_release' requires a lock name"):
            list(iter_mtrace_events(["w-1 [000] 1.0: lock_release: "]))
        with pytest.raises(TraceParseError, match=r"line 1: 'mem_read' requires an operand"):
            list(iter_mtrace_events(["w-1 [000] 1.0: mem_read: "]))

    def test_comments_and_blanks_skipped_but_lines_counted(self):
        lines = ["# header", "", "w-1 [000] 1.0: bogus_op: x"]
        with pytest.raises(TraceParseError, match=r"line 3"):
            list(iter_mtrace_events(lines))


class TestTsanAdapter:
    def test_happy_path_event_stream(self):
        events = list(iter_tsan_events(TSAN_DEMO.splitlines()))
        assert [event.etype for event in events] == [
            EventType.FORK, EventType.ACQUIRE, EventType.WRITE,
            EventType.RELEASE, EventType.RACQ_R, EventType.READ,
            EventType.RREL, EventType.BARRIER, EventType.BARRIER,
            EventType.ACQUIRE, EventType.RELEASE, EventType.ACQUIRE,
            EventType.NOTIFY, EventType.RELEASE, EventType.WAIT,
            EventType.RELEASE, EventType.JOIN,
        ]
        assert events[1].loc == "0x4a2f"  # optional pc column
        assert events[5].loc is None

    def test_verbs_are_case_insensitive(self):
        events = list(iter_tsan_events(["T0 MUTEX_LOCK m"]))
        assert events[0].etype is EventType.ACQUIRE

    def test_malformed_line_names_line_and_shape(self):
        with pytest.raises(TraceParseError) as err:
            list(iter_tsan_events(["T0 mutex_lock"]))
        message = str(err.value)
        assert "line 1" in message
        assert "thread verb target [pc]" in message

    def test_unknown_verb_names_line_and_token(self):
        with pytest.raises(TraceParseError, match=r"line 1: unknown tsan operation 'mutex_grab'"):
            list(iter_tsan_events(["T0 mutex_grab m"]))

    def test_registry_stamps_tids(self):
        registry = ThreadRegistry()
        events = list(iter_tsan_events(TSAN_DEMO.splitlines(), registry=registry))
        assert events[0].tid == registry.intern("T0")


class TestErrorContractAcrossFormats:
    """Every format's parse errors name the line/row and the bad token."""

    def test_std_unknown_token(self, tmp_path):
        path = tmp_path / "t.std"
        path.write_text("t1|acq(m)\nt1|frobnicate(m)\n")
        with pytest.raises(TraceParseError, match=r"line 2: unknown operation token 'frobnicate'"):
            load_trace(path)

    def test_csv_unknown_token(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("thread,etype,target,loc\nt1,acq,m,\nt1,frobnicate,m,\n")
        with pytest.raises(TraceParseError, match=r"row 3: unknown event type token 'frobnicate'"):
            load_trace(path)

    def test_mtrace_unknown_record(self, tmp_path):
        path = tmp_path / "t.mtrace"
        path.write_text("w-1 [000] 1.0: lock_acquire: m\nw-1 [000] 1.1: frobnicate: m\n")
        with pytest.raises(TraceParseError, match=r"line 2: unknown mtrace record 'frobnicate'"):
            load_trace(path)

    def test_tsan_unknown_verb(self, tmp_path):
        path = tmp_path / "t.tsan"
        path.write_text("T0 mutex_lock m\nT0 frobnicate m\n")
        with pytest.raises(TraceParseError, match=r"line 2: unknown tsan operation 'frobnicate'"):
            load_trace(path)


class TestFormatDispatch:
    def test_extension_dispatch(self):
        assert detect_format("a/b/trace.std") == "std"
        assert detect_format("trace.csv") == "csv"
        assert detect_format("trace.MTRACE") == "mtrace"
        assert detect_format("trace.tsan") == "tsan"
        assert detect_format("trace.log") == "std"

    def test_unknown_format_is_rejected_with_choices(self):
        with pytest.raises(ValueError) as err:
            event_iterator("perfetto")
        message = str(err.value)
        assert "unknown trace format 'perfetto'" in message
        for name in ("std", "csv", "mtrace", "tsan"):
            assert name in message

    def test_load_trace_format_overrides_extension(self, tmp_path):
        path = tmp_path / "kernel.log"  # .log would dispatch to std
        path.write_text(MTRACE_DEMO)
        trace = load_trace(path, format="mtrace")
        assert len(trace) == 11
        assert trace.events[3].etype is EventType.RACQ_R


class TestCliFormatFlag:
    def test_analyze_mtrace(self, tmp_path, capsys):
        path = tmp_path / "kernel.mtrace"
        path.write_text(MTRACE_DEMO)
        assert main(["analyze", str(path), "--detector", "wcp"]) == 0
        assert "race" in capsys.readouterr().out

    def test_analyze_format_override(self, tmp_path, capsys):
        path = tmp_path / "kernel.log"
        path.write_text(MTRACE_DEMO)
        assert main(["analyze", str(path), "--format", "mtrace", "--detector", "wcp"]) == 0
        capsys.readouterr()

    def test_stats_census_on_tsan(self, tmp_path, capsys):
        path = tmp_path / "run.tsan"
        path.write_text(TSAN_DEMO)
        assert main(["stats", str(path)]) == 0
        output = capsys.readouterr().out
        assert "event census:" in output
        assert "barrier" in output
        assert "racq_r" in output
