"""Tests for report/row export (JSON and CSV)."""

import csv
import io
import json

import pytest

from repro.analysis import (
    compare_on_trace,
    report_to_csv,
    report_to_dict,
    report_to_json,
    rows_to_csv,
    rows_to_json,
    save_report,
)
from repro.core.wcp import WCPDetector
from repro.hb import HBDetector
from repro.trace.builder import TraceBuilder


@pytest.fixture
def racy_report():
    trace = (
        TraceBuilder("export-demo")
        .write("t1", "a", loc="A.java:1")
        .write("t2", "a", loc="B.java:2")
        .write("t1", "b", loc="A.java:3")
        .write("t2", "b", loc="B.java:4")
        .build()
    )
    return WCPDetector().run(trace)


class TestReportExport:
    def test_report_to_dict_structure(self, racy_report):
        payload = report_to_dict(racy_report)
        assert payload["detector"] == "WCP"
        assert payload["trace"] == "export-demo"
        assert payload["distinct_races"] == 2
        assert len(payload["races"]) == 2
        first = payload["races"][0]
        assert set(first) >= {
            "locations", "variable", "distance", "first_thread", "second_thread",
        }

    def test_report_to_json_round_trips(self, racy_report):
        parsed = json.loads(report_to_json(racy_report))
        assert parsed["distinct_races"] == 2
        assert parsed["stats"]["events"] == 4

    def test_report_to_csv(self, racy_report):
        rows = list(csv.DictReader(io.StringIO(report_to_csv(racy_report))))
        assert len(rows) == 2
        assert {row["variable"] for row in rows} == {"a", "b"}
        assert rows[0]["detector"] == "WCP"

    def test_empty_report_exports(self, protected_trace):
        report = HBDetector().run(protected_trace)
        assert json.loads(report_to_json(report))["races"] == []
        assert len(report_to_csv(report).strip().splitlines()) == 1

    def test_save_report_json_and_csv(self, racy_report, tmp_path):
        json_path = save_report(racy_report, tmp_path / "out.json")
        csv_path = save_report(racy_report, tmp_path / "out.csv")
        assert json.loads(json_path.read_text())["distinct_races"] == 2
        assert "variable" in csv_path.read_text()

    def test_save_report_rejects_unknown_extension(self, racy_report, tmp_path):
        with pytest.raises(ValueError):
            save_report(racy_report, tmp_path / "out.xml")


class TestRowExport:
    def _rows(self, simple_race_trace):
        return [compare_on_trace(simple_race_trace, [WCPDetector(), HBDetector()])]

    def test_rows_to_json(self, simple_race_trace):
        payload = json.loads(rows_to_json(self._rows(simple_race_trace)))
        assert payload[0]["benchmark"] == "simple_race"
        assert payload[0]["WCP_races"] == 1

    def test_rows_to_csv(self, simple_race_trace):
        text = rows_to_csv(self._rows(simple_race_trace))
        rows = list(csv.DictReader(io.StringIO(text)))
        assert rows[0]["benchmark"] == "simple_race"
        assert rows[0]["HB_races"] == "1"

    def test_rows_to_csv_empty(self):
        assert rows_to_csv([]) == ""
