"""Tests for the TraceBuilder DSL and the trace parsers/writers."""

import pytest

from repro.trace.builder import TraceBuilder
from repro.trace.event import EventType
from repro.trace.parsers import TraceParseError, load_trace, parse_csv, parse_std
from repro.trace.writers import dump_trace, write_csv, write_std

from conftest import random_trace


class TestTraceBuilder:
    def test_basic_chaining(self):
        trace = (
            TraceBuilder()
            .acquire("t1", "l").read("t1", "x").write("t1", "x").release("t1", "l")
            .fork("t1", "t2").join("t1", "t2")
            .begin("t2").end("t2")
            .build()
        )
        kinds = [event.etype for event in trace]
        assert kinds == [
            EventType.ACQUIRE, EventType.READ, EventType.WRITE, EventType.RELEASE,
            EventType.FORK, EventType.JOIN, EventType.BEGIN, EventType.END,
        ]

    def test_default_locations_are_line_numbers(self):
        trace = TraceBuilder().write("t1", "x").write("t1", "y").build()
        assert trace[0].loc == "line1"
        assert trace[1].loc == "line2"

    def test_sync_shorthand(self):
        trace = TraceBuilder().sync("t1", "m").build()
        assert [event.etype for event in trace] == [
            EventType.ACQUIRE, EventType.READ, EventType.WRITE, EventType.RELEASE,
        ]
        assert trace[1].variable == "mVar"

    def test_acrl_shorthand(self):
        trace = TraceBuilder().acrl("t1", "m").build()
        assert [event.etype for event in trace] == [EventType.ACQUIRE, EventType.RELEASE]

    def test_critical_helper(self):
        trace = TraceBuilder().critical("t1", "l", ("r", "x"), ("w", "y")).build()
        assert [event.etype for event in trace] == [
            EventType.ACQUIRE, EventType.READ, EventType.WRITE, EventType.RELEASE,
        ]
        with pytest.raises(ValueError):
            TraceBuilder().critical("t1", "l", ("bogus", "x"))

    def test_events_and_len(self):
        builder = TraceBuilder().write("t1", "x")
        assert len(builder) == 1
        assert len(builder.events()) == 1

    def test_build_name(self):
        assert TraceBuilder("named").build().name == "named"
        assert TraceBuilder().build(name="other").name == "other"


class TestStdFormat:
    def test_parse_simple(self):
        text = """
        # a comment
        t1|acq(l)|Foo.java:1
        t1|r(x)|Foo.java:2
        t1|rel(l)
        t2|fork(t3)
        """
        trace = parse_std(text)
        assert len(trace) == 4
        assert trace[0].is_acquire() and trace[0].lock == "l"
        assert trace[0].loc == "Foo.java:1"
        assert trace[3].other_thread == "t3"

    def test_parse_operation_aliases(self):
        trace = parse_std("t1|lock(l)\n t1|read(x)\n t1|write(x)\n t1|unlock(l)")
        assert [event.etype for event in trace] == [
            EventType.ACQUIRE, EventType.READ, EventType.WRITE, EventType.RELEASE,
        ]

    def test_parse_errors(self):
        with pytest.raises(TraceParseError):
            parse_std("t1|frobnicate(x)")
        with pytest.raises(TraceParseError):
            parse_std("just-one-field")

    def test_round_trip(self):
        trace = random_trace(seed=7, n_events=30)
        text = write_std(trace)
        parsed = parse_std(text)
        assert len(parsed) == len(trace)
        for original, reparsed in zip(trace, parsed):
            assert original.thread == reparsed.thread
            assert original.etype == reparsed.etype
            assert original.target == reparsed.target


class TestCsvFormat:
    def test_round_trip(self):
        trace = random_trace(seed=8, n_events=30)
        text = write_csv(trace)
        parsed = parse_csv(text)
        assert len(parsed) == len(trace)
        for original, reparsed in zip(trace, parsed):
            assert (original.thread, original.etype, original.target) == (
                reparsed.thread, reparsed.etype, reparsed.target
            )

    def test_unknown_event_type(self):
        with pytest.raises(TraceParseError):
            parse_csv("thread,etype,target,loc\nt1,zap,x,\n")


class TestFileRoundTrip:
    def test_std_file(self, tmp_path):
        trace = random_trace(seed=9, n_events=20)
        path = dump_trace(trace, tmp_path / "trace.std")
        loaded = load_trace(path)
        assert len(loaded) == len(trace)
        assert loaded.name == "trace"

    def test_csv_file(self, tmp_path):
        trace = random_trace(seed=10, n_events=20)
        path = dump_trace(trace, tmp_path / "trace.csv")
        loaded = load_trace(path)
        assert len(loaded) == len(trace)
