"""Tests for correct-reordering checking and witness search."""

import pytest

from repro.reordering import (
    check_correct_reordering,
    find_all_predictable_races,
    find_deadlock_witness,
    find_race_witness,
    has_predictable_race,
    is_correct_reordering,
)
from repro.trace.builder import TraceBuilder
from repro.trace.event import Event, EventType
from repro.trace.trace import Trace
from repro.bench.paper_figures import figure_1a, figure_1b, figure_2b, figure_5

from conftest import random_trace


def _rebuild(events):
    return Trace(
        [Event(-1, e.thread, e.etype, e.target, e.loc) for e in events],
        validate=False,
    )


class TestCorrectReordering:
    def test_identity_is_correct(self):
        trace = random_trace(seed=1, n_events=30)
        assert is_correct_reordering(trace, trace)

    def test_prefix_is_correct(self):
        trace = (
            TraceBuilder()
            .write("t1", "x").write("t2", "y").write("t1", "z")
            .build()
        )
        prefix = _rebuild(list(trace)[:2])
        assert is_correct_reordering(trace, prefix)

    def test_swapping_independent_threads_is_correct(self):
        trace = (
            TraceBuilder().write("t1", "x").write("t2", "y").build()
        )
        swapped = _rebuild([trace[1], trace[0]])
        assert is_correct_reordering(trace, swapped)

    def test_thread_order_violation_rejected(self):
        trace = (
            TraceBuilder().write("t1", "x").read("t1", "y").build()
        )
        swapped = _rebuild([trace[1], trace[0]])
        violations = check_correct_reordering(trace, swapped)
        assert any(v.kind == "prefix" for v in violations)

    def test_read_from_violation_rejected(self):
        trace = (
            TraceBuilder()
            .write("t1", "x")
            .read("t2", "x")
            .build()
        )
        # Dropping the write changes what the read observes.
        candidate = _rebuild([trace[1]])
        violations = check_correct_reordering(trace, candidate)
        assert any(v.kind == "read-from" for v in violations)

    def test_lock_semantics_violation_rejected(self):
        trace = (
            TraceBuilder()
            .acquire("t1", "l").release("t1", "l")
            .acquire("t2", "l").release("t2", "l")
            .build()
        )
        overlapping = _rebuild([trace[0], trace[2], trace[1], trace[3]])
        violations = check_correct_reordering(trace, overlapping)
        assert any(v.kind == "lock-semantics" for v in violations)

    def test_extra_events_rejected(self):
        trace = TraceBuilder().write("t1", "x").build()
        longer = (
            TraceBuilder().write("t1", "x").write("t1", "y").build()
        )
        violations = check_correct_reordering(trace, longer)
        assert any(v.kind == "prefix" for v in violations)
        assert "ReorderingViolation" in repr(violations[0])


class TestRaceWitness:
    def test_trivial_adjacent_race(self, simple_race_trace):
        result = find_race_witness(
            simple_race_trace, simple_race_trace[0], simple_race_trace[1]
        )
        assert result.found
        assert result.states_explored >= 1
        assert bool(result) is True

    def test_non_conflicting_pair_rejected(self):
        trace = TraceBuilder().read("t1", "x").read("t2", "x").build()
        assert not find_race_witness(trace, trace[0], trace[1]).found

    def test_figure_1a_has_no_witness(self):
        trace = figure_1a()
        for first, second in trace.conflicting_pairs():
            assert not find_race_witness(trace, first, second).found

    def test_figure_1b_and_2b_have_witnesses(self):
        for trace in (figure_1b(), figure_2b()):
            racy = [
                (a, b) for a, b in trace.conflicting_pairs() if a.variable == "y"
            ]
            assert has_predictable_race(trace, *racy[0])

    def test_witness_schedule_is_a_correct_reordering(self):
        trace = figure_2b()
        write_y, read_y = trace[0], trace[5]
        result = find_race_witness(trace, write_y, read_y)
        assert result.found
        candidate = _rebuild(result.schedule)
        assert is_correct_reordering(trace, candidate)

    def test_budget_exhaustion_is_reported(self):
        trace = random_trace(seed=11, n_events=80, n_threads=4)
        pairs = list(trace.conflicting_pairs())
        assert pairs
        result = find_race_witness(trace, pairs[-1][0], pairs[-1][1], max_states=1)
        assert result.states_explored <= 1
        if not result.found:
            assert result.exhausted

    def test_find_all_predictable_races(self):
        trace = figure_2b()
        witnesses = find_all_predictable_races(trace)
        assert len(witnesses) == 1
        assert witnesses[0][0].variable == "y"

    def test_fork_constrains_child_events(self):
        # The child's write cannot be reordered before its fork, so the
        # parent's pre-fork write cannot race with it.
        trace = (
            TraceBuilder()
            .write("t1", "x")
            .fork("t1", "t2")
            .write("t2", "x")
            .build()
        )
        assert not find_race_witness(trace, trace[0], trace[2]).found

    def test_join_requires_child_completion(self):
        trace = (
            TraceBuilder()
            .fork("t1", "t2")
            .write("t2", "x")
            .join("t1", "t2")
            .write("t1", "x")
            .build()
        )
        assert not find_race_witness(trace, trace[1], trace[3]).found


class TestDeadlockWitness:
    def test_figure_5_deadlock(self):
        assert find_deadlock_witness(figure_5()).found

    def test_classic_two_lock_deadlock(self):
        trace = (
            TraceBuilder()
            .acquire("t1", "a").acquire("t1", "b").release("t1", "b").release("t1", "a")
            .acquire("t2", "b").acquire("t2", "a").release("t2", "a").release("t2", "b")
            .build()
        )
        result = find_deadlock_witness(trace)
        assert result.found

    def test_consistent_lock_order_has_no_deadlock(self):
        trace = (
            TraceBuilder()
            .acquire("t1", "a").acquire("t1", "b").release("t1", "b").release("t1", "a")
            .acquire("t2", "a").acquire("t2", "b").release("t2", "b").release("t2", "a")
            .build()
        )
        assert not find_deadlock_witness(trace).found

    def test_race_free_single_thread_no_deadlock(self):
        trace = TraceBuilder().acquire("t1", "a").release("t1", "a").build()
        assert not find_deadlock_witness(trace).found
