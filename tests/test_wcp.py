"""Tests for the WCP detector (Algorithm 1) and its closure oracle.

The headline test is the Theorem 2 cross-validation: on randomly generated
traces, the streaming vector-clock algorithm's timestamps must characterise
exactly the same ordering as the explicit fixpoint computation of
Definition 3.
"""

import pytest

from repro.core.closure import WCPClosure, WCPClosureDetector
from repro.core.wcp import WCPDetector
from repro.hb import HBDetector
from repro.trace.builder import TraceBuilder
from repro.bench.paper_figures import figure_2a, figure_2b

from conftest import random_trace


class TestWCPDetectorBasics:
    def test_simple_race(self, simple_race_trace):
        assert WCPDetector().run(simple_race_trace).count() == 1

    def test_protected_updates_do_not_race(self, protected_trace):
        # Figure 1a: conflicting accesses inside both critical sections pin
        # the sections together.
        assert WCPDetector().run(protected_trace).count() == 0

    def test_figure_2b_race_found(self):
        report = WCPDetector().run(figure_2b())
        assert report.count() == 1
        assert report.pairs()[0].variable == "y"

    def test_figure_2a_no_race(self):
        assert WCPDetector().run(figure_2a()).count() == 0

    def test_rule_a_orders_conflicting_sections(self):
        # Same shape as Figure 1a but with extra accesses outside the lock:
        # the WCP Rule (a) edge (release before later conflicting access)
        # must order the x accesses but nothing else.
        trace = (
            TraceBuilder()
            .acquire("t1", "l").write("t1", "x").release("t1", "l")
            .acquire("t2", "l").read("t2", "x").release("t2", "l")
            .build()
        )
        assert WCPDetector().run(trace).count() == 0

    def test_queue_statistics_reported(self, protected_trace):
        report = WCPDetector().run(protected_trace)
        assert "max_queue_total" in report.stats
        assert "max_queue_fraction" in report.stats
        assert report.stats["max_queue_fraction"] >= 0.0

    def test_queue_statistics_can_be_disabled(self, protected_trace):
        report = WCPDetector(track_queue_stats=False).run(protected_trace)
        assert "max_queue_total" not in report.stats

    def test_prune_queues_does_not_change_result(self):
        for seed in range(6):
            trace = random_trace(seed=seed, n_events=80, n_threads=4, n_locks=3)
            pruned = WCPDetector(prune_queues=True).run(trace)
            unpruned = WCPDetector(prune_queues=False).run(trace)
            assert set(pruned.location_pairs()) == set(unpruned.location_pairs())

    def test_prune_queues_timestamps_identical(self):
        for seed in range(4):
            trace = random_trace(seed=seed, n_events=60, n_threads=4, n_locks=2)
            pruned = WCPDetector(prune_queues=True).timestamps(trace)
            unpruned = WCPDetector(prune_queues=False).timestamps(trace)
            assert [str(c) for c in pruned] == [str(c) for c in unpruned]

    def test_thread_local_lock_log_is_reclaimed(self):
        # A lock only ever touched by one thread has no consumers: with
        # pruning, its critical-section log must stay bounded instead of
        # accumulating one entry per section.
        builder = TraceBuilder()
        for _ in range(50):
            builder.acquire("t1", "l").write("t1", "x").release("t1", "l")
        builder.write("t2", "y")
        trace = builder.build()
        detector = WCPDetector(prune_queues=True)
        detector.run(trace)
        assert len(detector._cs_log["l"]) <= 1
        # Without the releaser census the log is kept in full.
        unpruned = WCPDetector(prune_queues=False)
        unpruned.run(trace)
        assert len(unpruned._cs_log["l"]) == 50

    def test_shared_lock_log_reclaimed_after_consumption(self):
        builder = TraceBuilder()
        for _ in range(20):
            builder.acquire("t1", "l").write("t1", "x").release("t1", "l")
            builder.acquire("t2", "l").write("t2", "x").release("t2", "l")
        trace = builder.build()
        detector = WCPDetector(prune_queues=True)
        detector.run(trace)
        # Both threads consume each other's sections as they go; the log
        # must not retain all 40 sections.
        assert len(detector._cs_log["l"]) < 10

    def test_fork_join_edges_respected(self):
        trace = (
            TraceBuilder()
            .write("t1", "x")
            .fork("t1", "t2")
            .write("t2", "x")
            .join("t1", "t2")
            .write("t1", "x")
            .build()
        )
        assert WCPDetector().run(trace).count() == 0

    def test_wcp_races_superset_of_hb_races(self):
        for seed in range(10):
            trace = random_trace(seed=seed, n_events=70, n_threads=3, n_locks=2)
            hb_races = set(HBDetector().run(trace).location_pairs())
            wcp_races = set(WCPDetector().run(trace).location_pairs())
            assert hb_races <= wcp_races

    def test_strict_pseudocode_mode_never_adds_races(self):
        # The literal Algorithm 1 joins same-thread release times as well,
        # which can only add orderings (hence remove races).
        for seed in range(8):
            trace = random_trace(seed=seed, n_events=70, n_threads=3, n_locks=2)
            faithful = set(WCPDetector().run(trace).location_pairs())
            literal = set(
                WCPDetector(strict_pseudocode=True).run(trace).location_pairs()
            )
            assert literal <= faithful


class TestTheorem2CrossValidation:
    """Streaming timestamps agree with the explicit WCP closure."""

    @pytest.mark.parametrize("seed", range(15))
    def test_ordering_equivalence_on_random_traces(self, seed):
        trace = random_trace(
            seed=seed, n_events=45, n_threads=3, n_locks=2, n_vars=3
        )
        clocks = WCPDetector().timestamps(trace)
        closure = WCPClosure(trace)
        for second in range(len(trace)):
            for first in range(second):
                expected = closure.ordered(first, second)
                observed = clocks[first] <= clocks[second]
                assert observed == expected, (
                    "WCP mismatch at events (%d, %d) of seed %d: "
                    "closure=%s algorithm=%s"
                    % (first, second, seed, expected, observed)
                )

    @pytest.mark.parametrize("seed", [100, 101, 102, 103])
    def test_ordering_equivalence_more_threads(self, seed):
        trace = random_trace(
            seed=seed, n_events=40, n_threads=4, n_locks=3, n_vars=2
        )
        clocks = WCPDetector().timestamps(trace)
        closure = WCPClosure(trace)
        for second in range(len(trace)):
            for first in range(second):
                assert (clocks[first] <= clocks[second]) == closure.ordered(
                    first, second
                )

    @pytest.mark.parametrize("seed", range(10))
    def test_detector_and_closure_report_same_races(self, seed):
        trace = random_trace(seed=seed + 50, n_events=60, n_threads=3)
        detector_races = set(WCPDetector().run(trace).location_pairs())
        closure_races = set(WCPClosureDetector().run(trace).location_pairs())
        assert detector_races == closure_races


class TestWCPClosureQueries:
    def test_reflexive_and_trace_order(self):
        trace = figure_2b()
        closure = WCPClosure(trace)
        assert closure.ordered(3, 3)
        assert not closure.ordered(5, 3)  # later event never ordered before earlier

    def test_unordered_helper(self):
        trace = figure_2b()
        closure = WCPClosure(trace)
        # w(y) at index 0 and r(y) at index 5 are the racy pair.
        assert closure.unordered(0, 5)
        assert closure.unordered(5, 0)

    def test_report_adapter(self):
        report = WCPClosure(figure_2b()).report()
        assert report.count() == 1
        assert report.detector_name == "WCP-closure"


class TestRuleAVersionMemo:
    """The per-cell version counters must skip repeat joins without ever
    changing verdicts (verdict parity is additionally covered by the
    backend-parity and closure cross-validation suites)."""

    def test_memo_populated_and_skipping(self):
        builder = TraceBuilder()
        builder.acquire("t1", "l").write("t1", "x").release("t1", "l")
        # Two consecutive reads of x by t2 inside one critical section:
        # the second visit sees an unchanged cell version and is skipped.
        builder.acquire("t2", "l").read("t2", "x").read("t2", "x")
        builder.release("t2", "l")
        trace = builder.build()
        detector = WCPDetector()
        detector.run(trace)
        cell = detector._locks["l"].lw["x"]
        assert cell.version == 1
        tid2 = detector._registry.lookup("t2")
        assert cell.seen.get(tid2) == cell.version

    def test_version_bumps_on_every_release_touching_cell(self):
        builder = TraceBuilder()
        for _ in range(3):
            builder.acquire("t1", "l").write("t1", "x").release("t1", "l")
        detector = WCPDetector()
        detector.run(builder.build())
        assert detector._locks["l"].lw["x"].version == 3

    @pytest.mark.parametrize("seed", range(5))
    def test_memo_keeps_closure_agreement(self, seed):
        trace = random_trace(seed, n_events=60, n_threads=3, n_locks=2)
        streaming = WCPDetector().run(trace)
        oracle = WCPClosureDetector().run(trace)
        assert streaming.location_pairs() == oracle.location_pairs() or (
            sorted(map(sorted, streaming.location_pairs()))
            == sorted(map(sorted, oracle.location_pairs()))
        )


class TestStreamReclamation:
    """The thread-quiescence heuristic prunes Rule (b) logs in stream mode."""

    def _thread_local_events(self, sections):
        from repro.trace.event import Event, EventType

        events = []
        for i in range(sections):
            thread = "t%d" % (i % 4)
            lock = "m_%s" % thread
            variable = "y_%s" % thread
            events.append(Event(-1, thread, EventType.ACQUIRE, lock))
            events.append(Event(-1, thread, EventType.WRITE, variable))
            events.append(Event(-1, thread, EventType.RELEASE, lock))
        return events

    def _run_streaming(self, events, **kwargs):
        from repro.engine import IterableSource, RaceEngine

        detector = WCPDetector(**kwargs)
        RaceEngine().run(IterableSource(iter(events)), detectors=[detector])
        return detector

    def test_thread_local_logs_stay_bounded(self):
        events = self._thread_local_events(400)
        pruned = self._run_streaming(events, stream_reclaim=True)
        unpruned = self._run_streaming(events, stream_reclaim=False)
        pruned_len = max(len(s.log) for s in pruned._locks.values())
        unpruned_len = max(len(s.log) for s in unpruned._locks.values())
        assert unpruned_len == 100  # stream mode keeps everything...
        assert pruned_len < unpruned_len  # ...the heuristic reclaims
        assert pruned._stream_reclaimed > 0
        assert pruned.report.stats["stream_log_reclaimed"] > 0

    @pytest.mark.parametrize("seed", range(6))
    def test_reclaim_preserves_verdicts_on_streams(self, seed):
        trace = random_trace(seed, n_events=400, n_threads=4, n_locks=2)
        events = list(trace)
        baseline = self._run_streaming(events, stream_reclaim=False)
        pruned = self._run_streaming(events, stream_reclaim=True)
        assert sorted(map(sorted, baseline.report.location_pairs())) == \
            sorted(map(sorted, pruned.report.location_pairs()))
        assert baseline.report.raw_race_count == pruned.report.raw_race_count

    def test_contended_lock_logs_reclaim_via_consumption(self):
        from repro.trace.event import Event, EventType

        events = []
        for i in range(300):
            thread = "t%d" % (i % 3)
            events.append(Event(-1, thread, EventType.ACQUIRE, "l"))
            events.append(Event(-1, thread, EventType.WRITE, "x"))
            events.append(Event(-1, thread, EventType.RELEASE, "l"))
        pruned = self._run_streaming(events, stream_reclaim=True)
        assert len(pruned._locks["l"].log) < 300

    def test_batch_mode_keeps_census_pruning(self):
        trace = random_trace(1, n_events=100, n_threads=3)
        detector = WCPDetector(stream_reclaim=True)
        detector.run(trace)
        # Complete trace: the exact census prune runs, not the heuristic.
        assert detector._effective_prune and not detector._quiesce_reclaim

    def test_late_lock_adoption_recovers_via_evicted_summary(self):
        """A thread the heuristic assumed quiescent (never touched the
        lock) that later adopts it must still receive the evicted
        entries' Rule (b) knowledge through the recovery summary.  The
        shape is adversarial: p's time reaches o only through HB (empty
        nested critical sections), so a fork-child of o can order itself
        after p's write *only* via Rule (b) on the evicted log."""
        from repro.trace.event import Event, EventType

        def build():
            events = []
            ev = lambda t, et, x: events.append(
                Event(-1, t, et, x, "%s:%s" % (t, x))
            )
            ev("p", EventType.ACQUIRE, "k")
            ev("p", EventType.WRITE, "y")
            ev("p", EventType.RELEASE, "k")
            for _ in range(70):
                ev("o", EventType.ACQUIRE, "l")
                ev("o", EventType.ACQUIRE, "k")
                ev("o", EventType.RELEASE, "k")
                ev("o", EventType.RELEASE, "l")
            ev("o", EventType.FORK, "t")
            ev("t", EventType.ACQUIRE, "l")
            ev("t", EventType.RELEASE, "l")
            ev("t", EventType.WRITE, "y")
            return events

        baseline = self._run_streaming(build(), stream_reclaim=False)
        pruned = WCPDetector(stream_reclaim=True)
        pruned._QUIESCE_LOG_THRESHOLD = 1  # evict aggressively
        from repro.engine import IterableSource, RaceEngine
        RaceEngine().run(IterableSource(iter(build())), detectors=[pruned])
        assert pruned._stream_reclaimed > 0
        assert sorted(map(sorted, baseline.report.location_pairs())) == \
            sorted(map(sorted, pruned.report.location_pairs()))
        # The lock's recovery summary exists and t consumed through it.
        state = pruned._locks["l"]
        assert state.evicted_rel is not None
        tid_t = pruned._registry.lookup("t")
        assert state.cursor[tid_t] >= state.base

    @pytest.mark.parametrize("seed", range(8))
    def test_aggressive_reclaim_fuzz_parity(self, seed):
        """Threshold-1 eviction over random traces: verdict parity with
        the unpruned stream run (the strict-prefix corner must not fire
        on these shapes)."""
        from repro.engine import IterableSource, RaceEngine

        trace = random_trace(seed, n_events=300, n_threads=4, n_locks=3,
                             n_vars=4)
        events = list(trace)
        baseline = self._run_streaming(events, stream_reclaim=False)
        pruned = WCPDetector(stream_reclaim=True)
        pruned._QUIESCE_LOG_THRESHOLD = 1
        RaceEngine().run(IterableSource(iter(events)), detectors=[pruned])
        assert sorted(map(sorted, baseline.report.location_pairs())) == \
            sorted(map(sorted, pruned.report.location_pairs()))
        assert baseline.report.raw_race_count == pruned.report.raw_race_count
