"""Tests for the WCP detector (Algorithm 1) and its closure oracle.

The headline test is the Theorem 2 cross-validation: on randomly generated
traces, the streaming vector-clock algorithm's timestamps must characterise
exactly the same ordering as the explicit fixpoint computation of
Definition 3.
"""

import pytest

from repro.core.closure import WCPClosure, WCPClosureDetector
from repro.core.wcp import WCPDetector
from repro.hb import HBDetector
from repro.trace.builder import TraceBuilder
from repro.bench.paper_figures import figure_2a, figure_2b

from conftest import random_trace


class TestWCPDetectorBasics:
    def test_simple_race(self, simple_race_trace):
        assert WCPDetector().run(simple_race_trace).count() == 1

    def test_protected_updates_do_not_race(self, protected_trace):
        # Figure 1a: conflicting accesses inside both critical sections pin
        # the sections together.
        assert WCPDetector().run(protected_trace).count() == 0

    def test_figure_2b_race_found(self):
        report = WCPDetector().run(figure_2b())
        assert report.count() == 1
        assert report.pairs()[0].variable == "y"

    def test_figure_2a_no_race(self):
        assert WCPDetector().run(figure_2a()).count() == 0

    def test_rule_a_orders_conflicting_sections(self):
        # Same shape as Figure 1a but with extra accesses outside the lock:
        # the WCP Rule (a) edge (release before later conflicting access)
        # must order the x accesses but nothing else.
        trace = (
            TraceBuilder()
            .acquire("t1", "l").write("t1", "x").release("t1", "l")
            .acquire("t2", "l").read("t2", "x").release("t2", "l")
            .build()
        )
        assert WCPDetector().run(trace).count() == 0

    def test_queue_statistics_reported(self, protected_trace):
        report = WCPDetector().run(protected_trace)
        assert "max_queue_total" in report.stats
        assert "max_queue_fraction" in report.stats
        assert report.stats["max_queue_fraction"] >= 0.0

    def test_queue_statistics_can_be_disabled(self, protected_trace):
        report = WCPDetector(track_queue_stats=False).run(protected_trace)
        assert "max_queue_total" not in report.stats

    def test_prune_queues_does_not_change_result(self):
        for seed in range(6):
            trace = random_trace(seed=seed, n_events=80, n_threads=4, n_locks=3)
            pruned = WCPDetector(prune_queues=True).run(trace)
            unpruned = WCPDetector(prune_queues=False).run(trace)
            assert set(pruned.location_pairs()) == set(unpruned.location_pairs())

    def test_prune_queues_timestamps_identical(self):
        for seed in range(4):
            trace = random_trace(seed=seed, n_events=60, n_threads=4, n_locks=2)
            pruned = WCPDetector(prune_queues=True).timestamps(trace)
            unpruned = WCPDetector(prune_queues=False).timestamps(trace)
            assert [str(c) for c in pruned] == [str(c) for c in unpruned]

    def test_thread_local_lock_log_is_reclaimed(self):
        # A lock only ever touched by one thread has no consumers: with
        # pruning, its critical-section log must stay bounded instead of
        # accumulating one entry per section.
        builder = TraceBuilder()
        for _ in range(50):
            builder.acquire("t1", "l").write("t1", "x").release("t1", "l")
        builder.write("t2", "y")
        trace = builder.build()
        detector = WCPDetector(prune_queues=True)
        detector.run(trace)
        assert len(detector._cs_log["l"]) <= 1
        # Without the releaser census the log is kept in full.
        unpruned = WCPDetector(prune_queues=False)
        unpruned.run(trace)
        assert len(unpruned._cs_log["l"]) == 50

    def test_shared_lock_log_reclaimed_after_consumption(self):
        builder = TraceBuilder()
        for _ in range(20):
            builder.acquire("t1", "l").write("t1", "x").release("t1", "l")
            builder.acquire("t2", "l").write("t2", "x").release("t2", "l")
        trace = builder.build()
        detector = WCPDetector(prune_queues=True)
        detector.run(trace)
        # Both threads consume each other's sections as they go; the log
        # must not retain all 40 sections.
        assert len(detector._cs_log["l"]) < 10

    def test_fork_join_edges_respected(self):
        trace = (
            TraceBuilder()
            .write("t1", "x")
            .fork("t1", "t2")
            .write("t2", "x")
            .join("t1", "t2")
            .write("t1", "x")
            .build()
        )
        assert WCPDetector().run(trace).count() == 0

    def test_wcp_races_superset_of_hb_races(self):
        for seed in range(10):
            trace = random_trace(seed=seed, n_events=70, n_threads=3, n_locks=2)
            hb_races = set(HBDetector().run(trace).location_pairs())
            wcp_races = set(WCPDetector().run(trace).location_pairs())
            assert hb_races <= wcp_races

    def test_strict_pseudocode_mode_never_adds_races(self):
        # The literal Algorithm 1 joins same-thread release times as well,
        # which can only add orderings (hence remove races).
        for seed in range(8):
            trace = random_trace(seed=seed, n_events=70, n_threads=3, n_locks=2)
            faithful = set(WCPDetector().run(trace).location_pairs())
            literal = set(
                WCPDetector(strict_pseudocode=True).run(trace).location_pairs()
            )
            assert literal <= faithful


class TestTheorem2CrossValidation:
    """Streaming timestamps agree with the explicit WCP closure."""

    @pytest.mark.parametrize("seed", range(15))
    def test_ordering_equivalence_on_random_traces(self, seed):
        trace = random_trace(
            seed=seed, n_events=45, n_threads=3, n_locks=2, n_vars=3
        )
        clocks = WCPDetector().timestamps(trace)
        closure = WCPClosure(trace)
        for second in range(len(trace)):
            for first in range(second):
                expected = closure.ordered(first, second)
                observed = clocks[first] <= clocks[second]
                assert observed == expected, (
                    "WCP mismatch at events (%d, %d) of seed %d: "
                    "closure=%s algorithm=%s"
                    % (first, second, seed, expected, observed)
                )

    @pytest.mark.parametrize("seed", [100, 101, 102, 103])
    def test_ordering_equivalence_more_threads(self, seed):
        trace = random_trace(
            seed=seed, n_events=40, n_threads=4, n_locks=3, n_vars=2
        )
        clocks = WCPDetector().timestamps(trace)
        closure = WCPClosure(trace)
        for second in range(len(trace)):
            for first in range(second):
                assert (clocks[first] <= clocks[second]) == closure.ordered(
                    first, second
                )

    @pytest.mark.parametrize("seed", range(10))
    def test_detector_and_closure_report_same_races(self, seed):
        trace = random_trace(seed=seed + 50, n_events=60, n_threads=3)
        detector_races = set(WCPDetector().run(trace).location_pairs())
        closure_races = set(WCPClosureDetector().run(trace).location_pairs())
        assert detector_races == closure_races


class TestWCPClosureQueries:
    def test_reflexive_and_trace_order(self):
        trace = figure_2b()
        closure = WCPClosure(trace)
        assert closure.ordered(3, 3)
        assert not closure.ordered(5, 3)  # later event never ordered before earlier

    def test_unordered_helper(self):
        trace = figure_2b()
        closure = WCPClosure(trace)
        # w(y) at index 0 and r(y) at index 5 are the racy pair.
        assert closure.unordered(0, 5)
        assert closure.unordered(5, 0)

    def test_report_adapter(self):
        report = WCPClosure(figure_2b()).report()
        assert report.count() == 1
        assert report.detector_name == "WCP-closure"
