"""Tests for the stats/witness CLI subcommands and the JSON export flag."""

import json

from repro.cli import main
from repro.trace.writers import dump_trace
from repro.bench.paper_figures import figure_1a, figure_2b, figure_5

from conftest import random_trace


class TestAnalyzeJsonFlag:
    def test_json_report_written(self, tmp_path, capsys):
        trace_path = dump_trace(random_trace(seed=3, n_events=30), tmp_path / "t.std")
        out_path = tmp_path / "report.json"
        main(["analyze", str(trace_path), "--detector", "wcp", "--json", str(out_path)])
        payload = json.loads(out_path.read_text())
        assert payload["detector"] == "WCP"
        assert "report written" in capsys.readouterr().out


class TestStatsCommand:
    def test_stats_output(self, tmp_path, capsys):
        trace_path = dump_trace(random_trace(seed=5, n_events=25), tmp_path / "t.std")
        assert main(["stats", str(trace_path)]) == 0
        output = capsys.readouterr().out
        assert "events" in output and "threads" in output and "locks" in output


class TestWitnessCommand:
    def test_witness_found_for_figure_2b(self, tmp_path, capsys):
        trace_path = dump_trace(figure_2b(), tmp_path / "fig2b.std")
        code = main(["witness", str(trace_path), "--detector", "wcp"])
        output = capsys.readouterr().out
        assert code == 1
        assert "witness found" in output

    def test_no_race_to_witness(self, tmp_path, capsys):
        trace_path = dump_trace(figure_1a(), tmp_path / "fig1a.std")
        code = main(["witness", str(trace_path), "--detector", "wcp"])
        assert code == 0
        assert "nothing to witness" in capsys.readouterr().out

    def test_unwitnessable_race_reports_deadlock_hint(self, tmp_path, capsys):
        # Figure 5: WCP flags a pair whose only manifestation is a deadlock.
        trace_path = dump_trace(figure_5(), tmp_path / "fig5.std")
        code = main(["witness", str(trace_path), "--detector", "wcp"])
        output = capsys.readouterr().out
        assert code == 0
        assert "deadlock" in output

    def test_budget_exhaustion_path(self, tmp_path, capsys):
        trace_path = dump_trace(figure_2b(), tmp_path / "fig2b.std")
        code = main([
            "witness", str(trace_path), "--detector", "wcp", "--max-states", "1",
        ])
        output = capsys.readouterr().out
        # Either the witness is found immediately or the budget message shows.
        assert code in (1, 2)
        assert "witness" in output or "budget" in output
