"""Clock-backend parity and legacy differential tests.

The hot-path overhaul (interned tids, dense clocks, cached ``C_t``,
epoch-accelerated history, chain-collapsed Rule (a)/(b) joins) must be
*observably invisible*: random traces run through WCP / HB / FastTrack
with the dense and dict clock backends -- and through the frozen
pre-overhaul :class:`~repro.core.wcp_legacy.LegacyWCPDetector` -- must
produce identical race pairs, timestamps and statistics.

Two generators are used: the hypothesis strategy from
``tests/test_properties.py`` (locks + accesses) and a seeded fork/join
generator, because fork/join are exactly the events that can invalidate
the history's epoch fast path for WCP (mid-block snapshot leaks).
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from test_properties import traces

from repro.core.wcp import WCPDetector
from repro.core.wcp_legacy import LegacyWCPDetector
from repro.engine import IterableSource, RaceEngine
from repro.hb import FastTrackDetector, HBDetector
from repro.trace.event import Event, EventType
from repro.trace.trace import Trace
from repro.vectorclock.registry import ThreadRegistry

PARITY_SETTINGS = dict(max_examples=40, deadline=None)


def random_trace_with_forks(
    seed, n_events=50, n_threads=4, n_locks=2, n_vars=3, fork_join_bias=0.15
):
    """A random well-formed trace that also exercises fork/join edges."""
    rng = random.Random(seed)
    threads = ["t%d" % i for i in range(n_threads)]
    locks = ["l%d" % i for i in range(n_locks)]
    variables = ["x%d" % i for i in range(n_vars)]

    held = {thread: [] for thread in threads}
    holder = {}
    events = []
    while len(events) < n_events:
        thread = rng.choice(threads)
        choices = ["read", "write", "read", "write"]
        free_locks = [
            lock for lock in locks
            if lock not in holder and lock not in held[thread]
        ]
        if free_locks:
            choices.append("acquire")
        if held[thread]:
            choices.append("release")
        if rng.random() < fork_join_bias:
            choices.extend(["fork", "join"])
        action = rng.choice(choices)
        index = len(events)
        if action == "acquire":
            lock = rng.choice(free_locks)
            held[thread].append(lock)
            holder[lock] = thread
            events.append(Event(index, thread, EventType.ACQUIRE, lock))
        elif action == "release":
            lock = held[thread].pop()
            del holder[lock]
            events.append(Event(index, thread, EventType.RELEASE, lock))
        elif action in ("fork", "join"):
            other = rng.choice([t for t in threads if t != thread])
            etype = EventType.FORK if action == "fork" else EventType.JOIN
            events.append(Event(index, thread, etype, other))
        else:
            variable = rng.choice(variables)
            etype = EventType.READ if action == "read" else EventType.WRITE
            events.append(Event(index, thread, etype, variable))
    for thread in threads:
        while held[thread]:
            events.append(
                Event(len(events), thread, EventType.RELEASE, held[thread].pop())
            )
    return Trace(events, name="forked-%d" % seed)


def _race_key(report):
    return sorted(sorted(pair) for pair in report.location_pairs())


def _assert_wcp_equivalent(trace):
    detectors = {
        "dense": WCPDetector(clock_backend="dense"),
        "dict": WCPDetector(clock_backend="dict"),
        "legacy": LegacyWCPDetector(),
    }
    reports = {name: det.run(trace) for name, det in detectors.items()}
    reference = reports["legacy"]
    for name in ("dense", "dict"):
        report = reports[name]
        assert _race_key(report) == _race_key(reference), name
        assert report.raw_race_count == reference.raw_race_count, name
        assert report.stats["max_queue_total"] == (
            reference.stats["max_queue_total"]
        ), name
        assert report.stats["max_queue_fraction"] == (
            reference.stats["max_queue_fraction"]
        ), name
    # Timestamps characterise the partial order (Theorem 2); they must be
    # bit-identical across backends and against the legacy detector.
    legacy_clocks = LegacyWCPDetector().timestamps(trace)
    for name in ("dense", "dict"):
        clocks = WCPDetector(clock_backend=name).timestamps(trace)
        assert clocks == legacy_clocks, name


class TestWCPBackendParity:
    @given(traces())
    @settings(**PARITY_SETTINGS)
    def test_random_traces(self, trace):
        _assert_wcp_equivalent(trace)

    def test_fork_join_traces(self):
        # Fork/join is where the epoch fast path must demote itself to the
        # full join comparison (mid-block snapshot leaks); sweep seeds
        # deterministically so failures are reproducible.
        for seed in range(60):
            _assert_wcp_equivalent(random_trace_with_forks(seed))

    def test_fork_join_traces_strict_pseudocode(self):
        for seed in range(20):
            trace = random_trace_with_forks(seed + 500)
            dense = WCPDetector(strict_pseudocode=True).run(trace)
            legacy = LegacyWCPDetector(strict_pseudocode=True).run(trace)
            assert _race_key(dense) == _race_key(legacy)

    def test_malformed_window_fragments_agree(self):
        # Raw trace windows can slice critical sections in half (releases
        # without acquires, overlapping sections): exactly the traces the
        # chain fast path must detect (taint) and handle via the full
        # walk.  Every fragment must still match the legacy detector.
        for seed in range(8):
            trace = random_trace_with_forks(seed + 300, n_events=70)
            for size in (9, 16):
                for window in trace.windows(size):
                    dense = WCPDetector().run(window)
                    legacy = LegacyWCPDetector().run(window)
                    assert _race_key(dense) == _race_key(legacy), (seed, size)

    def test_unpruned_queues_agree(self):
        for seed in range(15):
            trace = random_trace_with_forks(seed + 900)
            dense = WCPDetector(prune_queues=False).run(trace)
            legacy = LegacyWCPDetector(prune_queues=False).run(trace)
            assert _race_key(dense) == _race_key(legacy)
            assert dense.stats["max_queue_total"] == (
                legacy.stats["max_queue_total"]
            )


class TestHBAndFastTrackBackendParity:
    @given(traces())
    @settings(**PARITY_SETTINGS)
    def test_hb_backends_agree(self, trace):
        dense = HBDetector(clock_backend="dense")
        sparse = HBDetector(clock_backend="dict")
        assert _race_key(dense.run(trace)) == _race_key(sparse.run(trace))
        assert dense.timestamps(trace) == sparse.timestamps(trace)

    @given(traces())
    @settings(**PARITY_SETTINGS)
    def test_fasttrack_backends_agree(self, trace):
        dense = FastTrackDetector(clock_backend="dense").run(trace)
        sparse = FastTrackDetector(clock_backend="dict").run(trace)
        assert _race_key(dense) == _race_key(sparse)
        assert dense.stats["fast_path_hits"] == sparse.stats["fast_path_hits"]
        assert dense.stats["slow_path_hits"] == sparse.stats["slow_path_hits"]

    def test_hb_fork_join_traces(self):
        for seed in range(40):
            trace = random_trace_with_forks(seed + 200)
            dense = HBDetector(clock_backend="dense")
            sparse = HBDetector(clock_backend="dict")
            assert _race_key(dense.run(trace)) == _race_key(sparse.run(trace))
            assert dense.timestamps(trace) == sparse.timestamps(trace)


class TestTidStampTrust:
    def test_foreign_tid_stamps_cannot_corrupt_results(self):
        # Stamp events with a deliberately shuffled registry, then feed
        # them through an IterableSource (whose own registry disagrees):
        # the source must re-stamp copies, keeping reports identical to a
        # plain run.
        trace = random_trace_with_forks(7, n_events=60)
        expected = _race_key(WCPDetector().run(trace))

        foreign = ThreadRegistry(["zz", "yy", "xx", "ww", "vv"])
        stamped = [
            Event(e.index, e.thread, e.etype, e.target, e.loc,
                  tid=foreign.intern(e.thread))
            for e in trace
        ]
        original_tids = [e.tid for e in stamped]
        result = RaceEngine().run(
            IterableSource(stamped, name="foreign"), detectors=[WCPDetector()]
        )
        assert _race_key(result["WCP"]) == expected
        # The foreign producer's stamps were not overwritten in place.
        assert [e.tid for e in stamped] == original_tids

    def test_trace_restamps_conflicting_events_with_copies(self):
        registry_a = ThreadRegistry(["t1", "t0"])
        events = [
            Event(0, "t0", EventType.WRITE, "x", tid=registry_a.intern("t0")),
            Event(1, "t1", EventType.WRITE, "x", tid=registry_a.intern("t1")),
        ]
        trace = Trace(events, name="conflict")
        # The new trace's registry interns in first-appearance order, which
        # conflicts with registry_a's numbering: the trace must use copies.
        assert trace[0].tid == trace.registry.lookup("t0")
        assert trace[1].tid == trace.registry.lookup("t1")
        assert events[0].tid == 1 and events[1].tid == 0
        assert WCPDetector().run(trace).count() == 1
