"""Tests for the Causally-Precedes closure and windowed detector."""

import pytest

from repro.core.closure import HBClosure, WCPClosure
from repro.cp import CPClosure, CPDetector
from repro.hb import HBDetector
from repro.core.wcp import WCPDetector
from repro.trace.builder import TraceBuilder
from repro.bench.paper_figures import figure_1b, figure_2a, figure_2b

from conftest import random_trace


class TestCPClosure:
    def test_figure_1b_detected(self):
        # No conflicting accesses inside the critical sections, so CP keeps
        # them unordered and sees the race on y (the paper's Figure 1b).
        assert len(CPClosure(figure_1b()).races()) == 1

    def test_figure_2b_missed(self):
        # CP is agnostic to the order of events inside a critical section,
        # so it misses the predictable race of Figure 2b.
        assert len(CPClosure(figure_2b()).races()) == 0

    def test_figure_2a_no_race(self):
        assert len(CPClosure(figure_2a()).races()) == 0

    def test_rule_a_orders_entire_sections(self):
        # Conflicting accesses in two critical sections order the release
        # before the *acquire*: the y accesses become ordered even though
        # they would race under WCP's weaker rule.
        trace = (
            TraceBuilder()
            .write("t1", "y")
            .acquire("t1", "l").write("t1", "x").release("t1", "l")
            .acquire("t2", "l").read("t2", "y").read("t2", "x").release("t2", "l")
            .build()
        )
        closure = CPClosure(trace)
        write_y, read_y = trace[0], trace[5]
        assert closure.ordered(write_y.index, read_y.index)

    def test_ordered_is_reflexive_and_respects_thread_order(self):
        trace = figure_2b()
        closure = CPClosure(trace)
        assert closure.ordered(2, 2)
        assert closure.ordered(1, 3)      # same thread
        assert not closure.ordered(7, 1)  # backwards

    def test_report_adapter(self):
        report = CPClosure(figure_1b()).report()
        assert report.count() == 1
        assert report.detector_name == "CP-closure"

    @pytest.mark.parametrize("seed", range(10))
    def test_cp_races_between_hb_and_wcp(self, seed):
        # WCP <= CP <= HB as relations, hence
        # races(HB) <= races(CP) <= races(WCP) as sets of location pairs.
        trace = random_trace(seed=seed, n_events=50, n_threads=3, n_locks=2)
        hb_races = {
            frozenset({a.location(), b.location()})
            for a, b in HBClosure(trace).races()
        }
        cp_races = {
            frozenset({a.location(), b.location()})
            for a, b in CPClosure(trace).races()
        }
        wcp_races = {
            frozenset({a.location(), b.location()})
            for a, b in WCPClosure(trace).races()
        }
        assert hb_races <= cp_races <= wcp_races


class TestCPDetector:
    def test_whole_trace_mode(self):
        detector = CPDetector(window_size=None)
        assert detector.run(figure_1b()).count() == 1
        assert detector.run(figure_2b()).count() == 0

    def test_windowed_mode_counts_windows(self):
        trace = random_trace(seed=3, n_events=90)
        report = CPDetector(window_size=30).run(trace)
        assert report.stats["windows"] == float(-(-len(trace) // 30))
        assert report.stats["window_size"] == 30.0

    def test_invalid_window_size(self):
        with pytest.raises(ValueError):
            CPDetector(window_size=0)

    @pytest.mark.parametrize("seed", range(6))
    def test_windowed_cp_never_exceeds_windowed_wcp(self, seed):
        # On identical windows, CP's extra orderings mean its races are a
        # subset of WCP's.  (Comparing against the *whole-trace* analysis
        # would not be meaningful: any fragment-based analysis can flag
        # pairs whose ordering evidence lies outside the fragment.)
        from repro.analysis import WindowedDetector

        trace = random_trace(seed=seed + 20, n_events=80, n_threads=3)
        windowed_cp = set(CPDetector(window_size=25).run(trace).location_pairs())
        windowed_wcp = set(
            WindowedDetector(WCPDetector(), 25).run(trace).location_pairs()
        )
        assert windowed_cp <= windowed_wcp

    def test_windowing_loses_distant_races(self):
        # Two conflicting accesses far apart with unrelated traffic between
        # them: whole-trace CP sees the race, a small window cannot.
        builder = TraceBuilder().write("t1", "z")
        for index in range(40):
            thread = "t%d" % (2 + index % 2)
            builder.acquire(thread, "l%d" % (index % 2))
            builder.read(thread, "pad%d" % (index % 2))
            builder.release(thread, "l%d" % (index % 2))
        builder.write("t2", "z")
        trace = builder.build()
        assert CPDetector(window_size=None).run(trace).count() == 1
        assert CPDetector(window_size=20).run(trace).count() == 0
