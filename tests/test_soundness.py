"""Empirical validation of the paper's soundness theorems on random traces.

Theorem 1 (weak soundness of WCP): if a trace has a WCP-race then it has a
predictable race or a predictable deadlock.  We check the per-pair variant
the detectors rely on in practice -- for the *first* WCP race in the trace
-- and the strong soundness of HB, by searching for explicit witnesses with
the reordering engine.
"""

import pytest
from hypothesis import given, settings, HealthCheck
from hypothesis import strategies as st

from repro.core.closure import WCPClosure
from repro.core.wcp import WCPDetector
from repro.hb import HBDetector
from repro.reordering import find_deadlock_witness, find_race_witness

from conftest import random_trace


def _first_racy_event(trace, ordered):
    """Return (earliest racy second event, its unordered conflicting partners)."""
    best_second = None
    partners = []
    for first, second in trace.conflicting_pairs():
        if ordered(first.index, second.index):
            continue
        if best_second is None or second.index < best_second.index:
            best_second = second
            partners = [first]
        elif second.index == best_second.index:
            partners.append(first)
    return best_second, partners


class TestWeakSoundnessOfWCP:
    @pytest.mark.parametrize("seed", range(20))
    def test_first_wcp_race_has_race_or_deadlock_witness(self, seed):
        # Theorem 1 guarantees that the first WCP race signals a predictable
        # race or deadlock: some unordered partner of the earliest racy
        # event must be witnessable, or the trace must have a predictable
        # deadlock.
        trace = random_trace(
            seed=seed, n_events=30, n_threads=3, n_locks=2, n_vars=2
        )
        closure = WCPClosure(trace)
        second, partners = _first_racy_event(trace, closure.ordered)
        if second is None:
            return
        racy = any(
            find_race_witness(trace, first, second, max_states=300_000).found
            for first in partners
        )
        deadlocky = find_deadlock_witness(trace, max_states=300_000).found
        assert racy or deadlocky, (
            "seed %d: WCP flagged event %r but no race/deadlock witness exists"
            % (seed, second)
        )


class TestStrongSoundnessOfHB:
    @pytest.mark.parametrize("seed", range(20))
    def test_first_hb_race_has_a_race_witness(self, seed):
        # HB is strongly sound for its first race: the earliest racy event
        # has at least one unordered partner it can actually be adjacent to
        # in a correct reordering.
        trace = random_trace(
            seed=seed + 500, n_events=30, n_threads=3, n_locks=2, n_vars=2
        )
        from repro.core.closure import HBClosure

        closure = HBClosure(trace)
        second, partners = _first_racy_event(trace, closure.ordered)
        if second is None:
            return
        assert any(
            find_race_witness(trace, first, second, max_states=300_000).found
            for first in partners
        )


class TestDetectorDeterminism:
    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_wcp_detector_is_deterministic(self, seed):
        trace = random_trace(seed=seed, n_events=40)
        first = WCPDetector().run(trace)
        second = WCPDetector().run(trace)
        assert set(first.location_pairs()) == set(second.location_pairs())

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_hb_races_always_subset_of_wcp_races(self, seed):
        trace = random_trace(seed=seed, n_events=50, n_threads=3)
        hb = set(HBDetector().run(trace).location_pairs())
        wcp = set(WCPDetector().run(trace).location_pairs())
        assert hb <= wcp

    @given(
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=2, max_value=4),
        st.integers(min_value=1, max_value=3),
    )
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_wcp_detector_agrees_with_closure(self, seed, threads, locks):
        trace = random_trace(
            seed=seed, n_events=30, n_threads=threads, n_locks=locks
        )
        detector = set(WCPDetector().run(trace).location_pairs())
        closure = {
            frozenset({a.location(), b.location()})
            for a, b in WCPClosure(trace).races()
        }
        assert detector == closure
