"""Tests for the multi-tenant serve tier (``repro.serve``).

The acceptance properties:

* per-connection isolation -- N simultaneous socket clients, each
  pushing its own interleaved stream, get exactly the counts ``analyze``
  produces for their trace;
* governance is explicit -- an over-quota client is shed with one
  ``error Overloaded: ...; retry after <n>s`` line while in-quota
  clients are unaffected;
* interruption is invisible in the output -- an evicted-and-restored or
  drained-and-resumed session produces a report byte-identical to an
  uninterrupted run (witnesses and distances included).
"""

import asyncio
import json
import logging
import time

import pytest

from repro import (
    EngineConfig,
    IterableSource,
    Overloaded,
    QuotaManager,
    RaceServer,
    ServeMetrics,
    ServeSettings,
    SessionManager,
    StreamSession,
    TenantQuota,
    run_engine,
)
from repro.analysis.export import report_to_dict
from repro.serve.quotas import TokenBucket
from repro.serve.sessions import ANONYMOUS_TENANT, tenant_of
from repro.trace.writers import write_std

from conftest import random_trace


# --------------------------------------------------------------------- #
# Unit layer: quotas
# --------------------------------------------------------------------- #


class TestTokenBucket:
    def test_burst_grants_then_deficit(self):
        bucket = TokenBucket(rate=10, burst=5)
        t0 = 1000.0
        for _ in range(5):
            assert bucket.consume(1, now=t0) == 0.0
        wait = bucket.consume(1, now=t0)
        assert wait == pytest.approx(0.1)

    def test_refill_is_rate_proportional(self):
        bucket = TokenBucket(rate=10, burst=5)
        t0 = 1000.0
        for _ in range(5):
            bucket.consume(1, now=t0)
        # 0.35s later: 3.5 tokens back.
        assert bucket.consume(1, now=t0 + 0.35) == 0.0
        assert bucket.consume(1, now=t0 + 0.35) == 0.0
        assert bucket.consume(1, now=t0 + 0.35) == 0.0
        assert bucket.consume(1, now=t0 + 0.35) > 0.0

    def test_burst_capacity_caps_refill(self):
        bucket = TokenBucket(rate=100, burst=2)
        t0 = 50.0
        bucket.consume(1, now=t0)
        # A long quiet period must not accumulate beyond the burst.
        bucket.consume(0, now=t0 + 60.0)
        assert bucket.tokens == pytest.approx(2.0)

    def test_default_burst_and_validation(self):
        assert TokenBucket(rate=8).burst == 16.0
        assert TokenBucket(rate=0.1).burst == 1.0
        with pytest.raises(ValueError):
            TokenBucket(rate=0)


class TestQuotaManager:
    def test_unlimited_by_default(self):
        quotas = QuotaManager()
        quotas.admit_stream("acme", active_streams=10_000)
        assert quotas.throttle("acme") == 0.0
        quotas.check_memory("acme", 1 << 40)

    def test_stream_ceiling(self):
        quotas = QuotaManager(TenantQuota(max_streams=2))
        quotas.admit_stream("acme", active_streams=1)
        with pytest.raises(Overloaded) as exc:
            quotas.admit_stream("acme", active_streams=2)
        assert "retry after" in str(exc.value)
        assert exc.value.retry_after >= 1

    def test_throttle_small_deficit_sheds_large(self):
        quotas = QuotaManager(
            TenantQuota(events_per_sec=1.0, burst_events=1.0),
            throttle_budget_s=0.5,
        )
        assert quotas.throttle("acme") == 0.0  # the burst token
        # Deficit of one event at 1/s is ~1s > 0.5s budget: shed.
        with pytest.raises(Overloaded) as exc:
            quotas.throttle("acme")
        assert "exceeded 1 events/sec" in str(exc.value)

    def test_throttle_within_budget_returns_sleep(self):
        quotas = QuotaManager(
            TenantQuota(events_per_sec=1000.0, burst_events=1.0),
            throttle_budget_s=2.0,
        )
        assert quotas.throttle("acme") == 0.0
        wait = quotas.throttle("acme")
        assert 0.0 < wait <= 2.0

    def test_memory_quota(self):
        quotas = QuotaManager(TenantQuota(max_detector_bytes=1000))
        quotas.check_memory("acme", 1000)
        with pytest.raises(Overloaded) as exc:
            quotas.check_memory("acme", 1001)
        assert "max 1000" in str(exc.value)

    def test_per_tenant_override(self):
        quotas = QuotaManager(TenantQuota(max_streams=1))
        quotas.set_quota("vip", TenantQuota(max_streams=50))
        quotas.admit_stream("vip", active_streams=10)
        with pytest.raises(Overloaded):
            quotas.admit_stream("basic", active_streams=1)
        assert quotas.quota_for("vip").max_streams == 50
        assert quotas.quota_for("basic").max_streams == 1


# --------------------------------------------------------------------- #
# Unit layer: sessions
# --------------------------------------------------------------------- #


class TestSessions:
    def test_tenant_derivation(self):
        assert tenant_of("acme.stream-7") == "acme"
        assert tenant_of("acme.a.b") == "acme"
        assert tenant_of("solo") == "solo"
        assert tenant_of(None) == ANONYMOUS_TENANT
        assert tenant_of("") == ANONYMOUS_TENANT

    def test_global_ceiling(self):
        manager = SessionManager(max_connections=2)
        a = manager.open_session()
        manager.open_session()
        with pytest.raises(Overloaded) as exc:
            manager.open_session()
        assert "max connections (2)" in str(exc.value)
        manager.release(a)
        manager.open_session()  # freed slot is admitted again

    def test_bind_stream_names_tenant(self):
        manager = SessionManager()
        session = manager.open_session()
        assert session.state == "handshake"
        manager.bind_stream(session, "acme.s1")
        assert session.tenant == "acme"
        assert session.stream_id == "acme.s1"
        assert session.state == "active"

    def test_per_tenant_ceiling_ignores_handshakes(self):
        manager = SessionManager(
            quotas=QuotaManager(TenantQuota(max_streams=1))
        )
        first = manager.open_session()
        manager.bind_stream(first, "acme.a")
        # A second connection still handshaking does not count ...
        second = manager.open_session()
        assert manager.tenant_count("acme") == 1
        # ... but binding it to the same tenant trips the ceiling.
        with pytest.raises(Overloaded):
            manager.bind_stream(second, "acme.b")

    def test_release_is_idempotent(self):
        manager = SessionManager()
        session = manager.open_session()
        manager.release(session)
        manager.release(session)
        assert session.state == "closed"
        assert manager.active_count() == 0

    def test_session_counters_and_dict(self):
        session = StreamSession(7, tenant="acme")
        session.note_events(3, bytes_=120)
        data = session.to_dict()
        assert data["id"] == 7
        assert data["events"] == 3
        assert data["bytes"] == 120
        assert data["state"] == "handshake"
        assert session.idle_for() < 1.0


# --------------------------------------------------------------------- #
# Unit layer: metrics
# --------------------------------------------------------------------- #


class TestServeMetrics:
    def test_counters_and_rendering(self):
        metrics = ServeMetrics()
        metrics.record_accept("acme")
        metrics.count("completed")
        metrics.count("shed", tenant="acme")
        metrics.add_events("acme", 10, bytes_=500)
        lines = metrics.render_lines()
        assert lines[-1] == "done stats"
        assert "accepted 1" in lines
        assert "completed 1" in lines
        assert "shed 1" in lines
        assert any(
            line.startswith("tenant acme events 10 bytes 500 streams 1 shed 1")
            for line in lines
        )

    def test_detector_fold_and_json(self):
        metrics = ServeMetrics()
        trace = random_trace(seed=2, n_events=40)
        result = run_engine(
            trace, detectors=["wcp"],
            config=EngineConfig().with_cost_accounting(True),
        )
        metrics.record_result(result)
        metrics.record_result(result)
        data = metrics.to_dict()
        assert data["detectors"]["WCP"]["streams"] == 2
        assert data["detectors"]["WCP"]["events"] == 2 * result.events
        assert data["counters"]["accepted"] == 0
        assert data["latency"]["samples"] == 0
        json.dumps(data)  # the --metrics-port body must be serialisable

    def test_latency_quantiles(self):
        metrics = ServeMetrics(latency_samples=100)
        assert metrics.latency_quantile(0.99) is None
        for i in range(1, 101):
            metrics.observe_latency(i / 1000.0)
        assert metrics.latency_quantile(0.50) == pytest.approx(0.050, abs=0.002)
        assert metrics.latency_quantile(0.99) == pytest.approx(0.099, abs=0.002)
        rendered = metrics.render_lines()
        assert any(line.startswith("latency_p99_us") for line in rendered)


# --------------------------------------------------------------------- #
# Integration layer: RaceServer over real sockets
# --------------------------------------------------------------------- #


def _expected_lines(trace, detectors=("wcp", "hb")):
    """The exact wire reply ``analyze`` semantics dictate for ``trace``."""
    result = run_engine(
        IterableSource(iter(trace), name="x"), detectors=list(detectors)
    )
    lines = [
        "%s %d %d" % (name, report.count(), report.raw_race_count)
        for name, report in result.items()
    ]
    lines.append("done %d" % result.events)
    return lines


def _trace_lines(trace):
    return write_std(trace).strip("\n").split("\n")


async def _start_server(settings=None, detectors=("wcp", "hb"), config=None,
                        on_session_end=None):
    server = RaceServer(
        list(detectors),
        config=config,
        settings=settings or ServeSettings(port=0),
        on_session_end=on_session_end,
    )
    await server.start()
    return server


def _port(server):
    return server.listener.sockets[0].getsockname()[1]


async def _connect(server):
    return await asyncio.open_connection("127.0.0.1", _port(server))


async def _roundtrip(server, payload, chunks=1, delay=0.0):
    """Push ``payload`` over one connection (optionally in slices) and
    return the full response text."""
    reader, writer = await _connect(server)
    data = payload.encode("utf-8")
    step = max(1, len(data) // chunks)
    try:
        for start in range(0, len(data), step):
            writer.write(data[start:start + step])
            await writer.drain()
            if delay:
                await asyncio.sleep(delay)
        writer.write_eof()
    except (ConnectionResetError, BrokenPipeError):
        pass  # the server may have shed and closed already
    response = (await reader.read()).decode("utf-8")
    writer.close()
    return response


async def _until(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while not predicate():
        assert time.monotonic() < deadline, "condition not met in time"
        await asyncio.sleep(0.01)


def _race_fields(report_dict):
    """report_to_dict minus the timing noise: the byte-comparable part."""
    data = dict(report_dict)
    data.pop("stats")
    return data


class TestConcurrentClients:
    def test_simultaneous_clients_isolated_and_match_analyze(self):
        """Eight clients, each interleaving its pushes with the others,
        all get exactly the counts a standalone analyze produces."""
        traces = [
            random_trace(seed=seed, n_events=80, n_threads=4, n_vars=3)
            for seed in range(8)
        ]
        expected = [_expected_lines(trace) for trace in traces]

        async def run():
            server = await _start_server()
            try:
                responses = await asyncio.gather(*[
                    _roundtrip(server, write_std(trace), chunks=10,
                               delay=0.002)
                    for trace in traces
                ])
            finally:
                await server.close()
            return responses, server

        responses, server = asyncio.run(run())
        for response, lines in zip(responses, expected):
            assert response.strip().splitlines() == lines
        assert server.metrics.counters["accepted"] == 8
        assert server.metrics.counters["completed"] == 8
        assert server.metrics.tenants["-"]["events"] == sum(
            len(trace) for trace in traces
        )

    def test_tenants_accounted_separately(self):
        trace = random_trace(seed=3, n_events=30)
        payload_a = "# stream-id: acme.s1\n" + write_std(trace)
        payload_b = "# stream-id: globex.s1\n" + write_std(trace)

        async def run():
            server = await _start_server()
            try:
                await asyncio.gather(
                    _roundtrip(server, payload_a),
                    _roundtrip(server, payload_b),
                )
                return server.metrics.to_dict(server.manager)
            finally:
                await server.close()

        data = asyncio.run(run())
        assert set(data["tenants"]) == {"acme", "globex"}
        assert data["tenants"]["acme"]["events"] == len(trace)
        assert data["tenants"]["globex"]["events"] == len(trace)
        assert data["active_sessions"] == 0


class TestQuotaEnforcement:
    def test_global_connection_ceiling_sheds_extra(self):
        trace = random_trace(seed=5, n_events=30)

        async def run():
            server = await _start_server(
                settings=ServeSettings(port=0, max_connections=1)
            )
            try:
                # First client holds the only slot mid-handshake.
                reader, writer = await _connect(server)
                extra_reader, extra_writer = await _connect(server)
                shed = (await extra_reader.readline()).decode("utf-8")
                extra_writer.close()
                # The held client still completes normally afterwards.
                writer.write(write_std(trace).encode("utf-8"))
                writer.write_eof()
                await writer.drain()
                response = (await reader.read()).decode("utf-8")
                writer.close()
            finally:
                await server.close()
            return shed, response, server.metrics.counters

        shed, response, counters = asyncio.run(run())
        assert shed.startswith("error Overloaded: server at max connections")
        assert "retry after" in shed
        assert response.strip().splitlines() == _expected_lines(trace)
        assert counters["rejected"] == 1
        assert counters["completed"] == 1

    def test_per_tenant_stream_ceiling(self):
        async def run():
            server = await _start_server(
                settings=ServeSettings(
                    port=0,
                    quotas=QuotaManager(TenantQuota(max_streams=1)),
                )
            )
            try:
                reader, writer = await _connect(server)
                writer.write(b"# stream-id: acme.first\n")
                await writer.drain()
                await _until(
                    lambda: server.manager.tenant_count("acme") == 1
                )
                second = await _roundtrip(
                    server, "# stream-id: acme.second\nt1|w(x)\n"
                )
                writer.write_eof()
                await reader.read()
                writer.close()
            finally:
                await server.close()
            return second

        second = asyncio.run(run())
        assert second.startswith("error Overloaded: tenant 'acme'")
        assert "retry after" in second

    def test_rate_quota_sheds_noisy_tenant_in_quota_unaffected(self):
        """The acceptance property: an over-quota client is shed with an
        explicit error while an in-quota client on the same server gets
        byte-exact analyze results."""
        calm_trace = random_trace(seed=6, n_events=60)
        noisy_payload = "# stream-id: noisy.a\n" + (
            "t1|w(x)|spam:1\n" * 200
        )
        calm_payload = "# stream-id: calm.a\n" + write_std(calm_trace)

        async def run():
            quotas = QuotaManager(throttle_budget_s=0.01)
            quotas.set_quota(
                "noisy", TenantQuota(events_per_sec=5.0, burst_events=1.0)
            )
            server = await _start_server(
                settings=ServeSettings(port=0, quotas=quotas)
            )
            try:
                noisy, calm = await asyncio.gather(
                    _roundtrip(server, noisy_payload),
                    _roundtrip(server, calm_payload, chunks=5, delay=0.005),
                )
            finally:
                await server.close()
            return noisy, calm, server.metrics

        noisy, calm, metrics = asyncio.run(run())
        assert noisy.startswith("error Overloaded: tenant 'noisy' exceeded")
        assert "retry after" in noisy
        assert calm.strip().splitlines() == _expected_lines(calm_trace)
        assert metrics.counters["shed"] == 1
        assert metrics.tenants["noisy"]["shed"] == 1
        assert metrics.tenants["calm"]["shed"] == 0

    def test_memory_quota_sheds_growing_stream(self):
        trace = random_trace(seed=7, n_events=64, n_threads=4, n_vars=6)
        payload = "# stream-id: tiny.a\n" + write_std(trace)

        async def run():
            settings = ServeSettings(
                port=0,
                quotas=QuotaManager(TenantQuota(max_detector_bytes=1)),
                mem_check_every=16,
            )
            server = await _start_server(settings=settings)
            try:
                return await _roundtrip(server, payload), server.metrics
            finally:
                await server.close()

        response, metrics = asyncio.run(run())
        assert response.startswith("error Overloaded: detector state grew")
        assert metrics.counters["shed"] == 1


class TestObservability:
    def test_stats_inband_query(self):
        trace = random_trace(seed=8, n_events=30)

        async def run():
            server = await _start_server()
            try:
                await _roundtrip(server, write_std(trace))
                return await _roundtrip(server, "/stats\n")
            finally:
                await server.close()

        response = asyncio.run(run())
        lines = response.strip().splitlines()
        assert lines[0].startswith("uptime_s ")
        assert lines[-1] == "done stats"
        assert "completed 1" in lines
        assert any(line.startswith("tenant - events %d" % len(trace))
                   for line in lines)
        assert any(line.startswith("detector WCP ") for line in lines)

    def test_metrics_http_endpoint(self):
        trace = random_trace(seed=9, n_events=30)

        async def http(address, request):
            reader, writer = await asyncio.open_connection(*address)
            writer.write(request)
            await writer.drain()
            raw = await reader.read()
            writer.close()
            head, _, body = raw.partition(b"\r\n\r\n")
            return head.decode("ascii").splitlines()[0], body

        async def run():
            server = await _start_server(
                settings=ServeSettings(port=0, metrics_port=0)
            )
            try:
                assert server.metrics_address is not None
                await _roundtrip(server, write_std(trace))
                status, body = await http(
                    server.metrics_address,
                    b"GET /stats HTTP/1.1\r\nHost: x\r\n\r\n",
                )
                refused, _ = await http(
                    server.metrics_address,
                    b"POST /stats HTTP/1.1\r\nHost: x\r\n\r\n",
                )
            finally:
                await server.close()
            return status, body, refused

        status, body, refused = asyncio.run(run())
        assert status == "HTTP/1.1 200 OK"
        data = json.loads(body)
        assert data["counters"]["completed"] == 1
        assert data["tenants"]["-"]["events"] == len(trace)
        assert data["active_sessions"] == 0
        assert refused.startswith("HTTP/1.1 405")

    def test_structured_event_log(self, caplog):
        trace = random_trace(seed=10, n_events=20)
        payload = "# stream-id: acme.logged\n" + write_std(trace)

        async def run():
            server = await _start_server()
            try:
                await _roundtrip(server, payload)
            finally:
                await server.close()

        with caplog.at_level(logging.INFO, logger="repro.serve"):
            asyncio.run(run())
        messages = [record.getMessage() for record in caplog.records]
        assert any(
            message.startswith("accept ") and "tenant=acme" in message
            for message in messages
        )
        assert any(message.startswith("complete ") for message in messages)

    def test_abrupt_disconnect_recorded_cleanly(self):
        import socket
        import struct

        async def run():
            server = await _start_server()
            try:
                reader, writer = await _connect(server)
                writer.write(b"t1|w(x)|a:1\nt1|w(x)|a:2\n")
                await writer.drain()
                await _until(lambda: server.manager.queue_depth() == 0
                             and server.metrics.tenants)
                # SO_LINGER(0) + abort sends a genuine RST, not a FIN --
                # the rude case a plain close() cannot reproduce.
                writer.get_extra_info("socket").setsockopt(
                    socket.SOL_SOCKET, socket.SO_LINGER,
                    struct.pack("ii", 1, 0),
                )
                writer.transport.abort()
                await _until(
                    lambda: server.metrics.counters["disconnected"] >= 1
                )
            finally:
                await server.close()
            return server.metrics.counters, server.manager.active_count()

        counters, active = asyncio.run(run())
        assert counters["disconnected"] >= 1
        assert counters["completed"] == 0
        assert active == 0


class TestEvictionAndDrain:
    """Interruption must be invisible in the report: the acceptance
    criterion is byte-identical output versus an uninterrupted run."""

    def _evict_settings(self, directory):
        return ServeSettings(
            port=0,
            checkpoint_dir=str(directory),
            idle_poll_s=0.02,
            idle_evict_after_s=0.05,
        )

    def test_evicted_and_restored_report_byte_identical(self, tmp_path):
        trace = random_trace(seed=11, n_events=60, n_threads=4)
        lines = _trace_lines(trace)
        half = len(lines) // 2
        captured = []

        async def interrupted():
            server = await _start_server(
                settings=self._evict_settings(tmp_path / "ev"),
                on_session_end=lambda session, result:
                    captured.append((session, result)),
            )
            try:
                reader, writer = await _connect(server)
                writer.write(b"# stream-id: acme.ev\n")
                await writer.drain()
                assert (await reader.readline()) == b"resume 0\n"
                writer.write(("\n".join(lines[:half]) + "\n").encode())
                await writer.drain()
                # Go quiet until the session is checkpointed out.
                await _until(
                    lambda: server.metrics.counters["evicted"] >= 1
                )
                writer.write(("\n".join(lines[half:]) + "\n").encode())
                writer.write_eof()
                await writer.drain()
                response = (await reader.read()).decode("utf-8")
                writer.close()
            finally:
                await server.close()
            return response

        async def uninterrupted():
            server = await _start_server(
                settings=ServeSettings(
                    port=0, checkpoint_dir=str(tmp_path / "base")
                ),
                on_session_end=lambda session, result:
                    captured.append((session, result)),
            )
            try:
                return await _roundtrip(
                    server, "# stream-id: acme.ev\n" + write_std(trace)
                )
            finally:
                await server.close()

        response = asyncio.run(interrupted())
        baseline = asyncio.run(uninterrupted())
        assert response == baseline.replace("resume 0\n", "", 1)

        (evicted_session, evicted_result), (_, base_result) = captured
        assert evicted_session.evictions == 1
        assert evicted_session.restores == 1
        # Byte-identical reports: witnesses, distances, counts.
        for name in evicted_result.keys():
            assert _race_fields(report_to_dict(evicted_result[name])) == \
                _race_fields(report_to_dict(base_result[name]))
        # Clean completion removed the stream's recovery state.
        assert not (tmp_path / "ev" / "acme.ev").exists()

    def test_eof_while_evicted_restores_for_the_report(self, tmp_path):
        trace = random_trace(seed=12, n_events=40)

        async def run():
            server = await _start_server(
                settings=self._evict_settings(tmp_path)
            )
            try:
                reader, writer = await _connect(server)
                writer.write(
                    b"# stream-id: acme.eof\n" + write_std(trace).encode()
                )
                await writer.drain()
                await reader.readline()  # resume 0
                await _until(
                    lambda: server.metrics.counters["evicted"] >= 1
                )
                writer.write_eof()
                response = (await reader.read()).decode("utf-8")
                writer.close()
            finally:
                await server.close()
            return response, server.metrics.counters

        response, counters = asyncio.run(run())
        assert response.strip().splitlines() == _expected_lines(trace)
        assert counters["evicted"] == 1
        assert counters["restored"] == 1

    def test_drain_and_reattach_report_byte_identical(self, tmp_path):
        """SIGTERM semantics end to end: the drained server checkpoints
        the live session and advertises ``resume <offset>``; replaying
        from the offset against a fresh instance yields the exact
        uninterrupted report."""
        trace = random_trace(seed=13, n_events=60, n_threads=4)
        lines = _trace_lines(trace)
        half = len(lines) // 2
        captured = []

        def capture(session, result):
            captured.append((session, result))

        async def first_instance():
            server = await _start_server(
                settings=self._evict_settings(tmp_path),
                on_session_end=capture,
            )
            try:
                reader, writer = await _connect(server)
                writer.write(b"# stream-id: acme.dr\n")
                await writer.drain()
                assert (await reader.readline()) == b"resume 0\n"
                writer.write(("\n".join(lines[:half]) + "\n").encode())
                await writer.drain()
                await _until(
                    lambda: server.manager.live()
                    and server.manager.live()[0].events == half
                )
                # What SIGTERM invokes (the handler is request_drain).
                server.request_drain()
                resume = (await reader.readline()).decode("utf-8")
                assert (await reader.read()) == b""  # server closed us
                writer.close()
                await server.wait_closed()
            finally:
                await server.close()
            return resume

        async def second_instance(offset):
            server = await _start_server(
                settings=self._evict_settings(tmp_path),
                on_session_end=capture,
            )
            try:
                reader, writer = await _connect(server)
                writer.write(b"# stream-id: acme.dr\n")
                await writer.drain()
                resume = (await reader.readline()).decode("utf-8")
                assert resume == "resume %d\n" % offset
                writer.write(("\n".join(lines[offset:]) + "\n").encode())
                writer.write_eof()
                await writer.drain()
                response = (await reader.read()).decode("utf-8")
                writer.close()
            finally:
                await server.close()
            return response

        async def uninterrupted():
            server = await _start_server(
                settings=ServeSettings(
                    port=0, checkpoint_dir=str(tmp_path / "base")
                ),
                on_session_end=capture,
            )
            try:
                return await _roundtrip(
                    server, "# stream-id: acme.dr\n" + write_std(trace)
                )
            finally:
                await server.close()

        resume = asyncio.run(first_instance())
        assert resume.startswith("resume ")
        offset = int(resume.split()[1])
        assert offset == half

        response = asyncio.run(second_instance(offset))
        baseline = asyncio.run(uninterrupted())
        # second_instance consumed its "resume <offset>" line already;
        # strip the baseline's "resume 0" for the byte comparison.
        assert response == baseline.split("\n", 1)[1]

        drained = captured[0][0]
        assert drained.state in ("draining", "closed")
        resumed_result = captured[1][1]
        base_result = captured[2][1]
        assert resumed_result.events == len(trace)
        for name in resumed_result.keys():
            assert _race_fields(report_to_dict(resumed_result[name])) == \
                _race_fields(report_to_dict(base_result[name]))

    def test_connection_during_drain_is_refused(self, tmp_path):
        async def run():
            server = await _start_server(
                settings=ServeSettings(port=0)
            )
            port = _port(server)
            server.request_drain()
            try:
                try:
                    reader, writer = await asyncio.open_connection(
                        "127.0.0.1", port
                    )
                except ConnectionError:
                    return "refused"
                reply = (await reader.read()).decode("utf-8")
                writer.close()
                return reply
            finally:
                await server.close()

        reply = asyncio.run(run())
        # Either the closed listener refuses outright or the in-flight
        # accept answers with the explicit draining error.
        assert reply == "refused" or reply.startswith("error Draining:")


# --------------------------------------------------------------------- #
# CLI layer
# --------------------------------------------------------------------- #


class TestServeCli:
    def test_new_serve_flags_parse(self):
        from repro.cli import _build_parser

        args = _build_parser().parse_args([
            "serve", "--port", "0",
            "--max-connections", "8",
            "--max-streams-per-tenant", "2",
            "--max-events-per-sec", "1000",
            "--burst-events", "50",
            "--max-detector-bytes", "1048576",
            "--throttle-budget", "0.25",
            "--idle-evict-after", "30",
            "--metrics-port", "0",
            "--log-level", "info",
        ])
        assert args.max_connections == 8
        assert args.max_streams_per_tenant == 2
        assert args.max_events_per_sec == 1000.0
        assert args.throttle_budget == 0.25
        assert args.idle_evict_after == 30.0
        assert args.log_level == "info"

    def test_serve_flags_build_a_governed_server(self):
        from repro.cli import _build_parser, _make_serve_server

        args = _build_parser().parse_args([
            "serve", "--port", "0", "--max-connections", "4",
            "--max-streams-per-tenant", "2", "--max-events-per-sec", "100",
            "--throttle-budget", "0.5",
        ])
        server = _make_serve_server(args)
        assert server.settings.max_connections == 4
        assert server.settings.quotas.throttle_budget_s == 0.5
        quota = server.settings.quotas.quota_for("anyone")
        assert quota.max_streams == 2
        assert quota.events_per_sec == 100.0

    def test_stats_detectors_cost_table(self, tmp_path, capsys):
        from repro.cli import main

        trace = random_trace(seed=14, n_events=40)
        path = tmp_path / "t.std"
        path.write_text(write_std(trace))
        assert main(["stats", str(path), "--detectors", "wcp,hb"]) == 0
        out = capsys.readouterr().out
        assert "per-detector cost over %d event(s)" % len(trace) in out
        assert "WCP" in out and "HB" in out
        assert "state(B)" in out

    def test_stats_detectors_rejects_unknown(self, tmp_path, capsys):
        from repro.cli import main

        trace = random_trace(seed=15, n_events=10)
        path = tmp_path / "t.std"
        path.write_text(write_std(trace))
        assert main(["stats", str(path), "--detectors", "quantum"]) == 2


# --------------------------------------------------------------------- #
# Fault injection: client disconnects and supervision observability
# --------------------------------------------------------------------- #


class TestServeFaultInjection:
    def test_injected_midstream_disconnect_is_governed(self):
        """A connection dropped mid-stream (injected deterministically)
        must finish with the governed `disconnected` counter -- never a
        hang or a traceback-shaped reply."""
        from repro import Fault, FaultPlan

        trace = random_trace(seed=71, n_events=60, n_threads=3)
        plan = FaultPlan([Fault.disconnect(20)])

        async def run():
            server = await _start_server(
                settings=ServeSettings(port=0, fault_plan=plan)
            )
            try:
                await _roundtrip(server, write_std(trace))
                await _until(
                    lambda: server.metrics.counters["disconnected"] >= 1
                )
            finally:
                await server.close()
            return server.metrics.counters

        counters = asyncio.run(run())
        assert counters["disconnected"] == 1
        assert counters["completed"] == 0
        assert counters["errored"] == 0
        assert not plan.unfired()

    def test_midline_client_close_counts_as_disconnect(self):
        """A client that dies mid-line (no trailing newline before EOF)
        is a disconnect, not a parse error."""

        async def run():
            server = await _start_server()
            try:
                reader, writer = await _connect(server)
                # Two whole events, then a partial line and EOF.
                writer.write(b"t1|w(x)|a:1\nt1|w(x)|a:2\nt2|w(")
                await writer.drain()
                writer.write_eof()
                await _until(
                    lambda: server.metrics.counters["disconnected"] >= 1
                )
                writer.close()
            finally:
                await server.close()
            return server.metrics.counters

        counters = asyncio.run(run())
        assert counters["disconnected"] == 1
        assert counters["completed"] == 0
        assert counters["errored"] == 0

    def test_stats_surface_supervision_counters(self):
        trace = random_trace(seed=73, n_events=30)

        async def run():
            server = await _start_server()
            try:
                await _roundtrip(server, write_std(trace))
                stats = await _roundtrip(server, "/stats\n")
                data = server.metrics.to_dict(server.manager)
            finally:
                await server.close()
            return stats, data

        stats, data = asyncio.run(run())
        assert "worker_restarts 0" in stats.splitlines()
        assert "shutdown_escalations 0" in stats.splitlines()
        assert data["supervision"] == {
            "worker_restarts": 0, "heartbeat_timeouts": 0,
            "snapshot_fallbacks": 0, "shutdown_escalations": 0,
            "coordinator_restarts": 0,
        }

    def test_metrics_fold_supervision_off_results(self):
        metrics = ServeMetrics()

        class _Result:
            events = 10
            supervision = {
                "worker_restarts": 2, "heartbeat_timeouts": 1,
                "snapshot_fallbacks": 0, "shutdown_escalations": 3,
                "restarts_by_shard": {0: 2},
            }

            def items(self):
                return []

        metrics.record_result(_Result())
        metrics.record_result(_Result())
        assert metrics.supervision["worker_restarts"] == 4
        assert metrics.supervision["heartbeat_timeouts"] == 2
        assert metrics.supervision["shutdown_escalations"] == 6
        lines = metrics.render_lines()
        assert "worker_restarts 4" in lines
        assert metrics.to_dict()["supervision"]["worker_restarts"] == 4


# --------------------------------------------------------------------- #
# Handshake timeout (serve --handshake-timeout)
# --------------------------------------------------------------------- #


class TestHandshakeTimeout:
    def test_silent_connection_is_bounded_and_counted(self):
        """A connection that never sends its first line is answered with
        one actionable error line (no traceback) and counted."""

        async def run():
            server = await _start_server(
                settings=ServeSettings(port=0, handshake_timeout_s=0.2),
            )
            reader, writer = await _connect(server)
            response = (await reader.read()).decode("utf-8")
            writer.close()
            assert response.startswith("error Timeout: no handshake line")
            await _until(
                lambda: server.metrics.counters["handshake_timeout"] == 1
            )
            assert "handshake_timeout 1" in server.metrics.render_lines()
            await server.close()

        asyncio.run(run())

    def test_prompt_first_line_is_unaffected(self):
        async def run():
            server = await _start_server(
                settings=ServeSettings(port=0, handshake_timeout_s=5.0),
            )
            trace = random_trace(seed=3, n_events=40, n_threads=3, n_vars=3)
            response = await _roundtrip(server, write_std(trace))
            assert "done" in response
            assert server.metrics.counters["handshake_timeout"] == 0
            await server.close()

        asyncio.run(run())
