"""Tests for the top-level API and the command-line interface."""

import pytest

from repro import (
    CPDetector,
    HBDetector,
    MCMPredictor,
    WCPDetector,
    available_detectors,
    compare_detectors,
    detect_races,
    make_detector,
)
from repro.cli import main
from repro.trace.writers import dump_trace

from conftest import random_trace


class TestApi:
    def test_available_detectors(self):
        names = available_detectors()
        assert {"wcp", "hb", "fasttrack", "cp", "eraser", "mcm"} == set(names)

    def test_make_detector_by_name(self):
        assert isinstance(make_detector("wcp"), WCPDetector)
        assert isinstance(make_detector("HB"), HBDetector)
        assert isinstance(make_detector("cp", window_size=100), CPDetector)
        assert isinstance(make_detector("mcm", window_size=10), MCMPredictor)

    def test_make_detector_unknown(self):
        with pytest.raises(ValueError):
            make_detector("quantum")

    def test_detect_races_default_is_wcp(self, simple_race_trace):
        report = detect_races(simple_race_trace)
        assert report.detector_name == "WCP"
        assert report.count() == 1

    def test_detect_races_by_name_and_instance(self, simple_race_trace):
        assert detect_races(simple_race_trace, "hb").count() == 1
        assert detect_races(simple_race_trace, HBDetector()).count() == 1

    def test_compare_detectors_default(self, simple_race_trace):
        reports = compare_detectors(simple_race_trace)
        assert set(reports) == {"WCP", "HB"}

    def test_compare_detectors_custom(self, simple_race_trace):
        reports = compare_detectors(simple_race_trace, ["eraser", WCPDetector()])
        assert set(reports) == {"Eraser", "WCP"}


class TestCli:
    def _write_trace(self, tmp_path, racy=True):
        trace = random_trace(seed=3 if racy else 4, n_events=30)
        return dump_trace(trace, tmp_path / "trace.std")

    def test_analyze_command(self, tmp_path, capsys):
        path = self._write_trace(tmp_path)
        code = main(["analyze", str(path), "--detector", "hb"])
        output = capsys.readouterr().out
        assert "HB" in output
        assert code in (0, 1)

    def test_analyze_with_window(self, tmp_path, capsys):
        path = self._write_trace(tmp_path)
        main(["analyze", str(path), "--detector", "wcp", "--window", "10"])
        assert "WCP[w=10]" in capsys.readouterr().out

    def test_bench_command(self, capsys):
        code = main([
            "bench", "--benchmark", "account", "--benchmark", "raytracer",
            "--scale", "0.05", "--detectors", "wcp,hb",
        ])
        output = capsys.readouterr().out
        assert code == 0
        assert "account" in output and "raytracer" in output
        assert "WCP races" in output

    def test_bench_unknown_benchmark(self, capsys):
        assert main(["bench", "--benchmark", "nope"]) == 2

    def test_generate_command(self, tmp_path, capsys):
        target = tmp_path / "out.std"
        code = main([
            "generate", "account", "-o", str(target), "--scale", "1.0",
        ])
        assert code == 0
        assert target.exists()
        assert "wrote" in capsys.readouterr().out

    def test_generate_then_analyze_round_trip(self, tmp_path, capsys):
        target = tmp_path / "bench.std"
        main(["generate", "pingpong", "-o", str(target)])
        code = main(["analyze", str(target), "--detector", "wcp"])
        assert code == 1  # races found
        assert "distinct race pair" in capsys.readouterr().out
