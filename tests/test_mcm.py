"""Tests for the maximal-causal-model (RVPredict-like) predictor."""

import pytest

from repro.hb import HBDetector
from repro.core.wcp import WCPDetector
from repro.mcm import CandidateRace, MCMPredictor, OrderingSolver, SolverOutcome, collect_candidates
from repro.trace.builder import TraceBuilder
from repro.bench.paper_figures import figure_1a, figure_1b, figure_2b

from conftest import random_trace


class TestCandidateCollection:
    def test_candidates_are_conflicting_pairs(self):
        trace = figure_2b()
        candidates = collect_candidates(trace)
        assert all(c.first.conflicts_with(c.second) for c in candidates)
        variables = {c.first.variable for c in candidates}
        assert variables == {"x", "y"}

    def test_deduplication_by_location_pair(self):
        builder = TraceBuilder()
        for _ in range(5):
            builder.write("t1", "v", loc="A")
            builder.write("t2", "v", loc="B")
        candidates = collect_candidates(builder.build(), per_location_limit=2)
        assert len(candidates) == 2
        assert all(c.location_pair == frozenset({"A", "B"}) for c in candidates)

    def test_candidates_sorted_by_span(self):
        trace = (
            TraceBuilder()
            .write("t1", "far", loc="far1")
            .write("t1", "near", loc="near1")
            .write("t2", "near", loc="near2")
            .write("t2", "far", loc="far2")
            .build()
        )
        candidates = collect_candidates(trace)
        assert candidates[0].location_pair == frozenset({"near1", "near2"})

    def test_candidate_repr_and_span(self):
        trace = TraceBuilder().write("t1", "v").write("t2", "v").build()
        candidate = CandidateRace(trace[1], trace[0])
        assert candidate.first.index == 0
        assert candidate.span == 1
        assert "CandidateRace" in repr(candidate)


class TestOrderingSolver:
    def test_witnessed_outcome(self, simple_race_trace):
        solver = OrderingSolver(simple_race_trace)
        candidate = CandidateRace(simple_race_trace[0], simple_race_trace[1])
        assert solver.query(candidate) is SolverOutcome.WITNESSED
        assert solver.witnessed == 1

    def test_infeasible_outcome(self):
        trace = figure_1a()
        solver = OrderingSolver(trace)
        candidates = collect_candidates(trace)
        outcomes = {solver.query(candidate) for candidate in candidates}
        assert outcomes == {SolverOutcome.INFEASIBLE}

    def test_timeout_outcome(self, simple_race_trace):
        solver = OrderingSolver(simple_race_trace, time_budget_s=0.0)
        candidate = CandidateRace(simple_race_trace[0], simple_race_trace[1])
        assert solver.budget_exhausted()
        assert solver.query(candidate) is SolverOutcome.TIMEOUT
        assert solver.timeouts == 1

    def test_remaining_time_unbounded(self, simple_race_trace):
        assert OrderingSolver(simple_race_trace).remaining_time() is None


class TestMCMPredictor:
    def test_finds_hb_invisible_race_in_window(self):
        # Figure 2b's race is invisible to HB but predictable; the maximal
        # predictor must find it when the window covers the whole trace.
        report = MCMPredictor(window_size=100).run(figure_2b())
        assert report.count() == 1
        assert HBDetector().run(figure_2b()).count() == 0

    def test_no_false_positive_on_figure_1a(self):
        assert MCMPredictor(window_size=100).run(figure_1a()).count() == 0

    def test_misses_cross_window_races(self):
        # A race whose accesses land in different windows is invisible.
        builder = TraceBuilder().write("t1", "z", loc="first")
        for index in range(30):
            builder.write("t2", "pad%d" % index)
        builder.write("t3", "z", loc="second")
        trace = builder.build()
        whole = MCMPredictor(window_size=100).run(trace)
        windowed = MCMPredictor(window_size=10).run(trace)
        assert whole.count() == 1
        assert windowed.count() == 0
        assert windowed.stats["windows"] >= 3

    def test_window_size_must_be_positive(self):
        with pytest.raises(ValueError):
            MCMPredictor(window_size=0)

    def test_statistics_populated(self):
        report = MCMPredictor(window_size=50).run(figure_1b())
        for key in ("windows", "candidates", "candidates_witnessed", "window_size"):
            assert key in report.stats

    def test_zero_timeout_reports_nothing(self, simple_race_trace):
        report = MCMPredictor(window_size=10, solver_timeout_s=0.0).run(
            simple_race_trace
        )
        assert report.count() == 0
        assert report.stats["windows_timed_out"] >= 1.0

    @pytest.mark.parametrize("seed", range(5))
    def test_finds_at_least_the_hb_races_on_random_traces(self, seed):
        # HB is strongly sound, so every HB race is a predictable race; a
        # maximal predictor whose window spans the whole trace must witness
        # all of them (it typically finds more, like Figure 2b's race).
        trace = random_trace(seed=seed, n_events=40, n_threads=3)
        predicted = MCMPredictor(
            window_size=1000, max_states_per_query=200_000
        ).run(trace)
        hb = HBDetector().run(trace)
        if hb.has_race():
            assert predicted.has_race()
