"""Unit and property tests for ThreadRegistry and DenseClock.

DenseClock must be observably equivalent to the dict-based VectorClock
under every operation (the detectors treat the two interchangeably via
``clock_backend``), and the registry conversions must be lossless.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.vectorclock import CLOCK_BACKENDS, clock_class
from repro.vectorclock.clock import VectorClock
from repro.vectorclock.dense import DenseClock
from repro.vectorclock.registry import ThreadRegistry


class TestThreadRegistry:
    def test_intern_is_dense_and_stable(self):
        registry = ThreadRegistry()
        assert registry.intern("t1") == 0
        assert registry.intern("t2") == 1
        assert registry.intern("t1") == 0
        assert len(registry) == 2
        assert registry.names() == ["t1", "t2"]

    def test_lookup_and_name_of(self):
        registry = ThreadRegistry(["main", "worker"])
        assert registry.lookup("worker") == 1
        assert registry.lookup("absent") is None
        assert registry.name_of(0) == "main"
        assert "main" in registry
        assert list(registry) == ["main", "worker"]

    def test_interning_is_order_deterministic(self):
        names = ["b", "a", "c", "a", "b"]
        first = ThreadRegistry()
        second = ThreadRegistry()
        assert [first.intern(n) for n in names] == [
            second.intern(n) for n in names
        ]

    def test_clock_round_trip_is_lossless(self):
        registry = ThreadRegistry()
        public = VectorClock({"t1": 3, "t9": 7})
        dense = registry.to_dense(public)
        assert isinstance(dense, DenseClock)
        assert registry.to_public(dense) == public

    def test_to_public_accepts_tid_keyed_vectorclock(self):
        registry = ThreadRegistry(["t1", "t2"])
        internal = VectorClock({0: 2, 1: 5})
        assert registry.to_public(internal) == VectorClock({"t1": 2, "t2": 5})


class TestDenseClockBasics:
    def test_bottom(self):
        assert DenseClock.bottom().is_bottom()
        assert DenseClock.bottom().width() == 0

    def test_single(self):
        clock = DenseClock.single(2, 5)
        assert clock.get(2) == 5
        assert clock.get(0) == 0
        assert clock.get(99) == 0
        assert clock.width() == 1

    def test_trailing_zeros_are_insignificant(self):
        assert DenseClock([1, 0, 0]) == DenseClock([1])
        assert hash(DenseClock([1, 0])) == hash(DenseClock([1]))
        assert DenseClock([1, 0]) <= DenseClock([1])
        assert DenseClock([1]) <= DenseClock([1, 0])

    def test_negative_components_rejected(self):
        with pytest.raises(ValueError):
            DenseClock([1, -1])
        with pytest.raises(ValueError):
            DenseClock().assign(0, -2)
        with pytest.raises(ValueError):
            DenseClock().assign(-1, 2)

    def test_copy_is_independent(self):
        original = DenseClock.single(0, 1)
        clone = original.copy()
        clone.assign(0, 9)
        assert original.get(0) == 1

    def test_merge_reports_changes(self):
        clock = DenseClock([3, 1])
        assert clock.merge(DenseClock([1, 5])) is True
        assert clock.as_dict() == {0: 3, 1: 5}
        assert clock.merge(DenseClock([2, 2])) is False

    def test_vectorclock_merge_reports_changes(self):
        clock = VectorClock({"t1": 3})
        assert clock.merge(VectorClock({"t2": 1})) is True
        assert clock.merge(VectorClock({"t1": 2})) is False

    def test_join_operator_does_not_mutate(self):
        a = DenseClock([1, 4])
        b = DenseClock([3, 2])
        joined = a | b
        assert joined.as_dict() == {0: 3, 1: 4}
        assert a.as_dict() == {0: 1, 1: 4}

    def test_clear_and_update_from(self):
        clock = DenseClock([1, 2])
        clock.clear()
        assert clock.is_bottom()
        clock.update_from(DenseClock([0, 7]))
        assert clock.get(1) == 7

    def test_backend_selector(self):
        assert clock_class("dense") is DenseClock
        assert clock_class("dict") is VectorClock
        assert set(CLOCK_BACKENDS) == {"dense", "dict"}
        with pytest.raises(ValueError):
            clock_class("sparse")


# Mirror every operation on both representations and require identical
# observable results (the backend-parity property at the clock level).
_components = st.lists(st.integers(min_value=0, max_value=40), max_size=6)


def _pair(components):
    return DenseClock(components), VectorClock(
        {tid: value for tid, value in enumerate(components) if value}
    )


class TestDenseDictEquivalence:
    @given(_components, _components)
    @settings(max_examples=80, deadline=None)
    def test_comparisons_agree(self, first, second):
        dense_a, dict_a = _pair(first)
        dense_b, dict_b = _pair(second)
        assert (dense_a <= dense_b) == (dict_a <= dict_b)
        assert (dense_a == dense_b) == (dict_a == dict_b)
        assert dense_a.concurrent_with(dense_b) == dict_a.concurrent_with(dict_b)

    @given(_components, _components)
    @settings(max_examples=80, deadline=None)
    def test_join_and_merge_agree(self, first, second):
        dense_a, dict_a = _pair(first)
        dense_b, dict_b = _pair(second)
        assert dense_a.merge(dense_b) == dict_a.merge(dict_b)
        assert dense_a.as_dict() == dict_a.as_dict()

    @given(_components, st.integers(min_value=0, max_value=7),
           st.integers(min_value=0, max_value=30))
    @settings(max_examples=80, deadline=None)
    def test_assign_and_get_agree(self, components, tid, value):
        dense, sparse = _pair(components)
        dense.assign(tid, value)
        sparse.assign(tid, value)
        assert dense.as_dict() == sparse.as_dict()
        assert dense.get(tid) == sparse.get(tid)
        assert dense.width() == sparse.width()
        assert dense.is_bottom() == sparse.is_bottom()
