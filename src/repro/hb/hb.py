"""Djit+-style happens-before vector-clock race detector.

Happens-before (Definition 1) orders (i) events of the same thread in
program order and (ii) a release of a lock before every later acquire of
the same lock.  Fork/join events additionally order the forking event
before the child's events and the child's events before the join.

The detector keeps one vector clock ``C_t`` per thread and one ``L_l`` per
lock; an event's timestamp is the value of its thread's clock right after
processing it.  Two events are HB-ordered exactly when their timestamps are
pointwise ordered, so races are found with the same per-variable access
history used by the WCP detector.

The local component ``C_t(t)`` is incremented after every release and fork
(deferred to just before the thread's next event) so that distinct
synchronization intervals get distinct local times; this matches the
standard Djit+ formulation and keeps the clock comparison exact -- the
timestamp observed right after processing an event is that event's HB time.

Hot-path engineering: per-thread state is a flat list indexed by interned
tids (see :class:`~repro.vectorclock.registry.ThreadRegistry`), clocks are
array-backed :class:`~repro.vectorclock.dense.DenseClock`\\ s by default
(``clock_backend="dict"`` selects the sparse representation), and each
thread keeps a *frozen snapshot* of its clock that is shared with the
access history across consecutive accesses and invalidated only by
synchronization events -- so a run of accesses between two sync operations
costs one clock copy in total, and (because HB timestamps satisfy the
history's exactness contract unconditionally) the per-access race check is
an O(1) epoch comparison in the common case.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.detector import Detector
from repro.core.history import AccessHistory
from repro.core.races import RaceReport
from repro.core.snapshot import adopt_registry_names, pack_state, unpack_for
from repro.trace.event import Event, EventType
from repro.trace.trace import Trace
from repro.vectorclock import clock_class
from repro.vectorclock.clock import VectorClock
from repro.vectorclock.registry import ThreadRegistry


class HBDetector(Detector):
    """Linear-time, un-windowed happens-before race detector.

    Parameters
    ----------
    clock_backend:
        Internal clock representation: "dense" (default) or "dict".
    """

    name = "HB"

    #: HB clocks move only on synchronization events, so the sharded
    #: engine's replicate-sync / route-accesses split is exact for HB and
    #: foreign in-CS accesses need not even be transported.
    shardable = True

    #: Per-thread/per-lock clocks plus the access history: all bounded,
    #: all incrementally maintained, so snapshots are supported in full.
    supports_snapshot = True
    snapshot_version = 2

    def __init__(self, clock_backend: str = "dense") -> None:
        super().__init__()
        self.clock_backend = clock_backend
        self._clock_cls = clock_class(clock_backend)

    def reset(self, trace: Trace) -> None:
        self._trace = trace
        self._new_report(trace)
        registry = getattr(trace, "registry", None)
        self._trust_tids = registry is not None
        self._registry: ThreadRegistry = (
            registry if registry is not None else ThreadRegistry()
        )
        # Per-thread state indexed by tid (None = not initialised).
        self._clocks: List[object] = []
        # Local-clock increments are deferred to the thread's next event so
        # that the clock observed right after an event is its timestamp.
        self._pending: List[bool] = []
        # Frozen per-thread snapshot shared with the access history; None
        # after any mutation of the live clock.
        self._snap: List[object] = []
        self._lock_clocks: Dict[str, object] = {}
        # Joined clocks of read-mode rwlock releases per lock, consumed and
        # cleared by the next write-acquire (read sections stay unordered).
        self._read_rel: Dict[str, object] = {}
        # Joined clocks of every notify per monitor (never cleared).
        self._notify: Dict[str, object] = {}
        # Per-barrier generation state:
        # [accumulator clock, participant tids, accumulator version].
        self._barriers: Dict[str, list] = {}
        # tid -> {barrier: accumulator version already merged} while the
        # thread has an outstanding arrival in a still-open generation: a
        # real barrier keeps it blocked until every party arrives, so its
        # subsequent events re-join the grown accumulator (version-gated).
        self._barrier_waiting: Dict[int, Dict[str, int]] = {}
        # Per-thread set of rwlocks currently held in read mode.
        self._read_held: List[Optional[set]] = []
        self._history = AccessHistory()
        intern = self._registry.intern
        for thread in trace.threads:
            self._ensure_thread(intern(thread))

    def _ensure_thread(self, tid: int):
        clocks = self._clocks
        if tid >= len(clocks):
            grow = tid + 1 - len(clocks)
            clocks.extend([None] * grow)
            self._pending.extend([False] * grow)
            self._snap.extend([None] * grow)
            self._read_held.extend([None] * grow)
        clock = clocks[tid]
        if clock is None:
            clock = clocks[tid] = self._clock_cls.single(tid, 1)
            self._read_held[tid] = set()
        return clock

    # ------------------------------------------------------------------ #
    # Event handling
    # ------------------------------------------------------------------ #

    def process(self, event: Event) -> None:
        tid = event.tid
        if tid is None or not self._trust_tids:
            tid = self._registry.intern(event.thread)
        if tid >= len(self._clocks) or self._clocks[tid] is None:
            clock = self._ensure_thread(tid)
        else:
            clock = self._clocks[tid]
        if self._pending[tid]:
            clock.increment(tid)
            self._pending[tid] = False
            self._snap[tid] = None
        waiting = self._barrier_waiting.get(tid)
        if waiting:
            self._join_open_barriers(tid, clock, waiting)
        etype = event.etype

        if etype is EventType.READ or etype is EventType.WRITE:
            snap = self._snap[tid]
            if snap is None:
                snap = self._snap[tid] = clock.copy()
            # HB timestamps satisfy the exactness contract unconditionally:
            # a thread's component only escapes via end-of-interval
            # snapshots (release / fork / join all defer an increment).
            self._history.observe(
                event, snap, self.report, exact=True, key=tid, frozen=True
            )
        elif etype is EventType.ACQUIRE:
            lock_clock = self._lock_clocks.get(event.lock)
            if lock_clock is not None and clock.merge(lock_clock):
                self._snap[tid] = None
        elif etype is EventType.RELEASE:
            self._lock_clocks[event.lock] = clock.copy()
            self._pending[tid] = True
        elif etype is EventType.FORK:
            child_tid = self._registry.intern(event.other_thread)
            child = self._ensure_thread(child_tid)
            child.merge(clock)
            child.assign(child_tid, max(child.get(child_tid), 1))
            self._snap[child_tid] = None
            self._pending[tid] = True
        elif etype is EventType.JOIN:
            child_tid = self._registry.intern(event.other_thread)
            child = self._ensure_thread(child_tid)
            clock.merge(child)
            clock.assign(tid, max(clock.get(tid), 1))
            self._snap[tid] = None
            # Any (unusual) child events after the join start a new interval.
            self._pending[child_tid] = True
        elif etype is EventType.RACQ_R:
            # Ordered after the last write-mode/mutex release only; read
            # sections do not order each other.
            lock_clock = self._lock_clocks.get(event.lock)
            if lock_clock is not None and clock.merge(lock_clock):
                self._snap[tid] = None
            self._read_held[tid].add(event.lock)
        elif etype is EventType.RACQ_W:
            # A mutex acquire that also waits for all published readers.
            lock_clock = self._lock_clocks.get(event.lock)
            if lock_clock is not None and clock.merge(lock_clock):
                self._snap[tid] = None
            read_join = self._read_rel.pop(event.lock, None)
            if read_join is not None and clock.merge(read_join):
                self._snap[tid] = None
        elif etype is EventType.RREL:
            if event.lock in self._read_held[tid]:
                # Read sections publish into the read accumulator (seen by
                # the next write-acquire), not into the lock clock.
                self._read_held[tid].discard(event.lock)
                read_join = self._read_rel.get(event.lock)
                if read_join is None:
                    self._read_rel[event.lock] = clock.copy()
                else:
                    read_join.merge(clock)
            else:
                self._lock_clocks[event.lock] = clock.copy()
            self._pending[tid] = True
        elif etype is EventType.BARRIER:
            self._barrier_arrive(event.barrier, tid, clock)
            self._pending[tid] = True
        elif etype is EventType.WAIT:
            # Wake-side re-acquire plus the notify edge (the producer
            # emitted rel(m) at wait-start, the RVPredict desugaring).
            merged = False
            lock_clock = self._lock_clocks.get(event.lock)
            if lock_clock is not None and clock.merge(lock_clock):
                merged = True
            notify = self._notify.get(event.lock)
            if notify is not None and clock.merge(notify):
                merged = True
            if merged:
                self._snap[tid] = None
        elif etype is EventType.NOTIFY:
            notify = self._notify.get(event.lock)
            if notify is None:
                self._notify[event.lock] = clock.copy()
            else:
                notify.merge(clock)
            self._pending[tid] = True
        # BEGIN / END: no clock effect.

    def _barrier_arrive(self, barrier: str, tid: int, clock) -> None:
        """All-to-all join at each barrier generation (see WCP counterpart).

        A generation closes when some participant arrives again: every
        participant of the closed generation receives the accumulated join
        of all its arrival clocks, then a fresh generation starts with the
        repeat arriver.  Arrivals also merge the open generation's
        accumulator so far.
        """
        entry = self._barriers.get(barrier)
        if entry is None:
            entry = self._barriers[barrier] = [None, set(), 0]
        participants = entry[1]
        if tid in participants:
            acc = entry[0]
            for member in participants:
                if self._clocks[member].merge(acc):
                    self._snap[member] = None
                waiting = self._barrier_waiting.get(member)
                if waiting is not None:
                    waiting.pop(barrier, None)
            entry[0] = None
            participants = entry[1] = set()
        acc = entry[0]
        if acc is not None and clock.merge(acc):
            self._snap[tid] = None
        if entry[0] is None:
            entry[0] = clock.copy()
        else:
            entry[0].merge(clock)
        participants.add(tid)
        entry[2] += 1
        self._barrier_waiting.setdefault(tid, {})[barrier] = entry[2]

    def _join_open_barriers(
        self, tid: int, clock, waiting: Dict[str, int]
    ) -> None:
        """Re-join the (grown) accumulator of each open generation.

        A thread with an outstanding arrival was really blocked until the
        generation completed, so every event it performs afterwards is
        ordered after all arrivals recorded so far -- also the ones that
        appear in the stream after its own (see the WCP counterpart).
        """
        for name, seen in waiting.items():
            entry = self._barriers.get(name)
            if entry is None or entry[2] == seen:
                continue
            waiting[name] = entry[2]
            if entry[0] is not None and clock.merge(entry[0]):
                self._snap[tid] = None

    def process_foreign(self, event: Event) -> None:
        """Apply a foreign access's clock effects: only the deferred bump.

        Accesses never join anything into HB clocks, but the *first*
        access after a release/fork applies the thread's deferred local
        increment; replaying that here keeps this shard's clock visibility
        in lock-step with the shards that own the access (so later
        replicated fork/join snapshots of this thread agree everywhere).
        Called only when a co-selected detector (WCP) caused foreign
        transport; HB alone never requests it, because its race verdicts
        are independent of the bump's visibility lag.
        """
        tid = event.tid
        if tid is None or not self._trust_tids:
            tid = self._registry.intern(event.thread)
        if tid >= len(self._clocks) or self._clocks[tid] is None:
            clock = self._ensure_thread(tid)
        else:
            clock = self._clocks[tid]
        if self._pending[tid]:
            clock.increment(tid)
            self._pending[tid] = False
            self._snap[tid] = None
        waiting = self._barrier_waiting.get(tid)
        if waiting:
            self._join_open_barriers(tid, clock, waiting)

    # ------------------------------------------------------------------ #
    # Snapshot protocol (checkpoint/resume, sharded worker restore)
    # ------------------------------------------------------------------ #

    def snapshot_config(self) -> dict:
        return {"clock_backend": self.clock_backend}

    def state_snapshot(self) -> bytes:
        report = self.report  # raises before reset()
        state = {
            "names": self._registry.names(),
            "clocks": list(self._clocks),
            "pending": list(self._pending),
            "lock_clocks": dict(self._lock_clocks),
            "read_rel": dict(self._read_rel),
            "notify": dict(self._notify),
            "barriers": {
                barrier: (entry[0], set(entry[1]), entry[2])
                for barrier, entry in self._barriers.items()
            },
            "barrier_waiting": {
                tid: dict(waiting)
                for tid, waiting in self._barrier_waiting.items()
                if waiting
            },
            "read_held": [
                None if held is None else set(held)
                for held in self._read_held
            ],
            "history": self._history.state_dict(),
            "report": report.state_dict(),
        }
        return pack_state(
            type(self).__name__, self.snapshot_version,
            self.snapshot_config(), state,
        )

    def restore_state(self, blob: bytes) -> None:
        if self._report is None:
            raise RuntimeError(
                "restore_state() requires reset() first (the reset binds "
                "the pass context and its shared thread registry)"
            )
        state = unpack_for(self).unpack(blob)
        adopt_registry_names(self._registry, state["names"])
        self._clocks = list(state["clocks"])
        self._pending = list(state["pending"])
        # Frozen per-thread snapshots are a sharing optimisation; the next
        # access of each thread takes a fresh copy.
        self._snap = [None] * len(self._clocks)
        self._lock_clocks = dict(state["lock_clocks"])
        self._read_rel = dict(state["read_rel"])
        self._notify = dict(state["notify"])
        self._barriers = {
            barrier: [acc, set(participants), version]
            for barrier, (acc, participants, version)
            in state["barriers"].items()
        }
        self._barrier_waiting = {
            tid: dict(waiting)
            for tid, waiting in dict(state.get("barrier_waiting", {})).items()
        }
        self._read_held = [
            None if held is None else set(held)
            for held in state["read_held"]
        ]
        self._history = AccessHistory.from_state(state["history"])
        self._report = RaceReport.from_state(state["report"])
        self.restore_pending = False

    def sync_clock_state(self) -> dict:
        """Serialized per-thread HB clocks (shard-boundary protocol).

        Deferred local increments (pending after release/fork) are applied
        to the exported copies so the state is a pure function of the
        synchronization skeleton, which every shard sees in full.
        """
        from repro.vectorclock.dense import serialize_clock

        state = {}
        name_of = self._registry.name_of
        for tid, clock in enumerate(self._clocks):
            if clock is None:
                continue
            snap = clock.copy()
            if self._pending[tid]:
                snap.increment(tid)
            state[name_of(tid)] = serialize_clock(snap)
        return state

    def timestamps(self, trace: Trace) -> list:
        """Run over ``trace`` and return the HB timestamp of every event.

        Timestamps are converted to the public name-keyed
        :class:`VectorClock` regardless of the internal backend.  Used by
        tests to cross-validate against
        :class:`repro.core.closure.HBClosure`.
        """
        self.reset(trace)
        clocks = []
        to_public = self._registry.to_public
        intern = self._registry.intern
        for event in trace:
            self.process(event)
            tid = event.tid
            if tid is None or not self._trust_tids:
                tid = intern(event.thread)
            clocks.append(to_public(self._clocks[tid]))
        self.finish()
        return clocks
