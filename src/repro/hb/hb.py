"""Djit+-style happens-before vector-clock race detector.

Happens-before (Definition 1) orders (i) events of the same thread in
program order and (ii) a release of a lock before every later acquire of
the same lock.  Fork/join events additionally order the forking event
before the child's events and the child's events before the join.

The detector keeps one vector clock ``C_t`` per thread and one ``L_l`` per
lock; an event's timestamp is the value of its thread's clock right after
processing it.  Two events are HB-ordered exactly when their timestamps are
pointwise ordered, so races are found with the same per-variable access
history used by the WCP detector.

The local component ``C_t(t)`` is incremented after every release and fork
(deferred to just before the thread's next event) so that distinct
synchronization intervals get distinct local times; this matches the
standard Djit+ formulation and keeps the clock comparison exact -- the
timestamp observed right after processing an event is that event's HB time.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Optional

from repro.core.detector import Detector
from repro.core.history import AccessHistory
from repro.trace.event import Event, EventType
from repro.trace.trace import Trace
from repro.vectorclock.clock import VectorClock


class HBDetector(Detector):
    """Linear-time, un-windowed happens-before race detector."""

    name = "HB"

    def reset(self, trace: Trace) -> None:
        self._trace = trace
        self._new_report(trace)
        self._clocks: Dict[str, VectorClock] = {}
        self._lock_clocks: Dict[str, VectorClock] = defaultdict(VectorClock.bottom)
        self._history = AccessHistory()
        # Local-clock increments are deferred to the thread's next event so
        # that the clock observed right after an event is its timestamp.
        self._pending_increment: Dict[str, bool] = {}
        for thread in trace.threads:
            self._thread_clock(thread)

    def _thread_clock(self, thread: str) -> VectorClock:
        clock = self._clocks.get(thread)
        if clock is None:
            clock = VectorClock.single(thread, 1)
            self._clocks[thread] = clock
        return clock

    # ------------------------------------------------------------------ #
    # Event handling
    # ------------------------------------------------------------------ #

    def process(self, event: Event) -> None:
        thread = event.thread
        clock = self._thread_clock(thread)
        if self._pending_increment.pop(thread, False):
            clock.increment(thread)
        etype = event.etype

        if etype is EventType.ACQUIRE:
            clock.join(self._lock_clocks[event.lock])
        elif etype is EventType.RELEASE:
            self._lock_clocks[event.lock] = clock.copy()
            self._pending_increment[thread] = True
        elif etype is EventType.READ or etype is EventType.WRITE:
            self._history.observe(event, clock.copy(), self.report)
        elif etype is EventType.FORK:
            child = self._thread_clock(event.other_thread)
            child.join(clock)
            child.assign(event.other_thread, max(child.get(event.other_thread), 1))
            self._pending_increment[thread] = True
        elif etype is EventType.JOIN:
            child = self._thread_clock(event.other_thread)
            clock.join(child)
            clock.assign(thread, max(clock.get(thread), 1))
            # Any (unusual) child events after the join start a new interval.
            self._pending_increment[event.other_thread] = True
        # BEGIN / END: no clock effect.

    def timestamps(self, trace: Trace) -> list:
        """Run over ``trace`` and return the HB timestamp of every event.

        Used by tests to cross-validate against
        :class:`repro.core.closure.HBClosure`.
        """
        self.reset(trace)
        clocks = []
        for event in trace:
            self.process(event)
            clocks.append(self._thread_clock(event.thread).copy())
        self.finish()
        return clocks
