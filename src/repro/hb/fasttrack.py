"""FastTrack: epoch-optimised happens-before race detection.

FastTrack (Flanagan & Freund, PLDI 2009) observes that for most variables
the last write -- and usually the last read -- is totally ordered with all
later accesses, so a full vector clock per variable is unnecessary: a
single *epoch* ``c@t`` suffices, and the common-case check is O(1) instead
of O(T).

The WCP paper cites epoch optimisations as future work for its own
algorithm (Section 6); we provide the HB variant so the repository can
quantify the time/memory trade-off (see ``benchmarks/bench_ablation_epochs``),
and the shared access history (:mod:`repro.core.history`) now applies the
same idea to the WCP detector's race checks.

The detector reports the same HB races as :class:`repro.hb.hb.HBDetector`;
the per-variable state is:

* ``write``: epoch of the last write (plus the writing event, so that race
  pairs can be attributed to program locations);
* ``reads``: either a single read epoch (shared-exclusive mode) or a map
  from thread to its last read (read-shared mode), mirroring FastTrack's
  adaptive representation.

Epochs, clock components and the read map are keyed by interned integer
tids (:class:`~repro.vectorclock.registry.ThreadRegistry`); clocks are
array-backed :class:`~repro.vectorclock.dense.DenseClock`\\ s by default
(``clock_backend="dict"`` selects the sparse representation).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.detector import Detector
from repro.core.races import RaceReport
from repro.core.snapshot import adopt_registry_names, pack_state, unpack_for
from repro.trace.event import Event, EventType
from repro.trace.trace import Trace
from repro.vectorclock import clock_class
from repro.vectorclock.epoch import Epoch
from repro.vectorclock.registry import ThreadRegistry


class _VariableState:
    """Per-variable FastTrack metadata."""

    __slots__ = ("write_epoch", "write_event", "read_epoch", "read_event", "read_map")

    def __init__(self) -> None:
        self.write_epoch = Epoch.bottom()
        self.write_event: Optional[Event] = None
        self.read_epoch = Epoch.bottom()
        self.read_event: Optional[Event] = None
        # tid -> (time, event); non-empty only in read-shared mode.
        self.read_map: Optional[Dict[int, Tuple[int, Event]]] = None

    def in_shared_mode(self) -> bool:
        return self.read_map is not None


class FastTrackDetector(Detector):
    """Epoch-optimised HB detector (FastTrack).

    Parameters
    ----------
    clock_backend:
        Internal clock representation: "dense" (default) or "dict".
    """

    name = "FastTrack"

    #: Like HB, FastTrack's clocks move only on synchronization events, so
    #: sharding by variable with a replicated sync skeleton is exact.
    shardable = True

    #: Epoch-compressed per-variable state is the smallest in the library;
    #: snapshots are supported in full.
    supports_snapshot = True
    snapshot_version = 2

    def __init__(self, clock_backend: str = "dense") -> None:
        super().__init__()
        self.clock_backend = clock_backend
        self._clock_cls = clock_class(clock_backend)

    def reset(self, trace: Trace) -> None:
        self._trace = trace
        self._new_report(trace)
        registry = getattr(trace, "registry", None)
        self._trust_tids = registry is not None
        self._registry: ThreadRegistry = (
            registry if registry is not None else ThreadRegistry()
        )
        self._clocks: List[object] = []
        self._lock_clocks: Dict[str, object] = {}
        self._variables: Dict[str, _VariableState] = {}
        # Extended-vocabulary state (mirrors HBDetector; see hb.py).
        self._read_rel: Dict[str, object] = {}
        self._notify: Dict[str, object] = {}
        self._barriers: Dict[str, list] = {}
        self._barrier_waiting: Dict[int, Dict[str, int]] = {}
        self._read_held: List[Optional[set]] = []
        #: Number of accesses handled entirely with O(1) epoch comparisons.
        self.fast_path_hits = 0
        #: Number of accesses that needed a vector-clock comparison.
        self.slow_path_hits = 0
        intern = self._registry.intern
        for thread in trace.threads:
            self._ensure_thread(intern(thread))

    def _ensure_thread(self, tid: int):
        clocks = self._clocks
        if tid >= len(clocks):
            grow = tid + 1 - len(clocks)
            clocks.extend([None] * grow)
            self._read_held.extend([None] * grow)
        clock = clocks[tid]
        if clock is None:
            clock = clocks[tid] = self._clock_cls.single(tid, 1)
            self._read_held[tid] = set()
        return clock

    def _state(self, variable: str) -> _VariableState:
        state = self._variables.get(variable)
        if state is None:
            state = _VariableState()
            self._variables[variable] = state
        return state

    # ------------------------------------------------------------------ #
    # Event handling
    # ------------------------------------------------------------------ #

    def process(self, event: Event) -> None:
        tid = event.tid
        if tid is None or not self._trust_tids:
            tid = self._registry.intern(event.thread)
        clock = (
            self._clocks[tid]
            if tid < len(self._clocks) and self._clocks[tid] is not None
            else self._ensure_thread(tid)
        )
        waiting = self._barrier_waiting.get(tid)
        if waiting:
            self._join_open_barriers(tid, clock, waiting)
        etype = event.etype

        if etype is EventType.READ:
            self._read(event, tid, clock)
        elif etype is EventType.WRITE:
            self._write(event, tid, clock)
        elif etype is EventType.ACQUIRE:
            lock_clock = self._lock_clocks.get(event.lock)
            if lock_clock is not None:
                clock.merge(lock_clock)
        elif etype is EventType.RELEASE:
            self._lock_clocks[event.lock] = clock.copy()
            clock.increment(tid)
        elif etype is EventType.FORK:
            child = self._ensure_thread(self._registry.intern(event.other_thread))
            child.merge(clock)
            clock.increment(tid)
        elif etype is EventType.JOIN:
            clock.merge(
                self._ensure_thread(self._registry.intern(event.other_thread))
            )
        elif etype is EventType.RACQ_R:
            lock_clock = self._lock_clocks.get(event.lock)
            if lock_clock is not None:
                clock.merge(lock_clock)
            self._read_held[tid].add(event.lock)
        elif etype is EventType.RACQ_W:
            lock_clock = self._lock_clocks.get(event.lock)
            if lock_clock is not None:
                clock.merge(lock_clock)
            read_join = self._read_rel.pop(event.lock, None)
            if read_join is not None:
                clock.merge(read_join)
        elif etype is EventType.RREL:
            if event.lock in self._read_held[tid]:
                self._read_held[tid].discard(event.lock)
                read_join = self._read_rel.get(event.lock)
                if read_join is None:
                    self._read_rel[event.lock] = clock.copy()
                else:
                    read_join.merge(clock)
            else:
                self._lock_clocks[event.lock] = clock.copy()
            clock.increment(tid)
        elif etype is EventType.BARRIER:
            self._barrier_arrive(event.barrier, tid, clock)
            clock.increment(tid)
        elif etype is EventType.WAIT:
            lock_clock = self._lock_clocks.get(event.lock)
            if lock_clock is not None:
                clock.merge(lock_clock)
            notify = self._notify.get(event.lock)
            if notify is not None:
                clock.merge(notify)
        elif etype is EventType.NOTIFY:
            notify = self._notify.get(event.lock)
            if notify is None:
                self._notify[event.lock] = clock.copy()
            else:
                notify.merge(clock)
            clock.increment(tid)

    def _barrier_arrive(self, barrier: str, tid: int, clock) -> None:
        """All-to-all join at each barrier generation (see hb.py)."""
        entry = self._barriers.get(barrier)
        if entry is None:
            entry = self._barriers[barrier] = [None, set(), 0]
        participants = entry[1]
        if tid in participants:
            acc = entry[0]
            for member in participants:
                self._clocks[member].merge(acc)
                waiting = self._barrier_waiting.get(member)
                if waiting is not None:
                    waiting.pop(barrier, None)
            entry[0] = None
            participants = entry[1] = set()
        acc = entry[0]
        if acc is not None:
            clock.merge(acc)
        if entry[0] is None:
            entry[0] = clock.copy()
        else:
            entry[0].merge(clock)
        participants.add(tid)
        entry[2] += 1
        self._barrier_waiting.setdefault(tid, {})[barrier] = entry[2]

    def _join_open_barriers(
        self, tid: int, clock, waiting: Dict[str, int]
    ) -> None:
        """Re-join the grown accumulator of each open generation (see hb.py)."""
        for name, seen in waiting.items():
            entry = self._barriers.get(name)
            if entry is None or entry[2] == seen:
                continue
            waiting[name] = entry[2]
            if entry[0] is not None:
                clock.merge(entry[0])

    # ------------------------------------------------------------------ #
    # FastTrack access rules
    # ------------------------------------------------------------------ #

    def _read(self, event: Event, tid: int, clock) -> None:
        state = self._state(event.variable)

        # Same-epoch fast path: repeated read by the same thread interval.
        if state.read_epoch.same_thread(tid) and (
            state.read_epoch.time == clock.get(tid)
        ):
            self.fast_path_hits += 1
            return

        # write-read race check.
        if not state.write_epoch.happens_before(clock):
            if state.write_event is not None:
                self.report.add(state.write_event, event)
        self.fast_path_hits += 1

        if state.in_shared_mode():
            state.read_map[tid] = (clock.get(tid), event)  # type: ignore[index]
            return

        if state.read_epoch.happens_before(clock):
            # Exclusive mode: the previous read is ordered before this one.
            state.read_epoch = Epoch(tid, clock.get(tid))
            state.read_event = event
        else:
            # Switch to read-shared mode.
            self.slow_path_hits += 1
            state.read_map = {}
            if state.read_event is not None and state.read_epoch.thread is not None:
                state.read_map[state.read_epoch.thread] = (
                    state.read_epoch.time, state.read_event
                )
            state.read_map[tid] = (clock.get(tid), event)

    def _write(self, event: Event, tid: int, clock) -> None:
        state = self._state(event.variable)

        # Same-epoch fast path.
        if state.write_epoch.same_thread(tid) and (
            state.write_epoch.time == clock.get(tid)
        ):
            self.fast_path_hits += 1
            return

        # write-write race check.
        if not state.write_epoch.happens_before(clock):
            if state.write_event is not None:
                self.report.add(state.write_event, event)

        # read-write race check.
        if state.in_shared_mode():
            self.slow_path_hits += 1
            for reader, (time, read_event) in state.read_map.items():  # type: ignore[union-attr]
                if reader != tid and time > clock.get(reader):
                    self.report.add(read_event, event)
            state.read_map = None
            state.read_epoch = Epoch.bottom()
            state.read_event = None
        else:
            self.fast_path_hits += 1
            if not state.read_epoch.happens_before(clock):
                if state.read_event is not None:
                    self.report.add(state.read_event, event)

        state.write_epoch = Epoch(tid, clock.get(tid))
        state.write_event = event

    # ------------------------------------------------------------------ #
    # Snapshot protocol (checkpoint/resume, sharded worker restore)
    # ------------------------------------------------------------------ #

    def snapshot_config(self) -> dict:
        return {"clock_backend": self.clock_backend}

    def state_snapshot(self) -> bytes:
        report = self.report  # raises before reset()
        variables = {}
        for variable, var_state in self._variables.items():
            variables[variable] = {
                "write_epoch": var_state.write_epoch,
                "write_event": var_state.write_event,
                "read_epoch": var_state.read_epoch,
                "read_event": var_state.read_event,
                "read_map": (
                    dict(var_state.read_map)
                    if var_state.read_map is not None else None
                ),
            }
        state = {
            "names": self._registry.names(),
            "clocks": list(self._clocks),
            "lock_clocks": dict(self._lock_clocks),
            "variables": variables,
            "read_rel": dict(self._read_rel),
            "notify": dict(self._notify),
            "barriers": {
                barrier: (entry[0], set(entry[1]), entry[2])
                for barrier, entry in self._barriers.items()
            },
            "barrier_waiting": {
                tid: dict(waiting)
                for tid, waiting in self._barrier_waiting.items()
                if waiting
            },
            "read_held": [
                None if held is None else set(held)
                for held in self._read_held
            ],
            "counters": (self.fast_path_hits, self.slow_path_hits),
            "report": report.state_dict(),
        }
        return pack_state(
            type(self).__name__, self.snapshot_version,
            self.snapshot_config(), state,
        )

    def restore_state(self, blob: bytes) -> None:
        if self._report is None:
            raise RuntimeError(
                "restore_state() requires reset() first (the reset binds "
                "the pass context and its shared thread registry)"
            )
        state = unpack_for(self).unpack(blob)
        adopt_registry_names(self._registry, state["names"])
        self._clocks = list(state["clocks"])
        self._lock_clocks = dict(state["lock_clocks"])
        variables = {}
        for variable, entry in state["variables"].items():
            var_state = _VariableState()
            var_state.write_epoch = entry["write_epoch"]
            var_state.write_event = entry["write_event"]
            var_state.read_epoch = entry["read_epoch"]
            var_state.read_event = entry["read_event"]
            var_state.read_map = (
                dict(entry["read_map"])
                if entry["read_map"] is not None else None
            )
            variables[variable] = var_state
        self._variables = variables
        self._read_rel = dict(state["read_rel"])
        self._notify = dict(state["notify"])
        self._barriers = {
            barrier: [acc, set(participants), version]
            for barrier, (acc, participants, version)
            in state["barriers"].items()
        }
        self._barrier_waiting = {
            tid: dict(waiting)
            for tid, waiting in dict(state.get("barrier_waiting", {})).items()
        }
        self._read_held = [
            None if held is None else set(held)
            for held in state["read_held"]
        ]
        self.fast_path_hits, self.slow_path_hits = state["counters"]
        self._report = RaceReport.from_state(state["report"])
        self.restore_pending = False

    def sync_clock_state(self) -> dict:
        """Serialized per-thread clocks (shard-boundary protocol).

        FastTrack increments eagerly at release/fork, so the live clocks
        are already a pure function of the synchronization skeleton.
        """
        from repro.vectorclock.dense import serialize_clock

        state = {}
        name_of = self._registry.name_of
        for tid, clock in enumerate(self._clocks):
            if clock is not None:
                state[name_of(tid)] = serialize_clock(clock)
        return state

    def finish(self) -> None:
        total = self.fast_path_hits + self.slow_path_hits
        self.report.stats["fast_path_hits"] = float(self.fast_path_hits)
        self.report.stats["slow_path_hits"] = float(self.slow_path_hits)
        if total:
            self.report.stats["fast_path_ratio"] = self.fast_path_hits / float(total)
