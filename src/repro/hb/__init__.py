"""Happens-before detectors (the paper's primary baseline).

* :class:`~repro.hb.hb.HBDetector` -- the classic Djit+-style vector-clock
  detector for Lamport's happens-before relation; linear time, no
  windowing (the configuration the paper compares WCP against in
  Table 1, columns 7 and 13).
* :class:`~repro.hb.fasttrack.FastTrackDetector` -- the epoch-optimised
  variant (FastTrack).  The paper lists epoch optimisations as future work
  for WCP; we provide them for HB as an ablation of the time/memory
  trade-off.
"""

from repro.hb.hb import HBDetector
from repro.hb.fasttrack import FastTrackDetector

__all__ = ["HBDetector", "FastTrackDetector"]
