"""The Eraser lockset algorithm (Savage et al., SOSP 1997).

Eraser maintains, per shared variable, a *candidate lockset*: the
intersection of the locks held at every access observed so far.  When the
candidate set becomes empty the variable is flagged.  The state machine
below implements the standard refinement: a variable starts *virgin*, moves
to *exclusive* while a single thread accesses it, to *shared* on a read by
a second thread (no reports), and to *shared-modified* on a write by a
second thread (reports when the lockset empties).

Eraser is **unsound in both directions**: it misses no "lock-discipline"
violations but reports races for perfectly ordered accesses (e.g. fork/join
or signal/wait ordering) and may stay silent on racy initialisation.  It is
included purely as the fast, imprecise baseline the paper's related work
discusses.
"""

from __future__ import annotations

import enum
from typing import Dict, List, Optional, Set

from repro.core.detector import Detector
from repro.trace.event import Event, EventType
from repro.trace.trace import Trace


class _State(enum.Enum):
    VIRGIN = "virgin"
    EXCLUSIVE = "exclusive"
    SHARED = "shared"
    SHARED_MODIFIED = "shared-modified"


class _VariableInfo:
    __slots__ = ("state", "owner", "lockset", "last_access")

    def __init__(self) -> None:
        self.state = _State.VIRGIN
        self.owner: Optional[str] = None
        self.lockset: Optional[Set[str]] = None
        self.last_access: Optional[Event] = None


class EraserDetector(Detector):
    """Lockset-based (unsound) race detector."""

    name = "Eraser"

    def reset(self, trace: Trace) -> None:
        self._trace = trace
        self._new_report(trace)
        self._held: Dict[str, List[str]] = {}
        self._variables: Dict[str, _VariableInfo] = {}

    def _locks_held(self, thread: str) -> List[str]:
        return self._held.setdefault(thread, [])

    def process(self, event: Event) -> None:
        etype = event.etype
        if etype is EventType.ACQUIRE:
            self._locks_held(event.thread).append(event.lock)
        elif etype is EventType.RELEASE:
            held = self._locks_held(event.thread)
            if event.lock in held:
                held.remove(event.lock)
        elif etype is EventType.READ or etype is EventType.WRITE:
            self._access(event)

    def _access(self, event: Event) -> None:
        info = self._variables.setdefault(event.variable, _VariableInfo())
        thread = event.thread
        held = set(self._locks_held(thread))

        if info.state is _State.VIRGIN:
            info.state = _State.EXCLUSIVE
            info.owner = thread
            info.lockset = held
            info.last_access = event
            return

        if info.state is _State.EXCLUSIVE and info.owner == thread:
            info.last_access = event
            return

        # A second thread has touched the variable: refine the lockset.
        assert info.lockset is not None
        info.lockset &= held

        if info.state is _State.EXCLUSIVE:
            info.state = (
                _State.SHARED_MODIFIED if event.is_write() else _State.SHARED
            )
        elif info.state is _State.SHARED and event.is_write():
            info.state = _State.SHARED_MODIFIED

        racy = info.state is _State.SHARED_MODIFIED and not info.lockset
        if racy and info.last_access is not None:
            self.report.add(info.last_access, event)
        info.last_access = event
