"""Lockset-based detection (Eraser) -- the classic *unsound* baseline.

The WCP paper's related-work section contrasts partial-order methods with
lockset methods such as Eraser, which are fast but report spurious races.
We include an Eraser implementation so that examples and the ablation
benchmarks can quantify the false-positive gap on traces whose accesses are
consistently protected by different-but-synchronised locks.
"""

from repro.lockset.eraser import EraserDetector

__all__ = ["EraserDetector"]
