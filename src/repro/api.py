"""Top-level convenience API, backed by the single-pass streaming engine.

The primary abstraction is the :class:`~repro.engine.RaceEngine`: one
iteration over one *event source* drives any number of detectors
simultaneously, matching the paper's "linear time, constant work per
event" architecture.  An event source can be an in-memory
:class:`~repro.trace.trace.Trace`, a path to a log file (parsed lazily,
never fully materialised), a live simulator run, or any iterable of
events -- see :mod:`repro.engine.sources`.

Three calls cover most uses:

* :func:`detect_races` -- run one detector (WCP by default) on a source;
* :func:`compare_detectors` -- run several detectors over the same source
  in a **single pass** and get their reports side by side (the shape of a
  Table 1 row);
* :func:`run_engine` -- the full-fidelity entry point returning an
  :class:`~repro.engine.EngineResult` (per-detector reports plus run
  metadata, snapshots and the early-stop reason).

Each has an asyncio-native twin (:func:`detect_races_async`,
:func:`run_engine_async`) for *push* ingestion: live producers feed a
:class:`~repro.engine.QueueSource` or a socket/pipe speaking the STD
line protocol (:class:`~repro.engine.LineProtocolSource`), and the
engine awaits events instead of pulling them -- same single-pass
semantics, identical reports (both drive the shared per-event stepper).

Engine behaviour (early stop, snapshot cadence, cost accounting) is
configured with the fluent :class:`~repro.engine.EngineConfig` builder::

    from repro import EngineConfig, run_engine
    result = run_engine(
        "trace.std",
        config=EngineConfig().with_detectors("wcp", "hb").stop_on_first_race(),
    )
"""

from __future__ import annotations

import copy
from typing import Dict, Iterable, List, Optional, Sequence, Union

from repro.core.detector import Detector
from repro.core.races import RaceReport
from repro.core.wcp import WCPDetector
from repro.cp.detector import CPDetector
from repro.engine import (
    AsyncRaceEngine,
    EngineConfig,
    EngineResult,
    RaceEngine,
    ShardedEngine,
)
from repro.hb.fasttrack import FastTrackDetector
from repro.hb.hb import HBDetector
from repro.lockset.eraser import EraserDetector
from repro.mcm.predictor import MCMPredictor

#: Registry of detector names accepted by :func:`make_detector` and the CLI.
_DETECTOR_FACTORIES = {
    "wcp": WCPDetector,
    "hb": HBDetector,
    "fasttrack": FastTrackDetector,
    "cp": CPDetector,
    "eraser": EraserDetector,
    "mcm": MCMPredictor,
}


def available_detectors() -> List[str]:
    """Return the names accepted by :func:`make_detector`."""
    return sorted(_DETECTOR_FACTORIES)


def make_detector(name: str, **kwargs) -> Detector:
    """Instantiate a detector by name (``wcp``, ``hb``, ``fasttrack``, ``cp``,
    ``eraser``, ``mcm``), forwarding keyword arguments to its constructor."""
    try:
        factory = _DETECTOR_FACTORIES[name.lower()]
    except KeyError:
        raise ValueError(
            "unknown detector %r; available: %s"
            % (name, ", ".join(available_detectors()))
        ) from None
    return factory(**kwargs)


def _make_engine(config: Optional[EngineConfig], shards: Optional[int]):
    """Build the engine for a pass: sharded when more than one shard."""
    effective = shards if shards is not None else (
        config.shards if config is not None else 1
    )
    if effective > 1:
        return ShardedEngine(config, shards=effective)
    return RaceEngine(config)


def run_engine(
    source,
    detectors: Optional[Sequence[Union[str, Detector]]] = None,
    config: Optional[EngineConfig] = None,
    shards: Optional[int] = None,
    checkpoint=None,
    checkpoint_every: Optional[int] = None,
) -> EngineResult:
    """Run a single engine pass over ``source`` and return the full result.

    ``source`` is anything :func:`repro.engine.as_source` accepts (trace,
    path, event source, iterable of events).  ``detectors`` overrides the
    configuration's selection; the default is WCP + HB.  ``shards``
    (default: the configuration's ``shards``, normally 1) splits the pass
    across that many worker engines
    (:class:`~repro.engine.sharding.ShardedEngine`); transport mode and
    partition policy come from the configuration
    (:meth:`~repro.engine.EngineConfig.with_shards`).  Sharded passes are
    supervised: a shard worker that dies mid-run is restarted from its
    last in-memory snapshot and the lost batches are replayed, so the
    merged report matches an uninterrupted run exactly -- tune the retry
    budget, heartbeat and snapshot cadence with
    :meth:`~repro.engine.EngineConfig.with_shard_supervision`, or raise
    :class:`~repro.engine.WorkerFailure` immediately with ``fail_fast``.

    ``checkpoint`` names a directory to persist periodic detector-state
    checkpoints into (every ``checkpoint_every`` events, default 10,000);
    a crashed or interrupted pass then continues from the newest
    checkpoint with :func:`resume_engine`.  Every selected detector must
    support the snapshot protocol
    (:attr:`~repro.core.detector.Detector.supports_snapshot`).
    """
    if checkpoint is not None:
        # Copy before mutating: the caller's config must not keep the
        # checkpoint directory for later, unrelated runs.
        config = copy.copy(config) if config is not None else EngineConfig()
        config.with_checkpoints(
            checkpoint,
            every=(
                checkpoint_every if checkpoint_every is not None
                else config.checkpoint_every
            ),
            keep=config.checkpoint_keep,
        )
    return _make_engine(config, shards).run(source, detectors=detectors)


def resume_engine(
    source,
    checkpoint,
    detectors: Optional[Sequence[Union[str, Detector]]] = None,
    config: Optional[EngineConfig] = None,
) -> EngineResult:
    """Resume a checkpointed pass over ``source`` (:func:`run_engine`'s twin).

    ``checkpoint`` is a checkpoint directory (the newest checkpoint is
    used), a :class:`~repro.engine.Checkpointer`, or a loaded
    :class:`~repro.engine.Checkpoint`.  Detectors are rebuilt from the
    checkpoint's configuration stamps unless explicitly selected (in
    which case the selection must match the stamps -- a different
    detector list, clock backend or snapshot format version fails fast).
    Sharded checkpoints are resumed by a sharded engine with the
    checkpoint's shard count and partition policy automatically; the
    transport mode may differ (worker state is transport-agnostic).
    The resumed pass keeps checkpointing into the same directory at the
    original cadence and produces reports identical to an uninterrupted
    run.
    """
    from repro.engine.checkpoint import open_for_resume

    # Copy before any adjustment below: the caller's config must not be
    # rewritten by the dispatch.
    effective = copy.copy(config) if config is not None else EngineConfig()
    loaded, checkpointer = open_for_resume(checkpoint, None)
    if checkpointer is not None and effective.checkpoint_dir is None:
        # Directory-backed resume keeps checkpointing into the same
        # directory at the original cadence.
        effective.checkpoint_dir = checkpointer.directory
        effective.checkpoint_every = checkpointer.every
    if loaded.sharded is not None:
        sharded = loaded.sharded
        if effective.shards != sharded["shards"]:
            effective.with_shards(
                sharded["shards"],
                mode=effective.shard_mode,
                policy=sharded.get("policy"),
            )
        engine = ShardedEngine(effective)
    else:
        engine = RaceEngine(effective)
    # The loaded Checkpoint is passed through, so the blob is read and
    # decoded exactly once.
    return engine.resume(source, loaded, detectors=detectors)


def detect_races(
    source,
    detector: Union[str, Detector, None] = None,
    shards: Optional[int] = None,
    **kwargs,
) -> RaceReport:
    """Run ``detector`` (name, instance or None for WCP) on ``source``.

    ``kwargs`` are forwarded to the detector constructor when ``detector``
    is a name or None.  ``source`` may be a trace, a log-file path, or any
    event source/iterable.  ``shards`` > 1 runs the pass sharded across
    that many worker engines.
    """
    if detector is None:
        detector = WCPDetector(**kwargs)
    elif isinstance(detector, str):
        detector = make_detector(detector, **kwargs)
    result = _make_engine(None, shards).run(source, detectors=[detector])
    return next(iter(result.values()))


async def run_engine_async(
    source,
    detectors: Optional[Sequence[Union[str, Detector]]] = None,
    config: Optional[EngineConfig] = None,
) -> EngineResult:
    """Asynchronous :func:`run_engine`: await events instead of pulling.

    ``source`` may be an asynchronous source
    (:class:`~repro.engine.QueueSource`,
    :class:`~repro.engine.LineProtocolSource`, any ``__aiter__`` object)
    or anything :func:`run_engine` accepts (adapted cooperatively).  The
    pass is driven by :class:`~repro.engine.AsyncRaceEngine`, which
    shares the per-event stepper with the synchronous engine -- reports
    are identical for identical streams.
    """
    return await AsyncRaceEngine(config).run(source, detectors=detectors)


async def detect_races_async(
    source,
    detector: Union[str, Detector, None] = None,
    **kwargs,
) -> RaceReport:
    """Asynchronous :func:`detect_races` over a push/async source.

    Typical use: a live producer feeds a
    :class:`~repro.engine.QueueSource` (or a socket speaking the STD
    line protocol wrapped in a
    :class:`~repro.engine.LineProtocolSource`) while this coroutine
    analyses it online::

        report = await detect_races_async(queue_source)
    """
    if detector is None:
        detector = WCPDetector(**kwargs)
    elif isinstance(detector, str):
        detector = make_detector(detector, **kwargs)
    result = await AsyncRaceEngine().run(source, detectors=[detector])
    return next(iter(result.values()))


async def start_race_server(
    detectors: Optional[Sequence[Union[str, Detector]]] = None,
    config: Optional[EngineConfig] = None,
    settings=None,
    validate: bool = True,
    on_session_end=None,
):
    """Start a multi-tenant race-analysis server and return it.

    The embedded counterpart of the ``repro-race serve`` CLI subcommand:
    a :class:`~repro.serve.RaceServer` listening per ``settings`` (a
    :class:`~repro.serve.ServeSettings`; default: an ephemeral TCP port
    on localhost), analysing each accepted STD line-protocol stream with
    ``detectors`` (names or a zero-argument factory returning fresh
    instances; default WCP + HB) under per-tenant quotas, idle-stream
    eviction and graceful drain::

        server = await start_race_server(["wcp"])
        print("listening on", server.where)
        ...
        server.request_drain()
        await server.wait_closed()

    The caller owns the server's lifetime: call
    :meth:`~repro.serve.RaceServer.request_drain` (or send SIGTERM when
    ``settings.install_signal_handlers`` is set) to stop accepting and
    checkpoint in-flight sessions, then await
    :meth:`~repro.serve.RaceServer.wait_closed`.
    """
    from repro.serve import RaceServer

    server = RaceServer(
        detectors if detectors is not None else ["wcp", "hb"],
        config=config,
        settings=settings,
        validate=validate,
        on_session_end=on_session_end,
    )
    await server.start()
    return server


def compare_detectors(
    source,
    detectors: Optional[Iterable[Union[str, Detector]]] = None,
    config: Optional[EngineConfig] = None,
    shards: Optional[int] = None,
) -> Dict[str, RaceReport]:
    """Run several detectors over ``source`` in one pass.

    Returns a mapping from detector name to its report.  The default
    selection (WCP and HB) matches the paper's primary comparison.  The
    source is iterated exactly **once** no matter how many detectors (or
    shards -- see ``shards``) run.
    """
    result = _make_engine(config, shards).run(
        source, detectors=list(detectors) if detectors is not None else None
    )
    return dict(result.items())
