"""Top-level convenience API.

Most users only need two calls:

* :func:`detect_races` -- run one detector (WCP by default) on a trace;
* :func:`compare_detectors` -- run several detectors on the same trace and
  get their reports side by side (the shape of a Table 1 row).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Union

from repro.core.detector import Detector
from repro.core.races import RaceReport
from repro.core.wcp import WCPDetector
from repro.cp.detector import CPDetector
from repro.hb.fasttrack import FastTrackDetector
from repro.hb.hb import HBDetector
from repro.lockset.eraser import EraserDetector
from repro.mcm.predictor import MCMPredictor
from repro.trace.trace import Trace

#: Registry of detector names accepted by :func:`make_detector` and the CLI.
_DETECTOR_FACTORIES = {
    "wcp": WCPDetector,
    "hb": HBDetector,
    "fasttrack": FastTrackDetector,
    "cp": CPDetector,
    "eraser": EraserDetector,
    "mcm": MCMPredictor,
}


def available_detectors() -> List[str]:
    """Return the names accepted by :func:`make_detector`."""
    return sorted(_DETECTOR_FACTORIES)


def make_detector(name: str, **kwargs) -> Detector:
    """Instantiate a detector by name (``wcp``, ``hb``, ``fasttrack``, ``cp``,
    ``eraser``, ``mcm``), forwarding keyword arguments to its constructor."""
    try:
        factory = _DETECTOR_FACTORIES[name.lower()]
    except KeyError:
        raise ValueError(
            "unknown detector %r; available: %s"
            % (name, ", ".join(available_detectors()))
        ) from None
    return factory(**kwargs)


def detect_races(
    trace: Trace, detector: Union[str, Detector, None] = None, **kwargs
) -> RaceReport:
    """Run ``detector`` (name, instance or None for WCP) on ``trace``."""
    if detector is None:
        detector = WCPDetector(**kwargs)
    elif isinstance(detector, str):
        detector = make_detector(detector, **kwargs)
    return detector.run(trace)


def compare_detectors(
    trace: Trace,
    detectors: Optional[Iterable[Union[str, Detector]]] = None,
) -> Dict[str, RaceReport]:
    """Run several detectors on the same trace.

    Returns a mapping from detector name to its report.  The default
    selection (WCP and HB) matches the paper's primary comparison.
    """
    if detectors is None:
        detectors = [WCPDetector(), HBDetector()]
    reports: Dict[str, RaceReport] = {}
    for entry in detectors:
        instance = make_detector(entry) if isinstance(entry, str) else entry
        reports[instance.name] = instance.run(trace)
    return reports
