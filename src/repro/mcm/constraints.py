"""Candidate race collection for the maximal-causal-model predictor.

RVPredict only hands the SMT solver queries for *candidate* races: pairs of
conflicting accesses in the current window.  We reproduce the same
pipeline: group the window's accesses by variable, enumerate conflicting
pairs, de-duplicate them by program-location pair (the unit reported in
Table 1), and order the candidates so that "cheap" pairs (close together in
the window) are attempted before expensive ones -- mirroring the fact that
an SMT solver typically resolves small queries before timing out on the
hard ones.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.trace.event import Event
from repro.trace.trace import Trace


class CandidateRace:
    """A conflicting event pair that the solver should try to witness."""

    __slots__ = ("first", "second", "location_pair")

    def __init__(self, first: Event, second: Event) -> None:
        if first.index > second.index:
            first, second = second, first
        self.first = first
        self.second = second
        self.location_pair: FrozenSet[str] = frozenset(
            {first.location(), second.location()}
        )

    @property
    def span(self) -> int:
        """Distance between the two accesses inside the window."""
        return self.second.index - self.first.index

    def __repr__(self) -> str:
        return "CandidateRace(%r, %r)" % (self.first, self.second)


def collect_candidates(
    window: Trace,
    skip_thread_ordered: bool = True,
    per_location_limit: int = 3,
) -> List[CandidateRace]:
    """Return the candidate races of ``window``.

    Parameters
    ----------
    window:
        The trace fragment under analysis.
    skip_thread_ordered:
        Ignored pairs from the same thread are never candidates (they are
        not conflicting by definition); this flag is kept for signature
        compatibility with callers that pre-filter differently.
    per_location_limit:
        Keep at most this many representative event pairs per distinct
        location pair.  The first witnessed representative proves the
        location pair racy; extra representatives give the solver more than
        one chance when the earliest occurrence is hard to reorder.
    """
    del skip_thread_ordered  # conflicting pairs are cross-thread by definition

    by_variable: Dict[str, List[Event]] = defaultdict(list)
    for event in window:
        if event.is_access():
            by_variable[event.variable].append(event)

    per_location: Dict[FrozenSet[str], List[CandidateRace]] = defaultdict(list)
    for accesses in by_variable.values():
        for i, first in enumerate(accesses):
            for second in accesses[i + 1:]:
                if not first.conflicts_with(second):
                    continue
                candidate = CandidateRace(first, second)
                bucket = per_location[candidate.location_pair]
                if len(bucket) < per_location_limit:
                    bucket.append(candidate)

    candidates: List[CandidateRace] = []
    for bucket in per_location.values():
        candidates.extend(bucket)
    # Small spans first: they are the cheapest queries.
    candidates.sort(key=lambda candidate: candidate.span)
    return candidates
