"""The ordering "solver" used by the maximal-causal-model predictor.

RVPredict delegates each candidate race to an SMT solver with a per-window
wall-clock budget.  Our solver answers the same query -- "is there a
correct reordering of this window placing the two accesses next to each
other?" -- with the bounded interleaving search of
:mod:`repro.reordering.witness`, and exposes the same three outcomes:

* ``WITNESSED``  -- a reordering was found (the race is real within the window);
* ``INFEASIBLE`` -- the search space was exhausted without a witness
  (the pair is not racy in this window);
* ``TIMEOUT``    -- the budget ran out first (the query is abandoned, just
  like an SMT timeout).
"""

from __future__ import annotations

import enum
import time
from typing import Optional

from repro.mcm.constraints import CandidateRace
from repro.reordering.witness import WitnessSearchResult, find_race_witness
from repro.trace.trace import Trace


class SolverOutcome(enum.Enum):
    """Result of one candidate-race query."""

    WITNESSED = "witnessed"
    INFEASIBLE = "infeasible"
    TIMEOUT = "timeout"


class OrderingSolver:
    """Budgeted reordering search over a single window.

    Parameters
    ----------
    window:
        The trace fragment being analysed.
    time_budget_s:
        Total wall-clock budget shared by every query on this window
        (RVPredict's per-window solver timeout).
    max_states_per_query:
        Hard cap on interleavings explored per query, so a single
        pathological candidate cannot consume the entire budget.
    """

    def __init__(
        self,
        window: Trace,
        time_budget_s: Optional[float] = None,
        max_states_per_query: int = 50_000,
    ) -> None:
        self.window = window
        self.time_budget_s = time_budget_s
        self.max_states_per_query = max_states_per_query
        self._deadline = (
            time.monotonic() + time_budget_s if time_budget_s is not None else None
        )
        #: Query counters, exposed for the predictor's statistics.
        self.witnessed = 0
        self.infeasible = 0
        self.timeouts = 0
        self.states_explored = 0

    def budget_exhausted(self) -> bool:
        """Return True when the window's wall-clock budget is spent."""
        return self._deadline is not None and time.monotonic() >= self._deadline

    def remaining_time(self) -> Optional[float]:
        """Return the remaining wall-clock budget in seconds (None if unlimited)."""
        if self._deadline is None:
            return None
        return max(0.0, self._deadline - time.monotonic())

    def query(self, candidate: CandidateRace) -> SolverOutcome:
        """Attempt to witness ``candidate``; updates the counters."""
        if self.budget_exhausted():
            self.timeouts += 1
            return SolverOutcome.TIMEOUT

        result: WitnessSearchResult = find_race_witness(
            self.window,
            candidate.first,
            candidate.second,
            max_states=self.max_states_per_query,
            time_budget_s=self.remaining_time(),
        )
        self.states_explored += result.states_explored

        if result.found:
            self.witnessed += 1
            return SolverOutcome.WITNESSED
        if result.exhausted:
            self.timeouts += 1
            return SolverOutcome.TIMEOUT
        self.infeasible += 1
        return SolverOutcome.INFEASIBLE
