"""The windowed maximal-causal-model predictor (RVPredict stand-in).

The predictor slices the trace into fixed-size windows, collects candidate
conflicting pairs per window, and asks the
:class:`~repro.mcm.solver.OrderingSolver` -- under a per-window time budget
-- for a correct-reordering witness for each candidate.  The reported races
are exactly the witnessed location pairs.

This reproduces the two failure modes the paper attributes to RVPredict
(Section 4.3): races whose accesses land in different windows are
structurally invisible, and hard windows burn the solver budget and report
nothing further.  The ``window_size`` and ``solver_timeout_s`` parameters
correspond one-to-one to the parameter grid of Table 1 and Figure 7.
"""

from __future__ import annotations

from typing import List, Optional

from repro.analysis.windowing import HeldLockTracker, make_window_trace
from repro.core.detector import Detector
from repro.mcm.constraints import collect_candidates
from repro.mcm.solver import OrderingSolver, SolverOutcome
from repro.trace.event import Event
from repro.trace.trace import Trace


class MCMPredictor(Detector):
    """Windowed predictive race detection over the maximal causal model.

    Parameters
    ----------
    window_size:
        Number of events per window (RVPredict's ``--window``), default 1000.
    solver_timeout_s:
        Wall-clock budget per window (RVPredict's solver timeout), default
        ``None`` (unbounded -- maximal prediction per window).
    max_states_per_query:
        Cap on interleavings explored per candidate pair.
    per_location_limit:
        Representative event pairs kept per candidate location pair.
    """

    name = "MCM"

    def __init__(
        self,
        window_size: int = 1000,
        solver_timeout_s: Optional[float] = None,
        max_states_per_query: int = 50_000,
        per_location_limit: int = 3,
    ) -> None:
        super().__init__()
        if window_size <= 0:
            raise ValueError("window_size must be positive")
        self.window_size = window_size
        self.solver_timeout_s = solver_timeout_s
        self.max_states_per_query = max_states_per_query
        self.per_location_limit = per_location_limit

    def reset(self, trace: Trace) -> None:
        self._trace = trace
        self._new_report(trace)
        self._buffer: List[Event] = []
        self._windows = 0
        self._windows_timed_out = 0
        self._candidates_total = 0
        self._candidates_witnessed = 0
        self._candidates_timeout = 0
        self._lock_context = HeldLockTracker()

    def process(self, event: Event) -> None:
        self._buffer.append(event)
        if len(self._buffer) >= self.window_size:
            self._analyze_window()

    def _analyze_window(self) -> None:
        if not self._buffer:
            return
        carried = self._lock_context.carried_prefix()
        for event in self._buffer:
            self._lock_context.observe(event)
        window = make_window_trace(
            self._buffer, carried,
            "%s#w%d" % (self._trace.name, self._windows),
        )
        self._buffer = []
        self._windows += 1

        candidates = collect_candidates(
            window, per_location_limit=self.per_location_limit
        )
        self._candidates_total += len(candidates)

        solver = OrderingSolver(
            window,
            time_budget_s=self.solver_timeout_s,
            max_states_per_query=self.max_states_per_query,
        )
        witnessed_locations = set()
        timed_out = False
        for candidate in candidates:
            if candidate.location_pair in witnessed_locations:
                continue
            if solver.budget_exhausted():
                timed_out = True
                break
            outcome = solver.query(candidate)
            if outcome is SolverOutcome.WITNESSED:
                witnessed_locations.add(candidate.location_pair)
                self.report.add(candidate.first, candidate.second)
                self._candidates_witnessed += 1
            elif outcome is SolverOutcome.TIMEOUT:
                self._candidates_timeout += 1
        if timed_out or solver.timeouts:
            self._windows_timed_out += 1

    def finish(self) -> None:
        self._analyze_window()
        self.report.stats["windows"] = float(self._windows)
        self.report.stats["windows_timed_out"] = float(self._windows_timed_out)
        self.report.stats["window_size"] = float(self.window_size)
        if self.solver_timeout_s is not None:
            self.report.stats["solver_timeout_s"] = float(self.solver_timeout_s)
        self.report.stats["candidates"] = float(self._candidates_total)
        self.report.stats["candidates_witnessed"] = float(self._candidates_witnessed)
        self.report.stats["candidates_timeout"] = float(self._candidates_timeout)
