"""Maximal-causal-model predictor (the RVPredict stand-in).

RVPredict encodes a bounded window of the trace as an SMT formula whose
models are the correct reorderings of the window and asks a solver whether
any model puts a conflicting pair next to each other.  The tool is closed
source and SMT solvers are not available offline, so this subpackage
provides a behaviourally equivalent substitute:

* the *window* and *solver timeout* knobs are identical to RVPredict's
  (Table 1 columns 8-9, 14-15 and Figure 7 sweep over them),
* within a window the predictor is maximal: it enumerates correct
  reorderings with the bounded search of :mod:`repro.reordering.witness`,
  finding every predictable race of the fragment given enough budget,
* and it fails the same way RVPredict fails: races spanning two windows
  are invisible, and windows whose search exceeds the timeout report
  nothing further.

See DESIGN.md, "Substitutions", for the argument that this preserves the
paper's qualitative comparison.
"""

from repro.mcm.constraints import CandidateRace, collect_candidates
from repro.mcm.solver import OrderingSolver, SolverOutcome
from repro.mcm.predictor import MCMPredictor

__all__ = [
    "CandidateRace",
    "collect_candidates",
    "OrderingSolver",
    "SolverOutcome",
    "MCMPredictor",
]
