"""Vector clocks, epochs and thread-id interning.

This subpackage provides the logical-time machinery used by every partial
order based detector in the library:

* :class:`~repro.vectorclock.clock.VectorClock` -- a mutable sparse
  mapping from thread identifiers to integer local times, supporting the
  join (pointwise maximum), pointwise comparison and component assignment
  operations required by the paper's Algorithm 1.  This is the public,
  reporting-facing representation (keyed by the original thread names).
* :class:`~repro.vectorclock.dense.DenseClock` -- the array-backed hot-path
  representation keyed by interned integer tids; same operation set,
  strictly cheaper constants.  Detectors use it internally by default
  (``clock_backend="dense"``).
* :class:`~repro.vectorclock.registry.ThreadRegistry` -- the interning
  table that maps thread names to dense tids at the trace/engine boundary
  and converts clocks losslessly between both representations.
* :class:`~repro.vectorclock.epoch.Epoch` -- the FastTrack-style compressed
  representation ``c@t`` of a vector clock that is known to have a single
  relevant component.  Used by the epoch-optimised HB detector and (via
  the access history's epoch fast path) by WCP.
"""

from repro.vectorclock.clock import VectorClock
from repro.vectorclock.dense import DenseClock
from repro.vectorclock.epoch import Epoch
from repro.vectorclock.registry import ThreadRegistry
from repro.vectorclock import codec

#: The classes usable as detector-internal clocks, by backend name.
CLOCK_BACKENDS = {"dense": DenseClock, "dict": VectorClock}


def clock_class(backend: str):
    """Return the clock class for ``backend`` ("dense" or "dict")."""
    try:
        return CLOCK_BACKENDS[backend]
    except KeyError:
        raise ValueError(
            "unknown clock backend %r; available: %s"
            % (backend, ", ".join(sorted(CLOCK_BACKENDS)))
        ) from None


__all__ = [
    "VectorClock",
    "DenseClock",
    "Epoch",
    "ThreadRegistry",
    "CLOCK_BACKENDS",
    "clock_class",
    "codec",
]
