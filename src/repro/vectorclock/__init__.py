"""Vector clocks and epochs.

This subpackage provides the logical-time machinery used by every partial
order based detector in the library:

* :class:`~repro.vectorclock.clock.VectorClock` -- a mutable mapping from
  thread identifiers to integer local times, supporting the join
  (pointwise maximum), pointwise comparison and component assignment
  operations required by the paper's Algorithm 1.
* :class:`~repro.vectorclock.epoch.Epoch` -- the FastTrack-style compressed
  representation ``t@c`` of a vector clock that is known to have a single
  relevant component.  Used by the epoch-optimised HB detector.
"""

from repro.vectorclock.clock import VectorClock
from repro.vectorclock.epoch import Epoch

__all__ = ["VectorClock", "Epoch"]
