"""FastTrack-style epochs.

The paper lists "use of epoch based optimizations for improving memory
requirements" as future work (Section 6).  We implement the classic
FastTrack epoch representation for the HB detector
(:class:`repro.hb.fasttrack.FastTrackDetector`).

An epoch ``c@t`` records that a variable's last relevant access was at local
time ``c`` of thread ``t``.  Comparing an epoch against a vector clock is an
O(1) operation, whereas comparing two vector clocks is O(T); the FastTrack
insight is that the vast majority of accesses can be handled with epochs
alone.

Epochs are agnostic to the clock representation: ``thread`` may be a
string thread identifier (sparse :class:`VectorClock`) or an interned
integer tid (:class:`~repro.vectorclock.dense.DenseClock`); the only
requirement on the clock passed to :meth:`Epoch.happens_before` is a
``get`` method.  The WCP access history
(:mod:`repro.core.history`) applies the same epoch idea inline, with an
extra exactness condition that the WCP timestamping requires.
"""

from __future__ import annotations

from typing import Hashable, Optional

from repro.vectorclock.clock import VectorClock

ThreadId = Hashable


class Epoch:
    """A compressed single-component clock ``c@t``.

    Examples
    --------
    >>> e = Epoch("t1", 3)
    >>> e.happens_before(VectorClock({"t1": 5}))
    True
    >>> e.happens_before(VectorClock({"t2": 9}))
    False
    """

    __slots__ = ("thread", "time")

    def __init__(self, thread: Optional[ThreadId], time: int) -> None:
        if time < 0:
            raise ValueError("epoch time must be non-negative")
        self.thread = thread
        self.time = time

    @classmethod
    def bottom(cls) -> "Epoch":
        """Return the empty epoch (no access recorded yet)."""
        return cls(None, 0)

    def is_bottom(self) -> bool:
        """Return True when no access has been recorded."""
        return self.time == 0 and self.thread is None

    def happens_before(self, clock: VectorClock) -> bool:
        """Return True when this epoch is ordered before ``clock``.

        The bottom epoch is ordered before everything.
        """
        if self.is_bottom():
            return True
        return self.time <= clock.get(self.thread)

    def same_thread(self, thread: ThreadId) -> bool:
        """Return True when the epoch belongs to ``thread``."""
        return self.thread == thread

    def to_bytes(self) -> bytes:
        """Serialize through the shared codec (:mod:`repro.vectorclock.codec`)."""
        from repro.vectorclock.codec import encode

        return encode(self)

    @classmethod
    def from_bytes(cls, data: bytes) -> "Epoch":
        """Inverse of :meth:`to_bytes`."""
        from repro.vectorclock.codec import CodecError, decode

        epoch = decode(data)
        if not isinstance(epoch, cls):
            raise CodecError(
                "blob does not contain an epoch (got %s)" % type(epoch).__name__
            )
        return epoch

    def to_clock(self) -> VectorClock:
        """Expand the epoch into a full vector clock."""
        if self.is_bottom():
            return VectorClock.bottom()
        return VectorClock.single(self.thread, self.time)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Epoch):
            return NotImplemented
        return self.thread == other.thread and self.time == other.time

    def __hash__(self) -> int:
        return hash((self.thread, self.time))

    def __repr__(self) -> str:
        if self.is_bottom():
            return "Epoch(bottom)"
        return "Epoch(%d@%r)" % (self.time, self.thread)
