"""Array-backed vector clocks over interned thread ids.

:class:`DenseClock` is the hot-path representation of a vector time: a
flat buffer of ints indexed by the dense integer tids handed out by a
:class:`~repro.vectorclock.registry.ThreadRegistry`.  It implements the
same operation set as the sparse, dict-based
:class:`~repro.vectorclock.clock.VectorClock` (pointwise comparison, join,
component assignment, bottom) with strictly cheaper constants:

* component reads/writes are flat indexing instead of string hashing;
* ``copy`` is a C-level buffer copy;
* ``join`` / ``<=`` are tight loops over small int buffers -- compiled to
  C when the clock kernels are available.

The backing store is chosen once, at import, by
:mod:`repro.vectorclock.kernels`:

* **cffi backend** -- components live in a preallocated ``array('q')``
  (a contiguous int64 buffer); ``merge`` / ``<=`` / ``==`` call the
  compiled kernels through cached ``from_buffer`` pointers, so the
  steady-state cost per operation is one C call.  The pointer cache is
  dropped before any operation that must grow or replace the buffer
  (growing an exported buffer is illegal), and rebuilt lazily.
* **python backend** -- components live in a plain ``list`` and the
  methods are the tuned pure-Python loops.  This is bit-for-bit the
  pre-kernel implementation, so machines without a C toolchain keep
  their exact previous performance.

Both backends expose identical semantics (asserted by the differential
suite in ``tests/test_dense_kernels.py``): the buffer grows lazily -- a
tid beyond the current length reads as 0 -- and trailing zeros are
insignificant (``[1, 0]`` and ``[1]`` are equal clocks).

The detectors choose between the dense and sparse representations via
their ``clock_backend`` parameter ("dense" by default, "dict" for the
legacy sparse representation); both are keyed by tids internally, and
``ThreadRegistry.to_public`` converts either back to the name-keyed
``VectorClock`` used in reports and tests.  :meth:`merge` -- a join that
reports whether it changed anything -- exists on both classes and is what
lets the WCP detector cache each thread's ``C_t`` and rebuild it only when
``P_t`` actually grew.
"""

from __future__ import annotations

from array import array
from operator import le as _le
from typing import Dict, Iterable, Iterator, List, Mapping, Tuple, Union

from repro.vectorclock import kernels

_CFFI = kernels.BACKEND == "cffi"
if _CFFI:
    _from_buffer = kernels.ffi.from_buffer
    _dc_merge = kernels.lib.dc_merge
    _dc_leq = kernels.lib.dc_leq
    _dc_eq = kernels.lib.dc_eq


def _new_times(values=()) -> Union[list, array]:
    """Build a backing buffer for the active backend."""
    if _CFFI:
        return array("q", values)
    return list(values)


class DenseClock:
    """A dense (array-backed) vector clock keyed by interned thread ids.

    Examples
    --------
    >>> a = DenseClock.single(0, 3)
    >>> b = DenseClock.single(1, 5)
    >>> (a | b).as_dict()
    {0: 3, 1: 5}
    >>> a <= (a | b)
    True
    >>> b <= a
    False
    """

    # ``_cd`` caches the cffi pointer into ``_times`` (None when invalid
    # or on the python backend).  Any rebinding or growth of ``_times``
    # must reset it first: growing an array whose buffer is exported
    # raises BufferError, and a stale pointer would read freed memory.
    __slots__ = ("_times", "_cd")

    def __init__(
        self, times: Union[None, Mapping[int, int], Iterable[int]] = None
    ) -> None:
        self._cd = None
        if times is None:
            self._times = _new_times()
        elif isinstance(times, Mapping):
            self._times = _new_times()
            for tid, value in times.items():
                self.assign(tid, value)
        else:
            self._times = _new_times(int(value) for value in times)
            for value in self._times:
                if value < 0:
                    raise ValueError(
                        "vector clock components must be non-negative"
                    )

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def bottom(cls) -> "DenseClock":
        """Return the bottom vector time (all components zero)."""
        return cls()

    @classmethod
    def single(cls, tid: int, value: int) -> "DenseClock":
        """Return a clock whose only non-zero component is ``tid -> value``."""
        clock = cls()
        clock.assign(tid, value)
        return clock

    @classmethod
    def _from_times(cls, values: Iterable[int]) -> "DenseClock":
        """Wrap already-validated components (codec/internal fast path)."""
        clock = cls.__new__(cls)
        clock._times = _new_times(values)
        clock._cd = None
        return clock

    def copy(self) -> "DenseClock":
        """Return an independent copy of this clock."""
        clone = DenseClock.__new__(DenseClock)
        clone._times = self._times[:]
        clone._cd = None
        return clone

    # ------------------------------------------------------------------ #
    # Reads
    # ------------------------------------------------------------------ #

    def get(self, tid: int) -> int:
        """Return the component for ``tid`` (0 if beyond the stored prefix)."""
        times = self._times
        return times[tid] if tid < len(times) else 0

    def __getitem__(self, tid: int) -> int:
        return self.get(tid)

    def threads(self) -> Iterator[int]:
        """Iterate over tids with non-zero components."""
        return (tid for tid, value in enumerate(self._times) if value)

    def items(self) -> Iterator[Tuple[int, int]]:
        """Iterate over (tid, time) pairs with non-zero time."""
        return (
            (tid, value) for tid, value in enumerate(self._times) if value
        )

    def as_dict(self) -> Dict[int, int]:
        """Return the non-zero components as a plain dict keyed by tid."""
        return {tid: value for tid, value in enumerate(self._times) if value}

    def is_bottom(self) -> bool:
        """Return True when every component is zero."""
        return not any(self._times)

    def width(self) -> int:
        """Return the number of non-zero components (memory footprint proxy)."""
        return sum(1 for value in self._times if value)

    # ------------------------------------------------------------------ #
    # Mutators
    # ------------------------------------------------------------------ #

    def merge(self, other: "DenseClock") -> bool:
        """In-place pointwise maximum; returns True when a component grew."""
        mine = self._times
        theirs = other._times
        if len(mine) < len(theirs):
            self._cd = None
            mine.extend([0] * (len(theirs) - len(mine)))
        changed = False
        for tid, value in enumerate(theirs):
            if value > mine[tid]:
                mine[tid] = value
                changed = True
        return changed

    def join(self, other: "DenseClock") -> "DenseClock":
        """In-place pointwise maximum with ``other``; returns ``self``."""
        self.merge(other)
        return self

    def assign(self, tid: int, value: int) -> "DenseClock":
        """In-place component assignment ``self[tid := value]``; returns ``self``."""
        if value < 0:
            raise ValueError("vector clock components must be non-negative")
        if tid < 0:
            raise ValueError("thread ids must be non-negative")
        times = self._times
        if tid >= len(times):
            if not value:
                return self
            self._cd = None
            times.extend([0] * (tid + 1 - len(times)))
        times[tid] = value
        return self

    def increment(self, tid: int, amount: int = 1) -> "DenseClock":
        """Increment the ``tid`` component in place; returns ``self``."""
        return self.assign(tid, self.get(tid) + amount)

    def clear(self) -> "DenseClock":
        """Reset every component to zero; returns ``self``."""
        self._times = _new_times()
        self._cd = None
        return self

    def update_from(self, other: "DenseClock") -> "DenseClock":
        """Overwrite this clock with a copy of ``other``; returns ``self``."""
        self._times = other._times[:]
        self._cd = None
        return self

    # ------------------------------------------------------------------ #
    # Operators (non-mutating)
    # ------------------------------------------------------------------ #

    def __or__(self, other: "DenseClock") -> "DenseClock":
        return self.copy().join(other)

    def __le__(self, other: "DenseClock") -> bool:
        mine = self._times
        theirs = other._times
        # map() stops at the shorter list, so any stored suffix of ``mine``
        # beyond ``theirs`` must additionally be all-zero.
        if len(mine) <= len(theirs):
            return all(map(_le, mine, theirs))
        return all(map(_le, mine, theirs)) and not any(mine[len(theirs):])

    def __lt__(self, other: "DenseClock") -> bool:
        return self <= other and self != other

    def __ge__(self, other: "DenseClock") -> bool:
        return other <= self

    def __gt__(self, other: "DenseClock") -> bool:
        return other < self

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DenseClock):
            return NotImplemented
        mine = self._times
        theirs = other._times
        if len(mine) > len(theirs):
            mine, theirs = theirs, mine
        n = len(mine)
        return mine == theirs[:n] and not any(theirs[n:])

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def __hash__(self) -> int:
        return hash(
            frozenset(
                (tid, value) for tid, value in enumerate(self._times) if value
            )
        )

    def concurrent_with(self, other: "DenseClock") -> bool:
        """Return True when neither clock is pointwise <= the other."""
        return not (self <= other) and not (other <= self)

    # ------------------------------------------------------------------ #
    # Pickling (the cached kernel pointer must never cross the boundary)
    # ------------------------------------------------------------------ #

    def __getstate__(self) -> List[int]:
        return list(self._times)

    def __setstate__(self, state: List[int]) -> None:
        self._times = _new_times(state)
        self._cd = None

    def __reduce__(self):
        return (DenseClock._from_times, (list(self._times),))

    # ------------------------------------------------------------------ #
    # Serialization / tid remapping (shard-boundary protocol)
    # ------------------------------------------------------------------ #

    def to_bytes(self) -> bytes:
        """Serialize through the shared codec (:mod:`repro.vectorclock.codec`).

        Trailing zeros are stripped first, so equal clocks serialize
        identically regardless of how far their backing buffers grew.
        """
        from repro.vectorclock.codec import encode

        return encode(self)

    @classmethod
    def from_bytes(cls, data: bytes) -> "DenseClock":
        """Inverse of :meth:`to_bytes`."""
        from repro.vectorclock.codec import decode_clock

        return decode_clock(data)

    def remapped(self, mapping: List[int]) -> "DenseClock":
        """Return a copy with every tid translated through ``mapping``.

        ``mapping[old_tid] -> new_tid`` is the remap table produced by
        :meth:`repro.vectorclock.registry.ThreadRegistry.merge_names`;
        components beyond the table (necessarily zero for clocks produced
        alongside it) are dropped.  Used when merging clocks from shard
        workers, whose private registries number threads in (different)
        orders of local first appearance.
        """
        clock = DenseClock()
        for tid, value in enumerate(self._times):
            if value and tid < len(mapping):
                clock.assign(mapping[tid], value)
        return clock

    # ------------------------------------------------------------------ #
    # Misc
    # ------------------------------------------------------------------ #

    def __repr__(self) -> str:
        inner = ", ".join(
            "%d: %d" % (tid, value)
            for tid, value in enumerate(self._times)
            if value
        )
        return "DenseClock({%s})" % inner

    def __len__(self) -> int:
        return self.width()


if _CFFI:
    # Kernel-backed hot methods, patched over the pure-Python definitions
    # once at import.  Each binds the two buffers' cached C pointers (one
    # ``from_buffer`` per buffer *generation*, not per call) and performs
    # the whole loop in one compiled call.

    def _merge_kernel(self: DenseClock, other: DenseClock) -> bool:
        mine = self._times
        theirs = other._times
        n = len(theirs)
        if len(mine) < n:
            self._cd = None  # release the export before growing
            mine.extend([0] * (n - len(mine)))
            cd = self._cd = _from_buffer("long long *", mine)
        else:
            cd = self._cd
            if cd is None:
                cd = self._cd = _from_buffer("long long *", mine)
        ocd = other._cd
        if ocd is None:
            ocd = other._cd = _from_buffer("long long *", theirs)
        return _dc_merge(cd, ocd, n) != 0

    def _leq_kernel(self: DenseClock, other: DenseClock) -> bool:
        mine = self._times
        theirs = other._times
        cd = self._cd
        if cd is None:
            cd = self._cd = _from_buffer("long long *", mine)
        ocd = other._cd
        if ocd is None:
            ocd = other._cd = _from_buffer("long long *", theirs)
        return _dc_leq(cd, len(mine), ocd, len(theirs)) != 0

    def _eq_kernel(self: DenseClock, other: object):
        if not isinstance(other, DenseClock):
            return NotImplemented
        mine = self._times
        theirs = other._times
        cd = self._cd
        if cd is None:
            cd = self._cd = _from_buffer("long long *", mine)
        ocd = other._cd
        if ocd is None:
            ocd = other._cd = _from_buffer("long long *", theirs)
        return _dc_eq(cd, len(mine), ocd, len(theirs)) != 0

    DenseClock.merge = _merge_kernel  # type: ignore[method-assign]
    DenseClock.__le__ = _leq_kernel  # type: ignore[method-assign]
    DenseClock.__eq__ = _eq_kernel  # type: ignore[method-assign]


# --------------------------------------------------------------------- #
# Backend-agnostic clock wire format
# --------------------------------------------------------------------- #
#
# The sharded engine ships per-thread clocks across process boundaries at
# batch boundaries, and the checkpoint subsystem persists them inside
# detector snapshots.  Both speak the *same* wire format: the shared
# codec of :mod:`repro.vectorclock.codec` (self-describing tags, varint
# components).  These two functions are kept as the historical entry
# points of the shard-boundary protocol; they are now thin aliases.

def serialize_clock(clock) -> bytes:
    """Serialize a tid-keyed clock (either backend) for transport."""
    from repro.vectorclock.codec import encode_clock

    return encode_clock(clock)


def deserialize_clock(data: bytes) -> DenseClock:
    """Inverse of :func:`serialize_clock`; always returns a DenseClock."""
    from repro.vectorclock.codec import decode_clock

    return decode_clock(data)
