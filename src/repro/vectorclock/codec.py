"""The shared binary codec for detector-state serialization.

Before the checkpoint/resume subsystem, detector state left a process
through three bespoke channels: :func:`~repro.vectorclock.dense.DenseClock.to_bytes`
packed flat int64 arrays, ``serialize_clock`` wrapped them in a
backend tag, and everything else (registries, reports, whole detectors)
rode raw :mod:`pickle`.  Pickle is unacceptable for a snapshot that a
production service may accept back over a socket -- ``pickle.loads`` on
attacker-supplied bytes is arbitrary code execution -- and three
bespoke formats cannot share a version header.

This module is the single codec all of them now route through.  It is a
small, self-describing, *safe* structural format:

* primitives -- None, bools, integers (zigzag varints), floats, strings,
  bytes;
* containers -- lists, tuples, dicts, sets (sets are serialized in a
  canonical sorted order so equal states produce equal bytes);
* domain values -- :class:`~repro.vectorclock.dense.DenseClock`,
  :class:`~repro.vectorclock.clock.VectorClock`,
  :class:`~repro.vectorclock.epoch.Epoch` and
  :class:`~repro.trace.event.Event` -- the vocabulary every detector's
  state is built from.

Decoding reconstructs exactly the encoded types (a ``DenseClock`` comes
back as a ``DenseClock``, a dict-backend ``VectorClock`` as a
``VectorClock``), so a detector restored from a snapshot keeps the clock
backend it was configured with.  Decoding never executes code and fails
with :class:`CodecError` on malformed or truncated input.

Integers use LEB128 varints (zigzag for signed values), so the common
small clock components cost one byte instead of eight; clocks strip
trailing zeros before encoding so equal clocks encode identically no
matter how far their backing arrays grew.
"""

from __future__ import annotations

import struct
from typing import Any, List, Tuple

from repro.trace.event import Event, EventType
from repro.vectorclock.clock import VectorClock
from repro.vectorclock.dense import DenseClock
from repro.vectorclock.epoch import Epoch

__all__ = [
    "CodecError",
    "encode",
    "decode",
    "encode_clock",
    "decode_clock",
]


class CodecError(ValueError):
    """Raised when a blob cannot be decoded (malformed, truncated, unknown tag)."""


# One-byte value tags.  Kept stable across versions: new types get new
# tags, existing tags never change meaning.
_T_NONE = 0x00
_T_FALSE = 0x01
_T_TRUE = 0x02
_T_INT = 0x03
_T_FLOAT = 0x04
_T_STR = 0x05
_T_BYTES = 0x06
_T_LIST = 0x07
_T_TUPLE = 0x08
_T_DICT = 0x09
_T_SET = 0x0A
_T_DENSE_CLOCK = 0x0B
_T_VECTOR_CLOCK = 0x0C
_T_EPOCH = 0x0D
_T_EVENT = 0x0E

_ETYPE_OF_VALUE = {etype.value: etype for etype in EventType}


# --------------------------------------------------------------------- #
# Varint primitives
# --------------------------------------------------------------------- #

def _write_uvarint(out: bytearray, value: int) -> None:
    while value > 0x7F:
        out.append((value & 0x7F) | 0x80)
        value >>= 7
    out.append(value)


def _write_varint(out: bytearray, value: int) -> None:
    # Zigzag: small negative values stay small on the wire.
    _write_uvarint(
        out, (value << 1) if value >= 0 else ((-value) << 1) - 1
    )


def _unzigzag(value: int) -> int:
    return (value >> 1) if not (value & 1) else -((value + 1) >> 1)


class _Reader:
    __slots__ = ("data", "pos")

    def __init__(self, data: bytes) -> None:
        self.data = data
        self.pos = 0

    def read_byte(self) -> int:
        try:
            byte = self.data[self.pos]
        except IndexError:
            raise CodecError("truncated blob") from None
        self.pos += 1
        return byte

    def read_uvarint(self) -> int:
        result = 0
        shift = 0
        while True:
            byte = self.read_byte()
            result |= (byte & 0x7F) << shift
            if not byte & 0x80:
                return result
            shift += 7
            if shift > 126:
                raise CodecError("varint too long")

    def read_varint(self) -> int:
        return _unzigzag(self.read_uvarint())

    def read_bytes(self, length: int) -> bytes:
        end = self.pos + length
        if end > len(self.data):
            raise CodecError("truncated blob")
        chunk = self.data[self.pos:end]
        self.pos = end
        return chunk


# --------------------------------------------------------------------- #
# Encoding
# --------------------------------------------------------------------- #

def _canonical_sort_key(item: Any) -> Tuple[str, Any]:
    # Sets have no order; sort within type name so equal sets of the
    # usual key types (ints, strings) always encode identically.
    return (type(item).__name__, item)


def _encode_into(out: bytearray, value: Any) -> None:
    if value is None:
        out.append(_T_NONE)
    elif value is False:
        out.append(_T_FALSE)
    elif value is True:
        out.append(_T_TRUE)
    elif isinstance(value, int):
        out.append(_T_INT)
        _write_varint(out, value)
    elif isinstance(value, float):
        out.append(_T_FLOAT)
        out.extend(struct.pack("<d", value))
    elif isinstance(value, str):
        raw = value.encode("utf-8")
        out.append(_T_STR)
        _write_uvarint(out, len(raw))
        out.extend(raw)
    elif isinstance(value, (bytes, bytearray)):
        out.append(_T_BYTES)
        _write_uvarint(out, len(value))
        out.extend(value)
    elif isinstance(value, list):
        out.append(_T_LIST)
        _write_uvarint(out, len(value))
        for item in value:
            _encode_into(out, item)
    elif isinstance(value, tuple):
        out.append(_T_TUPLE)
        _write_uvarint(out, len(value))
        for item in value:
            _encode_into(out, item)
    elif isinstance(value, dict):
        out.append(_T_DICT)
        _write_uvarint(out, len(value))
        for key, item in value.items():
            _encode_into(out, key)
            _encode_into(out, item)
    elif isinstance(value, (set, frozenset)):
        out.append(_T_SET)
        _write_uvarint(out, len(value))
        for item in sorted(value, key=_canonical_sort_key):
            _encode_into(out, item)
    elif isinstance(value, DenseClock):
        out.append(_T_DENSE_CLOCK)
        _encode_dense(out, value)
    elif isinstance(value, VectorClock):
        out.append(_T_VECTOR_CLOCK)
        pairs = sorted(value.items(), key=_canonical_sort_key)
        _write_uvarint(out, len(pairs))
        for key, component in pairs:
            _encode_into(out, key)
            _write_uvarint(out, component)
    elif isinstance(value, Epoch):
        out.append(_T_EPOCH)
        _encode_into(out, value.thread)
        _write_uvarint(out, value.time)
    elif isinstance(value, Event):
        out.append(_T_EVENT)
        _write_varint(out, value.index)
        _encode_into(out, value.thread)
        _encode_into(out, value.etype.value)
        _encode_into(out, value.target)
        _encode_into(out, value.loc)
        _encode_into(out, value.tid)
    else:
        raise CodecError(
            "cannot encode %r (type %s) -- detector snapshots are built "
            "from codec primitives, clocks, epochs and events only"
            % (value, type(value).__name__)
        )


def _encode_dense(out: bytearray, clock: DenseClock) -> None:
    times = clock._times
    end = len(times)
    while end and not times[end - 1]:
        end -= 1
    _write_uvarint(out, end)
    for component in times[:end]:
        _write_uvarint(out, component)


def encode(value: Any) -> bytes:
    """Encode ``value`` (codec primitives / clocks / epochs / events)."""
    out = bytearray()
    _encode_into(out, value)
    return bytes(out)


# --------------------------------------------------------------------- #
# Decoding
# --------------------------------------------------------------------- #

def _decode_from(reader: _Reader) -> Any:
    tag = reader.read_byte()
    if tag == _T_NONE:
        return None
    if tag == _T_FALSE:
        return False
    if tag == _T_TRUE:
        return True
    if tag == _T_INT:
        return reader.read_varint()
    if tag == _T_FLOAT:
        return struct.unpack("<d", reader.read_bytes(8))[0]
    if tag == _T_STR:
        return reader.read_bytes(reader.read_uvarint()).decode("utf-8")
    if tag == _T_BYTES:
        return reader.read_bytes(reader.read_uvarint())
    if tag == _T_LIST:
        return [_decode_from(reader) for _ in range(reader.read_uvarint())]
    if tag == _T_TUPLE:
        return tuple(
            _decode_from(reader) for _ in range(reader.read_uvarint())
        )
    if tag == _T_DICT:
        count = reader.read_uvarint()
        result = {}
        for _ in range(count):
            key = _decode_from(reader)
            result[key] = _decode_from(reader)
        return result
    if tag == _T_SET:
        return {_decode_from(reader) for _ in range(reader.read_uvarint())}
    if tag == _T_DENSE_CLOCK:
        return _decode_dense(reader)
    if tag == _T_VECTOR_CLOCK:
        count = reader.read_uvarint()
        clock = VectorClock()
        for _ in range(count):
            key = _decode_from(reader)
            clock.assign(key, reader.read_uvarint())
        return clock
    if tag == _T_EPOCH:
        thread = _decode_from(reader)
        return Epoch(thread, reader.read_uvarint())
    if tag == _T_EVENT:
        index = reader.read_varint()
        thread = _decode_from(reader)
        etype_value = _decode_from(reader)
        target = _decode_from(reader)
        loc = _decode_from(reader)
        tid = _decode_from(reader)
        try:
            etype = _ETYPE_OF_VALUE[etype_value]
        except KeyError:
            raise CodecError("unknown event type %r" % (etype_value,)) from None
        return Event(index, thread, etype, target, loc, tid=tid)
    raise CodecError("unknown codec tag 0x%02x" % tag)


def _decode_dense(reader: _Reader) -> DenseClock:
    count = reader.read_uvarint()
    # _from_times builds the active backend's backing buffer (list or
    # array('q')) without re-validating components the codec produced.
    return DenseClock._from_times(
        reader.read_uvarint() for _ in range(count)
    )


def decode(data: bytes) -> Any:
    """Inverse of :func:`encode`; raises :class:`CodecError` on bad input."""
    reader = _Reader(data)
    value = _decode_from(reader)
    if reader.pos != len(data):
        raise CodecError(
            "%d trailing byte(s) after decoded value" % (len(data) - reader.pos)
        )
    return value


# --------------------------------------------------------------------- #
# Clock wire helpers (the shard-boundary protocol's unit)
# --------------------------------------------------------------------- #

def encode_clock(clock) -> bytes:
    """Serialize a tid-keyed clock of either backend for transport."""
    out = bytearray()
    _encode_into(out, clock)
    return bytes(out)


def decode_clock(data: bytes) -> DenseClock:
    """Decode a clock blob, coercing to the canonical :class:`DenseClock`.

    The shard-boundary merge side only ever joins and remaps, for which
    the dense form is canonical; snapshot restore paths that must keep
    the original backend use :func:`decode` instead.
    """
    value = decode(data)
    if isinstance(value, DenseClock):
        return value
    if isinstance(value, VectorClock):
        dense = DenseClock()
        for tid, component in value.items():
            dense.assign(tid, component)
        return dense
    raise CodecError("blob does not contain a clock (got %s)"
                     % type(value).__name__)
