"""Compiled clock kernels (cffi fast path with a governed fallback).

The dense clock's three hot operations -- in-place join (``merge``),
pointwise comparison (``<=``) and equality -- are tight loops over small
int buffers.  Pure Python pays interpreter dispatch per component; this
module compiles the loops to C once per machine and exposes them through
cffi's API mode, whose per-call overhead is low enough to win even at the
typical clock width of a dozen threads.  :class:`~repro.vectorclock.dense.
DenseClock` switches its backing store to a flat ``array('q')`` buffer
and its hot methods to these kernels when, and only when, the compiled
module is available.

Backend selection is explicit, never accidental:

* ``REPRO_CLOCK_KERNEL=auto`` (default) -- use the compiled kernels when
  a C compiler (and cffi) is available, otherwise fall back to the pure
  Python implementation and record why in :data:`FALLBACK_REASON`.
* ``REPRO_CLOCK_KERNEL=cffi`` -- require the compiled kernels; raise
  :class:`KernelBuildError` at import when they cannot be built.  CI sets
  this on images that are supposed to have a toolchain, so a silently
  broken build fails the pipeline instead of quietly benchmarking the
  fallback.
* ``REPRO_CLOCK_KERNEL=python`` -- force the pure Python implementation
  (used by the differential test matrix to cover both paths).

The compiled module is cached under ``REPRO_KERNEL_CACHE`` (default
``~/.cache/repro-race/kernels``), keyed by a hash of the C source and the
interpreter version, so rebuilding only happens when the kernels change.
Builds are atomic (private build dir, then ``os.replace``) because shard
worker processes may import this module concurrently.

The exported surface is deliberately tiny: :data:`BACKEND` (``"cffi"`` or
``"python"``), :data:`FALLBACK_REASON`, and -- in cffi mode -- the ``ffi``
/ ``lib`` pair the dense clock binds its methods to.  Everything else in
the library is backend-agnostic.
"""

from __future__ import annotations

import hashlib
import os
import sys
import tempfile
from typing import Optional


class KernelBuildError(RuntimeError):
    """Raised when ``REPRO_CLOCK_KERNEL=cffi`` and the build fails."""


_CDEF = """
long long dc_merge(long long *dst, const long long *src, long long n);
int dc_leq(const long long *a, long long na,
           const long long *b, long long nb);
int dc_eq(const long long *a, long long na,
          const long long *b, long long nb);
"""

_C_SOURCE = """
/* Kernels for dense (array-backed) vector clocks.  Buffers are int64
 * components indexed by interned thread id; lengths are logical element
 * counts.  Trailing zeros are insignificant, mirroring the Python
 * semantics: [1, 0] and [1] are the same clock. */

long long dc_merge(long long *dst, const long long *src, long long n) {
    /* In-place pointwise maximum of src into dst (len(dst) >= n).
     * Returns nonzero when any dst component grew. */
    long long changed = 0;
    for (long long i = 0; i < n; i++) {
        if (src[i] > dst[i]) { dst[i] = src[i]; changed = 1; }
    }
    return changed;
}

int dc_leq(const long long *a, long long na,
           const long long *b, long long nb) {
    /* Pointwise a <= b with trailing-zero semantics. */
    long long n = na < nb ? na : nb;
    for (long long i = 0; i < n; i++)
        if (a[i] > b[i]) return 0;
    for (long long i = n; i < na; i++)
        if (a[i]) return 0;
    return 1;
}

int dc_eq(const long long *a, long long na,
          const long long *b, long long nb) {
    /* Equality with trailing-zero semantics. */
    long long n = na < nb ? na : nb;
    for (long long i = 0; i < n; i++)
        if (a[i] != b[i]) return 0;
    for (long long i = n; i < na; i++)
        if (a[i]) return 0;
    for (long long i = n; i < nb; i++)
        if (b[i]) return 0;
    return 1;
}
"""

#: Resolved backend: "cffi" (compiled kernels active) or "python".
BACKEND = "python"

#: Why the python fallback was chosen (None while the kernels are active).
FALLBACK_REASON: Optional[str] = None

#: cffi handles, bound by the dense clock in cffi mode; None otherwise.
ffi = None
lib = None


def _cache_dir() -> str:
    configured = os.environ.get("REPRO_KERNEL_CACHE")
    if configured:
        return configured
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = xdg if xdg else os.path.join(os.path.expanduser("~"), ".cache")
    return os.path.join(base, "repro-race", "kernels")


def _module_name() -> str:
    digest = hashlib.sha256(
        (_CDEF + _C_SOURCE).encode("utf-8")
    ).hexdigest()[:12]
    return "_repro_clock_kernels_%s_cp%d%d" % (
        digest, sys.version_info[0], sys.version_info[1]
    )


def _find_cached(cache: str, name: str) -> Optional[str]:
    try:
        entries = os.listdir(cache)
    except OSError:
        return None
    for entry in entries:
        if entry.startswith(name) and entry.endswith((".so", ".pyd")):
            return os.path.join(cache, entry)
    return None


def _compile(cache: str, name: str) -> str:
    """Build the extension into ``cache`` atomically; return the .so path."""
    import cffi

    os.makedirs(cache, exist_ok=True)
    build_dir = tempfile.mkdtemp(prefix=name + "-build-", dir=cache)
    try:
        builder = cffi.FFI()
        builder.cdef(_CDEF)
        builder.set_source(name, _C_SOURCE)
        built = builder.compile(tmpdir=build_dir, verbose=False)
        target = os.path.join(cache, os.path.basename(built))
        os.replace(built, target)
        return target
    finally:
        import shutil

        shutil.rmtree(build_dir, ignore_errors=True)


def _load(path: str, name: str):
    import importlib.util

    spec = importlib.util.spec_from_file_location(name, path)
    if spec is None or spec.loader is None:
        raise ImportError("cannot load compiled kernels from %s" % path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _activate() -> Optional[str]:
    """Try to bring the compiled kernels up; return a failure reason."""
    global BACKEND, ffi, lib
    try:
        import cffi  # noqa: F401
    except ImportError:
        return "cffi is not installed"
    cache = _cache_dir()
    name = _module_name()
    path = _find_cached(cache, name)
    try:
        if path is None:
            path = _compile(cache, name)
        module = _load(path, name)
    except Exception as error:  # distutils/cc/dlopen failures
        return "kernel build failed: %s" % (error,)
    ffi = module.ffi
    lib = module.lib
    BACKEND = "cffi"
    return None


def describe() -> str:
    """One-line human-readable backend description (for bench/CLI output)."""
    if BACKEND == "cffi":
        return "cffi (compiled clock kernels)"
    return "python (fallback: %s)" % (FALLBACK_REASON or "forced")


_requested = os.environ.get("REPRO_CLOCK_KERNEL", "auto").strip().lower()
if _requested not in ("auto", "cffi", "python"):
    raise KernelBuildError(
        "REPRO_CLOCK_KERNEL must be auto, cffi or python (got %r)"
        % (_requested,)
    )
if _requested == "python":
    FALLBACK_REASON = "REPRO_CLOCK_KERNEL=python"
else:
    FALLBACK_REASON = _activate()
    if FALLBACK_REASON is not None and _requested == "cffi":
        raise KernelBuildError(
            "REPRO_CLOCK_KERNEL=cffi but the compiled clock kernels are "
            "unavailable (%s); install a C toolchain and cffi, or set "
            "REPRO_CLOCK_KERNEL=auto to accept the python fallback"
            % (FALLBACK_REASON,)
        )
