"""Vector clocks.

A vector time (Section 3.1 of the paper) is a function ``VT : Tid -> Nat``
mapping each thread to a non-negative integer.  The paper uses four
operations on vector times:

* pointwise comparison  ``V1 <= V2  iff  forall t: V1(t) <= V2(t)``
* join                  ``V1 | V2  =  lambda t: max(V1(t), V2(t))``
* component assignment  ``V[t := n]``
* the bottom time ``0`` which maps every thread to ``0``.

:class:`VectorClock` implements all of these.  Internally times are stored
sparsely in a ``dict`` keyed by thread identifier; a missing key means the
component is ``0``.  Thread identifiers may be any hashable value (the rest
of the library uses strings such as ``"t1"``).

The class is deliberately mutable -- Algorithm 1 performs a very large
number of in-place joins, and allocating a fresh object per join would
dominate the running time of the detectors.  Methods that mutate in place
are named with verbs (:meth:`join`, :meth:`assign`, :meth:`increment`);
operator overloads (``|``, ``<=``) return new objects / booleans and never
mutate their operands.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, Mapping, Optional, Tuple

ThreadId = Hashable


class VectorClock:
    """A sparse vector clock mapping thread ids to integer local times.

    Examples
    --------
    >>> a = VectorClock({"t1": 3})
    >>> b = VectorClock({"t2": 5})
    >>> (a | b).as_dict()
    {'t1': 3, 't2': 5}
    >>> a <= (a | b)
    True
    >>> b <= a
    False
    """

    __slots__ = ("_times",)

    def __init__(self, times: Optional[Mapping[ThreadId, int]] = None) -> None:
        self._times: Dict[ThreadId, int] = {}
        if times:
            for thread, value in times.items():
                if value < 0:
                    raise ValueError(
                        "vector clock components must be non-negative, "
                        "got %r for thread %r" % (value, thread)
                    )
                if value:
                    self._times[thread] = value

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def bottom(cls) -> "VectorClock":
        """Return the bottom vector time (all components zero)."""
        return cls()

    @classmethod
    def single(cls, thread: ThreadId, value: int) -> "VectorClock":
        """Return a clock whose only non-zero component is ``thread -> value``."""
        return cls({thread: value})

    def copy(self) -> "VectorClock":
        """Return an independent copy of this clock."""
        clone = VectorClock()
        clone._times = dict(self._times)
        return clone

    # ------------------------------------------------------------------ #
    # Reads
    # ------------------------------------------------------------------ #

    def get(self, thread: ThreadId) -> int:
        """Return the component for ``thread`` (0 if absent)."""
        return self._times.get(thread, 0)

    def __getitem__(self, thread: ThreadId) -> int:
        return self._times.get(thread, 0)

    def threads(self) -> Iterable[ThreadId]:
        """Iterate over threads with non-zero components."""
        return self._times.keys()

    def items(self) -> Iterator[Tuple[ThreadId, int]]:
        """Iterate over (thread, time) pairs with non-zero time."""
        return iter(self._times.items())

    def as_dict(self) -> Dict[ThreadId, int]:
        """Return the non-zero components as a plain dict (sorted by key repr)."""
        return dict(sorted(self._times.items(), key=lambda kv: repr(kv[0])))

    def is_bottom(self) -> bool:
        """Return True when every component is zero."""
        return not self._times

    def width(self) -> int:
        """Return the number of non-zero components (memory footprint proxy)."""
        return len(self._times)

    # ------------------------------------------------------------------ #
    # Mutators
    # ------------------------------------------------------------------ #

    def join(self, other: "VectorClock") -> "VectorClock":
        """In-place pointwise maximum with ``other``; returns ``self``."""
        self.merge(other)
        return self

    def merge(self, other: "VectorClock") -> bool:
        """In-place pointwise maximum; returns True when a component grew.

        Same operation as :meth:`join` with a change report, which lets
        callers (e.g. the WCP detector's cached ``C_t``) invalidate derived
        state only when the clock actually moved.
        """
        mine = self._times
        changed = False
        for thread, value in other._times.items():
            if value > mine.get(thread, 0):
                mine[thread] = value
                changed = True
        return changed

    def assign(self, thread: ThreadId, value: int) -> "VectorClock":
        """In-place component assignment ``self[thread := value]``; returns ``self``."""
        if value < 0:
            raise ValueError("vector clock components must be non-negative")
        if value:
            self._times[thread] = value
        else:
            self._times.pop(thread, None)
        return self

    def increment(self, thread: ThreadId, amount: int = 1) -> "VectorClock":
        """Increment the ``thread`` component in place; returns ``self``."""
        self._times[thread] = self._times.get(thread, 0) + amount
        return self

    def clear(self) -> "VectorClock":
        """Reset every component to zero; returns ``self``."""
        self._times.clear()
        return self

    def update_from(self, other: "VectorClock") -> "VectorClock":
        """Overwrite this clock with a copy of ``other``; returns ``self``."""
        self._times = dict(other._times)
        return self

    # ------------------------------------------------------------------ #
    # Operators (non-mutating)
    # ------------------------------------------------------------------ #

    def __or__(self, other: "VectorClock") -> "VectorClock":
        return self.copy().join(other)

    def __le__(self, other: "VectorClock") -> bool:
        other_times = other._times
        for thread, value in self._times.items():
            if value > other_times.get(thread, 0):
                return False
        return True

    def __lt__(self, other: "VectorClock") -> bool:
        return self <= other and self != other

    def __ge__(self, other: "VectorClock") -> bool:
        return other <= self

    def __gt__(self, other: "VectorClock") -> bool:
        return other < self

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, VectorClock):
            return NotImplemented
        return self._times == other._times

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def __hash__(self) -> int:
        return hash(frozenset(self._times.items()))

    def concurrent_with(self, other: "VectorClock") -> bool:
        """Return True when neither clock is pointwise <= the other."""
        return not (self <= other) and not (other <= self)

    # ------------------------------------------------------------------ #
    # Misc
    # ------------------------------------------------------------------ #

    def __repr__(self) -> str:
        inner = ", ".join(
            "%r: %d" % (thread, value) for thread, value in sorted(
                self._times.items(), key=lambda kv: repr(kv[0])
            )
        )
        return "VectorClock({%s})" % inner

    def __len__(self) -> int:
        return len(self._times)
