"""Thread-identifier interning.

The detectors spend essentially all of their time on vector-clock
arithmetic keyed by thread identity.  Traces identify threads with
arbitrary strings (``"t1"``, ``"main"``, ...); hashing those strings on
every clock component access is one of the largest constant factors in the
Python implementation of Algorithm 1.

A :class:`ThreadRegistry` interns each distinct thread identifier to a
dense small integer (0, 1, 2, ... in order of first appearance) at the
trace / engine boundary:

* :class:`~repro.trace.trace.Trace` owns a registry and stamps every
  event's ``tid`` while indexing;
* the streaming parsers (:func:`repro.trace.parsers.iter_std_events` /
  ``iter_csv_events``) stamp events at parse time when given a registry;
* the engine's :class:`~repro.engine.sources.EventSource`\\ s each expose a
  ``registry`` so that one interning table is shared by the source and by
  every detector of a single-pass run.

Everything behind the boundary -- the WCP / HB / FastTrack per-thread
state, :class:`~repro.vectorclock.dense.DenseClock` components and the
access history's epochs -- speaks integer tids.  The dict-based
:class:`~repro.vectorclock.clock.VectorClock` (keyed by the original
string identifiers) remains the public, reporting-facing representation;
:meth:`ThreadRegistry.to_public` and :meth:`ThreadRegistry.to_dense`
convert losslessly in both directions.

Interning is deterministic: feeding the same event sequence through any
registry yields the same numbering, which is what lets a detector trust
the ``tid`` stamps of events produced with the registry it adopted.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, List, Optional

from repro.vectorclock.clock import VectorClock

ThreadName = Hashable


class ThreadRegistry:
    """A bijection between thread identifiers and dense integer tids.

    Examples
    --------
    >>> registry = ThreadRegistry()
    >>> registry.intern("t1"), registry.intern("t2"), registry.intern("t1")
    (0, 1, 0)
    >>> registry.name_of(1)
    't2'
    """

    __slots__ = ("_ids", "_names")

    def __init__(self, names: Iterable[ThreadName] = ()) -> None:
        self._ids: Dict[ThreadName, int] = {}
        self._names: List[ThreadName] = []
        for name in names:
            self.intern(name)

    def intern(self, name: ThreadName) -> int:
        """Return the tid for ``name``, assigning the next free one if new."""
        tid = self._ids.get(name)
        if tid is None:
            tid = len(self._names)
            self._ids[name] = tid
            self._names.append(name)
        return tid

    def lookup(self, name: ThreadName) -> Optional[int]:
        """Return the tid for ``name`` without interning (None if unknown)."""
        return self._ids.get(name)

    def name_of(self, tid: int) -> ThreadName:
        """Return the thread identifier interned as ``tid``."""
        return self._names[tid]

    def names(self) -> List[ThreadName]:
        """Return all interned identifiers in tid order."""
        return list(self._names)

    # ------------------------------------------------------------------ #
    # Registry merging (shard-boundary protocol)
    # ------------------------------------------------------------------ #

    def merge_names(self, names: Iterable[ThreadName]) -> List[int]:
        """Intern another registry's tid-ordered name list; return the remap.

        ``names`` is the peer registry's :meth:`names` output (its tid
        numbering).  Every name is interned here, and the returned table
        maps the peer's tids to this registry's: ``remap[peer_tid] ->
        local_tid``.  Together with
        :meth:`repro.vectorclock.dense.DenseClock.remapped` this is how the
        sharded engine folds worker clocks -- numbered by each worker's
        private order of first appearance -- into one coherent view.
        """
        intern = self.intern
        return [intern(name) for name in names]

    # ------------------------------------------------------------------ #
    # Serialization (checkpoint / shard-boundary protocols)
    # ------------------------------------------------------------------ #

    def to_bytes(self) -> bytes:
        """Serialize the tid-ordered name table through the shared codec.

        The numbering is the registry's whole identity (tids are dense
        positions), so the name list *is* the registry.  Used by detector
        snapshots so a resumed process can re-establish the identical
        interning before any suffix event is stamped.
        """
        from repro.vectorclock.codec import encode

        return encode(list(self._names))

    @classmethod
    def from_bytes(cls, data: bytes) -> "ThreadRegistry":
        """Inverse of :meth:`to_bytes`."""
        from repro.vectorclock.codec import CodecError, decode

        names = decode(data)
        if not isinstance(names, list):
            raise CodecError(
                "registry blob does not contain a name list (got %s)"
                % type(names).__name__
            )
        return cls(names)

    # ------------------------------------------------------------------ #
    # Clock conversion (tid-keyed internal <-> name-keyed public)
    # ------------------------------------------------------------------ #

    def to_public(self, clock) -> VectorClock:
        """Convert an internal tid-keyed clock to a name-keyed VectorClock.

        ``clock`` may be a :class:`~repro.vectorclock.dense.DenseClock` or a
        tid-keyed :class:`VectorClock`; only non-zero components survive, so
        the conversion is lossless in both directions.
        """
        names = self._names
        return VectorClock({names[tid]: value for tid, value in clock.items()})

    def to_dense(self, clock: VectorClock):
        """Convert a name-keyed VectorClock to a tid-keyed DenseClock."""
        from repro.vectorclock.dense import DenseClock

        dense = DenseClock()
        for name, value in clock.items():
            dense.assign(self.intern(name), value)
        return dense

    # ------------------------------------------------------------------ #
    # Dunder methods
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return len(self._names)

    def __contains__(self, name: object) -> bool:
        return name in self._ids

    def __iter__(self) -> Iterator[ThreadName]:
        return iter(self._names)

    def __repr__(self) -> str:
        return "ThreadRegistry(%r)" % (self._names,)
