"""Per-tenant quotas and admission control for the serve tier.

A production race-prediction service cannot let one tenant starve the
rest: the paper's linear-time guarantee makes *per-event* cost constant,
but the number of concurrent streams, the event arrival rate and the
detector state each stream accumulates are all client-controlled.  This
module bounds the three of them independently:

* **max concurrent streams** -- admission control at connection time;
* **max events/sec** -- a classic token bucket per tenant, shared by all
  of the tenant's streams.  Small deficits are *throttled* (the driver
  sleeps, which propagates as TCP backpressure to the client); deficits
  beyond the throttle budget are *shed*;
* **max detector memory** -- an estimate of the serialized detector
  state (the snapshot-protocol blob size), refreshed periodically by the
  session driver; streams growing past the bound are shed.

Shedding is always *explicit*: the client receives one
``error Overloaded: <reason>; retry after <n>s`` line on the wire (the
:class:`Overloaded` exception is a :class:`ValueError`, so it travels
the same rejection path as validation and parse errors) instead of a
silent stall or a dropped connection.
"""

from __future__ import annotations

import math
import time
from typing import Dict, Optional

__all__ = ["Overloaded", "TokenBucket", "TenantQuota", "QuotaManager"]


class Overloaded(ValueError):
    """A stream was shed by admission control or a quota.

    The exception *type name* is part of the wire protocol: the serve
    tier answers ``error Overloaded: <message>`` exactly like it answers
    ``error LockSemanticsError: ...`` for malformed streams, so clients
    dispatch on the first token after ``error``.  :attr:`retry_after`
    (seconds, int) tells a well-behaved client when trying again has a
    chance of being admitted; it is embedded in the message so it
    survives the wire.
    """

    def __init__(self, reason: str, retry_after: int = 1) -> None:
        self.retry_after = max(1, int(retry_after))
        super().__init__("%s; retry after %ds" % (reason, self.retry_after))


class TokenBucket:
    """The standard token bucket: ``rate`` tokens/sec, ``burst`` capacity.

    :meth:`consume` never blocks -- it either grants the tokens and
    returns ``0.0``, or returns the number of seconds until the bucket
    will have refilled enough, leaving the caller to decide between
    sleeping (throttle) and shedding.  Time is injected so tests are
    deterministic.
    """

    def __init__(self, rate: float, burst: Optional[float] = None) -> None:
        if rate <= 0:
            raise ValueError("token bucket rate must be positive")
        self.rate = float(rate)
        self.burst = float(burst) if burst is not None else max(1.0, 2 * rate)
        self._tokens = self.burst
        self._last = time.monotonic()

    def consume(self, tokens: float = 1.0, now: Optional[float] = None) -> float:
        """Take ``tokens``; return 0.0 if granted, else seconds to wait."""
        now = time.monotonic() if now is None else now
        elapsed = now - self._last
        if elapsed > 0:
            self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
        # Rebase unconditionally: an injected clock behind the
        # construction-time monotonic() must start counting from its own
        # epoch, not wait to catch up.
        self._last = now
        if self._tokens >= tokens:
            self._tokens -= tokens
            return 0.0
        return (tokens - self._tokens) / self.rate

    @property
    def tokens(self) -> float:
        """Tokens available as of the last :meth:`consume` (inspection)."""
        return self._tokens

    def __repr__(self) -> str:
        return "TokenBucket(rate=%g, burst=%g)" % (self.rate, self.burst)


class TenantQuota:
    """The three per-tenant limits; ``None`` means unlimited."""

    def __init__(
        self,
        max_streams: Optional[int] = None,
        events_per_sec: Optional[float] = None,
        burst_events: Optional[float] = None,
        max_detector_bytes: Optional[int] = None,
    ) -> None:
        self.max_streams = max_streams
        self.events_per_sec = events_per_sec
        self.burst_events = burst_events
        self.max_detector_bytes = max_detector_bytes

    def __repr__(self) -> str:
        return (
            "TenantQuota(max_streams=%r, events_per_sec=%r, "
            "max_detector_bytes=%r)"
            % (self.max_streams, self.events_per_sec, self.max_detector_bytes)
        )


class QuotaManager:
    """Applies a default :class:`TenantQuota` (overridable per tenant).

    One shared token bucket per tenant: a tenant opening ten streams
    still gets one event-rate budget, which is the point of tenant-level
    (rather than connection-level) quotas.
    """

    def __init__(
        self,
        default: Optional[TenantQuota] = None,
        throttle_budget_s: float = 2.0,
    ) -> None:
        self.default = default or TenantQuota()
        #: Largest per-event deficit the driver absorbs by sleeping
        #: (TCP backpressure); anything beyond is shed with retry-after.
        self.throttle_budget_s = throttle_budget_s
        self._overrides: Dict[str, TenantQuota] = {}
        self._buckets: Dict[str, TokenBucket] = {}

    def set_quota(self, tenant: str, quota: TenantQuota) -> None:
        """Override the default quota for ``tenant``."""
        self._overrides[tenant] = quota
        self._buckets.pop(tenant, None)

    def quota_for(self, tenant: str) -> TenantQuota:
        return self._overrides.get(tenant, self.default)

    def admit_stream(self, tenant: str, active_streams: int) -> None:
        """Admission check at connection time; raises :class:`Overloaded`.

        ``active_streams`` is the tenant's *current* live-stream count
        (this one excluded).
        """
        quota = self.quota_for(tenant)
        if quota.max_streams is not None and active_streams >= quota.max_streams:
            raise Overloaded(
                "tenant %r already has %d concurrent stream(s) "
                "(max %d)" % (tenant, active_streams, quota.max_streams)
            )

    def throttle(self, tenant: str, events: int = 1) -> float:
        """Charge ``events`` to the tenant's rate budget.

        Returns the seconds the caller should sleep (0.0 when within
        budget); raises :class:`Overloaded` when the deficit exceeds the
        throttle budget -- the shed case.
        """
        quota = self.quota_for(tenant)
        if quota.events_per_sec is None:
            return 0.0
        bucket = self._buckets.get(tenant)
        if bucket is None:
            bucket = self._buckets[tenant] = TokenBucket(
                quota.events_per_sec, quota.burst_events
            )
        wait = bucket.consume(events)
        if wait > self.throttle_budget_s:
            raise Overloaded(
                "tenant %r exceeded %g events/sec" % (
                    tenant, quota.events_per_sec,
                ),
                retry_after=math.ceil(wait),
            )
        return wait

    def check_memory(self, tenant: str, estimate_bytes: int) -> None:
        """Shed when the stream's detector-state estimate is over quota."""
        quota = self.quota_for(tenant)
        limit = quota.max_detector_bytes
        if limit is not None and estimate_bytes > limit:
            raise Overloaded(
                "detector state grew to ~%d bytes (tenant %r max %d)"
                % (estimate_bytes, tenant, limit),
                retry_after=5,
            )

    def __repr__(self) -> str:
        return "QuotaManager(default=%r, overrides=%d)" % (
            self.default, len(self._overrides),
        )
