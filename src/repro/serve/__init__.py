"""The multi-tenant serve tier.

Grows ``repro-race serve`` from one engine pass per connection into a
governed service: per-connection :class:`StreamSession` bookkeeping,
per-tenant quotas with explicit load shedding
(:class:`~repro.serve.quotas.Overloaded`), idle-stream eviction through
the checkpoint subsystem, graceful SIGTERM drain, and a metrics surface
(in-band ``/stats`` + an HTTP JSON endpoint).  See
:mod:`repro.serve.server` for the architecture overview.
"""

from repro.serve.metrics import ServeMetrics
from repro.serve.quotas import (
    Overloaded,
    QuotaManager,
    TenantQuota,
    TokenBucket,
)
from repro.serve.server import RaceServer, ServeSettings, SessionDriver
from repro.serve.sessions import SessionManager, StreamSession, tenant_of

__all__ = [
    "Overloaded",
    "QuotaManager",
    "RaceServer",
    "ServeMetrics",
    "ServeSettings",
    "SessionDriver",
    "SessionManager",
    "StreamSession",
    "TenantQuota",
    "TokenBucket",
    "tenant_of",
]
