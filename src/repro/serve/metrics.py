"""The serve tier's metrics surface.

One :class:`ServeMetrics` instance per server aggregates everything the
operators of a multi-tenant race-prediction service ask first:

* lifecycle counters -- accepted / completed / rejected / shed / evicted /
  restored / drained / disconnected / errored streams;
* per-tenant throughput -- events, bytes, streams and an events/sec rate
  over the tenant's active window;
* per-detector cost -- the engine's existing cost accounting
  (:meth:`~repro.core.races.RaceReport.stats`) folded across completed
  streams, so the constant-per-event claim is observable in production,
  per detector;
* per-event latency -- a bounded reservoir of sampled
  validate+step durations, rendered as p50/p99.

The same data renders two ways: :meth:`to_dict` for the ``--metrics-port``
JSON endpoint, and :meth:`render_lines` for the in-band ``/stats``
line-protocol query (``<key> <value...>`` lines terminated by
``done stats``, so existing line-oriented clients need no new parser).
"""

from __future__ import annotations

import time
from collections import deque
from typing import Dict, List, Optional

__all__ = ["ServeMetrics"]

#: Lifecycle counters, in rendering order.
_COUNTERS = (
    "accepted",
    "completed",
    "rejected",
    "shed",
    "evicted",
    "restored",
    "drained",
    "disconnected",
    "errored",
    "handshake_timeout",
)

#: Sharded-engine supervision counters folded off completed results, in
#: rendering order (see :mod:`repro.engine.supervision`).
_SUPERVISION_COUNTERS = (
    "worker_restarts",
    "heartbeat_timeouts",
    "snapshot_fallbacks",
    "shutdown_escalations",
    "coordinator_restarts",
)


class ServeMetrics:
    """Aggregated serve-tier observability state.

    All mutation happens on the server's event loop, so plain counters
    suffice -- no locks.  The latency reservoir is bounded
    (``latency_samples``) and fed with *sampled* observations (the driver
    times every Nth event), keeping the measurement overhead off the
    per-event hot path the paper's complexity argument protects.
    """

    def __init__(self, latency_samples: int = 4096) -> None:
        self.started = time.monotonic()
        self.counters: Dict[str, int] = {name: 0 for name in _COUNTERS}
        #: tenant -> {"events", "bytes", "streams", "shed", "first", "last"}
        self.tenants: Dict[str, Dict[str, float]] = {}
        #: detector name -> {"events", "time_s", "races", "raw", "streams"}
        self.detectors: Dict[str, Dict[str, float]] = {}
        #: Sharded-engine fault-tolerance counters, folded from every
        #: completed result that carries a ``supervision`` dict.
        self.supervision: Dict[str, int] = {
            name: 0 for name in _SUPERVISION_COUNTERS
        }
        self._latency = deque(maxlen=latency_samples)

    # -- lifecycle ------------------------------------------------------- #

    def count(self, name: str, tenant: Optional[str] = None) -> None:
        """Bump lifecycle counter ``name`` (and the tenant's shed count)."""
        self.counters[name] += 1
        if tenant is not None and name == "shed":
            self._tenant(tenant)["shed"] += 1

    def _tenant(self, tenant: str) -> Dict[str, float]:
        bucket = self.tenants.get(tenant)
        if bucket is None:
            bucket = self.tenants[tenant] = {
                "events": 0, "bytes": 0, "streams": 0, "shed": 0,
                "first": 0.0, "last": 0.0,
            }
        return bucket

    def record_accept(self, tenant: str) -> None:
        self.counters["accepted"] += 1
        self._tenant(tenant)["streams"] += 1

    def add_events(self, tenant: str, events: int, bytes_: int = 0) -> None:
        """Attribute ``events`` (and wire bytes) to ``tenant``'s window."""
        bucket = self._tenant(tenant)
        now = time.monotonic()
        if bucket["events"] == 0:
            bucket["first"] = now
        bucket["events"] += events
        bucket["bytes"] += bytes_
        bucket["last"] = now

    def record_result(self, result) -> None:
        """Fold one completed stream's per-detector costs into the totals.

        ``result`` is an :class:`~repro.engine.engine.EngineResult`; the
        per-detector ``time_s`` comes from the engine's cost accounting
        (per-event attribution when several detectors ran, the pass total
        otherwise).
        """
        for name, report in result.items():
            bucket = self.detectors.get(name)
            if bucket is None:
                bucket = self.detectors[name] = {
                    "events": 0, "time_s": 0.0, "races": 0, "raw": 0,
                    "streams": 0,
                }
            bucket["events"] += result.events
            bucket["time_s"] += float(report.stats.get("time_s", 0.0))
            bucket["races"] += report.count()
            bucket["raw"] += report.raw_race_count
            bucket["streams"] += 1
        supervision = getattr(result, "supervision", None)
        if supervision:
            for name in _SUPERVISION_COUNTERS:
                self.supervision[name] += int(supervision.get(name, 0))

    # -- latency --------------------------------------------------------- #

    def observe_latency(self, seconds: float) -> None:
        """Record one sampled per-event (validate + step) duration."""
        self._latency.append(seconds)

    def latency_quantile(self, q: float) -> Optional[float]:
        """The ``q``-quantile (0..1) of the sampled latencies, in seconds."""
        if not self._latency:
            return None
        ordered = sorted(self._latency)
        return ordered[min(len(ordered) - 1, int(q * (len(ordered) - 1)))]

    # -- rendering ------------------------------------------------------- #

    def _tenant_rate(self, bucket: Dict[str, float]) -> float:
        window = bucket["last"] - bucket["first"]
        if bucket["events"] and window > 0:
            return bucket["events"] / window
        return 0.0

    def to_dict(self, manager=None) -> dict:
        """The JSON shape served by ``--metrics-port``."""
        p50 = self.latency_quantile(0.50)
        p99 = self.latency_quantile(0.99)
        data = {
            "uptime_s": round(time.monotonic() - self.started, 3),
            "counters": dict(self.counters),
            "tenants": {
                tenant: {
                    "events": int(bucket["events"]),
                    "bytes": int(bucket["bytes"]),
                    "streams": int(bucket["streams"]),
                    "shed": int(bucket["shed"]),
                    "events_per_sec": round(self._tenant_rate(bucket), 1),
                }
                for tenant, bucket in sorted(self.tenants.items())
            },
            "detectors": {
                name: {
                    "events": int(bucket["events"]),
                    "time_s": round(bucket["time_s"], 6),
                    "races": int(bucket["races"]),
                    "raw": int(bucket["raw"]),
                    "streams": int(bucket["streams"]),
                    "events_per_sec": round(
                        bucket["events"] / bucket["time_s"], 1
                    ) if bucket["time_s"] > 0 else None,
                }
                for name, bucket in sorted(self.detectors.items())
            },
            "supervision": dict(self.supervision),
            "latency": {
                "samples": len(self._latency),
                "p50_us": round(p50 * 1e6, 1) if p50 is not None else None,
                "p99_us": round(p99 * 1e6, 1) if p99 is not None else None,
            },
        }
        if manager is not None:
            data["active_sessions"] = manager.active_count()
            data["queue_depth"] = manager.queue_depth()
            data["sessions"] = [
                session.to_dict() for session in manager.live()
            ]
        return data

    def render_lines(self, manager=None) -> List[str]:
        """The in-band ``/stats`` reply: flat ``key value`` lines.

        Terminated by ``done stats`` so clients reuse the serve
        protocol's normal end-of-response detection.
        """
        lines = ["uptime_s %.3f" % (time.monotonic() - self.started)]
        for name in _COUNTERS:
            lines.append("%s %d" % (name, self.counters[name]))
        for name in _SUPERVISION_COUNTERS:
            lines.append("%s %d" % (name, self.supervision[name]))
        if manager is not None:
            lines.append("active_sessions %d" % manager.active_count())
            lines.append("queue_depth %d" % manager.queue_depth())
        for tenant, bucket in sorted(self.tenants.items()):
            lines.append(
                "tenant %s events %d bytes %d streams %d shed %d eps %.1f"
                % (
                    tenant, bucket["events"], bucket["bytes"],
                    bucket["streams"], bucket["shed"],
                    self._tenant_rate(bucket),
                )
            )
        for name, bucket in sorted(self.detectors.items()):
            lines.append(
                "detector %s events %d time_s %.6f races %d raw %d"
                % (
                    name, bucket["events"], bucket["time_s"],
                    bucket["races"], bucket["raw"],
                )
            )
        for q, label in ((0.50, "p50"), (0.99, "p99")):
            value = self.latency_quantile(q)
            if value is not None:
                lines.append("latency_%s_us %.1f" % (label, value * 1e6))
        lines.append("done stats")
        return lines

    def __repr__(self) -> str:
        return "ServeMetrics(%s)" % ", ".join(
            "%s=%d" % (name, self.counters[name])
            for name in _COUNTERS if self.counters[name]
        )
