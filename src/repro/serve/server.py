"""The multi-tenant serve tier: session driver + server.

This module turns ``repro-race serve`` from "one engine pass per
connection" into a governed multi-stream service.  Two layers:

:class:`SessionDriver`
    Owns one connection end to end: the handshake peek (``/stats``
    query, ``# stream-id:`` directive, tenant derivation), admission,
    and the pump/drive pair that replaces the engine's plain ``async
    for``.  The *pump* task decodes STD lines off the socket into a
    bounded :class:`asyncio.Queue`; the *drive* loop takes events off
    the queue and steps them through a shared
    :class:`~repro.engine.engine.EnginePass`.  Decoupling the two is
    what buys every serve-tier feature in one structure:

    * **backpressure** -- a full queue blocks the pump, which stops
      reading, which makes the transport pause the peer (TCP flow
      control); nothing buffers unboundedly;
    * **quotas** -- the drive loop charges each event to the tenant's
      token bucket: small deficits throttle (sleep), large ones shed
      with an explicit ``error Overloaded: ...; retry after <n>s``;
    * **idle eviction** -- a quiescent stream (queue empty, no event
      for ``idle_evict_after_s``) is checkpointed through the PR 5
      snapshot protocol and its detectors are *dropped*; the next event
      transparently restores them.  The driver-owned online validator
      stays live, so validator position always equals pass position --
      the invariant that makes every checkpoint resumable;
    * **graceful drain** -- when the server's drain event is set
      (SIGTERM), the loop checkpoints the pass and replies
      ``resume <offset>``: the client re-attaches to a fresh instance
      through the existing handshake and replays from the offset;
    * **disconnect hardening** -- an abrupt peer reset surfaces as a
      recorded ``disconnected`` stat and a clean close, never a
      traceback through the accept loop.

:class:`RaceServer`
    The accept loop plus the governance singletons: the
    :class:`~repro.serve.sessions.SessionManager` (global connection
    ceiling, per-tenant stream ceilings), the shared
    :class:`~repro.serve.metrics.ServeMetrics`, the optional
    ``--metrics-port`` JSON endpoint, and the SIGTERM drain sequence.

:func:`repro.engine.async_engine.serve_connection` now delegates here
(with no server attached: no quotas, no eviction, no drain), so the
wire protocol has exactly one implementation.
"""

from __future__ import annotations

import asyncio
import json
import logging
import os
import signal
import time
from typing import List, Optional

from repro.engine.async_engine import _safe_stream_id
from repro.engine.checkpoint import (
    Checkpoint,
    Checkpointer,
    check_snapshot_support,
    detector_stamp,
)
from repro.engine.config import EngineConfig
from repro.engine.engine import EnginePass, EngineResult
from repro.engine.sources import LineProtocolSource
from repro.engine.validate import OnlineValidator
from repro.serve.metrics import ServeMetrics
from repro.serve.quotas import Overloaded, QuotaManager
from repro.serve.sessions import SessionManager, StreamSession, tenant_of

__all__ = ["ServeSettings", "SessionDriver", "RaceServer"]

logger = logging.getLogger("repro.serve")

#: Queue item kinds produced by the pump.
_EVENT, _ERROR, _EOF = "event", "error", "eof"

#: Exceptions meaning "the peer went away", not "the stream is bad".
_DISCONNECTS = (
    ConnectionResetError,
    ConnectionAbortedError,
    BrokenPipeError,
    asyncio.IncompleteReadError,
)

_DRAIN_REFUSAL = (
    "error Draining: server is shutting down; retry against a fresh "
    "instance\n"
)

#: Error message a resume without validator state must raise -- kept
#: textually identical to :class:`~repro.engine.validate.ValidatingSource`
#: so both serve generations reject such streams the same way.
_NEEDS_VALIDATOR_STATE = (
    "resuming a validated stream mid-way requires the checkpoint to carry "
    "validator state (checkpoints written by a non-streaming run do not); "
    "resume without --stream, or disable validation with --no-validate"
)


class _Draining(Exception):
    """Internal control flow: drain fired while a session was mid-handshake."""


class _HandshakeTimeout(Exception):
    """Internal control flow: the first line never arrived in time.

    A connection that never says anything would otherwise pin an
    admission slot forever; it is dropped, counted under the
    ``handshake_timeout`` metric, and never a traceback.
    """


class ServeSettings:
    """Every serve-tier knob in one bag (the CLI maps flags onto this)."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: Optional[int] = None,
        socket_path: Optional[str] = None,
        max_connections: Optional[int] = None,
        quotas: Optional[QuotaManager] = None,
        checkpoint_dir=None,
        idle_evict_after_s: Optional[float] = None,
        idle_poll_s: float = 0.5,
        queue_maxsize: int = 256,
        sample_every: int = 64,
        mem_check_every: int = 4096,
        metrics_port: Optional[int] = None,
        install_signal_handlers: bool = False,
        fault_plan=None,
        handshake_timeout_s: Optional[float] = 30.0,
    ) -> None:
        self.host = host
        self.port = port
        self.socket_path = socket_path
        self.max_connections = max_connections
        self.quotas = quotas or QuotaManager()
        self.checkpoint_dir = checkpoint_dir
        self.idle_evict_after_s = idle_evict_after_s
        #: Cadence of the drive loop's idle tick (drain/eviction checks).
        self.idle_poll_s = idle_poll_s
        self.queue_maxsize = queue_maxsize
        #: Every Nth event is latency-timed (keeps sampling off the hot path).
        self.sample_every = sample_every
        #: Events between detector-memory estimates when a memory quota is set.
        self.mem_check_every = mem_check_every
        self.metrics_port = metrics_port
        self.install_signal_handlers = install_signal_handlers
        #: Deterministic fault injection
        #: (:class:`~repro.engine.faults.FaultPlan`): ``disconnect``
        #: faults drop the client connection at an exact event offset,
        #: so the disconnect governance below is testable without timing
        #: games.
        self.fault_plan = fault_plan
        #: Longest a connection may stay silent before its first line;
        #: None disables the bound (the pre-PR-8 behaviour).
        self.handshake_timeout_s = handshake_timeout_s

    def __repr__(self) -> str:
        return "ServeSettings(host=%r, port=%r, socket=%r)" % (
            self.host, self.port, self.socket_path,
        )


class _SessionCheckpointer(Checkpointer):
    """A checkpointer that doubles as the detector-memory estimator.

    Every checkpoint already serializes the complete detector state, so
    its blob size *is* the best available estimate of what the session
    pins -- record it on the session instead of paying for a second
    snapshot pass.
    """

    def __init__(self, directory, session: Optional[StreamSession] = None,
                 **kwargs) -> None:
        super().__init__(directory, **kwargs)
        self._session = session

    def save(self, checkpoint: Checkpoint):
        if self._session is not None and checkpoint.states:
            self._session.detector_memory_bytes = sum(
                len(blob) for blob in checkpoint.states
            )
        return super().save(checkpoint)


class _ValidatorState:
    """Checkpoint source-state bridge for the driver-owned validator.

    Serializes exactly the ``{"validator": ...}`` bundle
    :class:`~repro.engine.validate.ValidatingSource` writes, so
    checkpoints taken by the serve tier restore through the engine's
    normal resume path (and vice versa).
    """

    def __init__(self, driver: "SessionDriver") -> None:
        self._driver = driver

    def checkpoint_state(self):
        validator = self._driver.validator
        if validator is None:
            return None
        return {"validator": validator.state_dict()}


class SessionDriver:
    """Drive one accepted connection through a governed engine pass.

    With ``server`` attached (the :class:`RaceServer` path) the driver
    enforces admission, quotas, eviction and drain; without it (the
    :func:`~repro.engine.async_engine.serve_connection` compatibility
    path) it speaks the identical wire protocol with governance off.
    """

    def __init__(
        self,
        reader,
        writer,
        detectors,
        config: Optional[EngineConfig] = None,
        validate: bool = True,
        name: str = "client",
        checkpoint_dir=None,
        session: Optional[StreamSession] = None,
        server: Optional["RaceServer"] = None,
    ) -> None:
        self.reader = reader
        self.writer = writer
        self.detector_specs = detectors
        self.config = config if config is not None else EngineConfig()
        self.validate = validate
        self.name = name
        self.checkpoint_dir = checkpoint_dir
        self.server = server
        self.session = session
        self.settings = server.settings if server else ServeSettings()
        self.manager = server.manager if server else None
        self.metrics = server.metrics if server else None
        self.drain_event = server.drain_event if server else None

        self.stream_id: Optional[str] = None
        self.tenant: str = session.tenant if session else "-"
        self.stream_dir: Optional[str] = None
        self.initial_lines: List[bytes] = []
        self.validator: Optional[OnlineValidator] = None
        self.registry = session.registry if session is not None else None

        self._resume_checkpoint: Optional[Checkpoint] = None
        self._checkpointer: Optional[_SessionCheckpointer] = None
        self._pass: Optional[EnginePass] = None
        #: In-memory copy of the eviction checkpoint (restore never
        #: needs to re-read the file it just wrote).
        self._evicted: Optional[Checkpoint] = None
        self._bytes_read = 0
        self._bytes_seen = 0
        self._check_memory = False

    # ------------------------------------------------------------------ #
    # Entry point
    # ------------------------------------------------------------------ #

    async def run(self) -> Optional[EngineResult]:
        """Handshake, admit, pump+drive; returns the result or None."""
        try:
            proceed = await self._handshake()
        except _Draining:
            await self._reply(_DRAIN_REFUSAL)
            return None
        except _HandshakeTimeout:
            self._count("handshake_timeout")
            if self.session is not None:
                self.session.error = "no handshake line (timed out)"
            logger.info(
                "handshake timeout session=%s after %.0fs",
                self._label(), self.settings.handshake_timeout_s,
            )
            await self._reply(
                "error Timeout: no handshake line within %.0fs; closing\n"
                % self.settings.handshake_timeout_s
            )
            return None
        except _DISCONNECTS:
            self._note_disconnect("handshake")
            return None
        if not proceed:
            return None
        try:
            self._build_pass()
            return await self._drive()
        except Overloaded as error:
            self._count("shed", tenant=self.tenant)
            if self.session is not None:
                self.session.error = str(error)
            logger.info(
                "shed session=%s tenant=%s reason=%s",
                self._label(), self.tenant, error,
            )
            await self._reply_exception(error)
            return None
        except _DISCONNECTS:
            self._note_disconnect("stream")
            return None
        except ValueError as error:
            # TraceError (validation), TraceParseError (grammar),
            # checkpoint mismatches and the reader's over-limit-line
            # error are all ValueErrors: one wire reply answers them all.
            self._count("errored")
            if self.session is not None:
                self.session.error = str(error)
            logger.info(
                "reject session=%s tenant=%s error=%s: %s",
                self._label(), self.tenant, type(error).__name__, error,
            )
            await self._reply_exception(error)
            return None

    # ------------------------------------------------------------------ #
    # Handshake
    # ------------------------------------------------------------------ #

    @property
    def _peeks(self) -> bool:
        # The legacy serve_connection path only ever peeked when crash
        # recovery was on; the server path always needs the first line
        # (tenant derivation, /stats).  Preserved exactly.
        return self.server is not None or self.checkpoint_dir is not None

    async def _readline_first(self) -> bytes:
        """Read the handshake line, racing it against drain and the clock."""
        timeout = self.settings.handshake_timeout_s
        if self.drain_event is None:
            if timeout is None:
                return await self.reader.readline()
            try:
                return await asyncio.wait_for(self.reader.readline(), timeout)
            except asyncio.TimeoutError:
                raise _HandshakeTimeout() from None
        read = asyncio.ensure_future(self.reader.readline())
        drain = asyncio.ensure_future(self.drain_event.wait())
        done, _ = await asyncio.wait(
            {read, drain}, timeout=timeout,
            return_when=asyncio.FIRST_COMPLETED,
        )
        if read in done:
            drain.cancel()
            return read.result()
        read.cancel()
        try:
            await read
        except (asyncio.CancelledError, *_DISCONNECTS, ValueError):
            pass
        if drain in done:
            raise _Draining()
        drain.cancel()
        raise _HandshakeTimeout()

    async def _handshake(self) -> bool:
        if not self._peeks:
            return True
        try:
            first = await self._readline_first()
        except ValueError as error:
            # An over-limit first line raises before the pass exists;
            # reply on the wire exactly like a mid-pass rejection.
            self._count("errored")
            await self._reply_exception(error)
            return False
        if self.server is not None and first.strip() == b"/stats":
            lines = self.metrics.render_lines(self.manager)
            await self._reply("\n".join(lines) + "\n")
            return False
        stream_id = _safe_stream_id(first) if first else None
        if stream_id is None and first:
            # Not a directive: hand the peeked line to the source.
            self.initial_lines.append(first)
        if self.manager is not None:
            try:
                self.manager.bind_stream(self.session, stream_id)
            except Overloaded as error:
                self._count("rejected")
                logger.info(
                    "reject session=%s tenant=%s reason=%s",
                    self._label(), tenant_of(stream_id), error,
                )
                await self._reply_exception(error)
                return False
            self.tenant = self.session.tenant
            self.metrics.record_accept(self.tenant)
            self._check_memory = (
                self.manager.quotas.quota_for(self.tenant).max_detector_bytes
                is not None
            )
        elif stream_id is not None:
            self.tenant = tenant_of(stream_id)
        if stream_id is not None:
            self.stream_id = stream_id
            if self.checkpoint_dir is not None:
                self.stream_dir = os.path.join(
                    str(self.checkpoint_dir), stream_id
                )
                try:
                    self._resume_checkpoint = Checkpointer(
                        self.stream_dir
                    ).load_latest()
                except ValueError as error:
                    # A corrupt or version-drifted checkpoint must reject
                    # the stream on the wire, not kill the handler.
                    self._count("errored")
                    await self._reply_exception(error)
                    return False
                offset = (
                    self._resume_checkpoint.events
                    if self._resume_checkpoint else 0
                )
                if not await self._reply("resume %d\n" % offset):
                    return False
                logger.info(
                    "accept session=%s tenant=%s stream=%s resume=%d",
                    self._label(), self.tenant, stream_id, offset,
                )
                return True
        logger.info(
            "accept session=%s tenant=%s stream=%s",
            self._label(), self.tenant, stream_id,
        )
        return True

    # ------------------------------------------------------------------ #
    # Pass construction (fresh, handshake-resumed, or eviction-restored)
    # ------------------------------------------------------------------ #

    def _build_pass(self) -> None:
        resolved = self.config.resolve_detectors(self.detector_specs)
        if self.validate:
            self.validator = OnlineValidator()
        if self.stream_dir is not None:
            check_snapshot_support(resolved)
            self._checkpointer = _SessionCheckpointer(
                self.stream_dir,
                session=self.session,
                every=self.config.checkpoint_every,
                keep=self.config.checkpoint_keep,
                # The drive loop runs on the event loop thread; the
                # write+fsync must not stall other connections.
                background=True,
            )
            self._checkpointer.source = _ValidatorState(self)

        loaded = self._resume_checkpoint
        if loaded is None:
            self._pass = EnginePass(
                self.config, resolved, self.name,
                registry=self.registry,
                checkpointer=self._checkpointer,
            )
            self._pass.start()
            return

        loaded.match_detectors(resolved)
        if self._checkpointer is not None and loaded.every:
            # Keep checkpoint offsets aligned across restarts.
            self._checkpointer.every = loaded.every
        if self.validate and loaded.events > 0:
            state = (loaded.source_state or {}).get("validator")
            if state is None:
                raise ValueError(_NEEDS_VALIDATOR_STATE)
            self.validator = OnlineValidator.from_state(state)
        self._pass = self._restored_pass(loaded, resolved)

    def _restored_pass(self, loaded: Checkpoint, detectors) -> EnginePass:
        """Build a started pass continuing ``loaded`` (resume or restore)."""
        for detector in detectors:
            # Reset-time precomputation would be overwritten by the
            # restore below; let detectors skip it.
            detector.restore_pending = True
        pass_ = EnginePass(
            self.config, detectors, self.name,
            registry=self.registry,
            start_events=loaded.events,
            checkpointer=self._checkpointer,
        )
        pass_.start()
        for detector, blob in zip(detectors, loaded.states):
            detector.restore_state(blob)
        return pass_

    # ------------------------------------------------------------------ #
    # Pump + drive
    # ------------------------------------------------------------------ #

    def _make_source(self) -> LineProtocolSource:
        source = LineProtocolSource(
            self.reader, name=self.name,
            registry=self.registry,
            initial_lines=self.initial_lines,
            on_line=self._count_bytes,
        )
        if self.registry is None:
            self.registry = source.registry
        if self._resume_checkpoint is not None:
            # Informational for push sources: the peer replays from here.
            source.seek_events(self._resume_checkpoint.events)
        return source

    def _count_bytes(self, raw: bytes) -> None:
        self._bytes_read += len(raw)

    async def _pump(self, source, queue: asyncio.Queue) -> None:
        """Decode events off the wire into the bounded queue.

        A full queue blocks the ``put``, which stops the reads, which
        makes the transport pause the peer: the backpressure chain.
        Stream errors are forwarded as queue items so the drive loop
        owns every reply.
        """
        try:
            async for event in source:
                await queue.put((_EVENT, event))
        except asyncio.CancelledError:
            raise
        except Exception as error:  # forwarded: the drive loop replies
            await queue.put((_ERROR, error))
        else:
            await queue.put((_EOF, None))

    async def _drive(self) -> Optional[EngineResult]:
        source = self._make_source()
        queue: asyncio.Queue = asyncio.Queue(self.settings.queue_maxsize)
        if self.session is not None:
            self.session.queue_depth = queue.qsize
        pump = asyncio.ensure_future(self._pump(source, queue))
        settings = self.settings
        sample_every = settings.sample_every
        clock = time.perf_counter
        try:
            while True:
                if self.drain_event is not None and self.drain_event.is_set():
                    return await self._drain_session()
                try:
                    kind, payload = await asyncio.wait_for(
                        queue.get(), timeout=settings.idle_poll_s
                    )
                except asyncio.TimeoutError:
                    self._maybe_evict(queue)
                    continue
                if kind is _EOF:
                    break
                if kind is _ERROR:
                    raise payload
                if self._pass is None:
                    self._restore_evicted()
                if self.manager is not None:
                    wait = self.manager.quotas.throttle(self.tenant)
                    if wait > 0:
                        await asyncio.sleep(wait)
                pass_ = self._pass
                sampled = (
                    self.metrics is not None
                    and pass_.events % sample_every == 0
                )
                began = clock() if sampled else 0.0
                if self.validator is not None:
                    self.validator.check(payload)
                stop = pass_.step(payload)
                if (
                    settings.fault_plan is not None
                    and settings.fault_plan.disconnect_at(pass_.events)
                ):
                    # Injected mid-stream client disconnect: surfaces
                    # through the same governed path as a real peer reset.
                    raise ConnectionResetError(
                        "injected disconnect at event %d" % pass_.events
                    )
                if sampled:
                    self.metrics.observe_latency(clock() - began)
                self._note_event()
                if (
                    self._check_memory
                    and pass_.events % settings.mem_check_every == 0
                ):
                    estimate = sum(
                        len(d.state_snapshot()) for d in pass_.detectors
                    )
                    self.session.detector_memory_bytes = estimate
                    self.manager.quotas.check_memory(self.tenant, estimate)
                if stop is not None:
                    break
            return await self._finish()
        finally:
            pump.cancel()
            try:
                await pump
            except (asyncio.CancelledError, *_DISCONNECTS):
                pass

    def _note_event(self) -> None:
        delta = self._bytes_read - self._bytes_seen
        self._bytes_seen = self._bytes_read
        if self.session is not None:
            self.session.note_events(1, bytes_=delta)
        if self.metrics is not None:
            self.metrics.add_events(self.tenant, 1, delta)

    # ------------------------------------------------------------------ #
    # Completion / drain / eviction
    # ------------------------------------------------------------------ #

    async def _finish(self) -> Optional[EngineResult]:
        if self._pass is None:
            # EOF arrived while evicted: restore to produce the report.
            self._restore_evicted()
        result = self._pass.result()
        lines = [
            "%s %d %d" % (key, report.count(), report.raw_race_count)
            for key, report in result.items()
        ]
        lines.append("done %d" % result.events)
        replied = await self._reply("\n".join(lines) + "\n")
        if self.stream_dir is not None:
            # The stream completed cleanly; its recovery state is obsolete.
            (self._checkpointer or Checkpointer(self.stream_dir)).clear()
            try:
                os.rmdir(self.stream_dir)
            except OSError:  # pragma: no cover - non-empty or already gone
                pass
        if self.session is not None:
            self.session.result = result
        if self.metrics is not None:
            self.metrics.count("completed")
            self.metrics.record_result(result)
        logger.info(
            "complete session=%s tenant=%s events=%d races=%d replied=%s",
            self._label(), self.tenant, result.events,
            result.total_distinct_races(), replied,
        )
        return result

    def _snapshot_pass(self) -> Checkpoint:
        """Freeze the live pass into a checkpoint (evict/drain)."""
        pass_ = self._pass
        source_state = self._checkpointer.source_state()
        return Checkpoint(
            events=pass_.events,
            source_name=pass_.source_name,
            stamps=[detector_stamp(d) for d in pass_.detectors],
            states=[d.state_snapshot() for d in pass_.detectors],
            every=self._checkpointer.every,
            source_state=source_state,
        )

    def _maybe_evict(self, queue: asyncio.Queue) -> None:
        """Idle tick: checkpoint and drop a quiescent session's detectors."""
        if (
            self._pass is None
            or self._checkpointer is None
            or self.settings.idle_evict_after_s is None
            or self.session is None
            or not queue.empty()
        ):
            return
        if self.session.idle_for() < self.settings.idle_evict_after_s:
            return
        checkpoint = self._snapshot_pass()
        self._checkpointer.save(checkpoint)
        self._evicted = checkpoint
        self._pass = None
        self.session.evictions += 1
        self.session.state = "evicted"
        self._count("evicted")
        logger.info(
            "evict session=%s tenant=%s stream=%s offset=%d state_bytes=%d",
            self._label(), self.tenant, self.stream_id, checkpoint.events,
            sum(len(blob) for blob in checkpoint.states or []),
        )

    def _restore_evicted(self) -> None:
        """The evicted stream's next event arrived: rebuild the pass."""
        loaded, self._evicted = self._evicted, None
        detectors = loaded.build_detectors()
        self._pass = self._restored_pass(loaded, detectors)
        self.session.restores += 1
        self.session.state = "active"
        self._count("restored")
        logger.info(
            "restore session=%s tenant=%s stream=%s offset=%d",
            self._label(), self.tenant, self.stream_id, loaded.events,
        )

    async def _drain_session(self) -> None:
        """SIGTERM path: make the session durable, point the client away."""
        if self.session is not None:
            self.session.state = "draining"
        if self._checkpointer is not None:
            if self._pass is not None:
                checkpoint = self._snapshot_pass()
                self._checkpointer.save(checkpoint)
                offset = checkpoint.events
            else:
                offset = self._evicted.events
            # The client reconnects to a *fresh* instance immediately;
            # the checkpoint must be durable before it is advertised.
            self._checkpointer.drain()
            self._count("drained")
            logger.info(
                "drain session=%s tenant=%s stream=%s offset=%d",
                self._label(), self.tenant, self.stream_id, offset,
            )
            await self._reply("resume %d\n" % offset)
            return None
        self._count("drained")
        logger.info(
            "drain session=%s tenant=%s stream=%s offset=-",
            self._label(), self.tenant, self.stream_id,
        )
        await self._reply(_DRAIN_REFUSAL)
        return None

    # ------------------------------------------------------------------ #
    # Plumbing
    # ------------------------------------------------------------------ #

    def _label(self) -> str:
        if self.session is not None:
            return "%d" % self.session.session_id
        return self.name

    def _count(self, name: str, tenant: Optional[str] = None) -> None:
        if self.metrics is not None:
            self.metrics.count(name, tenant=tenant)

    def _note_disconnect(self, where: str) -> None:
        self._count("disconnected")
        if self.session is not None:
            self.session.error = "peer disconnected during %s" % where
        logger.info(
            "disconnect session=%s tenant=%s during=%s events=%d",
            self._label(), self.tenant, where,
            self.session.events if self.session else 0,
        )

    async def _reply(self, text: str) -> bool:
        """Best-effort wire reply; a vanished peer is not a traceback."""
        try:
            self.writer.write(text.encode("utf-8"))
            await self.writer.drain()
            return True
        except (OSError, *_DISCONNECTS):
            self._note_disconnect("reply")
            return False

    async def _reply_exception(self, error: Exception) -> bool:
        return await self._reply(
            "error %s: %s\n" % (type(error).__name__, error)
        )


class RaceServer:
    """The governed accept loop over :class:`SessionDriver`.

    ``detectors`` is either a zero-argument factory returning *fresh*
    detector instances (recommended: streams are independent passes and
    state must never leak between clients) or a sequence of detector
    names resolved freshly per connection.
    """

    def __init__(
        self,
        detectors,
        config: Optional[EngineConfig] = None,
        settings: Optional[ServeSettings] = None,
        validate: bool = True,
        on_session_end=None,
    ) -> None:
        if callable(detectors):
            self.detector_factory = detectors
        else:
            specs = list(detectors)
            self.detector_factory = (
                lambda: EngineConfig().resolve_detectors(specs)
            )
        self.config = config if config is not None else EngineConfig()
        self.settings = settings or ServeSettings()
        self.validate = validate
        #: Called with ``(session, result_or_None)`` after every session.
        self.on_session_end = on_session_end
        self.manager = SessionManager(
            max_connections=self.settings.max_connections,
            quotas=self.settings.quotas,
        )
        self.metrics = ServeMetrics()
        self.drain_event = asyncio.Event()
        self.listener = None
        self.metrics_listener = None
        self._tasks: set = set()

    # -- lifecycle ------------------------------------------------------- #

    async def start(self) -> "RaceServer":
        """Bind the listener(s); optionally install the SIGTERM handler."""
        settings = self.settings
        if settings.socket_path:
            self.listener = await asyncio.start_unix_server(
                self.handle_connection, path=settings.socket_path
            )
        else:
            self.listener = await asyncio.start_server(
                self.handle_connection,
                host=settings.host, port=settings.port or 0,
            )
        if settings.metrics_port is not None:
            self.metrics_listener = await asyncio.start_server(
                self._handle_metrics,
                host=settings.host, port=settings.metrics_port,
            )
        if settings.install_signal_handlers:
            loop = asyncio.get_running_loop()
            try:
                loop.add_signal_handler(signal.SIGTERM, self.request_drain)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass
        logger.info("listening on %s", self.where)
        return self

    @property
    def where(self) -> str:
        """Human-readable bound address."""
        if self.settings.socket_path:
            return self.settings.socket_path
        return "%s:%d" % self.listener.sockets[0].getsockname()[:2]

    @property
    def metrics_address(self):
        """``(host, port)`` of the metrics endpoint, or None."""
        if self.metrics_listener is None:
            return None
        return self.metrics_listener.sockets[0].getsockname()[:2]

    def request_drain(self) -> None:
        """SIGTERM entry: stop accepting; live sessions checkpoint out."""
        if self.drain_event.is_set():
            return
        logger.info(
            "drain requested: %d live session(s)", self.manager.active_count()
        )
        self.drain_event.set()
        if self.listener is not None:
            self.listener.close()
        if self.metrics_listener is not None:
            self.metrics_listener.close()

    async def wait_closed(self) -> None:
        """Wait for every in-flight session to finish."""
        while True:
            tasks = [
                task for task in self._tasks
                if task is not asyncio.current_task()
            ]
            if not tasks:
                return
            await asyncio.wait(tasks)

    async def close(self) -> None:
        """Tear everything down (tests / embedders)."""
        self.request_drain()
        await self.wait_closed()
        for listener in (self.listener, self.metrics_listener):
            if listener is not None:
                listener.close()
                try:
                    await listener.wait_closed()
                except (OSError, RuntimeError):  # pragma: no cover
                    pass
        if self.settings.socket_path:
            try:
                os.unlink(self.settings.socket_path)
            except OSError:  # pragma: no cover - already removed
                pass

    # -- connection handling --------------------------------------------- #

    async def handle_connection(self, reader, writer) -> None:
        """The accept callback: admission stage 1, then a driver."""
        task = asyncio.current_task()
        if task is not None:
            self._tasks.add(task)
        session = None
        result = None
        try:
            if self.drain_event.is_set():
                writer.write(_DRAIN_REFUSAL.encode("utf-8"))
                await writer.drain()
                return
            try:
                session = self.manager.open_session()
            except Overloaded as error:
                self.metrics.count("rejected")
                logger.info("reject connection reason=%s", error)
                writer.write(
                    ("error Overloaded: %s\n" % error).encode("utf-8")
                )
                await writer.drain()
                return
            driver = SessionDriver(
                reader, writer,
                detectors=self.detector_factory(),
                config=self.config,
                validate=self.validate,
                name="client-%d" % session.session_id,
                checkpoint_dir=self.settings.checkpoint_dir,
                session=session,
                server=self,
            )
            result = await driver.run()
        except (OSError, *_DISCONNECTS):  # pragma: no cover - teardown races
            self.metrics.count("disconnected")
        finally:
            if session is not None:
                self.manager.release(session)
            writer.close()
            try:
                await writer.wait_closed()
            except (OSError, *_DISCONNECTS):  # pragma: no cover - teardown
                pass
            if task is not None:
                self._tasks.discard(task)
        if self.on_session_end is not None and session is not None:
            self.on_session_end(session, result)

    async def _handle_metrics(self, reader, writer) -> None:
        """Minimal HTTP/1.1 endpoint: any GET answers the metrics JSON."""
        try:
            request = await reader.readline()
            while True:
                header = await reader.readline()
                if header in (b"\r\n", b"\n", b""):
                    break
            body = json.dumps(
                self.metrics.to_dict(self.manager), indent=2, sort_keys=True
            ).encode("utf-8")
            status = (
                b"200 OK" if request.startswith(b"GET") else b"405 Method Not Allowed"
            )
            writer.write(
                b"HTTP/1.1 " + status + b"\r\n"
                b"Content-Type: application/json\r\n"
                b"Content-Length: " + str(len(body)).encode("ascii") + b"\r\n"
                b"Connection: close\r\n\r\n" + body
            )
            await writer.drain()
        except (OSError, *_DISCONNECTS):  # pragma: no cover - peer vanished
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (OSError, *_DISCONNECTS):  # pragma: no cover - teardown
                pass

    def __repr__(self) -> str:
        return "RaceServer(%s, active=%d)" % (
            self.settings, self.manager.active_count(),
        )
