"""Live-stream bookkeeping: one :class:`StreamSession` per connection.

The serve tier needs a durable answer to "what is this server doing
right now": which tenants hold streams, how far along each stream is,
how much detector state it pins, and which lifecycle stage it is in
(handshaking, active, evicted to disk, draining, closed).  The
:class:`SessionManager` owns that registry, enforces the *global*
connection ceiling, and delegates per-tenant stream ceilings to the
:class:`~repro.serve.quotas.QuotaManager` -- admission raises
:class:`~repro.serve.quotas.Overloaded`, which the driver turns into the
explicit ``error Overloaded: ...`` wire reply.

Tenancy is derived from the stream id the client already sends for crash
recovery (``# stream-id: <tenant>.<stream>``): the part before the first
dot names the tenant, an id without a dot is its own tenant, and
anonymous connections (no directive) share the ``"-"`` tenant.  No new
wire syntax -- multi-tenancy rides on the PR 5 handshake.
"""

from __future__ import annotations

import itertools
import time
from typing import Dict, List, Optional

from repro.serve.quotas import Overloaded, QuotaManager
from repro.vectorclock.registry import ThreadRegistry

__all__ = ["StreamSession", "SessionManager", "tenant_of"]

#: Tenant shared by connections that never send a ``# stream-id:`` line.
ANONYMOUS_TENANT = "-"

#: Lifecycle states a session moves through, in order (eviction loops
#: back to ``active`` on restore).
STATES = ("handshake", "active", "evicted", "draining", "closed")


def tenant_of(stream_id: Optional[str]) -> str:
    """Derive the tenant from a stream id (prefix before the first dot)."""
    if not stream_id:
        return ANONYMOUS_TENANT
    return stream_id.split(".", 1)[0]


class StreamSession:
    """One live connection's identity, counters and lifecycle state.

    Created at accept time with the anonymous tenant; the driver rebinds
    tenant/stream id once the handshake line is read (see
    :meth:`SessionManager.bind_stream`).  The session's
    :class:`~repro.vectorclock.registry.ThreadRegistry` is the pass's
    interning table and *survives eviction*: a restored detector
    re-interns its snapshot name table against it, which is what keeps
    the pre-stamped tids on in-flight events valid across an
    evict/restore cycle.
    """

    def __init__(self, session_id: int, tenant: str = ANONYMOUS_TENANT,
                 label: str = "client") -> None:
        self.session_id = session_id
        self.tenant = tenant
        self.stream_id: Optional[str] = None
        self.label = label
        self.state = "handshake"
        self.registry = ThreadRegistry()
        self.events = 0
        self.bytes = 0
        self.evictions = 0
        self.restores = 0
        self.detector_memory_bytes = 0
        self.started = time.monotonic()
        self.last_activity = self.started
        #: Filled by the driver: the final EngineResult, or the error
        #: that ended the session.
        self.result = None
        self.error: Optional[str] = None
        #: Driver hook reporting this session's buffered-event depth.
        self.queue_depth = lambda: 0

    def note_events(self, events: int = 1, bytes_: int = 0) -> None:
        """Advance the activity clock and the event/byte counters."""
        self.events += events
        self.bytes += bytes_
        self.last_activity = time.monotonic()

    def idle_for(self, now: Optional[float] = None) -> float:
        """Seconds since the last event (or since accept)."""
        return (time.monotonic() if now is None else now) - self.last_activity

    def to_dict(self) -> dict:
        """JSON shape for the metrics endpoint's session listing."""
        return {
            "id": self.session_id,
            "tenant": self.tenant,
            "stream_id": self.stream_id,
            "state": self.state,
            "events": self.events,
            "bytes": self.bytes,
            "queue_depth": self.queue_depth(),
            "evictions": self.evictions,
            "restores": self.restores,
            "detector_memory_bytes": self.detector_memory_bytes,
            "idle_s": round(self.idle_for(), 3),
            "age_s": round(time.monotonic() - self.started, 3),
        }

    def __repr__(self) -> str:
        return "StreamSession(#%d, tenant=%r, stream=%r, %s, events=%d)" % (
            self.session_id, self.tenant, self.stream_id, self.state,
            self.events,
        )


class SessionManager:
    """The registry of live sessions plus admission control.

    Admission is two-staged, mirroring when the information becomes
    available: the *global* connection ceiling is checked at accept time
    (:meth:`open_session`, before a single byte is read), the
    *per-tenant* stream ceiling once the handshake has named the tenant
    (:meth:`bind_stream`).  Both stages raise
    :class:`~repro.serve.quotas.Overloaded` instead of queueing -- the
    serve tier sheds explicitly, it never stalls silently.
    """

    def __init__(self, max_connections: Optional[int] = None,
                 quotas: Optional[QuotaManager] = None) -> None:
        self.max_connections = max_connections
        self.quotas = quotas or QuotaManager()
        self._sessions: Dict[int, StreamSession] = {}
        self._ids = itertools.count(1)

    # -- admission ------------------------------------------------------- #

    def open_session(self, label: str = "client") -> StreamSession:
        """Stage 1: global ceiling; registers and returns the session."""
        if (
            self.max_connections is not None
            and len(self._sessions) >= self.max_connections
        ):
            raise Overloaded(
                "server at max connections (%d)" % self.max_connections
            )
        session = StreamSession(next(self._ids), label=label)
        self._sessions[session.session_id] = session
        return session

    def bind_stream(self, session: StreamSession,
                    stream_id: Optional[str]) -> None:
        """Stage 2: per-tenant ceiling, once the handshake named the tenant.

        On rejection the session stays registered (the driver releases
        it on the way out) but is never marked active.
        """
        tenant = tenant_of(stream_id)
        session.tenant = tenant
        session.stream_id = stream_id
        self.quotas.admit_stream(tenant, self.tenant_count(tenant, session))
        session.state = "active"

    def release(self, session: StreamSession) -> None:
        """Unregister ``session``; idempotent."""
        session.state = "closed"
        self._sessions.pop(session.session_id, None)

    # -- queries --------------------------------------------------------- #

    def tenant_count(self, tenant: str,
                     excluding: Optional[StreamSession] = None) -> int:
        """Live sessions bound to ``tenant`` (optionally minus one)."""
        return sum(
            1 for session in self._sessions.values()
            if session.tenant == tenant and session is not excluding
            and session.state != "handshake"
        )

    def active_count(self) -> int:
        return len(self._sessions)

    def queue_depth(self) -> int:
        """Buffered-but-unprocessed events across every live session."""
        return sum(
            session.queue_depth() for session in self._sessions.values()
        )

    def live(self) -> List[StreamSession]:
        return sorted(
            self._sessions.values(), key=lambda session: session.session_id
        )

    def __repr__(self) -> str:
        return "SessionManager(active=%d, max_connections=%r)" % (
            len(self._sessions), self.max_connections,
        )
