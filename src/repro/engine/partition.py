"""Event partitioning for the sharded engine.

The WCP analysis is linear-time and its per-variable race checks are
largely independent (Kini et al. PLDI 2017; Mathur & Pavlogiannis make the
per-variable decomposition explicit), which is what lets one event stream
be split across N worker engines.  The split follows a three-way **event
taxonomy** -- the replication-vs-routing contract every shardable detector
relies on:

``REPLICATE`` -- the synchronization skeleton
    Acquire, release, fork, join, begin and end events are delivered to
    *every* shard and processed fully.  All detector clock state (HB
    clocks, WCP's ``P_t`` / ``H_t`` / per-lock state, FastTrack epochs)
    flows through these events, so replicating them keeps each worker's
    ordering knowledge identical to the single-engine run.

``ROUTE`` -- plain accesses
    A read/write performed while its thread holds no lock affects only the
    per-variable access history, never the clocks.  It is delivered solely
    to the shard that owns the variable (the partition policy's
    ``owner_of``), which race-checks and records it exactly once.

``ROUTE_CLOCK`` -- clock-relevant accesses
    Three kinds of read/write events move detector clocks even though
    they are plain accesses: an access performed under at least one held
    lock -- exclusive or read-mode -- (WCP's Rule (a): the access joins
    the enclosing locks' ``L^r``/``L^w`` cells into ``P_t`` and feeds the
    section read/write sets), an access by a thread with an outstanding
    arrival in a still-open barrier generation (it re-joins the
    generation's grown accumulator: the blocked-arriver edge), and a
    thread's *first* event after a release/fork/join when
    that event is an access (it carries the deferred local-interval bump
    of ``N_t`` / the HB clock, whose visibility must advance identically
    on every shard before the next replicated fork/join snapshots the
    thread's clock).  Such accesses are still race-checked only by the
    owner shard, but are additionally replicated to the other shards as
    *foreign* events -- processed via
    :meth:`~repro.core.detector.Detector.process_foreign` for their clock
    effects only.  When no selected detector has
    ``needs_foreign_accesses``, foreign copies are not transported at all
    (HB and FastTrack verdicts never need them; the clock lag is then
    confined to components other shards cannot observe).

Because all accesses of one variable land on one shard, that shard's
history for the variable is complete and its race verdicts coincide with
the single engine's; because the clock-relevant event stream is replicated
in full order, every shard's clocks agree (the shard-boundary protocol's
cross-shard agreement check makes this observable).

Partition *policies* decide variable ownership; they are deliberately
stateless or append-only so the same policy instance can classify an
unbounded stream.
"""

from __future__ import annotations

import zlib
from typing import Dict, Optional, Tuple, Union

from repro.trace.event import ACCESS_EVENTS, BARRIER_EVENTS, Event
from repro.trace.semantics import REGISTRY

#: Taxonomy tags returned by :meth:`StreamPartitioner.classify`.
REPLICATE = "replicate"
ROUTE = "route"
ROUTE_CLOCK = "route-clock"


class PartitionPolicy:
    """Maps variable names to owning shard ids (``0 .. shards-1``)."""

    def __init__(self, shards: int) -> None:
        if shards < 1:
            raise ValueError("a partition needs at least one shard")
        self.shards = shards

    def owner_of(self, variable: str) -> int:
        """Return the shard that owns ``variable``."""
        raise NotImplementedError

    def state_dict(self) -> Dict[str, object]:
        """Return resumable policy state (checkpoint/resume protocol).

        Stateless policies (hashing) return an empty dict -- their
        ownership is a pure function of the variable name.  Stateful
        policies (round-robin) must capture whatever makes ownership
        depend on stream history.
        """
        return {}

    def load_state(self, state: Dict[str, object]) -> None:
        """Inverse of :meth:`state_dict`."""

    def __repr__(self) -> str:
        return "%s(shards=%d)" % (type(self).__name__, self.shards)


class HashPartition(PartitionPolicy):
    """Stable hashing of the variable name (crc32, not PYTHONHASHSEED).

    Any process computes the same owner for the same name, which keeps
    routing reproducible across runs and machines.  Owners are memoized
    per variable -- the coordinator consults the policy once per *access*
    on the hot dispatch loop, so a dict hit must be the common case.
    """

    def __init__(self, shards: int) -> None:
        super().__init__(shards)
        self._owners: Dict[str, int] = {}

    def owner_of(self, variable: str) -> int:
        owner = self._owners.get(variable)
        if owner is None:
            owner = zlib.crc32(variable.encode("utf-8")) % self.shards
            self._owners[variable] = owner
        return owner


class RoundRobinPartition(PartitionPolicy):
    """Assign variables to shards cyclically in order of first appearance.

    Perfectly balanced in *variable count* (not necessarily in access
    count); stateful, so the instance that classified the stream must be
    the one asked about ownership.
    """

    def __init__(self, shards: int) -> None:
        super().__init__(shards)
        self._owners: Dict[str, int] = {}

    def owner_of(self, variable: str) -> int:
        owner = self._owners.get(variable)
        if owner is None:
            owner = len(self._owners) % self.shards
            self._owners[variable] = owner
        return owner

    def state_dict(self) -> Dict[str, object]:
        # First-appearance assignments are stream history: a resumed pass
        # must route every known variable exactly as the original did.
        return {"owners": dict(self._owners)}

    def load_state(self, state: Dict[str, object]) -> None:
        self._owners = dict(state.get("owners", {}))


class ExplicitPartition(PartitionPolicy):
    """A fixed ``variable -> shard`` mapping with a fallback policy.

    Lets callers pin hot variables (or co-locate variables they know are
    accessed together) while everything else falls back to hashing.
    """

    def __init__(
        self,
        shards: int,
        mapping: Dict[str, int],
        fallback: Optional[PartitionPolicy] = None,
    ) -> None:
        super().__init__(shards)
        for variable, owner in mapping.items():
            if not 0 <= owner < shards:
                raise ValueError(
                    "variable %r pinned to shard %d, but only %d shard(s) "
                    "exist" % (variable, owner, shards)
                )
        self._mapping = dict(mapping)
        self._fallback = fallback or HashPartition(shards)

    def owner_of(self, variable: str) -> int:
        owner = self._mapping.get(variable)
        if owner is None:
            owner = self._fallback.owner_of(variable)
        return owner

    def state_dict(self) -> Dict[str, object]:
        return {"fallback": self._fallback.state_dict()}

    def load_state(self, state: Dict[str, object]) -> None:
        self._fallback.load_state(state.get("fallback", {}))


#: Policy names accepted by :func:`make_policy` (and the CLI's
#: ``--shard-policy``).
POLICIES = {
    "hash": HashPartition,
    "rr": RoundRobinPartition,
    "round-robin": RoundRobinPartition,
}


def make_policy(
    policy: Union[str, PartitionPolicy, None], shards: int
) -> PartitionPolicy:
    """Coerce a policy name/instance into a policy for ``shards`` shards."""
    if policy is None:
        return HashPartition(shards)
    if isinstance(policy, PartitionPolicy):
        if policy.shards != shards:
            raise ValueError(
                "partition policy is sized for %d shard(s), engine has %d"
                % (policy.shards, shards)
            )
        return policy
    try:
        factory = POLICIES[policy]
    except KeyError:
        raise ValueError(
            "unknown partition policy %r; available: %s"
            % (policy, ", ".join(sorted(POLICIES)))
        ) from None
    return factory(shards)


class StreamPartitioner:
    """Stateful per-stream classifier applying the event taxonomy.

    Tracks each thread's held-lock depth (the only state the taxonomy
    needs) and counts how many events fell into each class, which the
    benchmarks use to report the replication overhead -- the quantity that
    bounds the achievable multi-core speedup.
    """

    def __init__(self, policy: PartitionPolicy) -> None:
        self.policy = policy
        self._depth: Dict[str, int] = {}
        #: Threads whose next event carries a deferred local-clock bump
        #: (the event right after a release-like event -- release, rrel,
        #: barrier, notify, fork -- or the first post-join event of the
        #: joined thread).  Derived from the registry's ``bumps`` field.
        self._pending_bump: set = set()
        #: Per-thread set of rwlocks currently held in read mode: accesses
        #: inside consume WCP Rule (a) cells (so they are clock-relevant,
        #: ROUTE_CLOCK) and their ``rrel`` must not decrement the
        #: exclusive depth.
        self._read_held: Dict[str, set] = {}
        #: Open barrier generations: barrier -> set of arrived threads.  A
        #: thread with an outstanding arrival re-joins the generation's
        #: accumulator at each subsequent event (the blocked-arriver
        #: edge), so its accesses are clock-relevant until the generation
        #: closes.
        self._barrier_open: Dict[str, set] = {}
        #: Threads with at least one outstanding open-generation arrival
        #: (the per-thread index of ``_barrier_open``, as a multiset count).
        self._barrier_waiting: Dict[str, int] = {}
        #: Routing memo: variable -> owning shard, filled on first sight.
        #: Policies are stateless or append-only (ownership of a seen
        #: variable never changes -- the checkpoint/resume protocol
        #: already relies on this), so the coordinator's per-event
        #: routing collapses to one int-valued table lookup instead of a
        #: policy method call that re-hashes the name.
        self._owner_memo: Dict[str, int] = {}
        #: Taxonomy census: events per class.
        self.replicated = 0
        self.routed = 0
        self.routed_clock = 0

    def classify(self, event: Event) -> Tuple[str, int]:
        """Return ``(kind, owner)``; ``owner`` is -1 for replicated events.

        Everything except the access fast path is derived from the
        declarative registry: ``shard_class`` decides route-vs-replicate,
        ``opens``/``closes`` drive the held-lock depth (read-mode
        sections tracked separately), ``bumps`` drives the pending-bump
        set -- so a new event kind registered in
        :mod:`repro.trace.semantics` is classified correctly with no
        change here.
        """
        etype = event.etype
        thread = event.thread
        pending = self._pending_bump
        if etype in ACCESS_EVENTS:
            memo = self._owner_memo
            owner = memo.get(event.target)
            if owner is None:
                owner = memo[event.target] = self.policy.owner_of(event.target)
            if self._depth.get(thread, 0) > 0:
                pending.discard(thread)
                self.routed_clock += 1
                return ROUTE_CLOCK, owner
            if self._read_held.get(thread):
                pending.discard(thread)
                self.routed_clock += 1
                return ROUTE_CLOCK, owner
            if self._barrier_waiting.get(thread):
                pending.discard(thread)
                self.routed_clock += 1
                return ROUTE_CLOCK, owner
            if thread in pending:
                pending.discard(thread)
                self.routed_clock += 1
                return ROUTE_CLOCK, owner
            self.routed += 1
            return ROUTE, owner
        # Sync events are replicated, so every shard applies a pending
        # bump at the same point when one is outstanding.
        pending.discard(thread)
        semantics = REGISTRY[etype]
        opens = semantics.opens
        if opens is not None:
            if opens == "read":
                self._read_held.setdefault(thread, set()).add(event.target)
            else:
                depth = self._depth
                depth[thread] = depth.get(thread, 0) + 1
        closes = semantics.closes
        if closes is not None:
            exclusive = True
            if closes == "rw":
                held = self._read_held.get(thread)
                if held is not None and event.target in held:
                    held.discard(event.target)
                    exclusive = False
            if exclusive:
                depth = self._depth
                current = depth.get(thread, 0)
                if current > 0:
                    depth[thread] = current - 1
        bumps = semantics.bumps
        if bumps == "self":
            pending.add(thread)
        elif bumps == "target":
            pending.add(event.target)
        if etype in BARRIER_EVENTS:
            arrived = self._barrier_open.setdefault(event.target, set())
            if thread in arrived:
                # Repeat arrival closes the generation: its members stop
                # carrying the blocked-arriver edge.
                waiting = self._barrier_waiting
                for member in arrived:
                    count = waiting.get(member, 0) - 1
                    if count > 0:
                        waiting[member] = count
                    else:
                        waiting.pop(member, None)
                arrived = self._barrier_open[event.target] = set()
            arrived.add(thread)
            self._barrier_waiting[thread] = (
                self._barrier_waiting.get(thread, 0) + 1
            )
        self.replicated += 1
        return REPLICATE, -1

    def stats(self) -> Dict[str, int]:
        """Return the taxonomy census."""
        return {
            "replicated": self.replicated,
            "routed": self.routed,
            "routed_clock": self.routed_clock,
        }

    # ------------------------------------------------------------------ #
    # Snapshot support (checkpoint/resume protocol)
    # ------------------------------------------------------------------ #

    def state_dict(self) -> Dict[str, object]:
        """Return the classifier state as codec-encodable structures.

        The held-lock depths and pending-bump set decide the
        ROUTE-vs-ROUTE_CLOCK taxonomy of upcoming accesses, so a resumed
        coordinator must classify the suffix exactly as the original
        would have; the census rides along so partition statistics stay
        whole-stream accurate.
        """
        return {
            "depth": dict(self._depth),
            "pending": set(self._pending_bump),
            "read_held": {
                thread: set(locks)
                for thread, locks in self._read_held.items()
                if locks
            },
            "barrier_open": {
                barrier: set(threads)
                for barrier, threads in self._barrier_open.items()
                if threads
            },
            "census": (self.replicated, self.routed, self.routed_clock),
            "policy": self.policy.state_dict(),
        }

    def load_state(self, state: Dict[str, object]) -> None:
        """Inverse of :meth:`state_dict`.

        ``read_held`` defaults to empty for checkpoints written before
        the rwlock vocabulary existed.
        """
        self._depth = dict(state["depth"])
        self._pending_bump = set(state["pending"])
        self._read_held = {
            thread: set(locks)
            for thread, locks in dict(state.get("read_held", {})).items()
        }
        self._barrier_open = {
            barrier: set(threads)
            for barrier, threads in dict(state.get("barrier_open", {})).items()
        }
        waiting: Dict[str, int] = {}
        for threads in self._barrier_open.values():
            for thread in threads:
                waiting[thread] = waiting.get(thread, 0) + 1
        self._barrier_waiting = waiting
        self.replicated, self.routed, self.routed_clock = state["census"]
        self.policy.load_state(state["policy"])
        # The memo is derived state: drop it so a restored policy (which
        # may answer differently than the pre-restore instance did) is
        # re-consulted on first sight of each variable.
        self._owner_memo = {}
