"""Online stream validation: O(1)-per-event trace well-formedness checks.

:class:`~repro.trace.trace.Trace` validates lock semantics and well
nestedness at construction time -- which requires materialising the
trace.  The streaming paths (CLI ``--stream``, push sources, the serve
subcommand) never build a :class:`Trace`, so before this module they
silently skipped validation: a malformed stream corrupted detector
state instead of being rejected.

:class:`OnlineValidator` performs exactly the same checks incrementally,
with **O(1) work and state per event**: a held-lock map (lock ->
holding thread + acquire position, mirroring ``Trace._index``'s
``holder``) and a per-thread stack of open critical sections.  State is
proportional to the number of *currently open* critical sections --
never to the length of the stream -- and shrinks back as sections
close.  On a violation it raises the **identical exception class and
message** that ``Trace(validate=True)`` raises on the materialised
prefix, so callers cannot tell (and tests assert) which path rejected
the stream.

:class:`ValidatingSource` wraps any event source (sync or async) with
an online validator, transparently forwarding ``is_complete`` /
``trace`` / ``registry`` / ``length_hint`` so wrapped complete sources
keep their pre-scan optimisations.  The CLI wires it in by default
under ``--stream`` (``--no-validate`` opts out), and the ``serve``
subcommand applies it to every client connection.
"""

from __future__ import annotations

from typing import AsyncIterator, Iterator, Optional

from repro.engine.sources import EventSource, as_async_source, as_source
from repro.trace.event import Event
from repro.trace.semantics import LockDiscipline
from repro.trace.trace import LockSemanticsError, WellNestednessError  # noqa: F401  (re-exported API)

__all__ = ["OnlineValidator", "ValidatingSource", "validate_events"]


class OnlineValidator:
    """Incremental lock-semantics / well-nestedness checker.

    Feed events in stream order through :meth:`check`; the validator
    numbers them by position (the same renumbering :class:`Trace` and
    the engine apply), so error messages quote the same event indices a
    batch ``Trace(validate=True)`` would.

    The checks themselves live in one place -- the
    :class:`~repro.trace.semantics.LockDiscipline` state machine that
    ``Trace._index`` drives too, so both paths raise the identical
    exception class and message by construction.  State is proportional
    to the number of *currently open* critical sections (exclusive and
    read-mode) -- never to the length of the stream -- and shrinks back
    as sections close.
    """

    def __init__(self) -> None:
        self._discipline = LockDiscipline()
        #: Events checked so far == the position assigned to the next event.
        self.events_checked = 0

    def check(self, event: Event) -> None:
        """Validate one event; raises on the first violation.

        Raises :class:`~repro.trace.semantics.LockSemanticsError` for
        overlapping/re-entrant acquires and releases with no open
        section, :class:`~repro.trace.semantics.WellNestednessError`
        for a release that does not match the innermost open acquire
        (including a release of the wrong kind, e.g. ``rel`` closing a
        reader/writer section).
        """
        index = self.events_checked
        self.events_checked = index + 1
        self._discipline.step(
            event.etype, event.thread, event.target, index, validate=True
        )

    # ------------------------------------------------------------------ #
    # Snapshot support (checkpoint/resume protocol)
    # ------------------------------------------------------------------ #

    def state_dict(self) -> dict:
        """Return the validator state as codec-encodable structures.

        A resumed stream pass restores this so prefix-opened critical
        sections are still known -- otherwise every release in the suffix
        of a section opened before the checkpoint would be (wrongly)
        rejected as unmatched.
        """
        state = self._discipline.state_dict()
        state["events"] = self.events_checked
        return state

    @classmethod
    def from_state(cls, state: dict) -> "OnlineValidator":
        """Inverse of :meth:`state_dict`.

        Accepts checkpoints written before the rwlock vocabulary: their
        open-stack entries lack the section mode (normalised to
        exclusive) and they carry no read-holder map.
        """
        validator = cls()
        validator._discipline = LockDiscipline.from_state(state)
        validator.events_checked = state["events"]
        return validator

    def state_size(self) -> int:
        """Entries currently held: open sections counted on both indexes.

        Zero on a fully closed stream; bounded by the number of
        concurrently open critical sections, never by stream length --
        the observable form of the O(1)-per-event contract.
        """
        return self._discipline.state_size()

    def __repr__(self) -> str:
        return "OnlineValidator(events_checked=%d, state=%d)" % (
            self.events_checked, self.state_size(),
        )


def validate_events(events, validator: Optional[OnlineValidator] = None):
    """Yield ``events`` unchanged, checking each one on the way through."""
    validator = validator if validator is not None else OnlineValidator()
    check = validator.check
    for event in events:
        check(event)
        yield event


class ValidatingSource(EventSource):
    """Wrap a source with online validation; otherwise fully transparent.

    Accepts anything :func:`~repro.engine.sources.as_source` accepts,
    plus asynchronous sources (anything with ``__aiter__``, e.g.
    :class:`~repro.engine.sources.LineProtocolSource`); iterate it the
    same way the wrapped source would be iterated.  ``is_complete``,
    ``trace``, ``registry`` and ``length_hint`` are forwarded, so
    wrapping a complete trace source does not downgrade detectors to
    stream mode.

    Each iteration pass runs a fresh :class:`OnlineValidator` (replayable
    sources like :class:`~repro.engine.sources.FileSource` restart from
    scratch); the most recent pass's validator is kept on
    :attr:`validator` for inspection.
    """

    def __init__(self, inner, name: Optional[str] = None) -> None:
        if not hasattr(inner, "__aiter__"):
            inner = as_source(inner)
        self._inner = inner
        self.name = name or getattr(inner, "name", "stream")
        self.registry = getattr(inner, "registry", None)
        #: The validator of the most recent (or current) iteration pass.
        self.validator = OnlineValidator()
        #: Restored validator to adopt on the next iteration pass (resume).
        self._resume_validator: Optional[OnlineValidator] = None
        #: Set by a non-zero seek: iteration refuses to start without a
        #: restored validator (a fresh one would spuriously reject valid
        #: suffixes whose critical sections opened in the prefix).
        self._needs_resume_validator = False

    @property
    def is_complete(self) -> bool:
        return bool(getattr(self._inner, "is_complete", False))

    @property
    def trace(self):
        return getattr(self._inner, "trace", None)

    def length_hint(self) -> Optional[int]:
        hint = getattr(self._inner, "length_hint", None)
        return hint() if callable(hint) else None

    def seek_events(self, events: int) -> None:
        """Delegate positioning to the wrapped source (checkpoint/resume).

        Validating a stream *suffix* soundly requires the validator state
        at the seek offset (prefix-opened critical sections would
        otherwise make valid releases look unmatched), so seeking also
        arms a check that :meth:`restore_checkpoint_state` supplies one
        before iteration starts.
        """
        seek = getattr(self._inner, "seek_events", None)
        if seek is None:
            raise ValueError(
                "wrapped source %r cannot seek to event %d"
                % (self._inner, events)
            )
        seek(events)
        self._needs_resume_validator = events > 0

    def checkpoint_state(self) -> dict:
        """Bundle the online validator's state into engine checkpoints."""
        return {"validator": self.validator.state_dict()}

    def restore_checkpoint_state(self, state: dict) -> None:
        """Adopt a checkpointed validator for the next iteration pass."""
        validator = state.get("validator")
        if validator is not None:
            self._resume_validator = OnlineValidator.from_state(validator)

    def _next_validator(self) -> OnlineValidator:
        if self._needs_resume_validator and self._resume_validator is None:
            raise ValueError(
                "resuming a validated stream mid-way requires the "
                "checkpoint to carry validator state (checkpoints written "
                "by a non-streaming run do not); resume without --stream, "
                "or disable validation with --no-validate"
            )
        validator, self._resume_validator = (
            self._resume_validator or OnlineValidator(), None
        )
        return validator

    def __iter__(self) -> Iterator[Event]:
        if not hasattr(self._inner, "__iter__"):
            raise TypeError(
                "wrapped source %r is asynchronous; iterate with 'async for'"
                % (self._inner,)
            )
        self.validator = self._next_validator()
        return validate_events(self._inner, self.validator)

    def __aiter__(self) -> AsyncIterator[Event]:
        inner = (
            self._inner
            if hasattr(self._inner, "__aiter__")
            else as_async_source(self._inner)
        )
        return self._avalidate(inner)

    async def _avalidate(self, inner) -> AsyncIterator[Event]:
        self.validator = validator = self._next_validator()
        check = validator.check
        async for event in inner:
            check(event)
            yield event

    def __repr__(self) -> str:
        return "ValidatingSource(%r)" % (self._inner,)
