"""Online stream validation: O(1)-per-event trace well-formedness checks.

:class:`~repro.trace.trace.Trace` validates lock semantics and well
nestedness at construction time -- which requires materialising the
trace.  The streaming paths (CLI ``--stream``, push sources, the serve
subcommand) never build a :class:`Trace`, so before this module they
silently skipped validation: a malformed stream corrupted detector
state instead of being rejected.

:class:`OnlineValidator` performs exactly the same checks incrementally,
with **O(1) work and state per event**: a held-lock map (lock ->
holding thread + acquire position, mirroring ``Trace._index``'s
``holder``) and a per-thread stack of open critical sections.  State is
proportional to the number of *currently open* critical sections --
never to the length of the stream -- and shrinks back as sections
close.  On a violation it raises the **identical exception class and
message** that ``Trace(validate=True)`` raises on the materialised
prefix, so callers cannot tell (and tests assert) which path rejected
the stream.

:class:`ValidatingSource` wraps any event source (sync or async) with
an online validator, transparently forwarding ``is_complete`` /
``trace`` / ``registry`` / ``length_hint`` so wrapped complete sources
keep their pre-scan optimisations.  The CLI wires it in by default
under ``--stream`` (``--no-validate`` opts out), and the ``serve``
subcommand applies it to every client connection.
"""

from __future__ import annotations

from typing import AsyncIterator, Dict, Iterator, List, Optional, Tuple

from repro.engine.sources import EventSource, as_async_source, as_source
from repro.trace.event import Event
from repro.trace.trace import LockSemanticsError, WellNestednessError

__all__ = ["OnlineValidator", "ValidatingSource", "validate_events"]


class OnlineValidator:
    """Incremental lock-semantics / well-nestedness checker.

    Feed events in stream order through :meth:`check`; the validator
    numbers them by position (the same renumbering :class:`Trace` and
    the engine apply), so error messages quote the same event indices a
    batch ``Trace(validate=True)`` would.

    The state is exactly what the checks need and nothing more:

    ``_holder``
        lock -> ``(thread, acquire position)`` for locks currently held
        anywhere in the stream (detects overlapping critical sections
        and re-entrant acquires);
    ``_open``
        thread -> stack of ``(lock, acquire position)`` open critical
        sections (detects unnested releases); a thread's entry is
        removed as soon as its stack empties, so lock-free stream
        suffixes hold zero validator state.
    """

    def __init__(self) -> None:
        self._holder: Dict[str, Tuple[str, int]] = {}
        self._open: Dict[str, List[Tuple[str, int]]] = {}
        #: Events checked so far == the position assigned to the next event.
        self.events_checked = 0

    def check(self, event: Event) -> None:
        """Validate one event; raises on the first violation.

        Raises :class:`~repro.trace.trace.LockSemanticsError` for
        overlapping/re-entrant acquires and releases with no open
        section, :class:`~repro.trace.trace.WellNestednessError` for a
        release that does not match the innermost open acquire.
        """
        index = self.events_checked
        self.events_checked = index + 1
        if event.is_acquire():
            lock = event.lock
            thread = event.thread
            held = self._holder.get(lock)
            if held is not None:
                if held[0] != thread:
                    raise LockSemanticsError(
                        "lock %r acquired at event %d while held by thread %r "
                        "(acquired at event %d)" % (lock, index, held[0], held[1])
                    )
                raise LockSemanticsError(
                    "re-entrant acquire of lock %r at event %d; re-entrant "
                    "locking must be flattened by the trace producer"
                    % (lock, index)
                )
            self._holder[lock] = (thread, index)
            self._open.setdefault(thread, []).append((lock, index))
        elif event.is_release():
            lock = event.lock
            thread = event.thread
            stack = self._open.get(thread)
            if not stack:
                raise LockSemanticsError(
                    "release of %r at event %d with no lock held" % (lock, index)
                )
            top_lock, top_index = stack[-1]
            if top_lock != lock:
                raise WellNestednessError(
                    "release of %r at event %d does not match innermost "
                    "open acquire of %r at event %d"
                    % (lock, index, top_lock, top_index)
                )
            stack.pop()
            if not stack:
                del self._open[thread]
            del self._holder[lock]

    # ------------------------------------------------------------------ #
    # Snapshot support (checkpoint/resume protocol)
    # ------------------------------------------------------------------ #

    def state_dict(self) -> dict:
        """Return the validator state as codec-encodable structures.

        A resumed stream pass restores this so prefix-opened critical
        sections are still known -- otherwise every release in the suffix
        of a section opened before the checkpoint would be (wrongly)
        rejected as unmatched.
        """
        return {
            "holder": dict(self._holder),
            "open": {thread: list(stack) for thread, stack in self._open.items()},
            "events": self.events_checked,
        }

    @classmethod
    def from_state(cls, state: dict) -> "OnlineValidator":
        """Inverse of :meth:`state_dict`."""
        validator = cls()
        validator._holder = dict(state["holder"])
        validator._open = {
            thread: [tuple(entry) for entry in stack]
            for thread, stack in state["open"].items()
        }
        validator.events_checked = state["events"]
        return validator

    def state_size(self) -> int:
        """Entries currently held: open sections counted on both indexes.

        Zero on a fully closed stream; bounded by the number of
        concurrently open critical sections, never by stream length --
        the observable form of the O(1)-per-event contract.
        """
        return len(self._holder) + sum(
            len(stack) for stack in self._open.values()
        )

    def __repr__(self) -> str:
        return "OnlineValidator(events_checked=%d, state=%d)" % (
            self.events_checked, self.state_size(),
        )


def validate_events(events, validator: Optional[OnlineValidator] = None):
    """Yield ``events`` unchanged, checking each one on the way through."""
    validator = validator if validator is not None else OnlineValidator()
    check = validator.check
    for event in events:
        check(event)
        yield event


class ValidatingSource(EventSource):
    """Wrap a source with online validation; otherwise fully transparent.

    Accepts anything :func:`~repro.engine.sources.as_source` accepts,
    plus asynchronous sources (anything with ``__aiter__``, e.g.
    :class:`~repro.engine.sources.LineProtocolSource`); iterate it the
    same way the wrapped source would be iterated.  ``is_complete``,
    ``trace``, ``registry`` and ``length_hint`` are forwarded, so
    wrapping a complete trace source does not downgrade detectors to
    stream mode.

    Each iteration pass runs a fresh :class:`OnlineValidator` (replayable
    sources like :class:`~repro.engine.sources.FileSource` restart from
    scratch); the most recent pass's validator is kept on
    :attr:`validator` for inspection.
    """

    def __init__(self, inner, name: Optional[str] = None) -> None:
        if not hasattr(inner, "__aiter__"):
            inner = as_source(inner)
        self._inner = inner
        self.name = name or getattr(inner, "name", "stream")
        self.registry = getattr(inner, "registry", None)
        #: The validator of the most recent (or current) iteration pass.
        self.validator = OnlineValidator()
        #: Restored validator to adopt on the next iteration pass (resume).
        self._resume_validator: Optional[OnlineValidator] = None
        #: Set by a non-zero seek: iteration refuses to start without a
        #: restored validator (a fresh one would spuriously reject valid
        #: suffixes whose critical sections opened in the prefix).
        self._needs_resume_validator = False

    @property
    def is_complete(self) -> bool:
        return bool(getattr(self._inner, "is_complete", False))

    @property
    def trace(self):
        return getattr(self._inner, "trace", None)

    def length_hint(self) -> Optional[int]:
        hint = getattr(self._inner, "length_hint", None)
        return hint() if callable(hint) else None

    def seek_events(self, events: int) -> None:
        """Delegate positioning to the wrapped source (checkpoint/resume).

        Validating a stream *suffix* soundly requires the validator state
        at the seek offset (prefix-opened critical sections would
        otherwise make valid releases look unmatched), so seeking also
        arms a check that :meth:`restore_checkpoint_state` supplies one
        before iteration starts.
        """
        seek = getattr(self._inner, "seek_events", None)
        if seek is None:
            raise ValueError(
                "wrapped source %r cannot seek to event %d"
                % (self._inner, events)
            )
        seek(events)
        self._needs_resume_validator = events > 0

    def checkpoint_state(self) -> dict:
        """Bundle the online validator's state into engine checkpoints."""
        return {"validator": self.validator.state_dict()}

    def restore_checkpoint_state(self, state: dict) -> None:
        """Adopt a checkpointed validator for the next iteration pass."""
        validator = state.get("validator")
        if validator is not None:
            self._resume_validator = OnlineValidator.from_state(validator)

    def _next_validator(self) -> OnlineValidator:
        if self._needs_resume_validator and self._resume_validator is None:
            raise ValueError(
                "resuming a validated stream mid-way requires the "
                "checkpoint to carry validator state (checkpoints written "
                "by a non-streaming run do not); resume without --stream, "
                "or disable validation with --no-validate"
            )
        validator, self._resume_validator = (
            self._resume_validator or OnlineValidator(), None
        )
        return validator

    def __iter__(self) -> Iterator[Event]:
        if not hasattr(self._inner, "__iter__"):
            raise TypeError(
                "wrapped source %r is asynchronous; iterate with 'async for'"
                % (self._inner,)
            )
        self.validator = self._next_validator()
        return validate_events(self._inner, self.validator)

    def __aiter__(self) -> AsyncIterator[Event]:
        inner = (
            self._inner
            if hasattr(self._inner, "__aiter__")
            else as_async_source(self._inner)
        )
        return self._avalidate(inner)

    async def _avalidate(self, inner) -> AsyncIterator[Event]:
        self.validator = validator = self._next_validator()
        check = validator.check
        async for event in inner:
            check(event)
            yield event

    def __repr__(self) -> str:
        return "ValidatingSource(%r)" % (self._inner,)
