"""The run supervisor: coordinator crashes become bounded resumes.

PR 7 made the sharded engine survive *worker* death, but the coordinator
process itself -- the one iterating the source, whether it drives a
:class:`~repro.engine.RaceEngine`, an
:class:`~repro.engine.AsyncRaceEngine` or a
:class:`~repro.engine.ShardedEngine` -- remained a single point of
failure: a SIGKILL or OOM lost the whole run.  :class:`RunSupervisor`
closes that gap with the PR 5 checkpoint directory:

* every attempt executes the engine pass in a supervised **child
  process** (fork), checkpointing detector state into the directory at a
  fixed event cadence;
* when the child vanishes without reporting a result (killed, OOMed, or
  an injected :meth:`~repro.engine.faults.Fault.kill_coordinator`
  fault), the supervisor waits out an exponential backoff and spawns a
  fresh child that **resumes** from the newest intact checkpoint
  (:func:`~repro.api.resume_engine`) -- or from the stream start when no
  checkpoint landed yet;
* deterministic child errors (validation failures, checkpoint
  mismatches, :class:`~repro.engine.supervision.WorkerFailure`) are
  *not* retried: they are re-raised in the caller, exactly once;
* when the retry budget is spent, one actionable
  :class:`CoordinatorFailure` names the crash count and the remedy.

Because resume replays the identical suffix into detectors restored
from the identical snapshot, the final report -- witnesses and
distances included -- equals the uninterrupted run's byte for byte
(asserted by ``tests/test_runner.py`` for WCP/HB/FastTrack, sharded and
unsharded).  The number of coordinator restarts is folded into
``EngineResult.supervision`` next to the PR 7 worker counters.
"""

from __future__ import annotations

import os
import shutil
import signal
import tempfile
import time
from typing import Optional

from repro.engine.checkpoint import (
    CheckpointError,
    CheckpointMismatchError,
    Checkpointer,
)
from repro.engine.sources import EventSource, as_source
from repro.trace.trace import Trace

__all__ = ["CoordinatorFailure", "RunSupervisor"]

#: Exit status of an injected coordinator kill (mirrors 128+SIGKILL so
#: the supervisor treats it exactly like the real thing).
_KILL_EXIT = 137


class CoordinatorFailure(RuntimeError):
    """The supervised engine process kept dying; the retry budget is spent.

    The one actionable error the run supervisor raises for repeated
    coordinator death -- it names the attempt count, the checkpoint
    directory and what to do next, never a bare broken-pipe traceback.
    """


class _KillAt(EventSource):
    """Transparent source wrapper that hard-exits the process at an offset.

    The injection vehicle for
    :meth:`~repro.engine.faults.Fault.kill_coordinator`: the wrapped
    source behaves identically until ``at_event`` events (absolute
    stream offset, resumes included) have been handed out, then the
    process ``os._exit``\\ s -- no exception propagation, no cleanup, no
    final checkpoint: what a SIGKILL looks like from inside.
    """

    def __init__(self, inner, at_event: int) -> None:
        self._inner = as_source(inner)
        self.name = self._inner.name
        self.registry = self._inner.registry
        self._at = at_event
        self._offset = 0

    @property
    def is_complete(self) -> bool:
        return self._inner.is_complete

    @property
    def trace(self) -> Optional[Trace]:
        return self._inner.trace

    def length_hint(self) -> Optional[int]:
        return self._inner.length_hint()

    def seek_events(self, events: int) -> None:
        self._inner.seek_events(events)
        self._offset = events

    def __getattr__(self, name: str):
        # Forward the optional source protocols (checkpoint_state,
        # restore_checkpoint_state, ...) so wrapping stays transparent
        # to the checkpoint/resume machinery.
        if name.startswith("_"):
            raise AttributeError(name)
        return getattr(self._inner, name)

    def __iter__(self):
        position = self._offset
        at = self._at
        for event in self._inner:
            if position >= at:
                os._exit(_KILL_EXIT)
            yield event
            position += 1


def _child_main(
    conn,
    source,
    detectors,
    config,
    checkpoint_dir,
    checkpoint_every,
    kill_at: Optional[int],
    use_async: bool,
) -> None:
    """One supervised attempt (runs in the forked child).

    Resumes from the directory's newest intact checkpoint when one
    exists, else runs fresh with checkpointing enabled; reports
    ``("ok", result)`` or ``("error", exception)`` over the pipe.  A
    crash reports nothing -- the parent sees the process sentinel fire.
    """
    try:
        # Lead a fresh process group: process-mode shard workers forked
        # below inherit it (and the result pipe's write end), so after a
        # hard kill the supervisor can sweep the whole group instead of
        # leaking orphaned workers that hold the pipe open forever.
        os.setpgid(0, 0)
    except OSError:  # pragma: no cover - permitted to fail (e.g. setsid)
        pass
    try:
        event_source = source() if callable(source) else source
        if kill_at is not None:
            event_source = _KillAt(event_source, kill_at)
        resume = bool(Checkpointer(checkpoint_dir).offsets())
        if resume:
            try:
                result = _attempt_resume(
                    event_source, config, checkpoint_dir, use_async
                )
            except CheckpointMismatchError:
                raise
            except CheckpointError:
                # Every retained file is corrupt: fall back to a fresh
                # run rather than wedging the supervisor on a dead
                # directory (it keeps checkpointing into the same one).
                resume = False
        if not resume:
            result = _attempt_fresh(
                event_source, detectors, config, checkpoint_dir,
                checkpoint_every, use_async,
            )
        payload = ("ok", result)
    except BaseException as error:  # deterministic: reported, not retried
        try:
            payload = ("error", error)
            conn.send(payload)
        except Exception:
            conn.send(("error", RuntimeError(
                "%s: %s" % (type(error).__name__, error)
            )))
        return
    try:
        conn.send(payload)
    except Exception:
        # An unpicklable result is a deterministic failure, not a crash.
        conn.send(("error", RuntimeError(
            "engine result could not be sent back to the supervisor"
        )))


def _attempt_fresh(
    source, detectors, config, checkpoint_dir, checkpoint_every, use_async
):
    from repro.api import run_engine

    if not use_async:
        return run_engine(
            source, detectors, config=config,
            checkpoint=checkpoint_dir, checkpoint_every=checkpoint_every,
        )
    import asyncio
    import copy

    from repro.engine.async_engine import AsyncRaceEngine
    from repro.engine.config import EngineConfig

    effective = copy.copy(config) if config is not None else EngineConfig()
    effective.with_checkpoints(
        checkpoint_dir,
        every=(
            checkpoint_every if checkpoint_every is not None
            else effective.checkpoint_every
        ),
        keep=effective.checkpoint_keep,
    )
    return asyncio.run(AsyncRaceEngine(effective).run(source, detectors))


def _attempt_resume(source, config, checkpoint_dir, use_async):
    from repro.api import resume_engine

    if not use_async:
        # The *directory* (not a loaded Checkpoint) keeps the resumed
        # pass checkpointing into it at the original cadence, so a
        # second crash resumes from an even later offset.
        return resume_engine(source, checkpoint_dir, config=config)
    import asyncio

    from repro.engine.async_engine import AsyncRaceEngine

    return asyncio.run(
        AsyncRaceEngine(config).resume(source, checkpoint_dir)
    )


class RunSupervisor:
    """Execute an engine run in a supervised, auto-resuming child process.

    Parameters
    ----------
    source:
        Anything :func:`~repro.engine.as_source` accepts, or a
        zero-argument callable returning one (called inside each child,
        so crashed attempts never share iterator state).
    detectors / config:
        Forwarded to :func:`~repro.api.run_engine`; sharded and async
        configurations are supervised the same way.  Resumed attempts
        rebuild detectors from the checkpoint stamps.
    checkpoint_dir:
        Where the child persists detector state (every
        ``checkpoint_every`` events).  None creates a private temporary
        directory, removed after a successful run.
    retries:
        Coordinator restarts allowed before :class:`CoordinatorFailure`
        (each restart resumes from the newest intact checkpoint).
    backoff_s / backoff_max_s:
        Exponential restart backoff, matching the worker supervisor's.
    fault_plan:
        Deterministic harness hook: each
        :meth:`~repro.engine.faults.Fault.kill_coordinator` fault makes
        one successive child hard-exit at an exact event offset
        (defaults to ``config.fault_plan``).
    use_async:
        Drive each attempt with :class:`~repro.engine.AsyncRaceEngine`
        instead of the synchronous engine.

    Usage::

        supervisor = RunSupervisor("trace.std", detectors=["wcp"],
                                   checkpoint_dir="ckpts", retries=3)
        result = supervisor.run()   # survives SIGKILL/OOM of the engine
        result.supervision["coordinator_restarts"]
    """

    def __init__(
        self,
        source,
        detectors=None,
        config=None,
        checkpoint_dir=None,
        checkpoint_every: Optional[int] = None,
        retries: int = 2,
        backoff_s: float = 0.05,
        backoff_max_s: float = 2.0,
        fault_plan=None,
        use_async: bool = False,
    ) -> None:
        if retries < 0:
            raise ValueError("coordinator retries must be >= 0")
        self.source = source
        self.detectors = detectors
        self.config = config
        self._owns_dir = checkpoint_dir is None
        self.checkpoint_dir = (
            checkpoint_dir if checkpoint_dir is not None
            else tempfile.mkdtemp(prefix="repro-supervised-")
        )
        self.checkpoint_every = checkpoint_every
        self.retries = retries
        self.backoff_s = backoff_s
        self.backoff_max_s = backoff_max_s
        self.fault_plan = (
            fault_plan if fault_plan is not None
            else getattr(config, "fault_plan", None)
        )
        self.use_async = use_async
        #: Coordinator restarts performed by the last :meth:`run`.
        self.restarts = 0

    def run(self):
        """Run to completion (or exhaustion), resuming across crashes."""
        plan = self.fault_plan
        self.restarts = 0
        last_exit: Optional[int] = None
        while True:
            # Each attempt arms at most one (one-shot) coordinator-kill
            # fault, so a plan with N kills crashes N successive children.
            kill_at = (
                plan.take_coordinator_kill() if plan is not None else None
            )
            outcome = self._attempt(kill_at)
            if outcome is not None:
                kind, payload = outcome
                if kind == "ok":
                    self._fold_supervision(payload)
                    self._cleanup()
                    return payload
                raise payload  # deterministic child error, never retried
            last_exit = self._last_exitcode
            if self.restarts >= self.retries:
                raise CoordinatorFailure(
                    "engine process died %d time(s) (last exit status %s) "
                    "and the retry budget is exhausted; checkpoints up to "
                    "the last crash remain in %s -- resume manually with "
                    "resume_engine()/--resume, or raise the retry budget "
                    "(--auto-resume)"
                    % (self.restarts + 1, last_exit, self.checkpoint_dir)
                )
            delay = min(
                self.backoff_max_s, self.backoff_s * (2 ** self.restarts)
            )
            if delay > 0:
                time.sleep(delay)
            self.restarts += 1

    # ------------------------------------------------------------------ #
    # One attempt
    # ------------------------------------------------------------------ #

    def _attempt(self, kill_at: Optional[int]):
        """Fork one supervised child; None means it crashed silently."""
        import multiprocessing

        try:
            context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-fork platforms
            context = multiprocessing.get_context()
        receiver, sender = context.Pipe(duplex=False)
        child = context.Process(
            target=_child_main,
            args=(
                sender, self.source, self.detectors, self.config,
                self.checkpoint_dir, self.checkpoint_every, kill_at,
                self.use_async,
            ),
            name="repro-supervised-run",
        )
        child.start()
        sender.close()
        try:
            message = self._await_child(receiver, child)
        finally:
            receiver.close()
            child.join()
        self._last_exitcode = child.exitcode
        if message is None:
            self._sweep_orphans(child)
        return message

    @staticmethod
    def _await_child(receiver, child):
        """Wait for the child's reply or its death, whichever is first.

        Neither pipe EOF nor the process sentinel can signal death on
        their own: a killed child's own shard workers (process mode)
        survive as orphans holding inherited copies of both write ends,
        which would hold them off forever.  ``is_alive`` (``waitpid``)
        is the only descendant-proof death signal, so poll it.
        """
        while True:
            if receiver.poll(0.05):
                try:
                    return receiver.recv()
                except EOFError:
                    return None
            if not child.is_alive():
                # Died.  The reply, if any, was sent before exit and is
                # already buffered -- one final grace poll picks it up.
                if receiver.poll(0.25):
                    try:
                        return receiver.recv()
                    except EOFError:
                        return None
                return None

    @staticmethod
    def _sweep_orphans(child) -> None:
        """Kill what remains of a crashed child's process group."""
        if child.pid is None:  # pragma: no cover - never started
            return
        try:
            os.killpg(child.pid, signal.SIGKILL)
        except (ProcessLookupError, PermissionError):
            pass
        except OSError:  # pragma: no cover - platform quirks
            pass

    _last_exitcode: Optional[int] = None

    def _fold_supervision(self, result) -> None:
        supervision = getattr(result, "supervision", None)
        if supervision is None:
            supervision = {}
            result.supervision = supervision
        supervision["coordinator_restarts"] = (
            supervision.get("coordinator_restarts", 0) + self.restarts
        )

    def _cleanup(self) -> None:
        if self._owns_dir:
            shutil.rmtree(self.checkpoint_dir, ignore_errors=True)

    def __repr__(self) -> str:
        return "RunSupervisor(dir=%r, retries=%d, restarts=%d)" % (
            str(self.checkpoint_dir), self.retries, self.restarts,
        )
