"""Event sources: pluggable producers of event streams for the engine.

An :class:`EventSource` is anything that can hand the
:class:`~repro.engine.engine.RaceEngine` a sequence of
:class:`~repro.trace.event.Event` objects exactly once.  Concrete sources:

* :class:`TraceSource` -- an in-memory, validated
  :class:`~repro.trace.trace.Trace` (``is_complete``: detectors may
  pre-scan it, e.g. WCP's queue pruning);
* :class:`FileSource` -- a log file parsed lazily, line by line, through
  the streaming entry points of :mod:`repro.trace.parsers`; the full trace
  is never materialised;
* :class:`IterableSource` -- any iterable/generator of events (e.g. an
  instrumentation callback queue);
* :class:`SimulatorSource` -- a simulator program run under a scheduler,
  feeding the emitted events straight into the engine;
* :class:`CountingSource` -- a transparent wrapper that counts iteration
  passes and events, used by tests and benchmarks to *prove* the engine's
  single-pass property;
* :class:`QueueSource` -- a thread-safe **push** source: callback
  producers (e.g. an instrumentation hook on another thread) ``put``
  events into a bounded queue -- blocking when the consumer falls behind,
  which is the backpressure contract -- and the engine drains it, from a
  plain ``for`` loop or an ``async for`` loop;
* :class:`LineProtocolSource` -- an asyncio-native source decoding the
  STD line protocol off an :class:`asyncio.StreamReader` (an accepted
  socket connection, a pipe) through the batched
  :func:`repro.trace.parsers.parse_std_batch` decoder; backpressure
  comes from the stream's own flow control (the transport pauses the
  peer when the reader's buffer fills).

:func:`as_source` coerces plain traces, paths and iterables, so the
public API accepts all of them interchangeably;
:func:`as_async_source` additionally accepts asynchronous sources and
adapts synchronous ones for cooperative ``async for`` consumption (see
:class:`~repro.engine.async_engine.AsyncRaceEngine`).

Every source exposes a ``registry``
(:class:`~repro.vectorclock.registry.ThreadRegistry`): the interning
table used to stamp the ``tid`` of every yielded event.  The engine hands
the same registry to every detector of a pass (via the backing trace or
the stream context), so thread identifiers are hashed exactly once -- at
the source boundary -- no matter how many detectors run.
"""

from __future__ import annotations

import itertools
import queue as queue_module
from pathlib import Path
from typing import AsyncIterator, Iterable, Iterator, Optional, Union

from repro.trace.event import Event
from repro.trace.parsers import iter_trace_file, parse_std_batch
from repro.trace.trace import Trace
from repro.vectorclock.registry import ThreadRegistry


class EventSource:
    """Base class for event stream producers.

    Attributes
    ----------
    name:
        Human-readable stream name, used as the trace name in reports.
    is_complete:
        True when the underlying events are fully materialised and may be
        iterated repeatedly (detectors may pre-scan); False for genuine
        streams, which the engine guarantees to iterate exactly once.
    """

    name = "stream"
    is_complete = False
    #: Interning table whose tids stamp the yielded events (None when the
    #: source does not stamp; detectors then intern per event themselves).
    registry: Optional[ThreadRegistry] = None

    def __iter__(self) -> Iterator[Event]:
        raise NotImplementedError

    def length_hint(self) -> Optional[int]:
        """Return the number of events when known up front, else None."""
        return None

    def seek_events(self, events: int) -> None:
        """Position the source so iteration resumes at offset ``events``.

        Part of the checkpoint/resume protocol
        (:mod:`repro.engine.checkpoint`): replayable sources skip the
        first ``events`` events of their stream; push sources instead
        record the offset and advertise it to their producer.  The base
        implementation only accepts offset 0.
        """
        if events:
            raise ValueError(
                "%s cannot seek to event %d; resume requires a seekable "
                "source" % (type(self).__name__, events)
            )

    @property
    def trace(self) -> Optional[Trace]:
        """The backing :class:`Trace` when one exists, else None.

        The engine passes a real trace to ``Detector.reset`` when
        available so trace-wide optimisations stay enabled.
        """
        return None

    def __repr__(self) -> str:
        return "%s(%r)" % (type(self).__name__, self.name)


class TraceSource(EventSource):
    """Adapt an in-memory :class:`Trace` to the source interface."""

    is_complete = True

    def __init__(self, trace: Trace) -> None:
        self._trace = trace
        self.name = trace.name
        self.registry = getattr(trace, "registry", None)
        self._skip = 0

    def __iter__(self) -> Iterator[Event]:
        return _skip_prefix(iter(self._trace), self._skip)

    def seek_events(self, events: int) -> None:
        self._skip = events

    def length_hint(self) -> Optional[int]:
        return len(self._trace)

    @property
    def trace(self) -> Optional[Trace]:
        return self._trace


class FileSource(EventSource):
    """Stream a trace log from disk without materialising a :class:`Trace`.

    The file is re-opened on every iteration, so the source is replayable,
    but the engine only ever takes a single pass.  Format is dispatched on
    the file extension exactly like
    :func:`repro.trace.parsers.load_trace`, unless ``format`` names one of
    :data:`repro.trace.parsers.FORMAT_NAMES` explicitly.
    """

    def __init__(
        self,
        path: Union[str, Path],
        name: Optional[str] = None,
        format: Optional[str] = None,
    ) -> None:
        self.path = Path(path)
        self.name = name or self.path.stem
        self.registry = ThreadRegistry()
        self.format = format
        self._skip = 0

    def __iter__(self) -> Iterator[Event]:
        # A skipped prefix is parsed (cheap relative to analysis) but not
        # yielded; skipped events still intern their threads, in the
        # same first-appearance order a restored snapshot expects.
        return _skip_prefix(
            iter_trace_file(
                self.path, registry=self.registry, format=self.format
            ),
            self._skip,
        )

    def seek_events(self, events: int) -> None:
        """Resume iteration at event offset ``events`` (checkpoint/resume)."""
        self._skip = events

    def __repr__(self) -> str:
        return "FileSource(%r)" % (str(self.path),)


class IterableSource(EventSource):
    """Wrap an arbitrary iterable (or one-shot generator) of events.

    Events are stamped with tids from the source's own registry as they
    pass through; an event already stamped by a *different* registry is
    replaced with a fresh copy so the original stamps stay intact.
    """

    def __init__(self, events: Iterable[Event], name: str = "stream") -> None:
        self._events = events
        self.name = name
        self.registry = ThreadRegistry()
        self._skip = 0

    def __iter__(self) -> Iterator[Event]:
        return _skip_prefix(_stamped(self._events, self.registry), self._skip)

    def seek_events(self, events: int) -> None:
        """Resume at offset ``events`` (skips that many events on iteration)."""
        self._skip = events


class SimulatorSource(EventSource):
    """Feed the engine from a live simulator run.

    The program is executed (under the given scheduler) when the engine
    starts iterating, and the emitted events flow straight into the
    detectors through the interpreter's incremental
    :meth:`~repro.simulator.interpreter.Interpreter.iter_events`
    generator: no intermediate trace is ever materialised, so memory
    stays constant no matter how long the run is.  Like every genuine
    stream, the events see no trace-level validation (execution semantics
    guarantee lock consistency anyway).
    """

    def __init__(self, program, scheduler=None, allow_deadlock: bool = False,
                 name: Optional[str] = None) -> None:
        self.program = program
        self.scheduler = scheduler
        self.allow_deadlock = allow_deadlock
        self.name = name or getattr(program, "name", "simulation")
        # Persists across runs so tids stay stable even when the scheduler
        # makes threads appear in a different order on a re-run.
        self.registry = ThreadRegistry()

    def __iter__(self) -> Iterator[Event]:
        from repro.simulator.interpreter import Interpreter

        interpreter = Interpreter(self.program, self.scheduler)
        return _stamped(
            interpreter.iter_events(allow_deadlock=self.allow_deadlock),
            self.registry,
        )


class CountingSource(EventSource):
    """Transparent wrapper that counts passes and events.

    Used to demonstrate (in tests and benchmarks) that the engine drives
    ``k`` detectors with exactly **one** iteration of the underlying
    source, where the legacy one-detector-at-a-time path took ``k``.

    Transparency includes the completeness protocol: ``is_complete`` and
    ``trace`` are forwarded from the wrapped source, so wrapping a
    complete :class:`TraceSource` does not silently downgrade detectors
    to stream mode (WCP would otherwise lose its queue-pruning prescan
    and report different stats than the unwrapped run).
    """

    def __init__(self, inner: Union[EventSource, Trace, Iterable[Event]],
                 name: Optional[str] = None) -> None:
        self._inner = as_source(inner)
        self.name = name or self._inner.name
        self.registry = self._inner.registry
        #: Number of times iteration was started.
        self.passes = 0
        #: Number of events handed out across all passes.
        self.events_emitted = 0

    @property
    def is_complete(self) -> bool:
        return self._inner.is_complete

    @property
    def trace(self) -> Optional[Trace]:
        return self._inner.trace

    def __iter__(self) -> Iterator[Event]:
        self.passes += 1
        for event in self._inner:
            self.events_emitted += 1
            yield event

    def length_hint(self) -> Optional[int]:
        return self._inner.length_hint()

    def seek_events(self, events: int) -> None:
        self._inner.seek_events(events)


#: End-of-stream marker used by the push sources.
_CLOSED = object()

#: Broken-stream marker: the producer died or aborted; consuming raises.
_ABORTED = object()


class QueueSource(EventSource):
    """A thread-safe push source for callback producers.

    Inverts the pull model of the other sources: a producer -- an
    instrumentation callback, a logger thread, a network receiver --
    calls :meth:`put` for every event and :meth:`close` at end of
    stream, while an engine concurrently drains the queue.  The queue is
    bounded (``maxsize``), so a producer outrunning the analysis blocks
    in :meth:`put` until the engine catches up: backpressure instead of
    unbounded buffering, preserving the constant-memory contract.

    The source is a genuine one-shot stream (``is_complete`` False).  It
    supports both consumption styles:

    * ``for event in source`` -- blocking iteration for
      :class:`~repro.engine.engine.RaceEngine` running in a consumer
      thread;
    * ``async for event in source`` -- for
      :class:`~repro.engine.async_engine.AsyncRaceEngine`; queue waits
      are delegated to the event loop's default executor so the loop is
      never blocked.

    Events are stamped with tids from the source's registry exactly like
    :class:`IterableSource`.
    """

    def __init__(self, name: str = "queue", maxsize: int = 1024,
                 registry: Optional[ThreadRegistry] = None) -> None:
        self.name = name
        # An injected registry lets a session own the interning table
        # across several source incarnations (the serve tier's
        # evict/restore cycle); by default each source brings its own.
        self.registry = registry if registry is not None else ThreadRegistry()
        self._queue: "queue_module.Queue" = queue_module.Queue(maxsize)
        self._closed = False
        self._abort_reason: Optional[str] = None
        #: Optional producer handle (anything with ``is_alive()``, e.g. a
        #: ``threading.Thread``): lets the consumer notice abrupt
        #: producer death instead of blocking on the queue forever.
        self._producer = None
        #: The resume handshake (checkpoint/resume protocol): the last
        #: durable event offset of a resumed pass.  A producer re-attached
        #: after a crash reads this and replays its events from that
        #: absolute position onward -- the engine renumbers from the same
        #: offset, so the replayed suffix continues the original stream.
        self.resume_offset = 0

    def seek_events(self, events: int) -> None:
        """Record the resume offset for the producer-side handshake.

        Nothing is skipped: the producer is expected to consult
        :attr:`resume_offset` and push only events from that offset on.
        """
        self.resume_offset = events

    def put(self, event: Event, timeout: Optional[float] = None) -> None:
        """Enqueue one event; blocks while the queue is full (backpressure).

        Raises :class:`queue.Full` when ``timeout`` elapses first, and
        :class:`RuntimeError` when called after :meth:`close`.
        """
        if self._closed:
            raise RuntimeError("QueueSource %r is closed" % (self.name,))
        self._queue.put(event, timeout=timeout)

    def push(self, thread: str, etype, target: Optional[str] = None,
             loc: Optional[str] = None) -> None:
        """Convenience: build and :meth:`put` an event in one call.

        The index is left to the engine's renumbering (builder
        convention -1).
        """
        self.put(Event(-1, thread, etype, target, loc))

    def close(self) -> None:
        """Signal end of stream; idempotent.

        The consumer finishes draining whatever is queued and then
        stops.
        """
        if not self._closed:
            self._closed = True
            self._queue.put(_CLOSED)

    def abort(self, reason: str = "producer aborted the stream") -> None:
        """Mark the stream broken; the consumer raises instead of hanging.

        The governed counterpart of a producer crash: whatever is
        already queued is still drained (those events are real), then
        iteration raises ``RuntimeError(reason)`` -- never a silent
        truncation, never a consumer blocked on :meth:`put` that will
        not come.  Idempotent; :meth:`put` raises afterwards exactly as
        after :meth:`close`.
        """
        if not self._closed:
            self._closed = True
            self._abort_reason = reason
            self._queue.put(_ABORTED)

    def attach_producer(self, producer) -> None:
        """Register the producing thread for liveness supervision.

        ``producer`` is anything with ``is_alive()`` (typically a
        ``threading.Thread``).  If it dies without calling
        :meth:`close` or :meth:`abort`, the consumer -- instead of
        blocking forever on a queue that will never be fed -- drains
        what was delivered and raises a ``RuntimeError`` naming the
        producer.
        """
        self._producer = producer

    def _producer_died(self) -> bool:
        return (
            self._producer is not None
            and not self._closed
            and not self._producer.is_alive()
        )

    def _raise_broken(self) -> None:
        raise RuntimeError(
            "QueueSource %r: %s" % (
                self.name,
                self._abort_reason
                or "producer %r died without closing the stream"
                % (getattr(self._producer, "name", self._producer),),
            )
        )

    @property
    def closed(self) -> bool:
        return self._closed

    def qsize(self) -> int:
        """Events currently buffered (approximate, like ``Queue.qsize``)."""
        return self._queue.qsize()

    def __iter__(self) -> Iterator[Event]:
        intern = self.registry.intern
        get = self._queue.get
        while True:
            try:
                # Bounded waits: an abandoned queue (producer crashed
                # without close()) must surface as an error, not a hang.
                item = get(timeout=0.25)
            except queue_module.Empty:
                if self._producer_died():
                    self._raise_broken()
                continue
            if item is _CLOSED:
                # Re-arm the marker so a second (empty) iteration
                # terminates instead of blocking forever.
                self._queue.put(_CLOSED)
                return
            if item is _ABORTED:
                self._queue.put(_ABORTED)
                self._raise_broken()
            yield _stamp(item, intern)

    def __aiter__(self) -> AsyncIterator[Event]:
        return self._drain_async()

    async def _drain_async(self) -> AsyncIterator[Event]:
        import asyncio

        loop = asyncio.get_running_loop()
        intern = self.registry.intern
        get_nowait = self._queue.get_nowait
        get = self._queue.get
        while True:
            try:
                item = get_nowait()
            except queue_module.Empty:
                # Park the wait on a worker thread so the event loop
                # stays free for the producers -- but in *bounded* slices
                # (Queue.get timeouts), never an indefinite block: a
                # cancelled consumer must not wedge an executor thread
                # in get() forever (loop.shutdown_default_executor()
                # would then hang the whole program on exit).
                try:
                    item = await loop.run_in_executor(None, get, True, 0.25)
                except queue_module.Empty:
                    if self._producer_died():
                        self._raise_broken()
                    continue
            if item is _CLOSED:
                self._queue.put(_CLOSED)
                return
            if item is _ABORTED:
                self._queue.put(_ABORTED)
                self._raise_broken()
            yield _stamp(item, intern)


class AsyncEventSource:
    """Base class for asyncio-native event stream producers.

    The asynchronous counterpart of :class:`EventSource`: the same
    ``name`` / ``is_complete`` / ``registry`` / ``trace`` protocol, but
    events are produced through ``__aiter__`` for an ``async for`` loop
    (:class:`~repro.engine.async_engine.AsyncRaceEngine`).
    """

    name = "stream"
    is_complete = False
    registry: Optional[ThreadRegistry] = None
    #: Asynchronous sources never have a materialised backing trace.
    trace: Optional[Trace] = None

    def __aiter__(self) -> AsyncIterator[Event]:
        raise NotImplementedError

    def length_hint(self) -> Optional[int]:
        return None

    def __repr__(self) -> str:
        return "%s(%r)" % (type(self).__name__, self.name)


class LineProtocolSource(AsyncEventSource):
    """Decode the STD line protocol off an :class:`asyncio.StreamReader`.

    One ``thread|op(arg)[|loc]`` event per line -- the exact grammar of
    the on-disk STD format, so a logger can pipe the same bytes to a
    file or a socket.  The reader may come from an accepted server
    connection (``repro-race serve``), ``asyncio.open_connection``, or a
    pipe transport; end of stream is the peer's EOF.  asyncio's stream
    flow control provides the backpressure: when the engine falls
    behind, the transport pauses the peer instead of buffering
    unboundedly.

    Decoding is batched: whatever span of complete lines one socket read
    delivers is split and fed to
    :func:`repro.trace.parsers.parse_std_batch` as a single block, so a
    fast producer pays the per-line Python overhead once per *batch*
    while a trickling producer still sees per-line latency (a read
    returns as soon as any bytes arrive).
    """

    #: Longest accepted line (bytes, newline excluded).  Replaces the
    #: StreamReader per-line limit the readline-based decoder relied on:
    #: a peer spraying an endless unterminated line is cut off instead of
    #: growing the pending buffer without bound.
    MAX_LINE_BYTES = 1 << 20

    def __init__(self, reader, name: str = "socket",
                 registry: Optional[ThreadRegistry] = None,
                 initial_lines: Optional[list] = None,
                 on_line=None) -> None:
        self.reader = reader
        self.name = name
        self.registry = registry if registry is not None else ThreadRegistry()
        #: Raw lines (bytes) consumed before the reader -- a server that
        #: peeked at the stream head (the resume handshake) pushes the
        #: peeked line back through here.
        self.initial_lines = list(initial_lines or [])
        #: Optional callback invoked with every raw line (bytes) as it is
        #: consumed -- comments and blanks included -- so a server can
        #: account wire bytes without re-reading the stream.
        self.on_line = on_line
        #: The resume handshake: the last durable event offset, advertised
        #: to the peer as a ``resume <offset>`` response line by the serve
        #: protocol; the peer replays its events from that offset on.
        self.resume_offset = 0

    def seek_events(self, events: int) -> None:
        """Record the resume offset; the peer replays from it (handshake)."""
        self.resume_offset = events

    def __aiter__(self) -> AsyncIterator[Event]:
        return self._decode()

    async def _decode(self) -> AsyncIterator[Event]:
        import asyncio

        read = self.reader.read
        registry = self.registry
        on_line = self.on_line
        index = 0
        line_number = 1
        op_cache: dict = {}
        if self.initial_lines:
            block = []
            for raw in self.initial_lines:
                data = raw if isinstance(raw, bytes) else raw.encode("utf-8")
                if on_line is not None:
                    on_line(data)
                block.append(
                    raw.decode("utf-8", "replace")
                    if isinstance(raw, bytes) else raw
                )
            events, index, line_number = parse_std_batch(
                block, index, line_number,
                registry=registry, op_cache=op_cache,
            )
            for event in events:
                yield event
        pending = b""
        max_line = self.MAX_LINE_BYTES
        while True:
            chunk = await read(65536)
            if not chunk:
                if pending:
                    # The peer vanished mid-line.  Surface it as the
                    # disconnect it is (the serve tier counts it in
                    # ``disconnected``) instead of parsing half a record
                    # or raising a grammar error for bytes the client
                    # never finished sending.
                    raise asyncio.IncompleteReadError(pending, None)
                return
            pending += chunk
            if b"\n" not in chunk:
                if len(pending) > max_line:
                    raise ValueError(
                        "line protocol: %d bytes without a newline "
                        "(limit %d)" % (len(pending), max_line)
                    )
                continue
            raw_lines = pending.split(b"\n")
            pending = raw_lines.pop()
            if len(pending) > max_line:
                raise ValueError(
                    "line protocol: %d bytes without a newline (limit %d)"
                    % (len(pending), max_line)
                )
            if on_line is not None:
                for raw in raw_lines:
                    on_line(raw + b"\n")
            events, index, line_number = parse_std_batch(
                [raw.decode("utf-8", "replace") for raw in raw_lines],
                index, line_number, registry=registry, op_cache=op_cache,
            )
            for event in events:
                yield event


def _skip_prefix(events: Iterator[Event], skip: int) -> Iterator[Event]:
    """Drop the first ``skip`` events (checkpoint/resume positioning)."""
    if skip:
        return itertools.islice(events, skip, None)
    return events


def _stamp(event: Event, intern) -> Event:
    """Stamp one event's ``tid``, copying on a conflicting prior stamp."""
    tid = intern(event.thread)
    if event.tid is None:
        event.tid = tid
    elif event.tid != tid:
        event = Event(
            event.index, event.thread, event.etype, event.target,
            event.loc, tid=tid,
        )
    return event


def _stamped(events: Iterable[Event], registry: ThreadRegistry) -> Iterator[Event]:
    """Yield ``events`` with their ``tid`` stamped from ``registry``.

    Events stamped by a different registry (conflicting tid) are yielded
    as fresh copies instead of being restamped in place.
    """
    intern = registry.intern
    for event in events:
        yield _stamp(event, intern)


def as_source(obj: Union[EventSource, Trace, str, Path, Iterable[Event]],
              name: Optional[str] = None) -> EventSource:
    """Coerce ``obj`` into an :class:`EventSource`.

    Accepts an existing source (returned unchanged), a :class:`Trace`, a
    file path (``str`` / ``Path``), or any iterable of events.
    """
    if isinstance(obj, EventSource):
        return obj
    if isinstance(obj, Trace):
        return TraceSource(obj)
    if isinstance(obj, (str, Path)):
        return FileSource(obj, name=name)
    if hasattr(obj, "__iter__"):
        return IterableSource(obj, name=name or "stream")
    raise TypeError(
        "cannot build an event source from %r (expected EventSource, Trace, "
        "path, or iterable of events)" % (type(obj).__name__,)
    )


class _CooperativeSource(AsyncEventSource):
    """Adapt a synchronous source for an ``async for`` loop.

    Yields the inner source's events unchanged, surrendering the event
    loop every ``yield_every`` events so a long pull-based pass (a big
    trace file) cannot starve the loop's other tasks.  Completeness,
    trace, registry and length hints are forwarded, so the async engine
    treats an adapted complete trace exactly like the sync engine does.
    """

    def __init__(self, inner: EventSource, yield_every: int = 256) -> None:
        self._inner = inner
        self._yield_every = yield_every
        self.name = inner.name
        self.registry = inner.registry

    @property
    def is_complete(self) -> bool:
        return self._inner.is_complete

    @property
    def trace(self) -> Optional[Trace]:
        return self._inner.trace

    def length_hint(self) -> Optional[int]:
        return self._inner.length_hint()

    def seek_events(self, events: int) -> None:
        self._inner.seek_events(events)

    def checkpoint_state(self):
        state = getattr(self._inner, "checkpoint_state", None)
        return state() if callable(state) else None

    def restore_checkpoint_state(self, state) -> None:
        restore = getattr(self._inner, "restore_checkpoint_state", None)
        if callable(restore):
            restore(state)

    def __aiter__(self) -> AsyncIterator[Event]:
        return self._cooperate()

    async def _cooperate(self) -> AsyncIterator[Event]:
        import asyncio

        yield_every = self._yield_every
        count = 0
        for event in self._inner:
            yield event
            count += 1
            if count % yield_every == 0:
                await asyncio.sleep(0)


def as_async_source(obj, name: Optional[str] = None):
    """Coerce ``obj`` into something an ``async for`` loop can consume.

    Asynchronous sources (anything with ``__aiter__``, e.g.
    :class:`LineProtocolSource`, :class:`QueueSource`, a wrapped
    :class:`~repro.engine.validate.ValidatingSource`) are returned
    unchanged; everything :func:`as_source` accepts is adapted through a
    cooperative wrapper that periodically yields the event loop.
    """
    if hasattr(obj, "__aiter__"):
        return obj
    return _CooperativeSource(as_source(obj, name=name))
