"""Event sources: pluggable producers of event streams for the engine.

An :class:`EventSource` is anything that can hand the
:class:`~repro.engine.engine.RaceEngine` a sequence of
:class:`~repro.trace.event.Event` objects exactly once.  Concrete sources:

* :class:`TraceSource` -- an in-memory, validated
  :class:`~repro.trace.trace.Trace` (``is_complete``: detectors may
  pre-scan it, e.g. WCP's queue pruning);
* :class:`FileSource` -- a log file parsed lazily, line by line, through
  the streaming entry points of :mod:`repro.trace.parsers`; the full trace
  is never materialised;
* :class:`IterableSource` -- any iterable/generator of events (e.g. an
  instrumentation callback queue);
* :class:`SimulatorSource` -- a simulator program run under a scheduler,
  feeding the emitted events straight into the engine;
* :class:`CountingSource` -- a transparent wrapper that counts iteration
  passes and events, used by tests and benchmarks to *prove* the engine's
  single-pass property.

:func:`as_source` coerces plain traces, paths and iterables, so the
public API accepts all of them interchangeably.

Every source exposes a ``registry``
(:class:`~repro.vectorclock.registry.ThreadRegistry`): the interning
table used to stamp the ``tid`` of every yielded event.  The engine hands
the same registry to every detector of a pass (via the backing trace or
the stream context), so thread identifiers are hashed exactly once -- at
the source boundary -- no matter how many detectors run.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Iterator, Optional, Union

from repro.trace.event import Event
from repro.trace.parsers import iter_trace_file
from repro.trace.trace import Trace
from repro.vectorclock.registry import ThreadRegistry


class EventSource:
    """Base class for event stream producers.

    Attributes
    ----------
    name:
        Human-readable stream name, used as the trace name in reports.
    is_complete:
        True when the underlying events are fully materialised and may be
        iterated repeatedly (detectors may pre-scan); False for genuine
        streams, which the engine guarantees to iterate exactly once.
    """

    name = "stream"
    is_complete = False
    #: Interning table whose tids stamp the yielded events (None when the
    #: source does not stamp; detectors then intern per event themselves).
    registry: Optional[ThreadRegistry] = None

    def __iter__(self) -> Iterator[Event]:
        raise NotImplementedError

    def length_hint(self) -> Optional[int]:
        """Return the number of events when known up front, else None."""
        return None

    @property
    def trace(self) -> Optional[Trace]:
        """The backing :class:`Trace` when one exists, else None.

        The engine passes a real trace to ``Detector.reset`` when
        available so trace-wide optimisations stay enabled.
        """
        return None

    def __repr__(self) -> str:
        return "%s(%r)" % (type(self).__name__, self.name)


class TraceSource(EventSource):
    """Adapt an in-memory :class:`Trace` to the source interface."""

    is_complete = True

    def __init__(self, trace: Trace) -> None:
        self._trace = trace
        self.name = trace.name
        self.registry = getattr(trace, "registry", None)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._trace)

    def length_hint(self) -> Optional[int]:
        return len(self._trace)

    @property
    def trace(self) -> Optional[Trace]:
        return self._trace


class FileSource(EventSource):
    """Stream a trace log from disk without materialising a :class:`Trace`.

    The file is re-opened on every iteration, so the source is replayable,
    but the engine only ever takes a single pass.  Format is dispatched on
    the file extension exactly like
    :func:`repro.trace.parsers.load_trace`.
    """

    def __init__(self, path: Union[str, Path], name: Optional[str] = None) -> None:
        self.path = Path(path)
        self.name = name or self.path.stem
        self.registry = ThreadRegistry()

    def __iter__(self) -> Iterator[Event]:
        return iter_trace_file(self.path, registry=self.registry)

    def __repr__(self) -> str:
        return "FileSource(%r)" % (str(self.path),)


class IterableSource(EventSource):
    """Wrap an arbitrary iterable (or one-shot generator) of events.

    Events are stamped with tids from the source's own registry as they
    pass through; an event already stamped by a *different* registry is
    replaced with a fresh copy so the original stamps stay intact.
    """

    def __init__(self, events: Iterable[Event], name: str = "stream") -> None:
        self._events = events
        self.name = name
        self.registry = ThreadRegistry()

    def __iter__(self) -> Iterator[Event]:
        return _stamped(self._events, self.registry)


class SimulatorSource(EventSource):
    """Feed the engine from a live simulator run.

    The program is executed (under the given scheduler) when the engine
    starts iterating, and the emitted events flow straight into the
    detectors through the interpreter's incremental
    :meth:`~repro.simulator.interpreter.Interpreter.iter_events`
    generator: no intermediate trace is ever materialised, so memory
    stays constant no matter how long the run is.  Like every genuine
    stream, the events see no trace-level validation (execution semantics
    guarantee lock consistency anyway).
    """

    def __init__(self, program, scheduler=None, allow_deadlock: bool = False,
                 name: Optional[str] = None) -> None:
        self.program = program
        self.scheduler = scheduler
        self.allow_deadlock = allow_deadlock
        self.name = name or getattr(program, "name", "simulation")
        # Persists across runs so tids stay stable even when the scheduler
        # makes threads appear in a different order on a re-run.
        self.registry = ThreadRegistry()

    def __iter__(self) -> Iterator[Event]:
        from repro.simulator.interpreter import Interpreter

        interpreter = Interpreter(self.program, self.scheduler)
        return _stamped(
            interpreter.iter_events(allow_deadlock=self.allow_deadlock),
            self.registry,
        )


class CountingSource(EventSource):
    """Transparent wrapper that counts passes and events.

    Used to demonstrate (in tests and benchmarks) that the engine drives
    ``k`` detectors with exactly **one** iteration of the underlying
    source, where the legacy one-detector-at-a-time path took ``k``.
    """

    def __init__(self, inner: Union[EventSource, Trace, Iterable[Event]],
                 name: Optional[str] = None) -> None:
        self._inner = as_source(inner)
        self.name = name or self._inner.name
        self.registry = self._inner.registry
        #: Number of times iteration was started.
        self.passes = 0
        #: Number of events handed out across all passes.
        self.events_emitted = 0

    def __iter__(self) -> Iterator[Event]:
        self.passes += 1
        for event in self._inner:
            self.events_emitted += 1
            yield event

    def length_hint(self) -> Optional[int]:
        return self._inner.length_hint()


def _stamped(events: Iterable[Event], registry: ThreadRegistry) -> Iterator[Event]:
    """Yield ``events`` with their ``tid`` stamped from ``registry``.

    Events stamped by a different registry (conflicting tid) are yielded
    as fresh copies instead of being restamped in place.
    """
    intern = registry.intern
    for event in events:
        tid = intern(event.thread)
        if event.tid is None:
            event.tid = tid
        elif event.tid != tid:
            event = Event(
                event.index, event.thread, event.etype, event.target,
                event.loc, tid=tid,
            )
        yield event


def as_source(obj: Union[EventSource, Trace, str, Path, Iterable[Event]],
              name: Optional[str] = None) -> EventSource:
    """Coerce ``obj`` into an :class:`EventSource`.

    Accepts an existing source (returned unchanged), a :class:`Trace`, a
    file path (``str`` / ``Path``), or any iterable of events.
    """
    if isinstance(obj, EventSource):
        return obj
    if isinstance(obj, Trace):
        return TraceSource(obj)
    if isinstance(obj, (str, Path)):
        return FileSource(obj, name=name)
    if hasattr(obj, "__iter__"):
        return IterableSource(obj, name=name or "stream")
    raise TypeError(
        "cannot build an event source from %r (expected EventSource, Trace, "
        "path, or iterable of events)" % (type(obj).__name__,)
    )
