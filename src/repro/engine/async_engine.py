"""The asynchronous race engine: push ingestion without blocking.

:class:`~repro.engine.engine.RaceEngine` *pulls* events: a live logger
feeding it must either materialise its output first or block a thread in
a queue.  :class:`AsyncRaceEngine` is the asyncio-native counterpart --
one coroutine awaits events off any asynchronous source (a socket or
pipe speaking the STD line protocol, a push queue, or any object with
``__aiter__``) and steps them through the detectors as they arrive, so
producers and analysis interleave on one event loop.

The per-event semantics are **shared**, not reimplemented: both engines
drive the same :class:`~repro.engine.engine.EnginePass` stepper, so
reset/process/snapshot/early-stop/finish behaviour, cost accounting and
the resulting :class:`~repro.engine.engine.EngineResult` are identical
by construction -- the async-vs-sync parity suite asserts report
equality event for event.  Per-event work stays O(1); the only
difference is who waits when the stream runs dry.

Synchronous inputs (traces, files, iterables) are accepted too: they are
adapted through :func:`~repro.engine.sources.as_async_source`, which
periodically surrenders the event loop so a long file pass cannot starve
other tasks.

Serving is layered on top: :func:`serve_connection` runs one engine pass
over an accepted ``(reader, writer)`` stream pair, validating the stream
online by default and answering with a compact per-detector summary --
the core of the ``repro-race serve`` CLI subcommand.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.engine.config import DetectorSpec, EngineConfig
from repro.engine.engine import EnginePass, EngineResult
from repro.engine.sources import LineProtocolSource, as_async_source
from repro.engine.validate import ValidatingSource

__all__ = ["AsyncRaceEngine", "serve_connection"]


class AsyncRaceEngine:
    """Drive N detectors over one asynchronous event source in one pass.

    Usage::

        engine = AsyncRaceEngine(EngineConfig().with_detectors("wcp", "hb"))
        result = await engine.run(source)
        result["WCP"].count()

    ``source`` may be an asynchronous source
    (:class:`~repro.engine.sources.LineProtocolSource`,
    :class:`~repro.engine.sources.QueueSource`, any ``__aiter__``
    object) or anything the synchronous engine accepts (trace, path,
    iterable), adapted cooperatively.  Configuration, early-stop
    policies, snapshots and the result type are exactly
    :class:`~repro.engine.engine.RaceEngine`'s -- both drive the shared
    :class:`~repro.engine.engine.EnginePass`.
    """

    def __init__(self, config: Optional[EngineConfig] = None) -> None:
        self.config = config or EngineConfig()

    async def run(
        self,
        source,
        detectors: Optional[Sequence[DetectorSpec]] = None,
    ) -> EngineResult:
        """Await events from ``source`` and run the configured detectors."""
        config = self.config
        resolved = config.resolve_detectors(detectors)
        async_source = as_async_source(source)

        pass_ = EnginePass(
            config, resolved, getattr(async_source, "name", "stream"),
            trace=getattr(async_source, "trace", None),
            registry=getattr(async_source, "registry", None),
        )
        pass_.start()
        step = pass_.step
        async for event in async_source:
            if step(event) is not None:
                break
        return pass_.result()

    def __repr__(self) -> str:
        return "AsyncRaceEngine(%r)" % (self.config,)


async def serve_connection(
    reader,
    writer,
    detectors: Sequence[DetectorSpec],
    config: Optional[EngineConfig] = None,
    validate: bool = True,
    name: str = "client",
) -> Optional[EngineResult]:
    """Analyse one pushed STD event stream and answer on the same stream.

    The wire contract (one line each, ``utf-8``):

    * request -- STD trace lines (``thread|op(arg)[|loc]``), terminated
      by EOF (half-close the socket after the last event);
    * response -- one ``<detector> <distinct> <raw>`` line per detector,
      then ``done <events>``; or a single ``error <Type>: <message>``
      line when the stream is rejected: malformed (online validation,
      on by default), unparseable, or a line over the reader's buffer
      limit (``asyncio`` raises ValueError for those -- trace and parse
      errors are ValueErrors too, so one handler answers them all).

    Returns the :class:`~repro.engine.engine.EngineResult`, or None when
    the stream was rejected.  The writer is drained but left open;
    closing is the caller's (the server's) responsibility.
    """
    source = LineProtocolSource(reader, name=name)
    if validate:
        source = ValidatingSource(source)
    engine = AsyncRaceEngine(config)
    try:
        result = await engine.run(source, detectors=detectors)
    except ValueError as error:
        # TraceError (validation), TraceParseError (grammar) and the
        # stream reader's over-limit-line error are all ValueErrors.
        writer.write(
            ("error %s: %s\n" % (type(error).__name__, error)).encode("utf-8")
        )
        await writer.drain()
        return None
    lines: List[str] = [
        "%s %d %d" % (key, report.count(), report.raw_race_count)
        for key, report in result.items()
    ]
    lines.append("done %d" % result.events)
    writer.write(("\n".join(lines) + "\n").encode("utf-8"))
    await writer.drain()
    return result
