"""The asynchronous race engine: push ingestion without blocking.

:class:`~repro.engine.engine.RaceEngine` *pulls* events: a live logger
feeding it must either materialise its output first or block a thread in
a queue.  :class:`AsyncRaceEngine` is the asyncio-native counterpart --
one coroutine awaits events off any asynchronous source (a socket or
pipe speaking the STD line protocol, a push queue, or any object with
``__aiter__``) and steps them through the detectors as they arrive, so
producers and analysis interleave on one event loop.

The per-event semantics are **shared**, not reimplemented: both engines
drive the same :class:`~repro.engine.engine.EnginePass` stepper, so
reset/process/snapshot/early-stop/finish behaviour, cost accounting and
the resulting :class:`~repro.engine.engine.EngineResult` are identical
by construction -- the async-vs-sync parity suite asserts report
equality event for event.  Per-event work stays O(1); the only
difference is who waits when the stream runs dry.

Synchronous inputs (traces, files, iterables) are accepted too: they are
adapted through :func:`~repro.engine.sources.as_async_source`, which
periodically surrenders the event loop so a long file pass cannot starve
other tasks.

Serving is layered on top: :func:`serve_connection` runs one engine pass
over an accepted ``(reader, writer)`` stream pair, validating the stream
online by default and answering with a compact per-detector summary --
the core of the ``repro-race serve`` CLI subcommand.
"""

from __future__ import annotations

import re
from typing import Optional, Sequence

from repro.engine.config import DetectorSpec, EngineConfig
from repro.engine.engine import EnginePass, EngineResult, prepare_resume_pass
from repro.engine.sources import as_async_source

__all__ = ["AsyncRaceEngine", "serve_connection"]


class AsyncRaceEngine:
    """Drive N detectors over one asynchronous event source in one pass.

    Usage::

        engine = AsyncRaceEngine(EngineConfig().with_detectors("wcp", "hb"))
        result = await engine.run(source)
        result["WCP"].count()

    ``source`` may be an asynchronous source
    (:class:`~repro.engine.sources.LineProtocolSource`,
    :class:`~repro.engine.sources.QueueSource`, any ``__aiter__``
    object) or anything the synchronous engine accepts (trace, path,
    iterable), adapted cooperatively.  Configuration, early-stop
    policies, snapshots and the result type are exactly
    :class:`~repro.engine.engine.RaceEngine`'s -- both drive the shared
    :class:`~repro.engine.engine.EnginePass`.
    """

    def __init__(self, config: Optional[EngineConfig] = None) -> None:
        self.config = config or EngineConfig()

    async def run(
        self,
        source,
        detectors: Optional[Sequence[DetectorSpec]] = None,
    ) -> EngineResult:
        """Await events from ``source`` and run the configured detectors.

        With ``config.checkpoint_dir`` set, the pass persists detector
        checkpoints at the configured cadence, exactly like the
        synchronous engine -- both wire the same
        :class:`~repro.engine.checkpoint.Checkpointer` into the shared
        stepper.
        """
        config = self.config
        resolved = config.resolve_detectors(detectors)
        async_source = as_async_source(source)

        checkpointer = None
        if config.checkpoint_dir is not None:
            from repro.engine.checkpoint import (
                Checkpointer,
                check_snapshot_support,
            )

            check_snapshot_support(resolved)
            # background=True: the stepper runs on the event loop thread,
            # so the write+fsync must not stall other connections.
            checkpointer = Checkpointer(
                config.checkpoint_dir,
                every=config.checkpoint_every,
                keep=config.checkpoint_keep,
                background=True,
            )
            checkpointer.source = async_source
        pass_ = EnginePass(
            config, resolved, getattr(async_source, "name", "stream"),
            trace=getattr(async_source, "trace", None),
            registry=getattr(async_source, "registry", None),
            checkpointer=checkpointer,
        )
        pass_.start()
        return await self._drive(pass_, async_source)

    async def resume(
        self,
        source,
        checkpoint,
        detectors: Optional[Sequence[DetectorSpec]] = None,
    ) -> EngineResult:
        """Resume a checkpointed pass over an asynchronous source.

        The asynchronous counterpart of
        :meth:`~repro.engine.engine.RaceEngine.resume`.  Pull sources are
        positioned at the checkpoint offset; push sources
        (:class:`~repro.engine.sources.QueueSource`,
        :class:`~repro.engine.sources.LineProtocolSource`) record it as
        their ``resume_offset`` so the producer can replay from there --
        the resume handshake ``repro-race serve`` speaks on the wire.
        """
        async_source = as_async_source(source)
        pass_ = prepare_resume_pass(
            self.config, checkpoint, detectors, async_source
        )
        if pass_.checkpointer is not None:
            # See run(): writes must not stall the event loop.
            pass_.checkpointer.background = True
        return await self._drive(pass_, async_source)

    @staticmethod
    async def _drive(pass_: EnginePass, async_source) -> EngineResult:
        step = pass_.step
        async for event in async_source:
            if step(event) is not None:
                break
        return pass_.result()

    def __repr__(self) -> str:
        return "AsyncRaceEngine(%r)" % (self.config,)


#: First-line directive opting a pushed stream into crash recovery.  The
#: id becomes a directory name under --checkpoint-dir, so the character
#: class excludes separators and the path-special names "." / ".." are
#: rejected after the match (a client must not be able to direct
#: checkpoint writes -- or the clean-completion deletion -- outside its
#: own subdirectory).
_STREAM_ID_LINE = re.compile(
    r"^#\s*stream-id\s*[:=]\s*([A-Za-z0-9._-]{1,64})\s*$"
)


def _safe_stream_id(line: bytes):
    match = _STREAM_ID_LINE.match(line.decode("utf-8", "replace").strip())
    if match is None:
        return None
    stream_id = match.group(1)
    if stream_id in (".", ".."):
        return None
    return stream_id


async def serve_connection(
    reader,
    writer,
    detectors: Sequence[DetectorSpec],
    config: Optional[EngineConfig] = None,
    validate: bool = True,
    name: str = "client",
    checkpoint_dir=None,
    session=None,
) -> Optional[EngineResult]:
    """Analyse one pushed STD event stream and answer on the same stream.

    The wire contract (one line each, ``utf-8``):

    * request -- STD trace lines (``thread|op(arg)[|loc]``), terminated
      by EOF (half-close the socket after the last event);
    * response -- one ``<detector> <distinct> <raw>`` line per detector,
      then ``done <events>``; or a single ``error <Type>: <message>``
      line when the stream is rejected: malformed (online validation,
      on by default), unparseable, or a line over the reader's buffer
      limit (``asyncio`` raises ValueError for those -- trace and parse
      errors are ValueErrors too, so one handler answers them all).

    Crash recovery (``checkpoint_dir``): a client that may need to
    survive a server restart sends ``# stream-id: <id>`` as its *first*
    line (a legal STD comment, so old servers ignore it).  The server
    answers immediately with ``resume <offset>`` -- the last durable
    event offset for that id (0 for a fresh stream) -- and the client
    replays its events from that offset on.  Detector state is
    checkpointed under ``checkpoint_dir/<id>`` at the configured cadence
    and deleted once the stream completes cleanly.

    The implementation is the serve tier's
    :class:`~repro.serve.server.SessionDriver` with governance off: no
    quotas, no eviction, no drain -- one protocol implementation serves
    both this compatibility surface and the multi-tenant
    :class:`~repro.serve.server.RaceServer`.  An optional
    :class:`~repro.serve.sessions.StreamSession` hooks per-stream
    bookkeeping (counters, lifecycle state) into the pass.

    Returns the :class:`~repro.engine.engine.EngineResult`, or None when
    the stream was rejected.  The writer is drained but left open;
    closing is the caller's (the server's) responsibility.
    """
    # Imported lazily: repro.serve.server imports this module at load.
    from repro.serve.server import SessionDriver

    driver = SessionDriver(
        reader, writer,
        detectors=detectors,
        config=config,
        validate=validate,
        name=name,
        checkpoint_dir=checkpoint_dir,
        session=session,
    )
    return await driver.run()
