"""Engine-level checkpoint/resume built on the detector snapshot protocol.

The paper's linear-time detectors keep bounded, incrementally-maintained
state, so an analysis pass is checkpointable at *any* event boundary with
a compact snapshot -- something the exponential-space techniques it
replaces cannot offer.  This module turns that property into an
operational feature for the production surface (`repro-race analyze
--checkpoint`, `serve --checkpoint-dir`, the sharded engine): a crash or
restart no longer loses the pass; it loses at most one checkpoint
interval of work.

Layering
--------
* Detectors serialize themselves through the versioned snapshot protocol
  (:mod:`repro.core.snapshot`): format-version header, configuration
  stamp, codec-only payload (never pickle).
* A :class:`Checkpoint` bundles the per-detector snapshots with the run
  coordinates: the processed-event offset, detector stamps, the
  checkpoint cadence, optional source-side state (e.g. the online
  validator of a ``--stream`` pass) and -- for sharded runs -- the
  per-shard worker snapshots plus the partitioner state.
* A :class:`Checkpointer` persists checkpoints into a directory, keyed by
  processed-event offset, with atomic write-then-rename so a crash
  mid-write can never leave a truncated "latest" checkpoint: resume reads
  the newest complete file.

All three engines (:class:`~repro.engine.engine.RaceEngine`,
:class:`~repro.engine.async_engine.AsyncRaceEngine`, and
:class:`~repro.engine.sharding.ShardedEngine`'s workers) checkpoint
through this one code path.

Resume contract
---------------
Resuming replays the event stream from the checkpoint offset: seekable
sources (:class:`~repro.engine.sources.FileSource`,
:class:`~repro.engine.sources.TraceSource`, iterables) are positioned
with ``seek_events``; push sources advertise the offset back to their
producer (:attr:`~repro.engine.sources.QueueSource.resume_offset`, the
``resume <offset>`` line of the serve protocol) and expect the producer
to replay from it.  Restored detectors then produce reports identical to
an uninterrupted pass -- the parity property suite asserts this for WCP,
HB and FastTrack, sharded and unsharded.
"""

from __future__ import annotations

import importlib
import logging
import os
import struct
import zlib
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.core.detector import Detector
from repro.vectorclock.codec import CodecError, decode, encode

__all__ = [
    "Checkpoint",
    "Checkpointer",
    "CheckpointError",
    "CheckpointMismatchError",
    "build_detector",
    "check_snapshot_support",
    "detector_stamp",
    "frame_blob",
    "seek_source",
    "unframe_blob",
]

logger = logging.getLogger("repro.engine.checkpoint")

#: Legacy (pre-CRC) file magic; still readable, never written.
CHECKPOINT_MAGIC = b"RCKP"
#: Current file magic: payload framed with an explicit length + CRC32, so
#: truncation and bit flips are detected *as corruption* instead of
#: surfacing as a raw codec error deep in the payload.
CHECKPOINT_MAGIC_FRAMED = b"RCK2"
CHECKPOINT_VERSION = 1

_FRAME_HEADER = struct.Struct(">II")


def frame_blob(data: bytes) -> bytes:
    """Wrap ``data`` in the length + CRC32 integrity frame.

    The same frame guards checkpoint files and the supervision layer's
    in-memory shard snapshots: 4-byte big-endian payload length, 4-byte
    CRC32 of the payload, then the payload itself.
    """
    return _FRAME_HEADER.pack(len(data), zlib.crc32(data)) + data


def unframe_blob(framed: bytes, what: str = "checkpoint") -> bytes:
    """Verify and strip the :func:`frame_blob` frame.

    Raises :class:`CheckpointError` naming the failure mode (truncated
    vs bit-flipped), so callers can report corruption actionably.
    """
    if len(framed) < _FRAME_HEADER.size:
        raise CheckpointError(
            "corrupt %s: truncated frame header (%d byte(s))"
            % (what, len(framed))
        )
    length, checksum = _FRAME_HEADER.unpack_from(framed)
    payload = framed[_FRAME_HEADER.size:]
    if len(payload) != length:
        raise CheckpointError(
            "corrupt %s: truncated payload (%d of %d byte(s))"
            % (what, len(payload), length)
        )
    if zlib.crc32(payload) != checksum:
        raise CheckpointError(
            "corrupt %s: CRC mismatch (payload bit-flipped on disk or in "
            "transit)" % what
        )
    return payload

#: Default events between checkpoints.
DEFAULT_EVERY = 10_000


class CheckpointError(ValueError):
    """Raised for checkpoint capability / persistence problems."""


class CheckpointMismatchError(CheckpointError):
    """A checkpoint cannot be resumed against this run configuration."""


# --------------------------------------------------------------------- #
# Detector stamps: how detector identity+configuration travel
# --------------------------------------------------------------------- #

def detector_stamp(detector: Detector) -> Dict[str, Any]:
    """Return the identity/configuration stamp of ``detector``.

    The stamp is everything needed to (a) reconstruct an equivalent fresh
    instance (``class`` + ``config``, the contract the sharded engine's
    workers build on instead of pickling live detectors) and (b) verify
    at resume time that the run is configured exactly like the
    checkpointed one.
    """
    cls = type(detector)
    return {
        "class": "%s:%s" % (cls.__module__, cls.__qualname__),
        "name": detector.name,
        "snapshot_version": detector.snapshot_version,
        "config": detector.snapshot_config(),
    }


def build_detector(stamp: Dict[str, Any]) -> Detector:
    """Construct a fresh detector from its :func:`detector_stamp`.

    Only classes that subclass :class:`~repro.core.detector.Detector` are
    accepted; anything else in the ``class`` field is rejected before the
    constructor runs.
    """
    class_path = stamp.get("class", "")
    module_name, _, qualname = class_path.partition(":")
    if not module_name or not qualname:
        raise CheckpointError("malformed detector class path %r" % (class_path,))
    try:
        obj: Any = importlib.import_module(module_name)
        for part in qualname.split("."):
            obj = getattr(obj, part)
    except (ImportError, AttributeError) as error:
        raise CheckpointError(
            "cannot locate detector class %r: %s" % (class_path, error)
        ) from None
    if not (isinstance(obj, type) and issubclass(obj, Detector)):
        raise CheckpointError(
            "%r is not a Detector subclass; refusing to instantiate it"
            % (class_path,)
        )
    try:
        return obj(**stamp.get("config", {}))
    except TypeError as error:
        raise CheckpointError(
            "cannot reconstruct %s from its configuration stamp %r: %s -- "
            "snapshot_config() must return the constructor kwargs"
            % (class_path, stamp.get("config", {}), error)
        ) from None


def check_snapshot_support(detectors: Sequence[Detector]) -> None:
    """Refuse checkpointing up front when any detector lacks the capability."""
    unsupported = sorted({
        detector.name for detector in detectors
        if not detector.supports_snapshot
    })
    if unsupported:
        raise CheckpointError(
            "detector(s) %s do not support state snapshots; drop the "
            "checkpoint option or select snapshot-capable detectors "
            "(wcp, hb, fasttrack)" % ", ".join(unsupported)
        )


def check_reconstructible(detectors: Sequence[Detector]) -> None:
    """Verify every detector round-trips through its configuration stamp.

    The sharded engine constructs each worker's private instances from
    stamps (never by pickling live detectors), so a detector whose
    ``snapshot_config()`` does not reproduce it must be rejected before
    workers start.  A detector class that takes constructor parameters
    but inherits the base ``snapshot_config()`` (which returns ``{}``)
    would silently lose its configuration in every worker -- refuse it
    loudly instead.
    """
    for detector in detectors:
        cls = type(detector)
        if (
            cls.snapshot_config is Detector.snapshot_config
            and cls.__init__ is not Detector.__init__
            and _init_takes_parameters(cls)
        ):
            raise CheckpointError(
                "detector %s takes constructor parameters but does not "
                "override snapshot_config(); workers would be built with "
                "defaults instead of this instance's configuration -- "
                "implement snapshot_config() to return the constructor "
                "kwargs" % cls.__name__
            )
        clone = build_detector(detector_stamp(detector))
        if type(clone) is not type(detector):
            raise CheckpointError(
                "detector %s reconstructed as %s; snapshot_config() must "
                "reproduce the instance" % (type(detector), type(clone))
            )


def _init_takes_parameters(cls) -> bool:
    """True when ``cls.__init__`` accepts anything beyond ``self``."""
    import inspect

    try:
        parameters = inspect.signature(cls.__init__).parameters
    except (TypeError, ValueError):  # pragma: no cover - C-implemented init
        return True
    return len(parameters) > 1


# --------------------------------------------------------------------- #
# The checkpoint bundle
# --------------------------------------------------------------------- #

class Checkpoint:
    """One engine pass frozen at an event boundary.

    Attributes
    ----------
    events:
        Processed-event offset the checkpoint was taken at; the resumed
        pass replays the stream from here.
    source_name:
        Name of the checkpointed stream (informational).
    every:
        The cadence the run checkpointed at; resume keeps it so checkpoint
        offsets stay aligned across restarts.
    stamps:
        Per-detector :func:`detector_stamp` dicts, in engine order.
    states:
        Per-detector snapshot blobs (unsharded runs); None for sharded
        checkpoints, whose blobs live per shard in :attr:`sharded`.
    source_state:
        Optional source-side state (e.g. the online validator of a
        validating stream), restored via
        ``source.restore_checkpoint_state``.
    sharded:
        None for single-engine runs; for sharded runs a dict with
        ``shards`` / ``mode`` / ``policy`` / ``partition`` (the
        partitioner state) and ``shard_states`` (per shard: processed
        events, registry-free detector snapshot blobs).
    """

    def __init__(
        self,
        events: int,
        source_name: str,
        stamps: List[Dict[str, Any]],
        states: Optional[List[bytes]] = None,
        every: Optional[int] = None,
        source_state: Optional[Dict[str, Any]] = None,
        sharded: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.events = events
        self.source_name = source_name
        self.stamps = stamps
        self.states = states
        self.every = every
        self.source_state = source_state
        self.sharded = sharded

    # -- persistence ---------------------------------------------------- #

    def to_bytes(self) -> bytes:
        """Serialize through the shared codec (magic + CRC frame + version)."""
        payload = {
            "events": self.events,
            "source_name": self.source_name,
            "stamps": self.stamps,
            "states": self.states,
            "every": self.every,
            "source_state": self.source_state,
            "sharded": self.sharded,
        }
        return CHECKPOINT_MAGIC_FRAMED + frame_blob(
            encode((CHECKPOINT_VERSION, payload))
        )

    @classmethod
    def from_bytes(cls, blob: bytes) -> "Checkpoint":
        """Inverse of :meth:`to_bytes`; fails fast on corruption and drift.

        Reads both the current CRC-framed format and the legacy unframed
        one (files written by older builds).
        """
        if blob[:4] == CHECKPOINT_MAGIC_FRAMED:
            body = unframe_blob(bytes(blob[4:]))
        elif blob[:4] == CHECKPOINT_MAGIC:
            body = bytes(blob[4:])
        else:
            raise CheckpointError(
                "not a checkpoint file (missing %r header)" % (CHECKPOINT_MAGIC,)
            )
        try:
            parsed = decode(body)
        except CodecError as error:
            raise CheckpointError("corrupt checkpoint: %s" % error) from None
        if not isinstance(parsed, tuple) or len(parsed) != 2:
            raise CheckpointError("corrupt checkpoint envelope")
        version, payload = parsed
        if version != CHECKPOINT_VERSION:
            raise CheckpointMismatchError(
                "checkpoint format version %r is not supported (this build "
                "speaks version %d); re-run the analysis from the start"
                % (version, CHECKPOINT_VERSION)
            )
        return cls(
            events=payload["events"],
            source_name=payload["source_name"],
            stamps=payload["stamps"],
            states=payload["states"],
            every=payload["every"],
            source_state=payload["source_state"],
            sharded=payload["sharded"],
        )

    # -- validation / reconstruction ------------------------------------ #

    def build_detectors(self) -> List[Detector]:
        """Construct fresh detector instances from the stamps."""
        return [build_detector(stamp) for stamp in self.stamps]

    def match_detectors(self, detectors: Sequence[Detector]) -> None:
        """Verify ``detectors`` matches the checkpointed selection exactly.

        Raises :class:`CheckpointMismatchError` naming the first
        disagreement (count, class, snapshot format version, or
        configuration -- e.g. a different clock backend).
        """
        if len(detectors) != len(self.stamps):
            raise CheckpointMismatchError(
                "checkpoint was taken with %d detector(s) (%s) but the "
                "resumed run selects %d (%s)" % (
                    len(self.stamps),
                    ", ".join(stamp["name"] for stamp in self.stamps),
                    len(detectors),
                    ", ".join(d.name for d in detectors),
                )
            )
        for position, (detector, stamp) in enumerate(
            zip(detectors, self.stamps)
        ):
            expected = detector_stamp(detector)
            for field, label in (
                ("class", "detector class"),
                ("snapshot_version", "snapshot format version"),
                ("config", "configuration"),
            ):
                if expected[field] != stamp[field]:
                    raise CheckpointMismatchError(
                        "detector #%d (%s): %s mismatch -- checkpoint has "
                        "%r, resumed run has %r" % (
                            position + 1, stamp["name"], label,
                            stamp[field], expected[field],
                        )
                    )

    def __repr__(self) -> str:
        kind = "sharded" if self.sharded else "single"
        return "Checkpoint(%r@%d, %s, %d detector(s))" % (
            self.source_name, self.events, kind, len(self.stamps),
        )


# --------------------------------------------------------------------- #
# Persistence: offset-keyed files, atomic write-then-rename
# --------------------------------------------------------------------- #

class Checkpointer:
    """Writes/reads a directory of offset-keyed checkpoint files.

    File layout: ``ckpt-<offset 12 digits>.rckp`` per checkpoint, written
    to a ``.tmp`` sibling first and atomically renamed into place
    (``os.replace``), so readers never observe a partial file.  Only the
    newest ``keep`` checkpoints are retained.

    The instance doubles as the engine hook: engines call
    :meth:`save_pass` at the configured cadence and set :attr:`source` so
    source-side state (e.g. the stream validator) rides along.

    ``background=True`` (used by the asynchronous engine, whose stepper
    runs on the event loop thread) moves the write+fsync onto a single
    dedicated writer thread: the state snapshot itself is still taken
    synchronously between events -- only the immutable serialized bytes
    leave the loop.  Writes stay ordered (one worker), each file is still
    atomic, and a crash loses at most the in-flight write -- the same
    guarantee as a checkpoint not yet due.  :meth:`drain` waits for
    pending writes (used before :meth:`clear`).
    """

    _PATTERN = "ckpt-%012d.rckp"
    _SUFFIX = ".rckp"

    def __init__(
        self,
        directory: Union[str, Path],
        every: int = DEFAULT_EVERY,
        keep: int = 3,
        background: bool = False,
    ) -> None:
        if every < 1:
            raise ValueError("checkpoint cadence must be positive")
        if keep < 1:
            raise ValueError("must keep at least one checkpoint")
        # The directory is created lazily by the first save: probing a
        # path for existing checkpoints (load_latest on a stream id the
        # serve handshake has only just heard about) must not litter the
        # filesystem.
        self.directory = Path(directory)
        self.every = every
        self.keep = keep
        self.background = background
        self._executor = None
        self._pending: List = []
        #: Optional event source whose ``checkpoint_state()`` is bundled.
        self.source = None
        #: Checkpoints written by this instance (observability/tests).
        self.saved = 0

    # -- writing -------------------------------------------------------- #

    def save(self, checkpoint: Checkpoint) -> Path:
        """Persist ``checkpoint`` atomically; returns the final path.

        In background mode the serialized bytes are handed to the writer
        thread and the final path is returned immediately; a *previous*
        background write that failed surfaces here (or in :meth:`drain`)
        instead of being silently forgotten.
        """
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self.directory / (self._PATTERN % checkpoint.events)
        blob = checkpoint.to_bytes()
        if self.background:
            # Surface failures of completed earlier writes; writes still
            # in flight stay tracked (never silently replaced) and are
            # collected here once done, or in :meth:`drain`.
            still_running = []
            for future in self._pending:
                if future.done():
                    future.result()  # raise if the earlier write failed
                else:
                    still_running.append(future)
            self._pending = still_running
            if self._executor is None:
                from concurrent.futures import ThreadPoolExecutor

                self._executor = ThreadPoolExecutor(
                    max_workers=1, thread_name_prefix="checkpoint-writer"
                )
            self._pending.append(self._executor.submit(self._write, path, blob))
        else:
            self._write(path, blob)
        return path

    def _write(self, path: Path, blob: bytes) -> None:
        temp = path.with_suffix(".tmp")
        with open(temp, "wb") as handle:
            handle.write(blob)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp, path)
        self.saved += 1
        self._prune()

    def drain(self) -> None:
        """Wait for any in-flight background write; release the writer.

        The writer thread is re-created lazily by the next background
        save, so per-pass checkpointers (one per serve connection) do not
        leak threads.
        """
        pending, self._pending = self._pending, []
        for future in pending:
            future.result()
        executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True)

    def save_pass(self, pass_) -> Path:
        """Snapshot an in-flight :class:`~repro.engine.engine.EnginePass`."""
        checkpoint = Checkpoint(
            events=pass_.events,
            source_name=pass_.source_name,
            stamps=[detector_stamp(d) for d in pass_.detectors],
            states=[d.state_snapshot() for d in pass_.detectors],
            every=self.every,
            source_state=self.source_state(),
        )
        return self.save(checkpoint)

    def source_state(self) -> Optional[Dict[str, Any]]:
        """The attached source's checkpoint-state bundle (or None)."""
        state = getattr(self.source, "checkpoint_state", None)
        return state() if callable(state) else None

    def _prune(self) -> None:
        offsets = self.offsets()
        for stale in offsets[:-self.keep]:
            try:
                (self.directory / (self._PATTERN % stale)).unlink()
            except OSError:  # pragma: no cover - concurrent cleanup
                pass

    # -- reading -------------------------------------------------------- #

    def offsets(self) -> List[int]:
        """Return the available checkpoint offsets, ascending."""
        offsets = []
        for path in self.directory.glob("ckpt-*" + self._SUFFIX):
            stem = path.stem[len("ckpt-"):]
            if stem.isdigit():
                offsets.append(int(stem))
        return sorted(offsets)

    def load(self, events: Optional[int] = None) -> Checkpoint:
        """Load the checkpoint at offset ``events`` (default: the newest)."""
        if events is None:
            offsets = self.offsets()
            if not offsets:
                raise CheckpointError(
                    "no checkpoints found in %s" % self.directory
                )
            events = offsets[-1]
        path = self.directory / (self._PATTERN % events)
        try:
            blob = path.read_bytes()
        except OSError as error:
            raise CheckpointError(
                "cannot read checkpoint %s: %s" % (path, error)
            ) from None
        try:
            return Checkpoint.from_bytes(blob)
        except CheckpointMismatchError:
            raise
        except CheckpointError as error:
            # Name the file: "corrupt checkpoint" alone is not actionable
            # when several offsets are retained.
            raise CheckpointError(
                "checkpoint file %s is corrupt: %s" % (path, error)
            ) from None

    def load_latest(self) -> Optional[Checkpoint]:
        """Load the newest checkpoint, or None when the directory is empty."""
        offsets = self.offsets()
        if not offsets:
            return None
        return self.load(offsets[-1])

    def load_resumable(self) -> Checkpoint:
        """Load the newest *intact* checkpoint, skipping corrupt files.

        The resume path's loader: a truncated or bit-flipped newest file
        (e.g. the machine died mid-write before the atomic rename, or the
        disk bit-rotted) falls back to the next-newest retained
        checkpoint with a warning -- losing one checkpoint interval of
        work instead of the whole run.  Version-mismatch errors are not
        skipped (every retained file speaks the same format) and an
        empty or fully-corrupt directory raises an actionable
        :class:`CheckpointError` listing what was tried.
        """
        offsets = self.offsets()
        if not offsets:
            raise CheckpointError(
                "no checkpoints found in %s" % self.directory
            )
        corrupt: List[str] = []
        for events in reversed(offsets):
            try:
                loaded = self.load(events)
            except CheckpointMismatchError:
                raise
            except CheckpointError as error:
                corrupt.append(str(error))
                logger.warning(
                    "skipping corrupt checkpoint at offset %d, falling "
                    "back to the next-newest: %s", events, error,
                )
                continue
            if corrupt:
                logger.warning(
                    "resuming from offset %d after skipping %d corrupt "
                    "checkpoint(s)", loaded.events, len(corrupt),
                )
            return loaded
        raise CheckpointError(
            "every checkpoint in %s is corrupt; re-run the analysis from "
            "the start (%s)" % (self.directory, "; ".join(corrupt))
        )

    def clear(self) -> None:
        """Delete every checkpoint (e.g. after a cleanly completed pass)."""
        self.drain()
        for offset in self.offsets():
            try:
                (self.directory / (self._PATTERN % offset)).unlink()
            except OSError:  # pragma: no cover - concurrent cleanup
                pass

    def __repr__(self) -> str:
        return "Checkpointer(%r, every=%d, keep=%d)" % (
            str(self.directory), self.every, self.keep,
        )


def as_checkpointer(
    target: Union[str, Path, Checkpointer], every: Optional[int] = None,
    keep: Optional[int] = None,
) -> Checkpointer:
    """Coerce a directory path (or pass through a Checkpointer)."""
    if isinstance(target, Checkpointer):
        return target
    kwargs = {}
    if every is not None:
        kwargs["every"] = every
    if keep is not None:
        kwargs["keep"] = keep
    return Checkpointer(target, **kwargs)


def open_for_resume(checkpoint, config):
    """Coerce a resume target into ``(checkpoint, checkpointer_or_None)``.

    ``checkpoint`` may be a loaded :class:`Checkpoint`, a
    :class:`Checkpointer`, or a directory path (the newest checkpoint is
    loaded).  When the target is directory-backed -- or the configuration
    names a checkpoint directory -- the returned checkpointer continues
    checkpointing the resumed pass at the original cadence, so offsets
    stay aligned across arbitrarily many restarts.
    """
    if isinstance(checkpoint, Checkpoint):
        loaded = checkpoint
        checkpointer = None
        if config is not None and config.checkpoint_dir is not None:
            checkpointer = as_checkpointer(
                config.checkpoint_dir,
                every=loaded.every or config.checkpoint_every,
                keep=config.checkpoint_keep,
            )
    else:
        checkpointer = as_checkpointer(checkpoint)
        # Resume survives a corrupt newest file: fall back to the
        # next-newest retained checkpoint (with a warning) instead of
        # dying on a codec error.
        loaded = checkpointer.load_resumable()
        if loaded.every:
            checkpointer.every = loaded.every
    return loaded, checkpointer


def restore_source_state(source, loaded: Checkpoint) -> None:
    """Hand the checkpoint's source-side state back to ``source`` (if any)."""
    if loaded.source_state is None:
        return
    restore = getattr(source, "restore_checkpoint_state", None)
    if callable(restore):
        restore(loaded.source_state)


# --------------------------------------------------------------------- #
# Source positioning
# --------------------------------------------------------------------- #

def seek_source(source, events: int) -> None:
    """Position ``source`` so iteration resumes at absolute offset ``events``.

    Seekable sources implement ``seek_events``; push sources record the
    offset and advertise it to their producer (the resume handshake).
    Anything else is rejected with an actionable error.
    """
    if events == 0:
        return
    seek = getattr(source, "seek_events", None)
    if seek is None:
        raise CheckpointError(
            "source %r cannot seek to event %d; resume needs a seekable "
            "source (file, trace, iterable) or a push source whose "
            "producer replays from the advertised offset" % (source, events)
        )
    seek(events)
