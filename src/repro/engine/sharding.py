"""Sharded multi-core race prediction: N worker engines over one stream.

:class:`ShardedEngine` splits a single event source across N shard
workers following the replication-vs-routing taxonomy of
:mod:`repro.engine.partition`: the synchronization skeleton is replicated
to every shard, memory accesses are routed to the shard that owns the
variable (plus clock-only *foreign* copies of in-critical-section accesses
when a detector needs them, i.e. WCP).  Each worker drives its own
detector instances over its substream in original trace order, so its
clock state matches the single engine's and its race verdicts for owned
variables are exactly the single engine's verdicts for those variables.

Transport modes
---------------
``process`` (default)
    One persistent ``multiprocessing`` worker process per shard, fed
    batches of compactly encoded events over a pipe.  This is the
    multi-core mode: Python's GIL never serializes the detectors.
``ring``
    Process workers whose *data path* bypasses pickle entirely: batches
    are encoded with the binary codec (:mod:`repro.vectorclock.codec`)
    and copied straight into a shared-memory SPSC ring buffer
    (:class:`~repro.engine.ringbuffer.ShmRing`, one per worker), while
    the pipe carries only tiny control messages -- a per-batch
    notification plus snapshot/finish/ack traffic.  Ordering is total:
    notifications and ring records are both FIFO and paired one to one,
    so a snapshot request on the pipe is always handled after every
    batch sent before it.  Semantically identical to ``process`` (the
    parity suite runs both); preferable when transport cost dominates.
``thread``
    One worker thread per shard (shared-nothing workers, so results are
    deterministic); useful where processes are unavailable.  Throughput
    is GIL-bound.
``serial``
    Workers run inline in the calling thread, one batch at a time --
    deterministic and debuggable; the reference mode for the parity suite.

Shard-boundary protocol
-----------------------
Workers and the coordinator exchange three kinds of messages at batch
boundaries:

* **progress** -- events processed and per-detector ``(distinct, raw)``
  race counts, used for merged incremental snapshots and batch-granular
  early stop;
* **clock/registry deltas** -- each worker's interning table
  (:meth:`~repro.vectorclock.registry.ThreadRegistry.names`) plus its
  detectors' serialized per-thread clocks
  (:meth:`~repro.core.detector.Detector.sync_clock_state`), shipped at
  the end of the run and, when ``shard_clock_sync_every`` opts in,
  periodically mid-run (monitoring surface, collected on
  ``ShardedResult.clock_deltas``).  The
  coordinator folds them into one view by interning the worker's names
  into the merged registry
  (:meth:`~repro.vectorclock.registry.ThreadRegistry.merge_names`),
  remapping each clock's tids
  (:meth:`~repro.vectorclock.dense.DenseClock.remapped`) and joining.
  Because the clock-relevant stream is replicated, all workers must agree
  on this state -- the parity tests assert it, making taxonomy bugs
  observable instead of silent;
* **results** -- the worker's final :class:`~repro.core.races.RaceReport`
  per detector, merged into one report per detector (dedup by location
  pair, earliest-shard witness, maximum distance -- identical to the
  single engine because every raw racy pair is found exactly once, on the
  variable's owner shard).

``shards=1`` bypasses all of this and delegates to
:class:`~repro.engine.engine.RaceEngine`, so single-shard output is
byte-identical to the unsharded engine by construction.

Worker state never travels by pickle.  Fresh workers construct their
private detector instances from configuration stamps
(:func:`~repro.engine.checkpoint.detector_stamp` /
:func:`~repro.engine.checkpoint.build_detector`); mid-run state crosses
process boundaries only as versioned snapshot blobs
(:meth:`~repro.core.detector.Detector.state_snapshot`), which is also
how the coordinator's checkpoint/resume works: at the configured cadence
it flushes all in-flight batches, collects every worker's snapshot, and
persists one sharded :class:`~repro.engine.checkpoint.Checkpoint`
(worker snapshots + partitioner state) through the same
:class:`~repro.engine.checkpoint.Checkpointer` the single-engine path
uses.  :meth:`ShardedEngine.resume` restores each worker from its blob
and replays the source suffix -- the merged report equals the
uninterrupted run's exactly.
"""

from __future__ import annotations

import os
import queue as queue_module
import threading
import time
import traceback
from typing import Dict, List, Optional, Sequence

from repro.core.detector import Detector
from repro.core.races import RaceReport, ReportSnapshot
from repro.engine.checkpoint import (
    Checkpoint,
    Checkpointer,
    CheckpointMismatchError,
    build_detector,
    check_reconstructible,
    check_snapshot_support,
    detector_stamp,
    open_for_resume,
    restore_source_state,
    seek_source,
)
from repro.engine.config import DetectorSpec, EngineConfig
from repro.engine.engine import (
    STOP_EVENT_BUDGET,
    STOP_EXHAUSTED,
    STOP_RACE_BUDGET,
    EnginePass,
    EngineResult,
    RaceEngine,
)
from repro.engine.faults import InjectedDeath, WorkerDied
from repro.engine.ringbuffer import DEFAULT_RING_BYTES, RingTimeout, ShmRing
from repro.engine.supervision import (
    SupervisedTransport,
    SupervisionSettings,
    new_supervision_stats,
)
from repro.engine.partition import (
    POLICIES,
    REPLICATE,
    ROUTE,
    StreamPartitioner,
    make_policy,
)
from repro.engine.sources import as_source
from repro.trace.event import Event, EventType
from repro.vectorclock.clock import VectorClock
from repro.vectorclock.codec import decode as codec_decode, encode as codec_encode
from repro.vectorclock.dense import DenseClock, deserialize_clock
from repro.vectorclock.registry import ThreadRegistry

def _policy_key(name):
    """Normalize a policy name for mismatch checks ("rr" == "round-robin")."""
    return POLICIES.get(name, name)


#: Wire value -> EventType (EventType(...) does a linear scan; this is a dict).
_ETYPE_OF_VALUE = {etype.value: etype for etype in EventType}
#: EventType -> wire value (``.value`` is a DynamicClassAttribute descriptor
#: call; the coordinator reads it once per event, so use a dict instead).
_VALUE_OF_ETYPE = {etype: etype.value for etype in EventType}


class ShardedResult(EngineResult):
    """An :class:`EngineResult` plus shard-level metadata.

    Additional attributes:

    ``shards`` / ``mode``
        Worker count and transport mode of the run.
    ``shard_events`` / ``shard_busy_s``
        Per-shard processed-event counts and busy time (the per-shard
        event count exceeds ``events / shards`` by the replication
        overhead; ``max(shard_events) / events`` bounds the achievable
        speedup).
    ``partition_stats``
        The taxonomy census from :class:`StreamPartitioner.stats`.
    ``registry``
        The merged :class:`ThreadRegistry` over all workers.
    ``clock_state``
        Per detector key, the merged (joined) per-thread clocks as public
        name-keyed :class:`VectorClock`\\ s -- the coordinator's view of
        the global synchronization frontier.
    ``shard_clock_states`` / ``shard_names``
        The raw per-shard protocol payloads (``[shard][detector]`` ->
        ``{thread_name: serialized clock}``) and each worker's tid-ordered
        name table, kept so the parity suite can assert cross-shard clock
        agreement (worker clocks are keyed by *private* tids and only
        comparable after remapping through the name tables).
    """

    def __init__(
        self,
        *,
        shards: int,
        mode: str,
        shard_events: List[int],
        shard_busy_s: List[float],
        partition_stats: Dict[str, int],
        registry: ThreadRegistry,
        clock_state: Dict[str, Dict[object, VectorClock]],
        shard_clock_states: List[List[Optional[Dict[object, bytes]]]],
        shard_names: List[List[object]],
        clock_deltas: Optional[List[Optional[dict]]] = None,
        supervision: Optional[dict] = None,
        **kwargs,
    ) -> None:
        super().__init__(**kwargs)
        #: Run-level supervision counters (worker_restarts,
        #: heartbeat_timeouts, snapshot_fallbacks, shutdown_escalations,
        #: restarts_by_shard) -- all zero on a fault-free run.
        self.supervision = supervision or new_supervision_stats()
        #: Last mid-run clock/registry delta seen per shard (None entries
        #: when the exchange is disabled -- `shard_clock_sync_every` 0 --
        #: or a shard never reached the cadence).
        self.clock_deltas = clock_deltas or []
        self.shards = shards
        self.mode = mode
        self.shard_events = shard_events
        self.shard_busy_s = shard_busy_s
        self.partition_stats = partition_stats
        self.registry = registry
        self.clock_state = clock_state
        self.shard_clock_states = shard_clock_states
        self.shard_names = shard_names

    def shard_clock_views(self, position: int) -> List[Dict[object, VectorClock]]:
        """Per-shard name-keyed clock views for detector ``position``.

        Deserializes each worker's boundary-protocol clocks and re-keys
        their components by thread *name* (worker tids are private), which
        makes the views directly comparable: on threads present in several
        views they must agree -- the observable form of the taxonomy's
        guarantee that every shard's clock state matches the full run.
        """
        views: List[Dict[object, VectorClock]] = []
        for names, clocks in zip(self.shard_names, self.shard_clock_states):
            worker_clocks = clocks[position]
            if not worker_clocks:
                continue
            view = {}
            for thread, blob in worker_clocks.items():
                clock = deserialize_clock(blob)
                view[thread] = VectorClock(
                    {names[tid]: value for tid, value in clock.items()}
                )
            views.append(view)
        return views

    def replication_factor(self) -> float:
        """Total shard-side events divided by source events (>= 1.0)."""
        if not self.events:
            return 1.0
        return sum(self.shard_events) / float(self.events)

    def work_speedup_bound(self) -> float:
        """Source events over the largest single-shard load.

        The partition-quality bound on parallel speedup: wall-clock gain
        can never exceed it, and approaches it as transport overhead
        vanishes.
        """
        busiest = max(self.shard_events) if self.shard_events else 0
        if not busiest:
            return 1.0
        return self.events / float(busiest)

    def summary(self) -> str:
        lines = [super().summary()]
        lines.append(
            "  %d shard(s) [%s]: events per shard %s, replication x%.2f, "
            "work-bound speedup x%.2f" % (
                self.shards, self.mode, self.shard_events,
                self.replication_factor(), self.work_speedup_bound(),
            )
        )
        restarts = self.supervision.get("worker_restarts", 0)
        if restarts:
            lines.append(
                "  supervision: %d worker restart(s) %r, %d heartbeat "
                "timeout(s), %d snapshot fallback(s)" % (
                    restarts,
                    self.supervision.get("restarts_by_shard", {}),
                    self.supervision.get("heartbeat_timeouts", 0),
                    self.supervision.get("snapshot_fallbacks", 0),
                )
            )
        return "\n".join(lines)


class _ShardWorker:
    """The in-process worker core shared by every transport mode.

    Owns the shard's detector instances, a private
    :class:`ThreadRegistry`, and -- through a shared
    :class:`~repro.engine.engine.EnginePass` -- the
    reset/dispatch/finish semantics of the unsharded engine (shard
    substreams are genuine streams: no pre-scan, threads discovered
    lazily; snapshotting and early stop are coordinator-side, so the
    worker never calls ``step``).
    """

    def __init__(
        self,
        shard_id: int,
        detectors: List[Detector],
        source_name: str,
        kill_at: Optional[int] = None,
        hard_exit: bool = False,
    ) -> None:
        self.shard_id = shard_id
        self.detectors = detectors
        self.source_name = source_name
        #: Fault injection: die once the worker has processed this many
        #: events (process workers hard-exit so the coordinator sees a
        #: genuine pipe EOF; thread/serial workers raise InjectedDeath).
        self.kill_at = kill_at
        self.hard_exit = hard_exit
        self.registry = ThreadRegistry()
        # Workers never attribute per-event cost: busy time is measured
        # per batch and shipped in the finish payload.
        self.pass_ = EnginePass(
            None, detectors, source_name,
            registry=self.registry, accounting=False,
        )
        self.context = self.pass_.context
        self.events = 0
        self.busy_s = 0.0

    def start(self) -> None:
        self.pass_.start()

    def restore(self, state: dict) -> None:
        """Restore the shard's detectors from a checkpointed worker state.

        ``state`` is one entry of a sharded checkpoint's ``shard_states``:
        the shard's processed-event count plus one snapshot blob per
        detector.  Must run after :meth:`start` (the blobs re-populate the
        worker's private registry through the restored name tables).
        """
        for detector, blob in zip(self.detectors, state["blobs"]):
            detector.restore_state(blob)
        self.events = state["events"]
        self.context.events_seen = self.events

    def snapshot_state(self) -> dict:
        """Freeze the shard for a coordinator checkpoint."""
        return {
            "events": self.events,
            "blobs": [
                detector.state_snapshot() for detector in self.detectors
            ],
        }

    def process_batch(self, batch: List[tuple]) -> None:
        if self.kill_at is not None and self.events + len(batch) >= self.kill_at:
            # Injected abrupt death: process the prefix up to the
            # threshold (the realistic mid-batch crash), then die without
            # acking -- the supervisor's snapshot + replay must absorb
            # the partial work.
            prefix = self.kill_at - self.events
            self.kill_at = None
            if prefix > 0:
                self.process_batch(batch[:prefix])
            if self.hard_exit:
                os._exit(17)
            raise InjectedDeath(
                "injected kill of shard %d at event %d"
                % (self.shard_id, self.events)
            )
        started = time.perf_counter()
        detectors = self.detectors
        dispatch = self.pass_.dispatch
        etype_of = _ETYPE_OF_VALUE
        intern = self.registry.intern
        new_event = Event.__new__
        for index, thread, etype_value, target, loc, owned in batch:
            # Assemble the event directly: the wire tuples come from real
            # events, so Event.__init__'s target validation is redundant
            # on this (very hot) path.
            event = new_event(Event)
            event.index = index
            event.thread = thread
            event.etype = etype_of[etype_value]
            event.target = target
            event.loc = loc
            event.tid = intern(thread)
            if owned:
                dispatch(event)
            else:
                for detector in detectors:
                    detector.process_foreign(event)
        self.events += len(batch)
        self.context.events_seen = self.events
        self.busy_s += time.perf_counter() - started

    def progress(self) -> List[tuple]:
        """Per-detector ``(distinct, raw)`` race counts so far."""
        return [
            (detector.report.count(), detector.report.raw_race_count)
            for detector in self.detectors
        ]

    def clock_delta(self) -> dict:
        """The boundary-protocol clock/registry delta."""
        return {
            "shard": self.shard_id,
            "events": self.events,
            "names": self.registry.names(),
            "clocks": [
                detector.sync_clock_state() for detector in self.detectors
            ],
        }

    def finish(self) -> dict:
        started = time.perf_counter()
        self.pass_.finish_detectors()
        self.busy_s += time.perf_counter() - started
        return {
            "shard": self.shard_id,
            "events": self.events,
            "busy_s": self.busy_s,
            "reports": [detector.report for detector in self.detectors],
            "names": self.registry.names(),
            "clocks": [
                detector.sync_clock_state() for detector in self.detectors
            ],
        }


# --------------------------------------------------------------------- #
# Transports
# --------------------------------------------------------------------- #

class _AckCounter:
    """Batch-ack bookkeeping shared by the transports.

    Tracks the acknowledgements the coordinator *observed* (the
    supervisor's liveness signal), applying the fault plan's drop /
    duplicate triggers at the deterministic ack ordinal.
    """

    def __init__(self, shard_id: int, plan=None) -> None:
        self.shard_id = shard_id
        self.plan = plan
        self.seen = 0
        self.observed = 0

    def record(self) -> bool:
        """Count one worker ack; False when the plan swallowed it."""
        index = self.seen
        self.seen += 1
        plan = self.plan
        if plan is not None and plan.drop_ack(self.shard_id, index):
            return False
        self.observed += 1
        if plan is not None and plan.duplicate_ack(self.shard_id, index):
            self.observed += 1
        return True


class _SerialTransport:
    """Run the worker inline; the deterministic reference transport."""

    def __init__(
        self,
        worker: _ShardWorker,
        restore: Optional[dict] = None,
        plan=None,
    ) -> None:
        self.worker = worker
        self.dead: Optional[str] = None
        self.acks = _AckCounter(worker.shard_id, plan)
        worker.start()
        if restore is not None:
            worker.restore(restore)

    def _check_dead(self) -> None:
        if self.dead is not None:
            raise WorkerDied(self.worker.shard_id, self.dead)

    def send(self, batch: List[tuple]) -> None:
        self._check_dead()
        try:
            self.worker.process_batch(batch)
        except InjectedDeath as death:
            self.dead = str(death)
            raise WorkerDied(self.worker.shard_id, self.dead)
        self.acks.record()

    def poll_progress(self):
        self._check_dead()
        return self.worker.progress()

    def poll_delta(self):
        self._check_dead()
        return self.worker.clock_delta()

    def snapshot_begin(self):
        return self.snapshot()

    def snapshot_end(self, token) -> dict:
        return token

    def snapshot(self) -> dict:
        self._check_dead()
        return self.worker.snapshot_state()

    def finish(self) -> dict:
        self._check_dead()
        return self.worker.finish()

    def acked(self) -> int:
        return self.acks.observed

    def alive(self) -> bool:
        return self.dead is None

    def break_pipe(self) -> None:
        self.dead = "injected pipe EOF"

    def abort(self) -> None:
        self.dead = self.dead or "aborted by coordinator"

    def take_escalations(self) -> int:
        return 0


class _ThreadTransport:
    """One daemon thread per shard, fed through a bounded queue.

    Workers share nothing, so results are deterministic regardless of
    scheduling; progress is read at batch granularity (coarse counts, safe
    under the GIL), mid-run clock deltas are skipped (the worker may be
    mid-batch), and the final payload is produced by the worker thread
    before joining.
    """

    def __init__(
        self,
        worker: _ShardWorker,
        restore: Optional[dict] = None,
        plan=None,
        stall_timeout_s: Optional[float] = None,
    ) -> None:
        self.worker = worker
        self._restore = restore
        #: Longest the coordinator will block on a full queue (or an
        #: unanswered snapshot) before declaring a hung-but-alive worker
        #: thread dead.  None keeps the pre-supervision spin-forever
        #: behaviour (serial paths and direct construction in tests).
        self.stall_timeout_s = stall_timeout_s
        self.queue: "queue_module.Queue" = queue_module.Queue(maxsize=8)
        self.error: Optional[str] = None
        self.result: Optional[dict] = None
        self.dead: Optional[str] = None
        self.acks = _AckCounter(worker.shard_id, plan)
        self.thread = threading.Thread(
            target=self._loop, name="shard-%d" % worker.shard_id, daemon=True
        )
        self.thread.start()

    def _loop(self) -> None:
        try:
            self.worker.start()
            if self._restore is not None:
                self.worker.restore(self._restore)
            while True:
                batch = self.queue.get()
                if batch is None:
                    self.result = self.worker.finish()
                    return
                if isinstance(batch, tuple) and batch[0] == "snapshot":
                    batch[1].append(self.worker.snapshot_state())
                    batch[2].set()
                    continue
                self.worker.process_batch(batch)
                self.acks.record()
        except InjectedDeath as death:
            # Simulated abrupt death: no ack, no error report, no further
            # draining -- exactly what a vanished worker looks like.  The
            # coordinator notices through the bounded put()/wait() paths.
            self.dead = str(death) or "injected worker death"
            return
        except Exception:
            self.error = traceback.format_exc()
            # Keep draining so the coordinator's put() never deadlocks
            # (snapshot requests are acknowledged empty so their waiters
            # wake up and observe the error).
            while True:
                item = self.queue.get()
                if item is None:
                    return
                if isinstance(item, tuple) and item[0] == "snapshot":
                    item[2].set()

    def _death_cause(self) -> Optional[str]:
        """The reason this transport is unusable, or None while healthy."""
        if self.dead is not None:
            return self.dead
        if (
            not self.thread.is_alive()
            and self.result is None
            and self.error is None
        ):
            return "worker thread exited without a result"
        return None

    def _declare_stalled(self, what: str) -> None:
        """A live-but-hung worker thread is dead for supervision purposes.

        Python cannot kill a thread, so the transport is condemned
        instead: the zombie keeps idling on its (abandoned) queue and
        exits with the daemon, while the supervisor restarts the shard
        on a fresh transport.  The raised death is tagged ``stalled`` so
        it is counted as a heartbeat timeout, not a crash.
        """
        cause = (
            "%s for %.1fs; worker thread is alive but stalled, "
            "declaring it dead" % (what, self.stall_timeout_s)
        )
        self.dead = cause
        death = WorkerDied(self.worker.shard_id, cause)
        death.stalled = True
        raise death

    def _put(self, item) -> None:
        """Bounded put that notices worker death instead of deadlocking."""
        deadline = None
        while True:
            cause = self._death_cause()
            if cause is not None:
                raise WorkerDied(self.worker.shard_id, cause)
            try:
                self.queue.put(item, timeout=0.05)
                return
            except queue_module.Full:
                if self.stall_timeout_s is None:
                    continue
                now = time.monotonic()
                if deadline is None:
                    deadline = now + self.stall_timeout_s
                elif now >= deadline:
                    self._declare_stalled("no batch consumed")

    def send(self, batch: List[tuple]) -> None:
        self._put(batch)

    def poll_progress(self):
        cause = self._death_cause()
        if cause is not None:
            raise WorkerDied(self.worker.shard_id, cause)
        return self.worker.progress()

    def poll_delta(self):
        return None

    def snapshot_begin(self):
        holder: List[dict] = []
        done = threading.Event()
        self._put(("snapshot", holder, done))
        return holder, done

    def snapshot_end(self, token) -> dict:
        holder, done = token
        deadline = (
            None if self.stall_timeout_s is None
            else time.monotonic() + self.stall_timeout_s
        )
        while not done.wait(0.05):
            cause = self._death_cause()
            if cause is not None:
                raise WorkerDied(self.worker.shard_id, cause)
            if deadline is not None and time.monotonic() >= deadline:
                self._declare_stalled("snapshot request unanswered")
        if self.error is not None:
            raise RuntimeError(
                "shard %d worker failed:\n%s" % (self.worker.shard_id, self.error)
            )
        if not holder:  # pragma: no cover - defensive
            raise WorkerDied(
                self.worker.shard_id, "worker died answering a snapshot"
            )
        return holder[0]

    def snapshot(self) -> dict:
        return self.snapshot_end(self.snapshot_begin())

    def finish(self) -> dict:
        self._put(None)
        self.thread.join(self.stall_timeout_s)
        if self.stall_timeout_s is not None and self.thread.is_alive():
            self._declare_stalled("finish unacknowledged")
        cause = self._death_cause()
        if cause is not None:
            raise WorkerDied(self.worker.shard_id, cause)
        if self.error is not None:
            raise RuntimeError(
                "shard %d worker failed:\n%s" % (self.worker.shard_id, self.error)
            )
        assert self.result is not None
        return self.result

    def acked(self) -> int:
        return self.acks.observed

    def alive(self) -> bool:
        return self._death_cause() is None

    def break_pipe(self) -> None:
        # Sever the channel: the worker thread may keep running but the
        # coordinator treats it as unreachable (it idles on the queue and
        # dies with the daemon).
        self.dead = "injected pipe EOF"

    def abort(self) -> None:
        if self.dead is None:
            self.dead = "aborted by coordinator"
        try:
            # Wake a healthy worker so the daemon thread can exit.
            self.queue.put_nowait(None)
        except queue_module.Full:  # pragma: no cover - worker is stuck
            pass

    def take_escalations(self) -> int:
        return 0


def _process_worker_main(
    conn, shard_id: int, specs: List[dict], source_name: str,
    clock_sync_every: int, restore: Optional[dict] = None,
    kill_at: Optional[int] = None,
) -> None:
    """Entry point of a shard worker process (pipe protocol).

    The worker builds its private detector instances from configuration
    stamps (never from pickled live objects) and, on a resumed run,
    restores them from the checkpoint's snapshot blobs.

    Messages from the coordinator: ``("batch", [encoded events])``,
    ``("snapshot",)`` and ``("finish",)``.  The worker acknowledges every
    batch with a progress message, sends a clock/registry delta every
    ``clock_sync_every`` batches, answers ``snapshot`` with a
    ``("state", ...)`` payload of snapshot blobs, and answers ``finish``
    with its result payload.
    """
    try:
        detectors: List[Detector] = [build_detector(spec) for spec in specs]
        worker = _ShardWorker(
            shard_id, detectors, source_name,
            kill_at=kill_at, hard_exit=True,
        )
        worker.start()
        if restore is not None:
            worker.restore(restore)
        batches = 0
        while True:
            message = conn.recv()
            kind = message[0]
            if kind == "batch":
                worker.process_batch(message[1])
                batches += 1
                conn.send(("progress", shard_id, worker.events, worker.progress()))
                if clock_sync_every and batches % clock_sync_every == 0:
                    conn.send(("delta", shard_id, worker.clock_delta()))
            elif kind == "snapshot":
                conn.send(("state", shard_id, worker.snapshot_state()))
            elif kind == "finish":
                conn.send(("result", shard_id, worker.finish()))
                return
            else:
                raise ValueError("unknown coordinator message %r" % (kind,))
    except EOFError:
        pass
    except Exception:
        try:
            conn.send(("error", shard_id, traceback.format_exc()))
        except (BrokenPipeError, OSError):
            pass
    finally:
        conn.close()


def _ring_worker_main(
    conn, shard_id: int, specs: List[dict], source_name: str,
    clock_sync_every: int, restore: Optional[dict] = None,
    kill_at: Optional[int] = None,
    ring_name: str = "", ring_capacity: int = 0,
) -> None:
    """Entry point of a ring-transport shard worker process.

    The pipe protocol of :func:`_process_worker_main` with one change:
    a ``("batch_ring",)`` message carries no payload -- the batch itself
    travels codec-encoded through the shared-memory ring, and the worker
    pops exactly one ring record per notification.  Notifications and
    records are both FIFO, so the pairing (and the ordering against
    snapshot/finish control messages) is total.
    """
    ring = ShmRing.attach(ring_name, ring_capacity)
    try:
        detectors: List[Detector] = [build_detector(spec) for spec in specs]
        worker = _ShardWorker(
            shard_id, detectors, source_name,
            kill_at=kill_at, hard_exit=True,
        )
        worker.start()
        if restore is not None:
            worker.restore(restore)
        batches = 0
        while True:
            message = conn.recv()
            kind = message[0]
            if kind == "batch_ring":
                # A generous timeout bounds the orphaned-worker case (the
                # coordinator died between notification and ring write);
                # a healthy coordinator is already mid-push.
                payload = ring.pop(timeout=300.0)
                worker.process_batch(codec_decode(payload))
                batches += 1
                conn.send(("progress", shard_id, worker.events, worker.progress()))
                if clock_sync_every and batches % clock_sync_every == 0:
                    conn.send(("delta", shard_id, worker.clock_delta()))
            elif kind == "snapshot":
                conn.send(("state", shard_id, worker.snapshot_state()))
            elif kind == "finish":
                conn.send(("result", shard_id, worker.finish()))
                return
            else:
                raise ValueError("unknown coordinator message %r" % (kind,))
    except EOFError:
        pass
    except Exception:
        try:
            conn.send(("error", shard_id, traceback.format_exc()))
        except (BrokenPipeError, OSError):
            pass
    finally:
        ring.close()
        conn.close()


#: Transport-level failures: the worker side of the pipe is simply gone.
#: Everything else a worker sends is an explicit protocol message (its
#: deterministic failures arrive as ``("error", ...)`` reports).
_PIPE_FAILURES = (EOFError, ConnectionResetError, BrokenPipeError, OSError)


class _ProcessTransport:
    """One persistent worker process per shard over a duplex pipe."""

    #: The worker process entry point; subclasses swap in their own.
    _worker_main = staticmethod(_process_worker_main)

    def __init__(
        self, worker_args: tuple, shard_id: int, mp_context,
        plan=None, shutdown_timeout_s: float = 30.0,
    ) -> None:
        self.shard_id = shard_id
        self.shutdown_timeout_s = shutdown_timeout_s
        self.escalations = 0
        self.acks = _AckCounter(shard_id, plan)
        self.conn, child_conn = mp_context.Pipe(duplex=True)
        self.process = mp_context.Process(
            target=type(self)._worker_main,
            args=(child_conn,) + worker_args,
            name="shard-%d" % shard_id,
            daemon=True,
        )
        self.process.start()
        child_conn.close()
        self._progress = None
        self._delta = None
        self._result = None
        self._state = None

    def _died(self, error: Exception) -> WorkerDied:
        code = self.process.exitcode
        cause = "%s: %s" % (type(error).__name__, error) if str(error) else (
            type(error).__name__
        )
        if code is not None:
            cause += " [worker exit code %s]" % code
        return WorkerDied(self.shard_id, cause)

    def _drain(self, block: bool = False) -> None:
        """Absorb pending worker messages (progress / deltas / errors)."""
        try:
            while self._result is None and (block or self.conn.poll()):
                message = self.conn.recv()
                kind = message[0]
                if kind == "progress":
                    if self.acks.record():
                        self._progress = message[3]
                elif kind == "delta":
                    self._delta = message[2]
                elif kind == "state":
                    self._state = message[2]
                    return
                elif kind == "result":
                    self._result = message[2]
                    return
                elif kind == "error":
                    raise RuntimeError(
                        "shard %d worker failed:\n%s"
                        % (self.shard_id, message[2])
                    )
                block = False
        except _PIPE_FAILURES as error:
            raise self._died(error) from error

    def send(self, batch: List[tuple]) -> None:
        try:
            self.conn.send(("batch", batch))
        except _PIPE_FAILURES as error:
            raise self._died(error) from error
        self._drain()

    def poll_progress(self):
        self._drain()
        return self._progress

    def poll_delta(self):
        self._drain()
        delta, self._delta = self._delta, None
        return delta

    def snapshot_begin(self):
        try:
            self.conn.send(("snapshot",))
        except _PIPE_FAILURES as error:
            raise self._died(error) from error
        return None

    def snapshot_end(self, token) -> dict:
        while self._state is None:
            self._drain(block=True)
        state, self._state = self._state, None
        return state

    def snapshot(self) -> dict:
        return self.snapshot_end(self.snapshot_begin())

    def finish(self) -> dict:
        try:
            self.conn.send(("finish",))
            while self._result is None:
                self._drain(block=True)
            return self._result
        except _PIPE_FAILURES as error:
            raise self._died(error) from error
        finally:
            self._shutdown()

    def _shutdown(self) -> None:
        """Escalating worker shutdown: close -> join -> terminate -> kill.

        A healthy worker exits on pipe EOF, so the first join is the
        graceful path; each escalation is counted (a worker that needed
        SIGTERM or SIGKILL to go away is a bug signal worth surfacing).
        """
        timeout = self.shutdown_timeout_s
        try:
            self.conn.close()
        except OSError:  # pragma: no cover - defensive
            pass
        self.process.join(timeout=timeout)
        if self.process.is_alive():
            self.escalations += 1
            self.process.terminate()
            self.process.join(timeout=timeout)
            if self.process.is_alive():
                self.escalations += 1
                self.process.kill()
                self.process.join(timeout=5)

    def acked(self) -> int:
        return self.acks.observed

    def alive(self) -> bool:
        return self.process.is_alive()

    def break_pipe(self) -> None:
        # Sever the coordinator end; every later pipe operation raises,
        # which the supervisor normalizes into failover.
        self.conn.close()

    def abort(self) -> None:
        """Hard teardown of a dead or discarded worker (no finish drain).

        Unlike :meth:`_shutdown` there is no reason to wait the full
        graceful timeout first: the worker is already presumed gone, so
        escalate to SIGTERM immediately and only count an escalation if
        it survives that.
        """
        try:
            self.conn.close()
        except OSError:
            pass
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout=self.shutdown_timeout_s)
            if self.process.is_alive():  # pragma: no cover - defensive
                self.escalations += 1
                self.process.kill()
                self.process.join(timeout=5)
        else:
            self.process.join(timeout=5)

    def take_escalations(self) -> int:
        taken, self.escalations = self.escalations, 0
        return taken


class _RingTransport(_ProcessTransport):
    """A process worker fed through a shared-memory ring (zero-copy data path).

    Identical control plane to :class:`_ProcessTransport` -- the pipe
    still carries snapshot/finish requests and progress/delta/error/ack
    replies -- but batch payloads never touch pickle or the pipe buffer:
    the coordinator encodes each batch with the binary codec and copies
    the bytes straight into a :class:`~repro.engine.ringbuffer.ShmRing`
    segment both processes have mapped.  A per-batch ``("batch_ring",)``
    pipe notification keeps the worker's single blocking wait point and
    makes ring records totally ordered against control messages.

    The notification is deliberately sent *before* the ring push: a
    payload larger than the ring's free space streams through in
    segments, which requires the consumer to be draining concurrently
    -- notification-first guarantees that without a size precheck.
    """

    _worker_main = staticmethod(_ring_worker_main)

    def __init__(
        self, worker_args: tuple, shard_id: int, mp_context,
        plan=None, shutdown_timeout_s: float = 30.0,
        ring_bytes: int = DEFAULT_RING_BYTES,
    ) -> None:
        self.ring = ShmRing.create(ring_bytes)
        super().__init__(
            worker_args + (self.ring.name, ring_bytes),
            shard_id, mp_context, plan=plan,
            shutdown_timeout_s=shutdown_timeout_s,
        )

    def send(self, batch: List[tuple]) -> None:
        payload = codec_encode(batch)
        try:
            self.conn.send(("batch_ring",))
        except _PIPE_FAILURES as error:
            raise self._died(error) from error
        try:
            # Backpressure: blocks while the ring is full, turning worker
            # death mid-ring into a normalized WorkerDied for failover.
            self.ring.push(payload, liveness=self.process.is_alive)
        except (BrokenPipeError, RingTimeout) as error:
            raise self._died(error) from error
        self._drain()

    def _shutdown(self) -> None:
        try:
            super()._shutdown()
        finally:
            self.ring.unlink()

    def abort(self) -> None:
        try:
            super().abort()
        finally:
            self.ring.unlink()


_TRANSPORT_MODES = ("process", "ring", "thread", "serial")


class ShardedEngine:
    """Drive N shard workers over one event source (see module docstring).

    Parameters
    ----------
    config:
        An :class:`EngineConfig`; its ``shards`` / ``shard_mode`` /
        ``shard_policy`` / ``shard_batch_size`` / ``shard_clock_sync_every``
        fields provide the defaults for the keyword arguments below.
    shards:
        Worker count.  ``1`` delegates to :class:`RaceEngine` -- output is
        byte-identical to the unsharded engine.
    mode:
        ``"process"`` (multi-core), ``"ring"`` (multi-core with the
        zero-copy shared-memory data path), ``"thread"`` or ``"serial"``.
    policy:
        Partition policy name or instance (:mod:`repro.engine.partition`).
    batch_size:
        Events per transport batch.
    """

    def __init__(
        self,
        config: Optional[EngineConfig] = None,
        shards: Optional[int] = None,
        mode: Optional[str] = None,
        policy=None,
        batch_size: Optional[int] = None,
    ) -> None:
        self.config = config or EngineConfig()
        self.shards = shards if shards is not None else self.config.shards
        self.mode = mode if mode is not None else self.config.shard_mode
        self.policy = policy if policy is not None else self.config.shard_policy
        self.batch_size = (
            batch_size if batch_size is not None else self.config.shard_batch_size
        )
        if self.shards < 1:
            raise ValueError("shards must be >= 1")
        if self.mode not in _TRANSPORT_MODES:
            raise ValueError(
                "unknown shard mode %r; available: %s"
                % (self.mode, ", ".join(_TRANSPORT_MODES))
            )
        if self.batch_size < 1:
            raise ValueError("batch size must be positive")

    # ------------------------------------------------------------------ #
    # The sharded pass
    # ------------------------------------------------------------------ #

    def run(
        self,
        source,
        detectors: Optional[Sequence[DetectorSpec]] = None,
    ) -> EngineResult:
        """Run the configured detectors over ``source`` across the shards."""
        if self.shards == 1:
            # Byte-identical single-shard guarantee: the unsharded engine.
            return RaceEngine(self.config).run(source, detectors=detectors)
        resolved = self._resolve(detectors)
        return self._run_sharded(source, resolved, None, None)

    def resume(
        self,
        source,
        checkpoint,
        detectors: Optional[Sequence[DetectorSpec]] = None,
    ) -> EngineResult:
        """Resume a sharded pass from a checkpoint.

        ``checkpoint`` is a :class:`~repro.engine.checkpoint.Checkpoint`,
        a :class:`~repro.engine.checkpoint.Checkpointer` or a checkpoint
        directory.  The engine must be configured with the checkpoint's
        shard count and partition policy (routing must not diverge);
        the transport ``mode`` is free to differ -- worker state is
        transport-agnostic.  Each worker is reconstructed from its
        configuration stamps, restored from its snapshot blobs, and the
        source suffix is replayed; the merged report equals an
        uninterrupted sharded (and therefore single-engine) run.
        """
        loaded, checkpointer = open_for_resume(checkpoint, self.config)
        sharded = loaded.sharded
        if sharded is None:
            raise CheckpointMismatchError(
                "checkpoint at offset %d was taken by an unsharded run; "
                "resume it with RaceEngine.resume or resume_engine()"
                % loaded.events
            )
        if sharded["shards"] != self.shards:
            raise CheckpointMismatchError(
                "checkpoint has %d shard(s) but the engine is configured "
                "for %d; construct the engine with the checkpoint's shard "
                "count" % (sharded["shards"], self.shards)
            )
        # Routing must not diverge between the prefix and the suffix: a
        # name-based checkpoint requires the same policy name, and a
        # checkpoint taken with a custom policy *instance* (recorded as
        # None) can only resume with an equivalent instance supplied by
        # the caller -- silently falling back to hashing would split a
        # variable's history across shards.
        checkpoint_policy = sharded.get("policy")
        engine_policy = self.policy if isinstance(self.policy, str) else None
        if _policy_key(checkpoint_policy) != _policy_key(engine_policy):
            if checkpoint_policy is None:
                raise CheckpointMismatchError(
                    "checkpoint was partitioned with a custom policy "
                    "instance; resume by configuring the engine with an "
                    "equivalent policy instance (its state is restored "
                    "from the checkpoint)"
                )
            if engine_policy is None:
                raise CheckpointMismatchError(
                    "checkpoint was partitioned with policy %r but the "
                    "engine is configured with a policy instance; variable "
                    "routing would diverge" % (checkpoint_policy,)
                )
            raise CheckpointMismatchError(
                "checkpoint was partitioned with policy %r but the engine "
                "is configured with %r; variable routing would diverge"
                % (checkpoint_policy, engine_policy)
            )
        if detectors is None and self.config.detectors is None:
            resolved = loaded.build_detectors()
            self._check_shardable(resolved)
        else:
            resolved = self._resolve(detectors)
        loaded.match_detectors(resolved)
        return self._run_sharded(source, resolved, loaded, checkpointer)

    def _resolve(self, detectors):
        resolved = self.config.resolve_detectors(detectors)
        if len({id(detector) for detector in resolved}) != len(resolved):
            raise ValueError(
                "the same Detector instance appears more than once in the "
                "selection; pass distinct instances (or names) instead"
            )
        self._check_shardable(resolved)
        return resolved

    @staticmethod
    def _check_shardable(resolved) -> None:
        unshardable = [d.name for d in resolved if not d.shardable]
        if unshardable:
            raise ValueError(
                "detector(s) %s cannot run sharded: their verdicts depend on "
                "accesses outside the replicated synchronization skeleton; "
                "run them with shards=1" % ", ".join(sorted(set(unshardable)))
            )

    def _run_sharded(
        self,
        source,
        resolved: List[Detector],
        loaded: Optional[Checkpoint],
        checkpointer: Optional[Checkpointer],
    ) -> EngineResult:
        config = self.config
        send_foreign = any(d.needs_foreign_accesses for d in resolved)

        event_source = as_source(source)
        source_name = event_source.name
        shards = self.shards
        partitioner = StreamPartitioner(make_policy(self.policy, shards))

        # Workers build one private instance set per shard from the
        # detectors' configuration stamps; live detector objects are never
        # pickled.  Mid-run state only ever travels as snapshot blobs.
        specs = [detector_stamp(detector) for detector in resolved]
        check_reconstructible(resolved)

        restore_states = None
        start_events = 0
        if loaded is not None:
            restore_states = loaded.sharded["shard_states"]
            partitioner.load_state(loaded.sharded["partition"])
            seek_source(event_source, loaded.events)
            restore_source_state(event_source, loaded)
            start_events = loaded.events
        elif config.checkpoint_dir is not None:
            checkpointer = Checkpointer(
                config.checkpoint_dir,
                every=config.checkpoint_every,
                keep=config.checkpoint_keep,
            )
        if checkpointer is not None:
            check_snapshot_support(resolved)
            checkpointer.source = event_source
        policy_spec = self.policy if isinstance(self.policy, str) else None

        # Failover needs snapshot-capable detectors; without them the
        # supervisor still normalizes errors but never buffers batches
        # (an unbounded replay buffer with nothing to trim it against).
        try:
            check_snapshot_support(resolved)
            recoverable = True
        except ValueError:
            recoverable = False
        supervision_stats = new_supervision_stats()
        transports = self._start_transports(
            specs, source_name, restore_states,
            stats=supervision_stats, recoverable=recoverable,
        )

        batch_size = self.batch_size
        clock_sync_every = config.shard_clock_sync_every
        race_budget = config.race_budget
        event_budget = config.event_budget
        interval = config.snapshot_interval

        batches: List[List[tuple]] = [[] for _ in range(shards)]
        latest_counts: List[Optional[List[tuple]]] = [None] * shards
        latest_deltas: List[Optional[dict]] = [None] * shards
        snapshots: List[ReportSnapshot] = []
        detector_names = [detector.name for detector in resolved]

        stop_reason = STOP_EXHAUSTED
        events = start_events
        flushes = 0
        last_delta_sync = 0
        started = time.perf_counter()

        def flush(shard: int) -> None:
            transports[shard].send(batches[shard])
            batches[shard] = []

        def take_snapshot() -> None:
            for shard, transport in enumerate(transports):
                counts = transport.poll_progress()
                if counts is not None:
                    latest_counts[shard] = counts
            for position, name in enumerate(detector_names):
                races = raw = 0
                for counts in latest_counts:
                    if counts is not None:
                        races += counts[position][0]
                        raw += counts[position][1]
                snap = ReportSnapshot(
                    detector_name=name,
                    trace_name=source_name,
                    events=events,
                    races=races,
                    raw_races=raw,
                )
                snapshots.append(snap)
                if config.snapshot_callback is not None:
                    config.snapshot_callback(snap)

        classify = partitioner.classify
        value_of = _VALUE_OF_ETYPE
        try:
            for event in event_source:
                kind, owner = classify(event)
                # The wire index is the stream position -- the same
                # renumbering the unsharded engine applies, so distances
                # and witness indices come out identical.
                encoded = (
                    events, event.thread, value_of[event.etype], event.target,
                    event.loc, True,
                )
                if kind is REPLICATE:
                    for shard in range(shards):
                        batch = batches[shard]
                        batch.append(encoded)
                        if len(batch) >= batch_size:
                            flush(shard)
                            flushes += 1
                elif kind is ROUTE or not send_foreign:
                    batch = batches[owner]
                    batch.append(encoded)
                    if len(batch) >= batch_size:
                        flush(owner)
                        flushes += 1
                else:  # ROUTE_CLOCK with a foreign-hungry detector (WCP)
                    foreign = encoded[:5] + (False,)
                    for shard in range(shards):
                        batch = batches[shard]
                        batch.append(encoded if shard == owner else foreign)
                        if len(batch) >= batch_size:
                            flush(shard)
                            flushes += 1
                events += 1

                if interval is not None and events % interval == 0:
                    take_snapshot()
                if (
                    checkpointer is not None
                    and events % checkpointer.every == 0
                ):
                    # Flush every in-flight batch so each worker's state
                    # reflects exactly the first ``events`` events, then
                    # collect one snapshot per shard (transports block
                    # until the worker answers -- pipe messages are
                    # processed in order, so the snapshot is taken after
                    # everything flushed so far).
                    for shard in range(shards):
                        if batches[shard]:
                            flush(shard)
                            flushes += 1
                    checkpointer.save(Checkpoint(
                        events=events,
                        source_name=source_name,
                        stamps=specs,
                        states=None,
                        every=checkpointer.every,
                        source_state=checkpointer.source_state(),
                        sharded={
                            "shards": shards,
                            "mode": self.mode,
                            "policy": policy_spec,
                            "partition": partitioner.state_dict(),
                            "shard_states": self._collect_snapshots(
                                transports
                            ),
                        },
                    ))
                if event_budget is not None and events >= event_budget:
                    stop_reason = STOP_EVENT_BUDGET
                    break
                if race_budget is not None and events % batch_size == 0:
                    # Batch-granular early stop on per-shard counts (an
                    # upper bound of the merged distinct count; the merged
                    # reports are still exact for everything processed).
                    for shard, transport in enumerate(transports):
                        counts = transport.poll_progress()
                        if counts is not None:
                            latest_counts[shard] = counts
                    for position in range(len(resolved)):
                        total = sum(
                            counts[position][0]
                            for counts in latest_counts
                            if counts is not None
                        )
                        if total >= race_budget:
                            stop_reason = STOP_RACE_BUDGET
                            break
                    if stop_reason == STOP_RACE_BUDGET:
                        break
                if clock_sync_every and (
                    flushes - last_delta_sync >= clock_sync_every
                ):
                    last_delta_sync = flushes
                    for shard, transport in enumerate(transports):
                        delta = transport.poll_delta()
                        if delta is not None:
                            latest_deltas[shard] = delta

            for shard in range(shards):
                if batches[shard]:
                    flush(shard)
            payloads = [transport.finish() for transport in transports]
            if clock_sync_every:
                # Deltas in flight during the final batches were absorbed
                # by the finish drain; harvest the last one per shard.
                for shard, transport in enumerate(transports):
                    delta = transport.poll_delta()
                    if delta is not None:
                        latest_deltas[shard] = delta
        except Exception:
            self._abort_transports(transports)
            raise

        elapsed = time.perf_counter() - started
        result = self._merge(
            resolved, payloads, source_name, events, elapsed, stop_reason,
            snapshots, partitioner, latest_deltas, supervision_stats,
        )
        if interval is not None and (events == 0 or events % interval != 0):
            # Final snapshot from the exact merged reports.
            for key, report in result.reports.items():
                snap = ReportSnapshot(
                    detector_name=key,
                    trace_name=source_name,
                    events=events,
                    races=report.count(),
                    raw_races=report.raw_race_count,
                )
                snapshots.append(snap)
                if config.snapshot_callback is not None:
                    config.snapshot_callback(snap)
        return result

    # ------------------------------------------------------------------ #
    # Worker management
    # ------------------------------------------------------------------ #

    def _start_transports(
        self,
        specs: List[dict],
        source_name: str,
        restore_states: Optional[List[dict]] = None,
        stats: Optional[dict] = None,
        recoverable: bool = True,
    ):
        """One :class:`SupervisedTransport` per shard.

        Each wrapper owns a factory closure that (re)builds the raw
        transport for its shard -- used once at startup and again on
        every failover restart, so a restarted worker is constructed
        exactly like a fresh one (stamps, restore blobs) and differs only
        in the state it is restored from.
        """
        config = self.config
        settings = SupervisionSettings.from_config(config)
        plan = config.fault_plan
        stats = stats if stats is not None else new_supervision_stats()
        mode = self.mode
        mp_context = None
        if mode in ("process", "ring"):
            import multiprocessing

            mp_context = multiprocessing.get_context()

        def make_factory(shard: int):
            initial = restore_states[shard] if restore_states else None

            def factory(restore: Optional[dict]):
                state = restore if restore is not None else initial
                # One-shot: only the incarnation that arms the kill dies.
                kill_at = (
                    plan.take_kill_event(shard) if plan is not None else None
                )
                if mode == "process":
                    return _ProcessTransport(
                        (
                            shard, specs, source_name,
                            config.shard_clock_sync_every, state, kill_at,
                        ),
                        shard, mp_context, plan=plan,
                        shutdown_timeout_s=settings.shutdown_timeout_s,
                    )
                if mode == "ring":
                    return _RingTransport(
                        (
                            shard, specs, source_name,
                            config.shard_clock_sync_every, state, kill_at,
                        ),
                        shard, mp_context, plan=plan,
                        shutdown_timeout_s=settings.shutdown_timeout_s,
                        ring_bytes=config.shard_ring_bytes,
                    )
                worker = _ShardWorker(
                    shard, [build_detector(spec) for spec in specs],
                    source_name, kill_at=kill_at,
                )
                if mode == "thread":
                    return _ThreadTransport(
                        worker, state, plan=plan,
                        # Proactive restart: a hung-but-alive thread
                        # worker is declared dead on heartbeat expiry
                        # even when nothing is in flight to ack.
                        stall_timeout_s=settings.heartbeat_s,
                    )
                return _SerialTransport(worker, state, plan=plan)

            return factory

        return [
            SupervisedTransport(
                shard, make_factory(shard), settings, stats,
                plan=plan, recoverable=recoverable,
            )
            for shard in range(self.shards)
        ]

    @staticmethod
    def _collect_snapshots(transports) -> List[dict]:
        """Collect one worker snapshot per shard, overlapping the waits.

        Every transport gets its snapshot request first, so the workers
        serialize their state concurrently; the coordinator then drains
        the replies in shard order -- the per-checkpoint pause is the
        slowest single worker, not the sum (serial transports have no
        begin/end split and run inline).
        """
        tokens = [
            (transport, transport.snapshot_begin())
            if hasattr(transport, "snapshot_begin") else (transport, None)
            for transport in transports
        ]
        return [
            transport.snapshot_end(token)
            if hasattr(transport, "snapshot_end") else transport.snapshot()
            for transport, token in tokens
        ]

    @staticmethod
    def _abort_transports(transports) -> None:
        for transport in transports:
            try:
                transport.abort()
            except Exception:  # pragma: no cover - best-effort teardown
                pass

    # ------------------------------------------------------------------ #
    # Shard-boundary merging
    # ------------------------------------------------------------------ #

    def _merge(
        self,
        resolved: List[Detector],
        payloads: List[dict],
        source_name: str,
        events: int,
        elapsed: float,
        stop_reason: str,
        snapshots: List[ReportSnapshot],
        partitioner: StreamPartitioner,
        clock_deltas: Optional[List[Optional[dict]]] = None,
        supervision: Optional[dict] = None,
    ) -> ShardedResult:
        payloads = sorted(payloads, key=lambda payload: payload["shard"])
        registry = ThreadRegistry()
        remaps = [
            registry.merge_names(payload["names"]) for payload in payloads
        ]

        reports: Dict[str, RaceReport] = {}
        clock_state: Dict[str, Dict[object, VectorClock]] = {}
        for position, detector in enumerate(resolved):
            key = RaceEngine._unique_name(reports, detector.name)
            merged = RaceReport(detector.name, source_name)
            for payload in payloads:
                merged.merge(payload["reports"][position])
            busiest = max(payload["busy_s"] for payload in payloads)
            merged.stats["time_s"] = busiest
            merged.stats["events"] = events
            merged.stats["events_per_s"] = (
                events / busiest if busiest > 0.0 else 0.0
            )
            self._merge_stats(
                merged, [payload["reports"][position] for payload in payloads]
            )
            reports[key] = merged

            # Merged clock view: remap every worker's tids into the merged
            # registry and join.  All workers agree on common threads (the
            # replicated skeleton guarantees it), so the join is the state
            # any one worker would report, completed with threads it never
            # saw an owned event for.
            joined: Dict[object, DenseClock] = {}
            for payload, remap in zip(payloads, remaps):
                worker_clocks = payload["clocks"][position]
                if not worker_clocks:
                    continue
                for name, blob in worker_clocks.items():
                    clock = deserialize_clock(blob).remapped(remap)
                    existing = joined.get(name)
                    if existing is None:
                        joined[name] = clock
                    else:
                        existing.merge(clock)
            clock_state[key] = {
                name: registry.to_public(clock)
                for name, clock in joined.items()
            }

        return ShardedResult(
            source_name=source_name,
            reports=reports,
            events=events,
            elapsed_s=elapsed,
            stop_reason=stop_reason,
            snapshots=snapshots,
            shards=self.shards,
            mode=self.mode,
            shard_events=[payload["events"] for payload in payloads],
            shard_busy_s=[payload["busy_s"] for payload in payloads],
            partition_stats=partitioner.stats(),
            registry=registry,
            clock_state=clock_state,
            shard_clock_states=[payload["clocks"] for payload in payloads],
            shard_names=[payload["names"] for payload in payloads],
            clock_deltas=clock_deltas,
            supervision=supervision,
        )

    @staticmethod
    def _merge_stats(merged: RaceReport, shard_reports: List[RaceReport]) -> None:
        """Aggregate per-shard detector stats onto the merged report.

        ``max_*`` stats take the maximum across shards; counter stats sum;
        ratio/fraction stats are recomputed from the aggregates where
        possible and dropped otherwise (a mean of ratios means nothing).
        """
        keys = set()
        for report in shard_reports:
            keys.update(report.stats)
        for key in keys:
            values = [
                report.stats[key] for report in shard_reports
                if key in report.stats
            ]
            if key.endswith(("_ratio", "_fraction")) or key in (
                "time_s", "events", "events_per_s"
            ):
                continue
            if key.startswith("max_"):
                merged.stats[key] = max(values)
            else:
                merged.stats[key] = sum(values)
        total = merged.stats.get("fast_path_hits", 0.0) + merged.stats.get(
            "slow_path_hits", 0.0
        )
        if total:
            merged.stats["fast_path_ratio"] = (
                merged.stats["fast_path_hits"] / total
            )
        if "max_queue_total" in merged.stats and merged.stats.get("events"):
            merged.stats["max_queue_fraction"] = (
                merged.stats["max_queue_total"] / merged.stats["events"]
            )

    def __repr__(self) -> str:
        return "ShardedEngine(shards=%d, mode=%r, policy=%r)" % (
            self.shards, self.mode, self.policy,
        )
