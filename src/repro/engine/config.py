"""Engine configuration: a small fluent builder.

An :class:`EngineConfig` collects everything a
:class:`~repro.engine.engine.RaceEngine` run needs besides the event
source: which detectors to drive, when to stop early, how often to emit
:class:`~repro.core.races.ReportSnapshot` objects, and whether to pay for
per-event cost accounting.  All ``with_*`` / ``stop_*`` methods mutate and
return ``self`` so configurations read as one chain::

    config = (EngineConfig()
              .with_detectors("wcp", "hb")
              .stop_after_races(1)
              .snapshot_every(10_000))
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Union

from repro.core.detector import Detector
from repro.core.races import ReportSnapshot

#: What a run accepts as a detector selection entry.
DetectorSpec = Union[str, Detector]


class EngineConfig:
    """Builder for :class:`~repro.engine.engine.RaceEngine` runs.

    Defaults: WCP + HB (the paper's primary comparison), no early stop,
    no snapshots, per-detector cost accounting enabled.
    """

    def __init__(self) -> None:
        self.detectors: Optional[List[DetectorSpec]] = None
        #: Stop once any detector has found this many distinct race pairs.
        self.race_budget: Optional[int] = None
        #: Stop after this many events from the source.
        self.event_budget: Optional[int] = None
        #: Emit a snapshot per detector every N events (None disables).
        self.snapshot_interval: Optional[int] = None
        #: Optional callback invoked with each ReportSnapshot as emitted.
        self.snapshot_callback: Optional[Callable[[ReportSnapshot], None]] = None
        #: Time every process() call per detector (2 clock reads per event
        #: per detector); disable for maximum single-detector throughput.
        self.cost_accounting: bool = True
        #: Shard the pass across this many worker engines (1 = unsharded;
        #: see :class:`~repro.engine.sharding.ShardedEngine`).
        self.shards: int = 1
        #: Shard transport: "process" (multi-core), "ring" (multi-core
        #: over a zero-copy shared-memory data path), "thread" or
        #: "serial".
        self.shard_mode: str = "process"
        #: Variable partition policy name/instance
        #: (:mod:`repro.engine.partition`).
        self.shard_policy = "hash"
        #: Events per transport batch.
        self.shard_batch_size: int = 1024
        #: Data-region bytes of each shard's shared-memory ring (the
        #: "ring" transport; other modes ignore it).
        self.shard_ring_bytes: int = 1 << 20
        #: Exchange mid-run clock/registry deltas every N batches.  0
        #: (default) disables the exchange -- final-state merging uses the
        #: finish payload, so mid-run deltas are monitoring/diagnostic
        #: surface (collected on ``ShardedResult.clock_deltas``) and not
        #: worth their serialization cost unless asked for.
        self.shard_clock_sync_every: int = 0
        #: Worker restarts allowed per shard before the run fails with a
        #: :class:`~repro.engine.supervision.WorkerFailure` (0 disables
        #: failover entirely).
        self.shard_retries: int = 2
        #: Liveness timeout: a shard with batches outstanding and no ack
        #: progress for this long is declared dead and failed over.
        self.shard_heartbeat_s: float = 30.0
        #: Batches between periodic per-shard supervision snapshots (the
        #: failover restore points; 0 buffers the whole substream).
        self.shard_snapshot_every: int = 64
        #: Exponential restart backoff base (doubles per attempt).
        self.shard_backoff_s: float = 0.05
        #: Per-stage worker shutdown patience before escalating
        #: (join -> terminate -> kill).
        self.shard_shutdown_timeout_s: float = 30.0
        #: Fail the run on the first worker death instead of recovering.
        self.fail_fast: bool = False
        #: Deterministic fault injection plan
        #: (:class:`~repro.engine.faults.FaultPlan`; None = no faults).
        self.fault_plan = None
        #: Directory for periodic detector-state checkpoints (None
        #: disables checkpointing; see :mod:`repro.engine.checkpoint`).
        self.checkpoint_dir = None
        #: Events between checkpoints when ``checkpoint_dir`` is set.
        self.checkpoint_every: int = 10_000
        #: Newest checkpoints retained on disk.
        self.checkpoint_keep: int = 3

    # ------------------------------------------------------------------ #
    # Fluent setters
    # ------------------------------------------------------------------ #

    def with_detectors(self, *detectors: DetectorSpec) -> "EngineConfig":
        """Select the detectors to drive (names or instances)."""
        if len(detectors) == 1 and isinstance(detectors[0], (list, tuple)):
            detectors = tuple(detectors[0])
        if not detectors:
            raise ValueError("with_detectors requires at least one detector")
        self.detectors = list(detectors)
        return self

    def stop_on_first_race(self) -> "EngineConfig":
        """Stop the pass as soon as any detector reports a race."""
        return self.stop_after_races(1)

    def stop_after_races(self, budget: int) -> "EngineConfig":
        """Stop once any detector has found ``budget`` distinct race pairs."""
        if budget <= 0:
            raise ValueError("race budget must be positive")
        self.race_budget = budget
        return self

    def stop_after_events(self, budget: int) -> "EngineConfig":
        """Stop after ``budget`` events have been taken from the source."""
        if budget <= 0:
            raise ValueError("event budget must be positive")
        self.event_budget = budget
        return self

    def snapshot_every(
        self,
        interval: int,
        callback: Optional[Callable[[ReportSnapshot], None]] = None,
    ) -> "EngineConfig":
        """Emit per-detector snapshots every ``interval`` events.

        Snapshots are collected on the run result; ``callback`` is
        additionally invoked with each one as it is taken.
        """
        if interval <= 0:
            raise ValueError("snapshot interval must be positive")
        self.snapshot_interval = interval
        if callback is not None:
            self.snapshot_callback = callback
        return self

    def with_checkpoints(
        self,
        directory,
        every: int = 10_000,
        keep: int = 3,
    ) -> "EngineConfig":
        """Persist detector-state checkpoints into ``directory``.

        Every ``every`` events the engine snapshots all detectors through
        the versioned snapshot protocol and atomically writes an
        offset-keyed checkpoint file, retaining the newest ``keep``.  A
        crashed run resumes from the newest checkpoint with
        :func:`repro.api.resume_engine` (or ``analyze --resume``).
        Requires every selected detector to support snapshots.
        """
        if every <= 0:
            raise ValueError("checkpoint cadence must be positive")
        if keep <= 0:
            raise ValueError("must keep at least one checkpoint")
        self.checkpoint_dir = directory
        self.checkpoint_every = every
        self.checkpoint_keep = keep
        return self

    def with_cost_accounting(self, enabled: bool = True) -> "EngineConfig":
        """Enable/disable per-event, per-detector wall-clock attribution."""
        self.cost_accounting = enabled
        return self

    def with_shards(
        self,
        shards: int,
        mode: Optional[str] = None,
        policy=None,
        batch_size: Optional[int] = None,
        clock_sync_every: Optional[int] = None,
    ) -> "EngineConfig":
        """Shard the pass across ``shards`` worker engines.

        ``mode`` selects the transport ("process", "ring", "thread",
        "serial"),
        ``policy`` the variable partition policy, ``batch_size`` the
        events per transport batch and ``clock_sync_every`` the cadence
        (in batches) of the shard-boundary clock/registry delta exchange.
        ``shards=1`` keeps the unsharded engine (byte-identical output).
        """
        if shards < 1:
            raise ValueError("shards must be >= 1")
        self.shards = shards
        if mode is not None:
            self.shard_mode = mode
        if policy is not None:
            self.shard_policy = policy
        if batch_size is not None:
            if batch_size < 1:
                raise ValueError("shard batch size must be positive")
            self.shard_batch_size = batch_size
        if clock_sync_every is not None:
            if clock_sync_every < 0:
                raise ValueError("clock sync cadence must be >= 0")
            self.shard_clock_sync_every = clock_sync_every
        return self

    def with_shard_supervision(
        self,
        retries: Optional[int] = None,
        heartbeat_s: Optional[float] = None,
        snapshot_every: Optional[int] = None,
        backoff_s: Optional[float] = None,
        shutdown_timeout_s: Optional[float] = None,
        fail_fast: Optional[bool] = None,
    ) -> "EngineConfig":
        """Tune the sharded engine's supervision/failover layer.

        On worker death the coordinator restarts the worker (up to
        ``retries`` times, exponential backoff from ``backoff_s``),
        restores it from the shard's newest periodic snapshot (taken
        every ``snapshot_every`` batches) and replays the buffered
        batches -- the merged report is byte-identical to the
        uninterrupted run.  ``heartbeat_s`` bounds how long a silent
        worker with work outstanding is trusted; ``fail_fast`` turns the
        first death into an immediate, actionable error instead.
        """
        if retries is not None:
            if retries < 0:
                raise ValueError("shard retries must be >= 0")
            self.shard_retries = retries
        if heartbeat_s is not None:
            if heartbeat_s <= 0:
                raise ValueError("heartbeat timeout must be positive")
            self.shard_heartbeat_s = heartbeat_s
        if snapshot_every is not None:
            if snapshot_every < 0:
                raise ValueError("snapshot cadence must be >= 0")
            self.shard_snapshot_every = snapshot_every
        if backoff_s is not None:
            if backoff_s < 0:
                raise ValueError("backoff must be >= 0")
            self.shard_backoff_s = backoff_s
        if shutdown_timeout_s is not None:
            if shutdown_timeout_s <= 0:
                raise ValueError("shutdown timeout must be positive")
            self.shard_shutdown_timeout_s = shutdown_timeout_s
        if fail_fast is not None:
            self.fail_fast = fail_fast
        return self

    def with_fault_plan(self, plan) -> "EngineConfig":
        """Attach a deterministic fault-injection plan to the run.

        ``plan`` is a :class:`~repro.engine.faults.FaultPlan`; the
        sharded engine's injection points consult it at fixed positions,
        so the same plan reproduces the same failure every run.
        """
        self.fault_plan = plan
        return self

    # ------------------------------------------------------------------ #
    # Resolution helpers (used by the engine)
    # ------------------------------------------------------------------ #

    def resolve_detectors(
        self, override: Optional[Sequence[DetectorSpec]] = None
    ) -> List[Detector]:
        """Instantiate the configured (or overriding) detector selection."""
        # Imported lazily: repro.api imports repro.engine at module load.
        from repro.api import make_detector

        selection = list(override) if override is not None else self.detectors
        if selection is None:
            selection = ["wcp", "hb"]
        if not selection:
            raise ValueError("engine run requires at least one detector")
        resolved: List[Detector] = []
        for entry in selection:
            if isinstance(entry, Detector):
                resolved.append(entry)
            elif isinstance(entry, str):
                resolved.append(make_detector(entry))
            else:
                raise TypeError(
                    "detector entry must be a name or Detector instance, "
                    "got %r" % (type(entry).__name__,)
                )
        return resolved

    def __repr__(self) -> str:
        parts = []
        if self.detectors is not None:
            parts.append("detectors=%r" % (self.detectors,))
        if self.race_budget is not None:
            parts.append("race_budget=%d" % self.race_budget)
        if self.event_budget is not None:
            parts.append("event_budget=%d" % self.event_budget)
        if self.snapshot_interval is not None:
            parts.append("snapshot_every=%d" % self.snapshot_interval)
        if not self.cost_accounting:
            parts.append("cost_accounting=False")
        if self.shards != 1:
            parts.append("shards=%d[%s]" % (self.shards, self.shard_mode))
            if self.shard_retries != 2:
                parts.append("shard_retries=%d" % self.shard_retries)
            if self.fail_fast:
                parts.append("fail_fast")
        if self.fault_plan is not None:
            parts.append("fault_plan=%r" % (self.fault_plan,))
        if self.checkpoint_dir is not None:
            parts.append(
                "checkpoint=%r/%d" % (str(self.checkpoint_dir), self.checkpoint_every)
            )
        return "EngineConfig(%s)" % ", ".join(parts)
